"""Setup shim for editable installs on environments without the wheel package.

Also builds the optional compiled NoC reservation kernel
(``repro._nockernel``, one C file, no dependencies).  The extension is
strictly optional: ``Extension(optional=True)`` means a missing compiler
degrades to a pure-Python install, and setting ``$REPRO_NO_CEXT=1`` skips
the build entirely.  At runtime :mod:`repro.noc.kernel` falls back to the
``fused`` backend whenever the extension is absent, and the kernel choice
is excluded from RunSpec digests, so builds with and without the extension
are cache- and fingerprint-compatible.

Build in place for a source checkout::

    python setup.py build_ext --inplace
"""

import os

from setuptools import Extension, setup

ext_modules = []
if os.environ.get("REPRO_NO_CEXT", "") != "1":
    ext_modules.append(
        Extension(
            "repro._nockernel",
            sources=["src/repro/_nockernel.c"],
            optional=True,
        )
    )

# package_dir makes ``build_ext --inplace`` drop the shared object next to
# the sources in src/repro/ (where ``PYTHONPATH=src`` imports find it).
setup(package_dir={"": "src"}, ext_modules=ext_modules)
