"""Unit tests for graph generation (repro.workloads.graphs)."""

import numpy as np
import pytest

from repro.workloads.graphs import (
    CSRGraph,
    bfs_levels,
    power_law_graph,
    uniform_graph,
)


class TestPowerLawGraph:
    def test_csr_structure_is_consistent(self):
        graph = power_law_graph(512, avg_degree=8, seed=3)
        assert graph.num_vertices == 512
        assert len(graph.row_ptr) == 513
        assert graph.row_ptr[0] == 0
        assert np.all(np.diff(graph.row_ptr) >= 0)
        assert graph.num_edges == len(graph.col_idx)
        assert graph.col_idx.min() >= 0
        assert graph.col_idx.max() < 512

    def test_average_degree_close_to_requested(self):
        graph = power_law_graph(2048, avg_degree=8, seed=1)
        assert graph.num_edges / graph.num_vertices == pytest.approx(8, rel=0.3)

    def test_degree_distribution_is_skewed(self):
        graph = power_law_graph(2048, avg_degree=8, power=0.6, seed=1)
        degrees = graph.out_degrees()
        assert degrees.max() > 4 * degrees.mean()

    def test_deterministic_for_fixed_seed(self):
        a = power_law_graph(256, seed=42)
        b = power_law_graph(256, seed=42)
        assert np.array_equal(a.col_idx, b.col_idx)
        c = power_law_graph(256, seed=43)
        assert not np.array_equal(a.col_idx, c.col_idx)

    def test_acyclic_graph_edges_point_forward(self):
        graph = power_law_graph(512, avg_degree=6, seed=2, acyclic=True)
        for vertex in range(0, 512, 37):
            neighbors = graph.neighbors(vertex)
            assert np.all(neighbors > vertex) or vertex == 511

    def test_neighbors_and_degree_accessors(self):
        graph = power_law_graph(128, avg_degree=4, seed=5)
        for vertex in (0, 50, 127):
            assert graph.degree(vertex) == len(graph.neighbors(vertex))


class TestUniformGraph:
    def test_fixed_degree(self):
        graph = uniform_graph(256, avg_degree=8, seed=1)
        assert np.all(np.diff(graph.row_ptr) == 8)


class TestBFS:
    def test_levels_partition_reachable_vertices(self):
        graph = uniform_graph(256, avg_degree=8, seed=1)
        levels = bfs_levels(graph, root=0)
        flat = np.concatenate(levels)
        assert len(flat) == len(set(flat.tolist()))     # each vertex once
        assert flat[0] == 0
        assert len(flat) <= 256

    def test_level_ordering_respects_graph_distance(self):
        # A simple path graph 0 -> 1 -> 2 -> 3.
        row_ptr = np.array([0, 1, 2, 3, 3], dtype=np.int64)
        col_idx = np.array([1, 2, 3], dtype=np.int32)
        graph = CSRGraph(row_ptr=row_ptr, col_idx=col_idx)
        levels = bfs_levels(graph, root=0)
        assert [list(level) for level in levels] == [[0], [1], [2], [3]]
