"""Tests for the regular (SPLASH-2-style) workloads and the no-harm claim."""

import pytest

from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.system import run_workload
from repro.sim.trace import AccessKind
from repro.workloads.regular import (
    REGULAR_WORKLOADS,
    BlockedMatMulWorkload,
    DenseStencilWorkload,
    StridedCopyWorkload,
)

SMALL = [
    DenseStencilWorkload(rows=24, cols=24, seed=1),
    BlockedMatMulWorkload(size=16, block=4, seed=1),
    StridedCopyWorkload(n_elements=2048, stride=16, seed=1),
]


@pytest.fixture(params=SMALL, ids=lambda w: w.name)
def workload(request):
    return request.param


def small_config() -> SystemConfig:
    return SystemConfig(n_cores=4, l1d=CacheConfig(4 * 1024, 4),
                        l2_total_mb_at_1core=0.0625)


class TestStructure:
    def test_no_indirect_accesses_emitted(self, workload):
        build = workload.build(4)
        for trace in build.traces:
            counts = trace.count_by_kind()
            assert counts[AccessKind.INDIRECT] == 0
            assert counts[AccessKind.INDEX] == 0

    def test_one_trace_per_core_with_work(self, workload):
        build = workload.build(4)
        assert len(build.traces) == 4
        assert all(trace.memory_reference_count > 0 for trace in build.traces)

    def test_addresses_inside_registered_arrays(self, workload):
        build = workload.build(2)
        specs = build.mem_image.arrays()
        for trace in build.traces:
            for entry in trace.entries:
                if hasattr(entry, "addr"):
                    assert any(spec.contains(entry.addr) for spec in specs)

    def test_registry(self):
        assert set(REGULAR_WORKLOADS) == {"dense_stencil", "blocked_matmul",
                                          "strided_copy"}

    def test_matmul_rejects_bad_blocking(self):
        with pytest.raises(ValueError):
            BlockedMatMulWorkload(size=30, block=8)


class TestNoHarm:
    def test_imp_never_detects_patterns_on_regular_codes(self, workload):
        result = run_workload(workload, small_config(), prefetcher="imp")
        assert all(imp.patterns_detected == 0 for imp in result.imps)
        assert all(imp.indirect_prefetches_generated == 0 for imp in result.imps)

    def test_imp_performance_matches_stream_baseline(self, workload):
        config = small_config()
        base = run_workload(workload, config, prefetcher="stream")
        imp = run_workload(workload, config, prefetcher="imp")
        # Within 5% either way: IMP is a superset of the stream prefetcher
        # and must not perturb regular codes (paper, Section 6.1).
        assert imp.runtime_cycles <= base.runtime_cycles * 1.05
        assert imp.runtime_cycles >= base.runtime_cycles * 0.95
