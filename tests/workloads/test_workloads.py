"""Tests covering all seven paper workloads plus the synthetic kernels.

Each workload must produce: one trace per core, memory references tagged
with the right access kinds, addresses that fall inside registered arrays,
and a software-prefetching variant that only adds prefetch instructions.
"""

import numpy as np
import pytest

from repro.sim.trace import AccessKind, MemRef, SwPrefetch
from repro.workloads import (
    PAPER_WORKLOADS,
    Graph500Workload,
    LSHWorkload,
    PagerankWorkload,
    SGDWorkload,
    SpMVWorkload,
    SymGSWorkload,
    TriangleCountWorkload,
    make_workload,
    paper_workloads,
)
from repro.workloads.synthetic import IndirectStreamWorkload, StreamingWorkload

N_CORES = 4

SMALL_WORKLOADS = [
    PagerankWorkload(n_vertices=256, seed=2),
    TriangleCountWorkload(n_vertices=256, seed=2),
    Graph500Workload(n_vertices=256, seed=2),
    SGDWorkload(n_users=256, n_items=256, n_ratings=1024, seed=2),
    LSHWorkload(n_points=512, n_queries=32, seed=2),
    SpMVWorkload(nx=6, ny=6, nz=6, seed=2),
    SymGSWorkload(nx=5, ny=5, nz=5, seed=2),
]


@pytest.fixture(params=SMALL_WORKLOADS, ids=lambda w: w.name)
def workload(request):
    return request.param


class TestAllWorkloads:
    def test_build_produces_one_trace_per_core(self, workload):
        build = workload.build(N_CORES)
        assert len(build.traces) == N_CORES
        assert build.name == workload.name
        assert build.total_memory_references > 0
        assert build.total_instructions >= build.total_memory_references

    def test_memory_references_fall_in_registered_arrays(self, workload):
        build = workload.build(N_CORES)
        specs = build.mem_image.arrays()
        for trace in build.traces:
            for entry in trace.entries:
                if isinstance(entry, (MemRef, SwPrefetch)):
                    assert any(spec.contains(entry.addr) for spec in specs), \
                        f"{workload.name}: address {entry.addr:#x} outside arrays"

    def test_contains_index_and_indirect_accesses(self, workload):
        build = workload.build(N_CORES)
        counts = {kind: 0 for kind in AccessKind}
        for trace in build.traces:
            for kind, count in trace.count_by_kind().items():
                counts[kind] += count
        assert counts[AccessKind.INDEX] > 0
        assert counts[AccessKind.INDIRECT] > 0
        # Indirect accesses are a substantial fraction, as in the paper.
        total = sum(counts.values())
        assert counts[AccessKind.INDIRECT] / total > 0.1

    def test_work_is_distributed_across_cores(self, workload):
        build = workload.build(N_CORES)
        references = [trace.memory_reference_count for trace in build.traces]
        assert all(count > 0 for count in references)

    def test_software_prefetch_variant_adds_only_prefetches(self, workload):
        plain = workload.build(N_CORES)
        sw = workload.build(N_CORES, software_prefetch=True,
                            sw_prefetch_distance=4)
        assert sw.total_memory_references == plain.total_memory_references
        sw_prefetches = sum(
            1 for trace in sw.traces for entry in trace.entries
            if isinstance(entry, SwPrefetch))
        assert sw_prefetches > 0
        assert sw.total_instructions > plain.total_instructions

    def test_build_is_deterministic(self, workload):
        first = workload.build(N_CORES)
        second = workload.build(N_CORES)
        assert first.total_memory_references == second.total_memory_references
        assert first.total_instructions == second.total_instructions


class TestWorkloadSpecifics:
    def test_pagerank_has_two_way_indirection(self):
        build = PagerankWorkload(n_vertices=128, seed=1).build(2)
        rank = build.mem_image.array("rank")
        degree = build.mem_image.array("out_degree")
        indirect_targets = {
            "rank": 0, "out_degree": 0}
        for trace in build.traces:
            for entry in trace.entries:
                if isinstance(entry, MemRef) and entry.kind is AccessKind.INDIRECT:
                    if rank.contains(entry.addr):
                        indirect_targets["rank"] += 1
                    elif degree.contains(entry.addr):
                        indirect_targets["out_degree"] += 1
        assert indirect_targets["rank"] > 0
        assert indirect_targets["out_degree"] > 0

    def test_spmv_indirect_accesses_match_matrix_columns(self):
        workload = SpMVWorkload(nx=4, ny=4, nz=4, seed=1)
        build = workload.build(2)
        matrix = workload.matrix()
        vec = build.mem_image.array("vec")
        valid = {vec.addr_of(int(c)) for c in matrix.col_idx}
        for trace in build.traces:
            for entry in trace.entries:
                if isinstance(entry, MemRef) and entry.kind is AccessKind.INDIRECT:
                    assert entry.addr in valid

    def test_symgs_has_forward_and_backward_sweeps(self):
        build = SymGSWorkload(nx=4, ny=4, nz=4, seed=1).build(1)
        trace = build.traces[0]
        col_addrs = [entry.addr for entry in trace.entries
                     if isinstance(entry, MemRef)
                     and entry.kind is AccessKind.INDEX]
        # The forward sweep scans col_idx upward, the backward sweep downward.
        first_half = col_addrs[: len(col_addrs) // 4]
        last_half = col_addrs[-len(col_addrs) // 4:]
        assert first_half[0] < first_half[-1]
        assert last_half[0] > last_half[-1]

    def test_graph500_visits_every_edge_at_most_once_per_direction(self):
        workload = Graph500Workload(n_vertices=128, avg_degree=6, seed=1)
        build = workload.build(2)
        assert build.metadata["levels"] >= 2

    def test_tri_count_uses_bit_vector(self):
        build = TriangleCountWorkload(n_vertices=128, seed=1).build(2)
        bitvec = build.mem_image.array("bitvec")
        assert bitvec.elem_size == pytest.approx(1 / 8)
        touched = sum(
            1 for trace in build.traces for entry in trace.entries
            if isinstance(entry, MemRef) and bitvec.contains(entry.addr))
        assert touched > 0

    def test_sgd_feature_rows_are_16_bytes(self):
        build = SGDWorkload(n_users=64, n_items=64, n_ratings=256, seed=1).build(2)
        assert build.mem_image.array("user_feat").elem_size == 16
        assert build.mem_image.array("item_feat").elem_size == 16

    def test_lsh_candidates_reference_dataset_rows(self):
        workload = LSHWorkload(n_points=256, n_queries=16, seed=1)
        build = workload.build(2)
        dataset = build.mem_image.array("dataset")
        indirect = [entry for trace in build.traces for entry in trace.entries
                    if isinstance(entry, MemRef)
                    and entry.kind is AccessKind.INDIRECT]
        assert all(dataset.contains(entry.addr) for entry in indirect)


class TestSyntheticWorkloads:
    def test_streaming_workload_has_no_indirect_accesses(self):
        build = StreamingWorkload(n_elements=512).build(2)
        for trace in build.traces:
            assert trace.count_by_kind()[AccessKind.INDIRECT] == 0

    def test_indirect_stream_two_way_variant(self):
        build = IndirectStreamWorkload(n_indices=128, n_data=512,
                                       two_way=True).build(2)
        assert "C" in build.mem_image


class TestRegistry:
    def test_registry_contains_the_seven_paper_workloads(self):
        assert set(PAPER_WORKLOADS) == {
            "pagerank", "tri_count", "graph500", "sgd", "lsh", "spmv", "symgs"}

    def test_make_workload_by_name(self):
        workload = make_workload("spmv", nx=4, ny=4, nz=4)
        assert isinstance(workload, SpMVWorkload)
        with pytest.raises(ValueError):
            make_workload("quicksort")

    def test_paper_workloads_scaling(self):
        small = paper_workloads(scale=0.1)
        assert len(small) == 7
        assert {w.name for w in small} == set(PAPER_WORKLOADS)
