"""Unit tests for sparse matrix generation (repro.workloads.sparse)."""

import numpy as np
import pytest

from repro.workloads.sparse import random_sparse, ratings_matrix, stencil_27pt


class TestStencil:
    def test_dimensions_and_nonzeros(self):
        matrix = stencil_27pt(4, 4, 4)
        assert matrix.num_rows == 64
        # Interior points have 27 neighbours; corners have 8.
        counts = np.diff(matrix.row_ptr)
        assert counts.min() == 8
        assert counts.max() == 27

    def test_rows_reference_valid_columns(self):
        matrix = stencil_27pt(3, 4, 5)
        assert matrix.col_idx.min() >= 0
        assert matrix.col_idx.max() < matrix.num_rows

    def test_diagonal_dominant_values(self):
        matrix = stencil_27pt(3, 3, 3)
        cols, vals = matrix.row(13)              # centre point of the grid
        diag = vals[cols == 13]
        assert diag[0] == pytest.approx(26.0)
        assert np.all(vals[cols != 13] == -1.0)

    def test_symmetric_structure(self):
        matrix = stencil_27pt(3, 3, 3)
        # If (r, c) is a non-zero then (c, r) must be too (stencil symmetry).
        pairs = set()
        for row in range(matrix.num_rows):
            cols, _ = matrix.row(row)
            for col in cols:
                pairs.add((row, int(col)))
        assert all((c, r) in pairs for (r, c) in pairs)


class TestRandomSparse:
    def test_shape_and_determinism(self):
        a = random_sparse(64, 128, nnz_per_row=4, seed=9)
        b = random_sparse(64, 128, nnz_per_row=4, seed=9)
        assert a.num_rows == 64
        assert a.num_nonzeros == 256
        assert np.array_equal(a.col_idx, b.col_idx)
        assert a.col_idx.max() < 128


class TestRatings:
    def test_triple_shapes(self):
        users, items, values = ratings_matrix(100, 200, 1000, seed=3)
        assert len(users) == len(items) == len(values) == 1000
        assert users.max() < 100
        assert items.max() < 200
        assert values.min() >= 1.0 and values.max() <= 5.0

    def test_popularity_skew(self):
        users, _, _ = ratings_matrix(1000, 1000, 20_000, seed=3)
        counts = np.bincount(users, minlength=1000)
        assert counts.max() > 5 * counts.mean()
