"""Unit tests for the stream prefetcher (repro.prefetchers.stream)."""

import pytest

from repro.prefetchers.base import AccessContext
from repro.prefetchers.stream import StreamPrefetcher, StreamPrefetcherConfig


def ctx(pc: int, addr: int, now: float = 0.0, hit: bool = True) -> AccessContext:
    return AccessContext(core_id=0, pc=pc, addr=addr, size=8, is_write=False,
                         hit=hit, now=now)


def drive(prefetcher: StreamPrefetcher, pc: int, start: int, stride: int,
          count: int):
    requests = []
    for i in range(count):
        requests.extend(prefetcher.on_access(ctx(pc, start + i * stride, now=i)))
    return requests


class TestTraining:
    def test_constant_stride_detected_after_threshold(self):
        prefetcher = StreamPrefetcher(StreamPrefetcherConfig(train_threshold=2))
        drive(prefetcher, pc=0x400, start=0x1000, stride=8, count=4)
        entry = prefetcher.lookup(0x400)
        assert entry is not None
        assert entry.stride == 8
        assert entry.is_trained(2)
        assert prefetcher.streams_detected == 1

    def test_no_prefetch_before_training(self):
        prefetcher = StreamPrefetcher(StreamPrefetcherConfig(train_threshold=2))
        requests = drive(prefetcher, 0x400, 0x1000, 8, 2)
        assert requests == []

    def test_prefetches_issued_after_training(self):
        prefetcher = StreamPrefetcher()
        requests = drive(prefetcher, 0x400, 0x1000, 8, 32)
        assert requests
        assert all(not r.is_indirect for r in requests)
        # Prefetch targets are ahead of the demand stream.
        assert all(r.addr > 0x1000 for r in requests)

    def test_negative_stride_stream(self):
        prefetcher = StreamPrefetcher()
        requests = drive(prefetcher, 0x400, 0x8000, -8, 32)
        assert requests
        assert all(r.addr < 0x8000 for r in requests)

    def test_random_accesses_never_train(self):
        prefetcher = StreamPrefetcher()
        addresses = [0x1000, 0x9000, 0x3000, 0x20000, 0x500, 0x7777000]
        requests = []
        for i, addr in enumerate(addresses):
            requests.extend(prefetcher.on_access(ctx(0x400, addr, now=i)))
        assert requests == []

    def test_repeated_same_address_is_not_a_stream(self):
        prefetcher = StreamPrefetcher()
        requests = drive(prefetcher, 0x400, 0x1000, 0, 20)
        assert requests == []


class TestTableManagement:
    def test_distinct_pcs_tracked_independently(self):
        prefetcher = StreamPrefetcher()
        drive(prefetcher, 0x400, 0x1000, 8, 5)
        drive(prefetcher, 0x408, 0x9000, 4, 5)
        assert prefetcher.lookup(0x400).stride == 8
        assert prefetcher.lookup(0x408).stride == 4

    def test_table_size_limit_evicts_lru(self):
        prefetcher = StreamPrefetcher(StreamPrefetcherConfig(table_size=2))
        drive(prefetcher, 0x400, 0x1000, 8, 3)
        drive(prefetcher, 0x408, 0x2000, 8, 3)
        drive(prefetcher, 0x410, 0x3000, 8, 3)
        assert prefetcher.lookup(0x400) is None
        assert prefetcher.lookup(0x410) is not None

    def test_reposition_keeps_training(self):
        prefetcher = StreamPrefetcher()
        drive(prefetcher, 0x400, 0x1000, 8, 10)
        entry = prefetcher.lookup(0x400)
        hit_cnt = entry.hit_cnt
        prefetcher.reposition(0x400, 0x50000, now=100)
        assert entry.addr == 0x50000
        assert entry.hit_cnt == hit_cnt

    def test_stride_change_uses_hysteresis(self):
        prefetcher = StreamPrefetcher()
        drive(prefetcher, 0x400, 0x1000, 8, 10)
        entry = prefetcher.lookup(0x400)
        # One hiccup (e.g. a nested-loop restart) must not drop the stride.
        prefetcher.on_access(ctx(0x400, 0x90000, now=50))
        assert entry.stride == 8
        # Continuing from the new position keeps prefetching immediately.
        requests = drive(prefetcher, 0x400, 0x90008, 8, 3)
        assert requests

    def test_reset(self):
        prefetcher = StreamPrefetcher()
        drive(prefetcher, 0x400, 0x1000, 8, 5)
        prefetcher.reset()
        assert prefetcher.entries() == []
        assert prefetcher.streams_detected == 0


class TestPrefetchDistance:
    def test_distance_ramps_up_to_max(self):
        config = StreamPrefetcherConfig(initial_distance=1, max_distance=4)
        prefetcher = StreamPrefetcher(config)
        drive(prefetcher, 0x400, 0x1000, 8, 50)
        assert prefetcher.lookup(0x400).distance == 4

    def test_no_duplicate_line_prefetches(self):
        prefetcher = StreamPrefetcher()
        requests = drive(prefetcher, 0x400, 0x1000, 8, 64)
        lines = [r.addr // 64 for r in requests]
        assert len(lines) == len(set(lines))
