"""Unit tests for the GHB correlation prefetcher (repro.prefetchers.ghb)."""

import pytest

from repro.prefetchers.base import AccessContext
from repro.prefetchers.ghb import GHBConfig, GHBPrefetcher
from repro.prefetchers.null import NullPrefetcher


def miss(addr: int, now: float = 0.0) -> AccessContext:
    return AccessContext(core_id=0, pc=0x400, addr=addr, size=8,
                         is_write=False, hit=False, now=now)


def hit(addr: int, now: float = 0.0) -> AccessContext:
    return AccessContext(core_id=0, pc=0x400, addr=addr, size=8,
                         is_write=False, hit=True, now=now)


class TestCorrelation:
    def test_repeated_miss_sequence_is_prefetched(self):
        ghb = GHBPrefetcher(GHBConfig(degree=2))
        sequence = [0x1000, 0x5000, 0x9000, 0x2000]
        for addr in sequence:
            ghb.on_access(miss(addr))
        # Replay the sequence: revisiting 0x1000 should prefetch 0x5000/0x9000.
        requests = ghb.on_access(miss(0x1000))
        targets = {r.addr for r in requests}
        assert 0x5000 in targets
        assert 0x9000 in targets
        assert ghb.correlation_hits == 1

    def test_novel_addresses_produce_no_prefetches(self):
        ghb = GHBPrefetcher()
        for i in range(64):
            assert ghb.on_access(miss(0x1000 + i * 4096)) == []

    def test_hits_do_not_train_by_default(self):
        ghb = GHBPrefetcher()
        for addr in (0x1000, 0x2000, 0x1000):
            assert ghb.on_access(hit(addr)) == []
        assert ghb.correlation_hits == 0

    def test_degree_limits_prefetch_count(self):
        ghb = GHBPrefetcher(GHBConfig(degree=1))
        for addr in (0x1000, 0x5000, 0x9000):
            ghb.on_access(miss(addr))
        requests = ghb.on_access(miss(0x1000))
        assert len(requests) == 1

    def test_long_irregular_streams_exceed_buffer(self):
        """The paper's observation: with a reasonably sized buffer, GHB cannot
        capture indirect streams because they repeat (if at all) far beyond
        the history window."""
        ghb = GHBPrefetcher(GHBConfig(buffer_size=64, index_table_size=64))
        first_pass = [0x1000 + i * 4096 for i in range(256)]
        for addr in first_pass:
            ghb.on_access(miss(addr))
        # Second pass over the same long stream: the early entries have been
        # overwritten, so almost nothing correlates.
        requests = []
        for addr in first_pass[:32]:
            requests.extend(ghb.on_access(miss(addr)))
        assert len(requests) <= 4

    def test_reset(self):
        ghb = GHBPrefetcher()
        for addr in (0x1000, 0x2000):
            ghb.on_access(miss(addr))
        ghb.reset()
        assert ghb.on_access(miss(0x1000)) == []
        assert ghb.correlation_hits == 0


class TestNullPrefetcher:
    def test_never_prefetches(self):
        null = NullPrefetcher()
        assert null.on_access(miss(0x1000)) == []
        assert null.on_fill(0x1000, 0.0) == []
        null.on_eviction(0x1000, 0, 0.0)     # must not raise
