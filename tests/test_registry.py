"""Tests for the plugin registries (repro.registry)."""

import pytest

from repro.experiments.configs import CONFIG_MODES, experiment_config, scaled_config
from repro.memory.dram import BankedDram, SimpleDram, make_dram
from repro.registry import (
    ALL_REGISTRIES,
    DRAM_MODELS,
    MODES,
    PREFETCHERS,
    Registry,
    RegistryError,
    WORKLOADS,
)
from repro.sim.config import DramConfig
from repro.sim.system import make_prefetcher_factory, run_workload
from repro.workloads import WORKLOAD_REGISTRY
from repro.workloads.synthetic import IndirectStreamWorkload


class TestRegistryBasics:
    def test_register_and_get(self):
        registry = Registry("widget")
        registry.register("a", lambda: "A", description="the A widget")
        entry = registry.get("a")
        assert entry.factory() == "A"
        assert entry.description == "the A widget"

    def test_decorator_form(self):
        registry = Registry("widget")

        @registry.register("b", description="decorated")
        def make_b():
            return "B"

        assert registry.get("b").factory is make_b

    def test_duplicate_rejected_unless_replace(self):
        registry = Registry("widget")
        registry.register("a", lambda: 1)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("a", lambda: 2)
        registry.register("a", lambda: 2, replace=True)
        assert registry.get("a").factory() == 2

    def test_unknown_name_lists_valid_choices(self):
        registry = Registry("widget")
        registry.register("alpha", lambda: 1)
        registry.register("beta", lambda: 2)
        with pytest.raises(RegistryError) as excinfo:
            registry.get("gamma")
        message = str(excinfo.value)
        assert "gamma" in message
        assert "alpha" in message and "beta" in message
        # RegistryError must stay a ValueError for legacy call sites.
        assert isinstance(excinfo.value, ValueError)

    def test_names_preserve_registration_order(self):
        registry = Registry("widget")
        for name in ("z", "a", "m"):
            registry.register(name, lambda: None)
        assert registry.names() == ["z", "a", "m"]

    def test_contains_len_iter(self):
        registry = Registry("widget")
        registry.register("a", lambda: None)
        assert "a" in registry and "b" not in registry
        assert len(registry) == 1
        assert list(registry) == ["a"]

    def test_entries_available_by_default(self):
        registry = Registry("widget")
        registry.register("a", lambda: None)
        entry = registry.get("a")
        assert entry.available is None
        assert entry.is_available()

    def test_availability_probe_gates_is_available(self):
        registry = Registry("widget")
        present = [True]
        registry.register("a", lambda: None, available=lambda: present[0])
        # The probe is consulted per call, so availability can change at
        # runtime (e.g. $REPRO_NO_CEXT toggled) without re-registration.
        assert registry.get("a").is_available()
        present[0] = False
        assert not registry.get("a").is_available()
        # Unavailable entries stay registered and resolvable by name.
        assert "a" in registry and registry.names() == ["a"]


class TestStockRegistries:
    def test_all_registries_exposed(self):
        assert set(ALL_REGISTRIES) == {"prefetchers", "dram-models",
                                       "workloads", "modes", "noc-kernels",
                                       "sweep-backends"}

    def test_stock_sweep_backends(self):
        from repro.registry import SWEEP_BACKENDS
        assert SWEEP_BACKENDS.names() == ["serial", "process", "service"]

    def test_stock_prefetchers(self):
        assert PREFETCHERS.names() == ["none", "stream", "ghb", "imp"]

    def test_stock_dram_models(self):
        assert DRAM_MODELS.names() == ["simple", "banked"]
        assert DRAM_MODELS.get("simple").factory is SimpleDram
        assert DRAM_MODELS.get("banked").factory is BankedDram

    def test_stock_modes_match_config_modes(self):
        assert tuple(MODES.names()) == CONFIG_MODES

    def test_workload_registry_is_registry_view(self):
        assert set(WORKLOAD_REGISTRY) == set(WORKLOADS.names())
        for name, cls in WORKLOAD_REGISTRY.items():
            assert WORKLOADS.get(name).factory is cls

    def test_every_entry_has_a_description(self):
        for registry in ALL_REGISTRIES.values():
            for entry in registry.entries():
                assert entry.description, (registry.kind, entry.name)

    def test_paper_workloads_tagged(self):
        paper = [e.name for e in WORKLOADS.entries() if "paper" in e.tags]
        assert paper == ["pagerank", "tri_count", "graph500", "sgd", "lsh",
                        "spmv", "symgs"]


class TestErrorMessages:
    def test_unknown_prefetcher_lists_names(self):
        with pytest.raises(ValueError, match="none, stream, ghb, imp"):
            make_prefetcher_factory("oracle")

    def test_unknown_mode_lists_names(self):
        with pytest.raises(ValueError, match="imp_partial_noc_dram"):
            experiment_config("warp_speed", 4)

    def test_unknown_dram_model_fails_at_config_time(self):
        # Satellite: the error now fires when the DramConfig is built, not
        # deep inside MemorySystem construction.
        with pytest.raises(ValueError, match="simple, banked"):
            DramConfig(model="quantum")

    def test_make_dram_still_guards(self):
        config = DramConfig()
        object.__setattr__(config, "model", "smuggled")
        with pytest.raises(ValueError, match="simple, banked"):
            make_dram(config, 2)


class TestExtensibility:
    def test_custom_mode_roundtrip(self):
        @MODES.register("test_only_ghb_alias",
                        description="test-only alias of the ghb mode")
        def _alias(config, imp_cfg):
            return config, "ghb", None, False

        try:
            config, prefetcher, imp_cfg, software = experiment_config(
                "test_only_ghb_alias", 4, base_config=scaled_config(4))
            assert prefetcher == "ghb"
            assert software is False
        finally:
            MODES.unregister("test_only_ghb_alias")
        with pytest.raises(RegistryError):
            MODES.get("test_only_ghb_alias")

    def test_custom_prefetcher_runs_end_to_end(self):
        from repro.prefetchers.base import PrefetcherBase, PrefetchRequest

        class NextLine(PrefetcherBase):
            """Toy next-line prefetcher (the README worked example)."""

            name = "nextline"

            def on_access(self, ctx):
                if ctx.hit:
                    return []
                return [PrefetchRequest(addr=(ctx.addr & ~63) + 64)]

        PREFETCHERS.register(
            "test_only_nextline", lambda core_id, **_: NextLine(),
            description="test-only next-line prefetcher")
        try:
            workload = IndirectStreamWorkload(n_indices=256, n_data=1024,
                                              seed=3)
            result = run_workload(workload, scaled_config(4),
                                  prefetcher="test_only_nextline")
            assert result.stats.prefetches_issued > 0
        finally:
            PREFETCHERS.unregister("test_only_nextline")
