"""End-to-end integration tests: full system simulations reproducing the
paper's qualitative claims on small inputs.

These are the slowest tests in the suite (a few seconds each); they use
reduced problem sizes but keep the working sets larger than the simulated
L1 caches so prefetching matters.
"""

import pytest

from repro.core import IMPConfig
from repro.experiments.configs import scaled_config
from repro.sim.system import run_workload
from repro.sim.trace import AccessKind
from repro.workloads import PagerankWorkload, SpMVWorkload
from repro.workloads.synthetic import IndirectStreamWorkload, StreamingWorkload

N_CORES = 16


@pytest.fixture(scope="module")
def config():
    return scaled_config(N_CORES)


@pytest.fixture(scope="module")
def indirect_results(config):
    """Simulate the canonical A[B[i]] workload under several configurations."""
    workload = IndirectStreamWorkload(n_indices=4096, n_data=8192, seed=5)
    return {
        "ideal": run_workload(workload, config.as_ideal(), prefetcher="none"),
        "perfpref": run_workload(workload, config.as_perfect_prefetch(),
                                 prefetcher="none"),
        "none": run_workload(workload, config, prefetcher="none"),
        "base": run_workload(workload, config, prefetcher="stream"),
        "imp": run_workload(workload, config, prefetcher="imp"),
        "swpref": run_workload(workload, config, prefetcher="stream",
                               software_prefetch=True),
    }


class TestConfigurationOrdering:
    def test_ideal_is_the_fastest_configuration(self, indirect_results):
        ideal = indirect_results["ideal"].runtime_cycles
        assert all(ideal <= result.runtime_cycles
                   for name, result in indirect_results.items() if name != "ideal")

    def test_perfect_prefetching_upper_bounds_imp(self, indirect_results):
        assert (indirect_results["perfpref"].runtime_cycles
                <= indirect_results["imp"].runtime_cycles)

    def test_imp_speeds_up_indirect_workload_substantially(self, indirect_results):
        speedup = indirect_results["imp"].speedup_over(indirect_results["base"])
        assert speedup > 1.3

    def test_software_prefetching_helps_but_imp_is_competitive(self, indirect_results):
        # On this flat synthetic loop with a hand-tuned distance, software
        # prefetching is at its best; IMP must stay within a small margin
        # (its advantages — nested loops, runtime-only patterns, zero
        # instruction overhead — are exercised by the application workloads).
        base = indirect_results["base"]
        sw = indirect_results["swpref"]
        imp = indirect_results["imp"]
        assert sw.speedup_over(base) > 1.0
        assert imp.runtime_cycles <= sw.runtime_cycles * 1.25

    def test_software_prefetching_has_instruction_overhead(self, indirect_results):
        assert (indirect_results["swpref"].stats.total_instructions
                > indirect_results["imp"].stats.total_instructions)

    def test_imp_improves_coverage_over_stream_only(self, indirect_results):
        assert indirect_results["imp"].stats.coverage > 0.5
        assert (indirect_results["imp"].stats.coverage
                > indirect_results["base"].stats.coverage + 0.3)

    def test_imp_reduces_average_memory_latency(self, indirect_results):
        assert (indirect_results["imp"].stats.avg_mem_latency
                < indirect_results["base"].stats.avg_mem_latency)

    def test_most_misses_are_indirect_in_baseline(self, indirect_results):
        fractions = indirect_results["base"].stats.miss_fraction_by_kind()
        assert fractions[AccessKind.INDIRECT] > 0.5


class TestNoHarmOnRegularCodes:
    def test_imp_does_not_hurt_streaming_workload(self, config):
        """The paper's SPLASH-2 check: IMP never triggers indirect
        prefetching without indirection, so performance is unchanged."""
        workload = StreamingWorkload(n_elements=8192, seed=5)
        base = run_workload(workload, config, prefetcher="stream")
        imp = run_workload(workload, config, prefetcher="imp")
        assert imp.runtime_cycles <= base.runtime_cycles * 1.05
        assert all(prefetcher.patterns_detected == 0 for prefetcher in imp.imps)


class TestPartialCachelineAccessing:
    @pytest.fixture(scope="class")
    def partial_results(self, config):
        workload = IndirectStreamWorkload(n_indices=4096, n_data=8192, seed=5)
        imp_full = run_workload(workload, config, prefetcher="imp")
        imp_partial = run_workload(
            workload, config.with_partial(noc=True, dram=True),
            prefetcher="imp", imp_config=IMPConfig(partial_enabled=True))
        return imp_full, imp_partial

    def test_partial_accessing_reduces_noc_traffic(self, partial_results):
        full, partial = partial_results
        assert (partial.stats.traffic.noc_bytes
                < full.stats.traffic.noc_bytes)

    def test_partial_accessing_reduces_dram_traffic(self, partial_results):
        full, partial = partial_results
        assert (partial.stats.traffic.dram_bytes
                <= full.stats.traffic.dram_bytes)

    def test_partial_accessing_does_not_slow_down_sparse_accesses(self,
                                                                  partial_results):
        full, partial = partial_results
        assert partial.runtime_cycles <= full.runtime_cycles * 1.10


class TestRealWorkloads:
    def test_imp_speeds_up_pagerank(self, config):
        workload = PagerankWorkload(n_vertices=1024, seed=3)
        base = run_workload(workload, config, prefetcher="stream")
        imp = run_workload(workload, config, prefetcher="imp")
        assert imp.speedup_over(base) > 1.2
        assert any(p.secondary_patterns_detected for p in imp.imps)

    def test_imp_speeds_up_spmv_with_high_coverage(self, config):
        workload = SpMVWorkload(nx=12, ny=12, nz=12, seed=3)
        base = run_workload(workload, config, prefetcher="stream")
        imp = run_workload(workload, config, prefetcher="imp")
        assert imp.speedup_over(base) > 1.1
        assert imp.stats.coverage > base.stats.coverage

    def test_ghb_provides_no_benefit_on_indirect_workload(self, config):
        workload = IndirectStreamWorkload(n_indices=2048, n_data=8192, seed=5)
        base = run_workload(workload, config, prefetcher="stream")
        ghb = run_workload(workload, config, prefetcher="ghb")
        imp = run_workload(workload, config, prefetcher="imp")
        # GHB does not beat the stream baseline on these access patterns,
        # while IMP clearly does (Section 5.4).
        assert ghb.runtime_cycles >= base.runtime_cycles * 0.95
        assert imp.runtime_cycles < ghb.runtime_cycles

    def test_ooo_core_benefits_from_imp(self):
        config = scaled_config(N_CORES).with_ooo(32)
        workload = PagerankWorkload(n_vertices=1024, seed=3)
        base = run_workload(workload, config, prefetcher="stream")
        imp = run_workload(workload, config, prefetcher="imp")
        assert imp.speedup_over(base) > 1.05
