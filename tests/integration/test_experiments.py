"""Tests for the experiment harness (repro.experiments) on tiny inputs."""

import pytest

from repro.core.config import IMPConfig
from repro.experiments import ExperimentRunner, figures, scaled_config
from repro.experiments.configs import CONFIG_MODES, experiment_config
from repro.workloads import PagerankWorkload, SpMVWorkload
from repro.workloads.synthetic import IndirectStreamWorkload

N_CORES = 4


@pytest.fixture(scope="module")
def runner():
    """A runner over two tiny workloads so figure functions stay fast."""
    workloads = [
        IndirectStreamWorkload(n_indices=1024, n_data=4096, seed=2),
        PagerankWorkload(n_vertices=512, seed=2),
    ]
    return ExperimentRunner(workloads=workloads,
                            base_config=scaled_config(N_CORES))


class TestConfigs:
    def test_scaled_config_preserves_table1_structure(self):
        config = scaled_config(64)
        assert config.n_cores == 64
        assert config.num_memory_controllers == 4
        assert config.l1d.size_bytes == 16 * 1024

    @pytest.mark.parametrize("mode", CONFIG_MODES)
    def test_all_modes_resolve(self, mode):
        config, prefetcher, imp_config, software = experiment_config(mode, 16)
        assert config.n_cores == 16
        if mode == "ideal":
            assert config.ideal_memory
        if mode == "perfpref":
            assert config.perfect_prefetch
        if mode.startswith("imp"):
            assert prefetcher == "imp"
            assert imp_config is not None
        if mode == "imp_partial_noc_dram":
            assert config.partial_noc and config.partial_dram
            assert imp_config.partial_enabled
        if mode == "swpref":
            assert software

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            experiment_config("warp_drive", 16)


class TestRunnerCaching:
    def test_run_is_cached(self, runner):
        first = runner.run("indirect_stream", "base", N_CORES)
        second = runner.run("indirect_stream", "base", N_CORES)
        assert first is second

    def test_different_imp_configs_not_conflated(self, runner):
        small = runner.run("indirect_stream", "imp", N_CORES,
                           imp_config=IMPConfig().with_pt_size(8))
        large = runner.run("indirect_stream", "imp", N_CORES,
                           imp_config=IMPConfig().with_pt_size(32))
        assert small is not large

    def test_unknown_workload_rejected(self, runner):
        with pytest.raises(KeyError):
            runner.run("hpcg_full", "base", N_CORES)


class TestFigureFunctions:
    def test_fig01_rows_are_fractions(self, runner):
        rows = figures.fig01_miss_breakdown(runner, N_CORES)
        assert rows[-1]["workload"] == "avg"
        for row in rows:
            total = row["indirect"] + row["stream"] + row["other"]
            assert 0.0 <= total <= 1.0 + 1e-9

    def test_fig02_norm_runtime_at_least_one(self, runner):
        rows = figures.fig02_motivation(runner, N_CORES)
        for row in rows:
            assert row["norm_runtime"] >= 1.0
            assert 0.0 <= row["indirect_fraction"] <= 1.0

    def test_fig09_imp_beats_base(self, runner):
        results = figures.fig09_performance(runner, core_counts=(N_CORES,))
        rows = results[N_CORES]
        avg = rows[-1]
        assert avg["workload"] == "avg"
        assert avg["imp"] > avg["base"]
        assert avg["perfpref"] == pytest.approx(1.0)

    def test_table3_columns_present_and_bounded(self, runner):
        rows = figures.table3_effectiveness(runner, N_CORES)
        for row in rows:
            assert 0.0 <= row["stream_cov"] <= 1.0
            assert 0.0 <= row["imp_cov"] <= 1.0
            assert row["imp_cov"] >= row["stream_cov"] - 1e-9
            assert row["imp_lat"] > 0

    def test_fig10_sw_prefetching_has_higher_instruction_count(self, runner):
        rows = figures.fig10_sw_overhead(runner, N_CORES)
        avg = rows[-1]
        assert avg["swpref"] > avg["imp"] >= 0.99

    def test_fig11_contains_all_modes(self, runner):
        results = figures.fig11_partial(runner, core_counts=(N_CORES,))
        for row in results[N_CORES]:
            for key in ("imp", "imp_partial_noc", "imp_partial_noc_dram", "ideal"):
                assert key in row

    def test_fig12_traffic_ratios_positive(self, runner):
        rows = figures.fig12_traffic(runner, N_CORES)
        for row in rows:
            assert row["noc_traffic"] > 0
            assert row["dram_traffic"] > 0
            assert row["noc_traffic"] <= 1.05

    def test_fig14_sensitivity_reference_is_one(self, runner):
        rows = figures.fig14_pt_size(runner, N_CORES, sizes=(8, 16))
        for row in rows:
            assert row["PT=16"] == pytest.approx(1.0)

    def test_fig16_distance_sensitivity_runs(self, runner):
        rows = figures.fig16_prefetch_distance(runner, N_CORES,
                                               distances=(8, 16))
        assert rows[-1]["workload"] == "avg"

    def test_sec64_cost_matches_paper(self):
        cost = figures.sec64_hardware_cost()
        assert 5.0 <= cost["imp_total_kbits"] <= 6.0
        assert cost["imp_total_bytes"] <= 800
        assert cost["gp_total_bytes"] <= 470

    def test_format_table_renders_rows(self, runner):
        rows = figures.fig01_miss_breakdown(runner, N_CORES)
        text = figures.format_table(rows)
        assert "workload" in text
        assert "avg" in text
        assert figures.format_table([]) == "(empty)"

    def test_imp_speedup_helper(self, runner):
        results = figures.fig09_performance(runner, core_counts=(N_CORES,))
        speedups = figures.imp_speedup_over_base(results[N_CORES])
        assert set(speedups) == {"indirect_stream", "pagerank"}
        assert all(value > 0 for value in speedups.values())
