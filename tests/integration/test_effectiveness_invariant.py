"""Effectiveness invariants (Table 3's headline claim, kept cheap).

IMP must beat the stream-prefetcher baseline on the indirect-dominated
kernels — spmv and pagerank at 16 cores — both in runtime and in prefetch
coverage.  Performance work on the simulator cannot be allowed to silently
break prefetcher fidelity: any hot-path change that corrupts training,
confidence building or prefetch issue shows up here as a lost speedup.

The inputs are scaled down (the invariant, not the absolute numbers, is
what's asserted) so the test stays tier-1-fast.
"""

import pytest

from repro.experiments.configs import scaled_config
from repro.sim.system import run_workload
from repro.workloads import make_workload

CORES = 16


@pytest.fixture(scope="module", params=["spmv", "pagerank"])
def stream_vs_imp(request):
    if request.param == "spmv":
        workload = make_workload("spmv", seed=1, nx=9, ny=9, nz=9)
    else:
        workload = make_workload("pagerank", seed=1, n_vertices=1536)
    config = scaled_config(CORES)
    stream = run_workload(workload, config, prefetcher="stream")
    imp = run_workload(workload, config, prefetcher="imp")
    return request.param, stream, imp


def test_imp_beats_stream_runtime(stream_vs_imp):
    name, stream, imp = stream_vs_imp
    assert imp.runtime_cycles < stream.runtime_cycles, (
        f"IMP must outrun the stream baseline on {name} at {CORES} cores: "
        f"imp={imp.runtime_cycles} stream={stream.runtime_cycles}")


def test_imp_improves_coverage(stream_vs_imp):
    name, stream, imp = stream_vs_imp
    assert imp.stats.coverage > stream.stats.coverage + 0.2, (
        f"IMP coverage must clearly exceed stream coverage on {name}: "
        f"imp={imp.stats.coverage:.2f} stream={stream.stats.coverage:.2f}")
    assert imp.stats.coverage > 0.5


def test_imp_reduces_l1_misses(stream_vs_imp):
    name, stream, imp = stream_vs_imp
    assert imp.stats.total_l1_misses < stream.stats.total_l1_misses, (
        f"IMP must cover misses the stream prefetcher cannot on {name}")
