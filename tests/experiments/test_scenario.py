"""Tests for declarative scenarios (repro.experiments.scenario)."""

import json
from pathlib import Path

import pytest

from repro.experiments.scenario import ScenarioError, ScenarioSpec, load_scenario
from repro.experiments.sweep import ResultCache

REPO_ROOT = Path(__file__).resolve().parents[2]
SCENARIO_DIR = REPO_ROOT / "examples" / "scenarios"


def three_level_doc(**overrides):
    doc = {
        "workload": "indirect_stream",
        "workload_params": {"n_indices": 512, "n_data": 2048, "seed": 3},
        "mode": "imp",
        "n_cores": 4,
        "system": {
            "hierarchy": {
                "prefetch_level": "l2",
                "levels": [
                    {"name": "l1", "size_bytes": 4096, "associativity": 4},
                    {"name": "l2", "size_bytes": 16384, "associativity": 8,
                     "hit_latency": 4},
                    {"name": "l3", "size_bytes": 32768, "associativity": 8,
                     "scope": "shared", "hit_latency": 8},
                ],
            },
        },
    }
    doc.update(overrides)
    return doc


class TestValidation:
    def test_unknown_top_level_key(self):
        with pytest.raises(ScenarioError, match="unknown scenario key"):
            ScenarioSpec.from_dict({"workload": "spmv", "coresx": 4})

    def test_missing_workload(self):
        with pytest.raises(ScenarioError, match="must name a 'workload'"):
            ScenarioSpec.from_dict({"mode": "base"})

    def test_unknown_workload_lists_choices(self):
        with pytest.raises(ValueError, match="indirect_stream"):
            ScenarioSpec.from_dict({"workload": "minesweeper"})

    def test_unknown_mode_lists_choices(self):
        with pytest.raises(ValueError, match="imp_partial_noc_dram"):
            ScenarioSpec.from_dict({"workload": "spmv", "mode": "turbo"})

    def test_unknown_system_key_lists_fields(self):
        with pytest.raises(ScenarioError, match="valid keys"):
            ScenarioSpec.from_dict({"workload": "spmv",
                                    "system": {"l5_size": 1}})

    def test_n_cores_must_be_top_level(self):
        with pytest.raises(ScenarioError, match="top-level 'n_cores'"):
            ScenarioSpec.from_dict({"workload": "spmv",
                                    "system": {"n_cores": 16}})

    def test_bad_dram_model_fails_at_validation(self):
        with pytest.raises(ValueError, match="simple, banked"):
            ScenarioSpec.from_dict({"workload": "spmv",
                                    "system": {"dram": {"model": "quantum"}}})

    def test_bad_hierarchy_prefetch_level(self):
        doc = three_level_doc()
        doc["system"]["hierarchy"]["prefetch_level"] = "l9"
        with pytest.raises(ScenarioError, match="prefetch_level"):
            ScenarioSpec.from_dict(doc)

    def test_shared_level_must_be_last(self):
        doc = three_level_doc()
        doc["system"]["hierarchy"]["levels"][0]["scope"] = "shared"
        with pytest.raises(ScenarioError):
            ScenarioSpec.from_dict(doc)

    def test_bad_workload_params(self):
        with pytest.raises(ScenarioError, match="workload_params"):
            ScenarioSpec.from_dict({"workload": "spmv",
                                    "workload_params": {"bogus_arg": 1}})

    def test_invalid_json_text(self):
        with pytest.raises(ScenarioError, match="not valid JSON"):
            ScenarioSpec.from_json("{nope")

    def test_missing_file(self, tmp_path):
        with pytest.raises(ScenarioError, match="cannot read"):
            load_scenario(tmp_path / "absent.json")


class TestCanonicalisationAndDigest:
    def test_key_order_does_not_change_digest(self):
        doc = three_level_doc()
        # Same document, keys spelled in reversed order at every level.
        def reorder(value):
            if isinstance(value, dict):
                return {k: reorder(value[k]) for k in reversed(list(value))}
            if isinstance(value, list):
                return [reorder(item) for item in value]
            return value

        spec_a = ScenarioSpec.from_dict(doc)
        spec_b = ScenarioSpec.from_dict(reorder(doc))
        assert spec_a.digest() == spec_b.digest()
        assert spec_a.canonical_dict() == spec_b.canonical_dict()
        assert spec_a.to_runspec() == spec_b.to_runspec()

    def test_hierarchy_field_changes_digest(self):
        base = ScenarioSpec.from_dict(three_level_doc())
        changed_doc = three_level_doc()
        changed_doc["system"]["hierarchy"]["levels"][1]["size_bytes"] = 8192
        changed = ScenarioSpec.from_dict(changed_doc)
        assert base.digest() != changed.digest()

    def test_prefetch_level_changes_digest(self):
        base = ScenarioSpec.from_dict(three_level_doc())
        moved_doc = three_level_doc()
        moved_doc["system"]["hierarchy"]["prefetch_level"] = "l1"
        moved = ScenarioSpec.from_dict(moved_doc)
        assert base.digest() != moved.digest()

    def test_defaults_do_not_change_digest(self):
        explicit = ScenarioSpec.from_dict({
            "workload": "indirect_stream",
            "workload_params": {"n_indices": 512, "n_data": 2048, "seed": 3},
            "mode": "imp", "n_cores": 4, "sw_prefetch_distance": 8,
        })
        implicit = ScenarioSpec.from_dict({
            "workload": "indirect_stream",
            "workload_params": {"n_indices": 512, "n_data": 2048, "seed": 3},
            "mode": "imp", "n_cores": 4,
        })
        assert explicit.digest() == implicit.digest()

    def test_name_and_description_do_not_affect_digest(self):
        plain = ScenarioSpec.from_dict(three_level_doc())
        labelled = ScenarioSpec.from_dict(
            three_level_doc(name="labelled", description="with prose"))
        assert plain.digest() == labelled.digest()

    def test_noc_kernel_backend_does_not_change_digest(self):
        # Every NOC_KERNELS backend is contractually bit-identical, so the
        # backend choice is execution detail, not experiment identity:
        # one digest per experiment whichever backend computes it (and
        # digests from before the field existed stay valid — persisted
        # caches and sweep journals survive the kernel boundary landing).
        docs = []
        for kernel in (None, "fused", "reference"):
            doc = three_level_doc()
            if kernel is not None:
                doc.setdefault("system", {})["noc"] = {"kernel": kernel}
            docs.append(ScenarioSpec.from_dict(doc))
        default, fused, reference = docs
        assert default.digest() == fused.digest() == reference.digest()
        # ...but the resolved config still honours the selection.
        assert reference.resolve()[1].noc.kernel == "reference"
        assert "kernel" not in default.canonical_dict()["base_config"]["noc"]


class TestExecution:
    def test_three_level_scenario_runs_end_to_end(self):
        spec = ScenarioSpec.from_dict(three_level_doc())
        result = spec.run()
        stats = result.stats
        assert result.runtime_cycles > 0
        # The shared level is an L3 here: its counters must be populated
        # and the private-L2 counters must be too.
        assert sum(core.l3_misses for core in stats.cores) > 0
        assert sum(core.l2_misses for core in stats.cores) > 0
        # IMP attached at L2 issues prefetches from the L1 miss stream.
        assert stats.prefetches_issued > 0

    def test_scenario_results_are_deterministic(self):
        spec = ScenarioSpec.from_dict(three_level_doc())
        first = spec.run().stats.fingerprint()
        second = ScenarioSpec.from_dict(three_level_doc()).run().stats.fingerprint()
        assert first == second

    def test_scenario_flows_through_disk_cache(self, tmp_path):
        spec = ScenarioSpec.from_dict(three_level_doc())
        cache_dir = tmp_path / "cache"
        first = spec.run(cache_dir=cache_dir)
        # The record lands under the scenario's digest...
        assert (cache_dir / f"{spec.digest()}.json").exists()
        # ...and a fresh run is served from it, bit-identically.
        cache = ResultCache(cache_dir)
        cached = cache.get(spec.to_runspec())
        assert cached is not None
        assert cached.stats.fingerprint() == first.stats.fingerprint()
        assert cache.hits == 1

    def test_checked_in_example_scenarios_validate(self):
        for path in sorted(SCENARIO_DIR.glob("*.json")):
            if path.name.endswith(".fingerprint.json"):
                continue
            spec = load_scenario(path)
            assert spec.workload
            assert spec.digest()

    @pytest.mark.parametrize("name", sorted(
        path.name[:-len(".fingerprint.json")]
        for path in SCENARIO_DIR.glob("*.fingerprint.json")))
    def test_scenario_corpus_matches_checked_in_fingerprints(self, name):
        """Every checked-in scenario with a pinned ``.fingerprint.json``
        must reproduce it bit-for-bit — the same golden corpus CI batches
        through ``repro sweep --scenario-dir``, kept in tier-1 so it
        cannot rot.  New scenarios join the corpus by committing a sibling
        fingerprint (``repro run --scenario f.json --write-fingerprint
        f.fingerprint.json``) — no test change needed."""
        spec = load_scenario(SCENARIO_DIR / f"{name}.json")
        expected = json.loads(
            (SCENARIO_DIR / f"{name}.fingerprint.json").read_text())
        assert spec.run().stats.fingerprint() == expected["fingerprint"], \
            f"fingerprint drift in scenario {name}"

    def test_corpus_covers_the_new_attachment_space(self):
        """The corpus must keep exercising each attachment feature: hybrid
        multi-attach, shared-level attach, a >3-level chain, and the
        capacity-sweep pair."""
        specs = {path.name: load_scenario(path)
                 for path in SCENARIO_DIR.glob("*.json")
                 if not path.name.endswith(".fingerprint.json")}
        hierarchies = {
            name: spec.resolve()[1].resolved_hierarchy()
            for name, spec in specs.items()}
        assert any(len(h.attach) > 1 for h in hierarchies.values())
        assert any(h.shared_attaches for h in hierarchies.values())
        assert any(len(h.levels) > 3 for h in hierarchies.values())
        capacity = [h.levels[1].size_bytes for name, h in hierarchies.items()
                    if name.startswith("l2_capacity")]
        assert len(capacity) >= 2 and len(set(capacity)) >= 2
