"""Durability of the sweep journal and the structured failure report."""

import json

import pytest

from repro.experiments.sweep import (
    FAILURE_REPORT_SCHEMA,
    JOURNAL_SCHEMA,
    FailureRecord,
    RunPolicy,
    RunSpec,
    SweepJournal,
    sweep_id,
    write_failure_report,
)
from repro.workloads.synthetic import IndirectStreamWorkload


def specs(modes=("base", "imp", "swpref")):
    workload = IndirectStreamWorkload(n_indices=256, n_data=1024, seed=3)
    return [RunSpec.for_run(workload, mode, 4) for mode in modes]


def journal_lines(path):
    return [json.loads(line) for line in
            path.read_text().splitlines() if line.strip()]


class TestSweepJournal:
    def test_header_and_entries_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        spec_a, spec_b, _ = specs()
        journal = SweepJournal(path, label="figure-2")
        journal.record_ok(spec_a, attempts=2)
        journal.record_ok(spec_b, attempts=1, cached=True)
        journal.close()

        lines = journal_lines(path)
        assert lines[0] == {"journal": JOURNAL_SCHEMA, "sweep": "figure-2"}
        assert [line["digest"] for line in lines[1:]] == \
            [spec_a.digest(), spec_b.digest()]
        assert lines[1]["attempts"] == 2 and lines[1]["cached"] is False
        assert lines[2]["cached"] is True

        reloaded = SweepJournal(path, resume=True)
        assert reloaded.resumed == 2
        assert reloaded.label == "figure-2"
        assert set(reloaded.completed) == {spec_a.digest(), spec_b.digest()}
        assert reloaded.torn_lines == 0

    def test_record_ok_dedupes_by_digest(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        spec = specs()[0]
        journal = SweepJournal(path)
        journal.record_ok(spec)
        journal.record_ok(spec)  # second sweep pass, cache hit — no-op
        journal.close()
        assert len(journal_lines(path)) == 2  # header + one entry

    def test_failed_then_ok_transition(self, tmp_path):
        # A spec that permanently failed in one invocation and succeeded
        # on a resumed one must read back as completed, not failed.
        path = tmp_path / "journal.jsonl"
        spec = specs()[0]
        journal = SweepJournal(path)
        journal.record_failed(
            FailureRecord.for_spec(spec, "timeout", 3, "too slow"))
        journal.close()

        resumed = SweepJournal(path, resume=True)
        assert spec.digest() in resumed.failed
        assert resumed.resumed == 0
        resumed.record_ok(spec)
        resumed.close()

        final = SweepJournal(path, resume=True)
        assert spec.digest() in final.completed
        assert spec.digest() not in final.failed

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        spec_a, spec_b, _ = specs()
        journal = SweepJournal(path)
        journal.record_ok(spec_a)
        journal.record_ok(spec_b)
        journal.close()
        # Tear the last line mid-record, the way a kill -9 would.
        text = path.read_text()
        path.write_text(text[:len(text) - len(text.splitlines()[-1]) // 2 - 1])

        resumed = SweepJournal(path, resume=True)
        assert resumed.torn_lines == 1
        assert resumed.resumed == 1
        assert spec_a.digest() in resumed.completed
        assert spec_b.digest() not in resumed.completed

    def test_without_resume_the_journal_restarts(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = SweepJournal(path)
        journal.record_ok(specs()[0])
        journal.close()
        fresh = SweepJournal(path, resume=False, label="again")
        fresh.close()
        assert fresh.resumed == 0
        assert journal_lines(path) == [{"journal": JOURNAL_SCHEMA,
                                        "sweep": "again"}]

    def test_entries_survive_without_close(self, tmp_path):
        # Every append is flushed + fsynced; losing the handle (crash)
        # must not lose acknowledged entries.
        path = tmp_path / "journal.jsonl"
        journal = SweepJournal(path)
        journal.record_ok(specs()[0])
        del journal
        assert len(journal_lines(path)) == 2


class TestSweepId:
    def test_order_independent_and_content_sensitive(self):
        all_specs = specs()
        assert sweep_id(all_specs) == sweep_id(list(reversed(all_specs)))
        assert sweep_id(all_specs) != sweep_id(all_specs[:2])

    def test_header_records_sweep_id_and_resume_honours_it(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        all_specs = specs()
        identity = sweep_id(all_specs)
        journal = SweepJournal(path, label="corpus", sweep_id=identity)
        journal.record_ok(all_specs[0])
        journal.close()
        assert journal_lines(path)[0]["sweep_id"] == identity

        resumed = SweepJournal(path, resume=True, sweep_id=identity)
        assert resumed.mismatched is False
        assert resumed.resumed == 1
        resumed.close()

    def test_mismatched_sweep_id_discards_stale_progress(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        all_specs = specs()
        stale = SweepJournal(path, label="old",
                             sweep_id=sweep_id(all_specs))
        stale.record_ok(all_specs[0])
        stale.close()

        current = sweep_id(all_specs[:2])
        fresh = SweepJournal(path, resume=True, label="new",
                             sweep_id=current)
        assert fresh.mismatched is True
        assert fresh.resumed == 0
        assert fresh.completed == {}
        fresh.close()
        # The file restarted with the new identity's header.
        lines = journal_lines(path)
        assert lines[0]["sweep_id"] == current
        assert lines[0]["sweep"] == "new"
        assert len(lines) == 1

    def test_legacy_headers_without_sweep_id_still_resume(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        all_specs = specs()
        legacy = SweepJournal(path, label="old")     # no sweep_id recorded
        legacy.record_ok(all_specs[0])
        legacy.close()

        resumed = SweepJournal(path, resume=True,
                               sweep_id=sweep_id(all_specs))
        assert resumed.mismatched is False
        assert resumed.resumed == 1
        resumed.close()


class TestFailureReport:
    def test_schema_and_round_trip(self, tmp_path):
        spec = specs()[0]
        failures = [FailureRecord.for_spec(spec, "worker_death", 3,
                                           "worker process died")]
        target = tmp_path / "results" / "failures.json"
        document = write_failure_report(
            target, failures, total=3, completed=2,
            policy=RunPolicy(timeout=60.0, retries=1),
            sweep_label="scenario corpus")
        on_disk = json.loads(target.read_text())
        assert on_disk == document
        assert on_disk["schema"] == FAILURE_REPORT_SCHEMA
        assert on_disk["sweep"] == "scenario corpus"
        assert on_disk["total_runs"] == 3
        assert on_disk["completed_runs"] == 2
        assert on_disk["failed_runs"] == 1
        assert on_disk["policy"]["timeout"] == 60.0
        failure = on_disk["failures"][0]
        assert failure["digest"] == spec.digest()
        assert failure["kind"] == "worker_death"
        assert failure["attempts"] == 3

    def test_empty_report_is_valid(self, tmp_path):
        document = write_failure_report(tmp_path / "failures.json", [],
                                        total=5, completed=5)
        assert document["failed_runs"] == 0
        assert document["failures"] == []
