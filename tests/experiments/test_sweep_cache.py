"""Tests for the parallel sweep engine's persistent on-disk result cache.

Covers the satellite checklist of the sweep-engine PR: hit/miss behaviour,
invalidation when any config field or the cache schema version changes,
corrupted-entry recovery, and the ``--no-cache`` bypass — plus the
robustness PR's guarantees: every class of corrupt record is quarantined
(not deleted) and recomputed without aborting, and concurrent sweeps
publishing into one cache directory never tear a record.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.config import IMPConfig
from repro.experiments import figures
from repro.experiments.configs import scaled_config
from repro.experiments.runner import ExperimentRunner, RunRequest
from repro.experiments.sweep import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    RunSpec,
    SweepEngine,
    execute_spec,
    list_quarantined,
    make_record,
    purge_quarantined,
    quarantine_dir,
)
from repro.workloads import PagerankWorkload, WORKLOAD_REGISTRY
from repro.workloads.base import WorkloadSpecError
from repro.workloads.synthetic import IndirectStreamWorkload

N_CORES = 4


def tiny_workload(seed: int = 3) -> IndirectStreamWorkload:
    return IndirectStreamWorkload(n_indices=512, n_data=2048, seed=seed)


def tiny_spec(mode: str = "base", **kwargs) -> RunSpec:
    return RunSpec.for_run(tiny_workload(), mode, N_CORES, **kwargs)


@pytest.fixture()
def cache(tmp_path) -> ResultCache:
    return ResultCache(tmp_path / "cache")


def cache_records(cache: ResultCache):
    """The live (non-quarantined) record files of a cache directory."""
    return sorted(path for path in cache.directory.iterdir()
                  if path.is_file() and path.suffix == ".json")


def quarantine_reasons(cache: ResultCache):
    return [entry.reason for entry in list_quarantined(cache.directory)]


class TestRunSpec:
    def test_round_trips_through_json(self):
        spec = tiny_spec("imp", imp_config=IMPConfig().with_pt_size(8))
        clone = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.digest() == spec.digest()

    def test_every_registered_workload_is_reconstructible(self):
        for name, cls in WORKLOAD_REGISTRY.items():
            workload = cls(seed=7)
            rebuilt = RunSpec.for_run(workload, "base", N_CORES) \
                .make_workload()
            assert type(rebuilt) is cls
            assert rebuilt.spec_params() == workload.spec_params()

    def test_equivalent_default_configs_share_a_digest(self):
        explicit = tiny_spec(imp_config=IMPConfig(),
                             base_config=scaled_config(N_CORES))
        assert tiny_spec().digest() == explicit.digest()

    def test_any_config_field_change_changes_the_digest(self):
        base = tiny_spec()
        assert tiny_spec(
            imp_config=IMPConfig().with_ipd_size(8)).digest() != base.digest()
        assert tiny_spec(
            base_config=scaled_config(N_CORES).with_ooo()
        ).digest() != base.digest()
        assert tiny_spec(sw_prefetch_distance=4).digest() != base.digest()
        assert RunSpec.for_run(tiny_workload(seed=9), "base",
                               N_CORES).digest() != base.digest()

    def test_unserialisable_workload_is_rejected(self):
        class CustomWorkload(IndirectStreamWorkload):
            pass

        with pytest.raises(WorkloadSpecError):
            RunSpec.for_run(CustomWorkload(), "base", N_CORES)

    def test_lazy_matrix_build_does_not_poison_spec(self, tmp_path):
        """Running SpMV once must not disable caching for later runs: the
        lazily derived matrix is not a constructor parameter."""
        from repro.workloads import SpMVWorkload

        workload = SpMVWorkload(nx=4, ny=4, nz=4, seed=3)
        before = RunSpec.for_run(workload, "base", N_CORES)
        workload.matrix()  # triggers the lazy build
        assert RunSpec.for_run(workload, "base", N_CORES) == before
        # End to end: both runs of a two-mode sweep reach the disk cache.
        runner = ExperimentRunner(workloads=[SpMVWorkload(nx=4, ny=4, nz=4,
                                                          seed=3)],
                                  base_config=scaled_config(N_CORES),
                                  cache_dir=tmp_path / "cache")
        runner.run("spmv", "base", N_CORES)
        runner.run("spmv", "imp", N_CORES)
        assert runner.engine.cache.stores == 2
        # A user-supplied matrix is still (correctly) unserialisable.
        with pytest.raises(WorkloadSpecError):
            SpMVWorkload(matrix=workload.matrix(), seed=3).spec_params()


class TestResultCache:
    def test_miss_then_hit(self, cache):
        spec = tiny_spec()
        assert cache.get(spec) is None
        result = execute_spec(spec)
        cache.put(spec, make_record(spec, result))
        restored = cache.get(spec)
        assert restored is not None
        assert restored.stats.fingerprint() == result.stats.fingerprint()
        assert restored.config == result.config
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_config_change_misses(self, cache):
        spec = tiny_spec()
        cache.put(spec, make_record(spec, execute_spec(spec)))
        assert cache.get(tiny_spec(sw_prefetch_distance=4)) is None

    def test_schema_version_change_invalidates(self, cache, monkeypatch):
        spec = tiny_spec()
        cache.put(spec, make_record(spec, execute_spec(spec)))
        monkeypatch.setattr("repro.experiments.sweep.CACHE_SCHEMA_VERSION",
                            CACHE_SCHEMA_VERSION + 1)
        assert cache.get(spec) is None
        assert cache.corrupt == 1
        # The stale entry was quarantined so the next sweep rewrites it.
        assert not cache_records(cache)
        assert quarantine_reasons(cache) == ["schema"]

    def test_v2_record_self_heals(self, cache):
        """The v2->v3 migration path: a record written under the previous
        schema (pre-attach-list hierarchies, ``prefetch_level`` in the
        spec) is treated as a miss, quarantined on first lookup, and the
        slot is repopulated with a v3 record by the next engine run."""
        spec = tiny_spec()
        result = execute_spec(spec)
        record = make_record(spec, result)
        assert record["schema"] == 3
        # Forge the on-disk shape a v2 sweep would have left behind.
        stale = json.loads(json.dumps(record))
        stale["schema"] = 2
        hierarchy = {
            "levels": [{"name": "l1", "size_bytes": 16384,
                        "associativity": 4, "scope": "private",
                        "line_size": 64, "hit_latency": 1,
                        "sector_size": 0}],
            "prefetch_level": "l1",           # the retired v2 spelling
        }
        stale["spec"]["base_config"] = dict(stale["spec"]["base_config"],
                                            hierarchy=hierarchy)
        cache.directory.mkdir(parents=True, exist_ok=True)
        (cache.directory / f"{spec.digest()}.json").write_text(
            json.dumps(stale))
        assert cache.get(spec) is None
        assert cache.corrupt == 1
        assert not cache_records(cache)
        assert quarantine_reasons(cache) == ["schema"]
        # A fresh engine run repopulates the digest with a v3 record.
        engine = SweepEngine(jobs=1, cache=cache)
        engine.run([spec])
        healed = json.loads(
            (cache.directory / f"{spec.digest()}.json").read_text())
        assert healed["schema"] == CACHE_SCHEMA_VERSION == 3
        assert cache.get(spec).stats.fingerprint() \
            == result.stats.fingerprint()

    @pytest.mark.parametrize("garbage, reason", [
        ("{ not json", "truncated"),
        ("[]", "malformed"),
        ("null", "malformed"),
        ('"x"', "malformed"),
    ])
    def test_corrupted_entry_is_quarantined_and_rerun(self, cache, garbage,
                                                      reason):
        spec = tiny_spec()
        cache.put(spec, make_record(spec, execute_spec(spec)))
        [entry] = cache_records(cache)
        entry.write_text(garbage)
        assert cache.get(spec) is None
        assert cache.corrupt == 1
        assert quarantine_reasons(cache) == [reason]
        # A fresh store recovers the entry.
        cache.put(spec, make_record(spec, execute_spec(spec)))
        assert cache.get(spec) is not None

    def test_fingerprint_tampering_is_detected(self, cache):
        spec = tiny_spec()
        cache.put(spec, make_record(spec, execute_spec(spec)))
        [entry] = cache_records(cache)
        record = json.loads(entry.read_text())
        record["fingerprint"]["runtime_cycles"] += 1
        entry.write_text(json.dumps(record))
        assert cache.get(spec) is None
        assert cache.corrupt == 1
        assert quarantine_reasons(cache) == ["fingerprint"]

    def test_pre_kernel_field_record_still_hits(self, cache):
        """Records written before ``NoCConfig.kernel`` existed (their spec
        has no ``noc.kernel`` key) stay valid: the kernel backend is
        result-neutral by contract, so it is excluded from the digest and
        from the stored-spec comparison — persisted caches and journals
        survived the kernel boundary landing."""
        spec = tiny_spec()
        result = execute_spec(spec)
        record = make_record(spec, result)
        vintage = json.loads(json.dumps(record))
        removed = vintage["spec"]["base_config"]["noc"].pop("kernel")
        assert removed                      # the field was actually there
        cache.directory.mkdir(parents=True, exist_ok=True)
        (cache.directory / f"{spec.digest()}.json").write_text(
            json.dumps(vintage))
        restored = cache.get(spec)
        assert restored is not None
        assert restored.stats.fingerprint() == result.stats.fingerprint()
        assert cache.corrupt == 0

    def test_kernel_backend_choice_shares_one_cache_entry(self, cache):
        """Specs differing only in the reservation-kernel backend are one
        experiment: same digest, and a record produced under either
        backend satisfies both — including ``compiled``, whose host
        availability must never split a cache."""
        from dataclasses import replace
        base_config = scaled_config(N_CORES)
        specs = {
            name: tiny_spec(base_config=replace(
                base_config, noc=replace(base_config.noc, kernel=name)))
            for name in ("fused", "reference", "compiled")}
        digests = {spec.digest() for spec in specs.values()}
        assert len(digests) == 1            # one identity for all backends
        assert specs["fused"] != specs["reference"]   # configs do differ
        cache.put(specs["fused"],
                  make_record(specs["fused"], execute_spec(specs["fused"])))
        for spec in specs.values():
            assert cache.get(spec) is not None
        assert cache.corrupt == 0

    def test_kernel_availability_never_changes_digest(self, monkeypatch):
        """A host that loses (or gains) the compiled extension computes
        the same digest for the same spec: pre-existing cache records keep
        hitting after an extension build appears or $REPRO_NO_CEXT is set."""
        spec = tiny_spec()
        with_ext = spec.digest()
        monkeypatch.setenv("REPRO_NO_CEXT", "1")
        assert tiny_spec().digest() == with_ext

    def test_disabled_cache_bypasses_disk(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", enabled=False)
        spec = tiny_spec()
        cache.put(spec, make_record(spec, execute_spec(spec)))
        assert not (tmp_path / "cache").exists()
        assert cache.get(spec) is None


class TestEngineAndRunnerIntegration:
    def test_engine_reuses_cache_across_instances(self, cache):
        specs = [tiny_spec("base"), tiny_spec("imp")]
        first = SweepEngine(jobs=1, cache=cache)
        results = first.run(specs)
        assert first.simulations_run == 2
        second = SweepEngine(jobs=1, cache=cache)
        warm = second.run(specs)
        assert second.simulations_run == 0
        for spec in specs:
            assert (warm[spec].stats.fingerprint()
                    == results[spec].stats.fingerprint())

    def test_warm_figure_rebuild_performs_zero_simulations(self, tmp_path):
        def make_runner():
            return ExperimentRunner(workloads=[tiny_workload()],
                                    base_config=scaled_config(N_CORES),
                                    cache_dir=tmp_path / "cache")

        cold = make_runner()
        rows = figures.fig02_motivation(cold, N_CORES)
        assert cold.engine.simulations_run > 0
        warm = make_runner()
        assert figures.fig02_motivation(warm, N_CORES) == rows
        assert warm.engine.simulations_run == 0
        assert warm.engine.cache.hits == cold.engine.simulations_run

    def test_use_cache_false_bypasses_disk(self, tmp_path):
        runner = ExperimentRunner(workloads=[tiny_workload()],
                                  base_config=scaled_config(N_CORES),
                                  cache_dir=tmp_path / "cache",
                                  use_cache=False)
        runner.run("indirect_stream", "base", N_CORES)
        assert runner.engine.cache is None
        assert not (tmp_path / "cache").exists()

    def test_shared_runs_are_simulated_once_across_figures(self, tmp_path):
        """Fig 1/2/10 all need the Base run; the batched prefetch path must
        request it exactly once (the PR's figure-dedup satellite)."""
        runner = ExperimentRunner(
            workloads=[tiny_workload(), PagerankWorkload(n_vertices=256,
                                                         seed=3)],
            base_config=scaled_config(N_CORES))
        figures.fig01_miss_breakdown(runner, N_CORES)   # base
        base_only = runner.engine.simulations_run
        assert base_only == 2                            # one per workload
        figures.fig02_motivation(runner, N_CORES)       # ideal/base/perfpref
        assert runner.engine.simulations_run == base_only + 4
        figures.fig10_sw_overhead(runner, N_CORES)      # base/imp/swpref
        assert runner.engine.simulations_run == base_only + 8

    def test_prefetch_deduplicates_requests(self):
        runner = ExperimentRunner(workloads=[tiny_workload()],
                                  base_config=scaled_config(N_CORES))
        runner.prefetch([RunRequest("indirect_stream", "base", N_CORES)] * 5)
        assert runner.engine.simulations_run == 1


class TestCacheSelfHealing:
    """Every corruption class quarantines the record (keeping the evidence
    inspectable) and the next sweep recomputes it without aborting."""

    def heal(self, cache, spec, reason):
        engine = SweepEngine(jobs=1, cache=cache)
        result = engine.run([spec])[spec]
        assert engine.simulations_run == 1
        assert cache.quarantined == 1
        assert quarantine_reasons(cache) == [reason]
        # The slot was rewritten and reads clean again.
        fresh = ResultCache(cache.directory)
        assert fresh.get(spec).stats.fingerprint() \
            == result.stats.fingerprint()
        assert fresh.quarantined == 0
        return result

    def seeded(self, cache, spec):
        record = make_record(spec, execute_spec(spec))
        cache.put(spec, record)
        return cache._path(spec), record

    def test_truncated_record(self, cache):
        from repro.experiments.faults import corrupt_record

        spec = tiny_spec()
        path, _ = self.seeded(cache, spec)
        corrupt_record(path)
        self.heal(cache, spec, "truncated")

    def test_digest_collision_record(self, cache):
        # Another spec's (valid!) record sitting at this spec's path —
        # the shape a digest collision or a botched copy would produce.
        spec = tiny_spec("base")
        other = tiny_spec("imp")
        _, other_record = self.seeded(ResultCache(cache.directory), other)
        cache._path(spec).parent.mkdir(parents=True, exist_ok=True)
        cache._path(spec).write_text(json.dumps(other_record))
        self.heal(cache, spec, "spec-mismatch")

    def test_wrong_schema_version_record(self, cache):
        spec = tiny_spec()
        path, record = self.seeded(cache, spec)
        path.write_text(json.dumps(dict(record, schema=2)))
        self.heal(cache, spec, "schema")

    def test_unreadable_record(self, cache):
        # The record path exists but cannot be opened as a file.
        spec = tiny_spec()
        path, _ = self.seeded(cache, spec)
        path.unlink()
        path.mkdir()
        self.heal(cache, spec, "unreadable")

    def test_quarantine_inspection_and_purge(self, cache):
        from repro.experiments.faults import corrupt_record

        spec = tiny_spec()
        path, _ = self.seeded(cache, spec)
        corrupt_record(path)
        assert cache.get(spec) is None
        [entry] = list_quarantined(cache.directory)
        assert entry.digest == spec.digest()
        assert entry.reason == "truncated"
        assert entry.path.is_file()
        assert purge_quarantined(cache.directory) == 1
        assert list_quarantined(cache.directory) == []
        assert not quarantine_dir(cache.directory).exists()

    def test_repeat_quarantine_keeps_both_evidence_files(self, cache):
        # Satellite: a digest quarantined twice for the same reason must
        # keep BOTH evidence files — the second quarantine uniquifies its
        # filename instead of silently clobbering the first.
        from repro.experiments.faults import corrupt_record

        spec = tiny_spec()
        path, _ = self.seeded(cache, spec)
        corrupt_record(path)
        assert cache.get(spec) is None          # first quarantine
        self.seeded(cache, spec)                # reseed the same slot...
        corrupt_record(path)                    # ...and tear it again
        assert ResultCache(cache.directory).get(spec) is None
        entries = list_quarantined(cache.directory)
        assert len(entries) == 2
        assert {entry.digest for entry in entries} == {spec.digest()}
        assert {entry.reason for entry in entries} == {"truncated"}
        assert len({entry.path.name for entry in entries}) == 2
        assert purge_quarantined(cache.directory) == 2
        assert list_quarantined(cache.directory) == []

    def test_purge_handles_directory_entries(self, cache):
        # An "unreadable" quarantine entry can itself be a directory.
        spec = tiny_spec()
        path, _ = self.seeded(cache, spec)
        path.unlink()
        path.mkdir()
        (path / "junk").write_text("x")
        assert cache.get(spec) is None
        assert quarantine_reasons(cache) == ["unreadable"]
        assert purge_quarantined(cache.directory) == 1
        assert list_quarantined(cache.directory) == []


class TestConcurrentWriters:
    def test_cross_process_sweeps_share_one_cache_cleanly(self, tmp_path):
        """Two sweeps in separate processes race on the same cache
        directory; atomic publishes mean every record ends up valid —
        no torn files, no quarantines (the concurrent-writer satellite)."""
        cache_dir = tmp_path / "cache"
        script = (
            "import sys\n"
            "from repro.experiments.sweep import ResultCache, RunSpec, "
            "SweepEngine\n"
            "from repro.workloads.synthetic import IndirectStreamWorkload\n"
            "w = IndirectStreamWorkload(n_indices=512, n_data=2048, seed=3)\n"
            "specs = [RunSpec.for_run(w, m, 4)\n"
            "         for m in ('base', 'imp', 'swpref')]\n"
            "SweepEngine(jobs=1, cache=ResultCache(sys.argv[1]))"
            ".run(specs)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[2] / "src")
        env.pop("REPRO_FAULTS", None)
        procs = [subprocess.Popen([sys.executable, "-c", script,
                                   str(cache_dir)], env=env)
                 for _ in range(2)]
        for proc in procs:
            assert proc.wait(timeout=300) == 0

        cache = ResultCache(cache_dir)
        specs = [tiny_spec(mode) for mode in ("base", "imp", "swpref")]
        fingerprints = {}
        for spec in specs:
            restored = cache.get(spec)
            assert restored is not None
            fingerprints[spec] = restored.stats.fingerprint()
        assert cache.hits == 3
        assert cache.quarantined == 0
        assert not quarantine_dir(cache_dir).exists()
        # Both writers produced the same deterministic bytes.
        serial = SweepEngine(jobs=1).run(specs)
        for spec in specs:
            assert fingerprints[spec] == serial[spec].stats.fingerprint()
