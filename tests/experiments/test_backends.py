"""The sweep backend boundary (repro.experiments.backends).

Covers the registry/resolution contract, the one-rule jobs resolution,
digest neutrality (``--backend`` is an execution knob, never an
experiment parameter), and the equivalence suite: every backend —
serial, process with a real pool, and service over two live in-process
shards — must produce bit-identical fingerprints for the same specs.
"""

import pytest

from repro.experiments.backends import (
    DEFAULT_BACKEND,
    ProcessBackend,
    SerialBackend,
    ServiceBackend,
    resolve_backend,
)
from repro.experiments.sweep import (
    ResultCache,
    RunSpec,
    SweepEngine,
    resolve_jobs,
)
from repro.registry import SWEEP_BACKENDS, RegistryError
from repro.workloads.synthetic import IndirectStreamWorkload


def make_specs(n=4, n_cores=1):
    """``n`` small specs over distinct seeds, plus their workload map."""
    specs, lookup = [], {}
    for seed in range(1, n + 1):
        workload = IndirectStreamWorkload(n_indices=256, n_data=1024,
                                          seed=seed)
        spec = RunSpec.for_run(workload, "imp", n_cores)
        specs.append(spec)
        lookup[spec] = workload
    return specs, lookup


def fingerprints(results):
    return {spec.digest(): result.stats.fingerprint()
            for spec, result in results.items()}


# ----------------------------------------------------------------------
# Registry + resolution contract
# ----------------------------------------------------------------------
class TestResolution:
    def test_registry_lists_all_backends(self):
        assert SWEEP_BACKENDS.names() == ["serial", "process", "service"]

    def test_default_is_process(self):
        assert DEFAULT_BACKEND == "process"
        assert isinstance(resolve_backend(None), ProcessBackend)
        assert isinstance(SweepEngine(jobs=1).backend, ProcessBackend)

    def test_names_resolve(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("process"), ProcessBackend)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(RegistryError, match="serial, process, service"):
            resolve_backend("cloud")

    def test_local_backends_reject_shards(self):
        for name in ("serial", "process"):
            with pytest.raises(ValueError, match="no --shard"):
                resolve_backend(name, ["http://localhost:1"])

    def test_service_requires_a_shard(self):
        with pytest.raises(ValueError, match="at least one shard"):
            resolve_backend("service")

    def test_service_normalises_shard_urls(self):
        backend = resolve_backend("service", ["http://h:80/",
                                              "http://g:81"])
        assert backend.shard_urls == ["http://h:80", "http://g:81"]

    def test_engine_threads_backend_through(self):
        engine = SweepEngine(jobs=1, backend="serial")
        assert isinstance(engine.backend, SerialBackend)
        with pytest.raises(ValueError, match="at least one shard"):
            SweepEngine(jobs=1, backend="service")


# ----------------------------------------------------------------------
# Satellite: the one jobs rule (explicit > $REPRO_JOBS > default; 0=auto)
# ----------------------------------------------------------------------
class TestResolveJobs:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_wins_over_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None, default=2) == 5

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(None, default=4) == 4

    def test_zero_means_auto(self, monkeypatch):
        import os
        auto = max(1, os.cpu_count() or 1)
        assert resolve_jobs(0) == auto
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert resolve_jobs(None) == auto

    def test_explicit_negative_raises(self):
        with pytest.raises(ValueError, match="0 = auto"):
            resolve_jobs(-1)

    def test_explicit_garbage_raises(self):
        with pytest.raises(ValueError, match="non-negative integer"):
            resolve_jobs("many")

    def test_env_garbage_warns_and_uses_default(self, monkeypatch,
                                                capsys):
        for junk in ("banana", "-2", "1.5"):
            monkeypatch.setenv("REPRO_JOBS", junk)
            assert resolve_jobs(None, default=3) == 3
            assert "ignoring invalid REPRO_JOBS" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Digest neutrality: the backend never enters the experiment identity
# ----------------------------------------------------------------------
class TestDigestNeutrality:
    def test_canonical_json_carries_no_backend(self):
        specs, _ = make_specs(1)
        canonical = specs[0].canonical_json()
        assert "backend" not in canonical
        assert "shard" not in canonical

    def test_digest_identical_across_engine_backends(self, tmp_path):
        specs, _ = make_specs(1)
        digest = specs[0].digest()
        for engine in (SweepEngine(jobs=1, backend="serial"),
                       SweepEngine(jobs=2, backend="process"),
                       SweepEngine(jobs=1, backend="service",
                                   shards=["http://localhost:1"])):
            # The digest is a pure function of the spec; engine/backend
            # configuration must not be able to influence it.
            assert specs[0].digest() == digest
            assert engine.backend.name in ("serial", "process", "service")


# ----------------------------------------------------------------------
# Equivalence: every backend matches the serial reference bit-for-bit
# ----------------------------------------------------------------------
class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def reference(self):
        specs, lookup = make_specs(4)
        results = SweepEngine(jobs=1, backend="serial").run(
            specs, workload_lookup=lookup.get)
        return fingerprints(results)

    def test_process_pool_matches_serial(self, reference):
        specs, lookup = make_specs(4)
        engine = SweepEngine(jobs=2, backend="process")
        results = engine.run(specs, workload_lookup=lookup.get)
        assert fingerprints(results) == reference
        assert engine.simulations_run == len(specs)

    def test_service_backend_matches_serial(self, reference, tmp_path):
        from repro.service import ServiceApp

        apps = [ServiceApp(tmp_path / f"shard{i}", port=0, queue_depth=8)
                for i in range(2)]
        for app in apps:
            app.start()
        try:
            specs, lookup = make_specs(4)
            cache = ResultCache(tmp_path / "local")
            engine = SweepEngine(jobs=1, cache=cache, backend="service",
                                 shards=[app.url for app in apps])
            results = engine.run(specs, workload_lookup=lookup.get)
            assert fingerprints(results) == reference
            assert engine.backend.ingested == len(specs)
            assert engine.backend.dead_shards == []
            assert engine.backend.fallback_specs == 0
            # Round-robin really sharded the cross-product: both shards
            # simulated some of it.
            per_shard = [app.manager.simulations_run for app in apps]
            assert all(count > 0 for count in per_shard)
            assert sum(per_shard) == len(specs)

            # Ingested records are real cache-v3 records: a second local
            # engine on the same cache dir is fully warm.
            warm = SweepEngine(jobs=1, cache=ResultCache(tmp_path / "local"))
            warm_results = warm.run(specs, workload_lookup=lookup.get)
            assert warm.simulations_run == 0
            assert fingerprints(warm_results) == reference
        finally:
            for app in apps:
                app.stop(drain_timeout=10.0)

    def test_service_summary_counts_remote_work(self, reference, tmp_path):
        # The engine's simulations_run includes remote ingests, so the
        # CLI summary line stays truthful whichever backend ran.
        from repro.service import ServiceApp

        app = ServiceApp(tmp_path / "shard", port=0, queue_depth=8)
        app.start()
        try:
            specs, lookup = make_specs(2)
            engine = SweepEngine(jobs=1, backend="service",
                                 shards=[app.url])
            results = engine.run(specs, workload_lookup=lookup.get)
            assert engine.simulations_run == len(specs)
            assert fingerprints(results) == {
                digest: fingerprint
                for digest, fingerprint in reference.items()
                if digest in {spec.digest() for spec in specs}}
        finally:
            app.stop(drain_timeout=10.0)
