"""Deterministic fault injection: every recovery path of the sweep engine
is exercised under the :mod:`repro.experiments.faults` harness and proven
to converge to stat fingerprints **bit-identical** to an undisturbed
serial sweep — the PR's acceptance criterion.
"""

import json

import pytest

from repro.experiments.faults import (
    FaultInjectionError,
    FaultPlan,
    TransientFault,
)
from repro.experiments.sweep import (
    ResultCache,
    RunPolicy,
    RunSpec,
    SweepEngine,
    SweepError,
    SweepJournal,
)
from repro.workloads.synthetic import IndirectStreamWorkload

N_CORES = 4

#: Retry budget for chaos runs: a batch may contain several injected
#: killers, each of which charges its batch-mates one attempt.
CHAOS_POLICY = RunPolicy(retries=4, backoff=0.01)


def tiny_specs(modes=("base", "imp", "swpref")):
    workload = IndirectStreamWorkload(n_indices=256, n_data=1024, seed=3)
    return [RunSpec.for_run(workload, mode, N_CORES) for mode in modes]


@pytest.fixture(scope="module")
def golden():
    """Fingerprints of the undisturbed serial sweep."""
    results = SweepEngine(jobs=1).run(tiny_specs())
    return {spec.digest(): result.stats.fingerprint()
            for spec, result in results.items()}


def assert_bit_identical(results, golden):
    assert len(results) == len(golden)
    for spec, result in results.items():
        assert result.stats.fingerprint() == golden[spec.digest()]


class TestFaultPlan:
    def test_decisions_are_deterministic_and_seeded(self):
        plan = FaultPlan(seed=5, kill=0.3, transient=0.3, stall=0.3)
        decisions = [plan.decide(f"digest-{i}", 0) for i in range(64)]
        assert decisions == [plan.decide(f"digest-{i}", 0)
                             for i in range(64)]
        # All three kinds appear over a reasonable sample...
        assert {"kill", "transient", "stall"} <= set(d for d in decisions if d)
        # ...and a different seed disturbs different runs.
        other = FaultPlan(seed=6, kill=0.3, transient=0.3, stall=0.3)
        assert decisions != [other.decide(f"digest-{i}", 0)
                             for i in range(64)]

    def test_attempts_beyond_the_bound_run_clean(self):
        plan = FaultPlan(seed=1, kill=1.0, max_faults_per_spec=2)
        assert plan.decide("d", 0) == "kill"
        assert plan.decide("d", 1) == "kill"
        assert plan.decide("d", 2) is None

    def test_transient_raises_everywhere(self):
        plan = FaultPlan(seed=1, transient=1.0)
        with pytest.raises(TransientFault):
            plan.apply("d", 0, in_worker=False)

    def test_kill_and_stall_suppressed_in_process(self):
        # Would take the test process down / hang it if not suppressed.
        FaultPlan(seed=1, kill=1.0).apply("d", 0, in_worker=False)
        FaultPlan(seed=1, stall=1.0, stall_seconds=600).apply(
            "d", 0, in_worker=False)

    def test_rate_validation(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(kill=1.5)
        with pytest.raises(FaultInjectionError):
            FaultPlan(kill=0.5, transient=0.4, stall=0.2)
        with pytest.raises(FaultInjectionError):
            FaultPlan.from_dict({"seed": 1, "explode": True})

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_FAULTS",
                           json.dumps({"seed": 9, "transient": 0.5}))
        plan = FaultPlan.from_env()
        assert plan == FaultPlan(seed=9, transient=0.5)
        monkeypatch.setenv("REPRO_FAULTS", "{ not json")
        with pytest.raises(FaultInjectionError):
            FaultPlan.from_env()

    def test_round_trips(self):
        plan = FaultPlan(seed=4, kill=0.2, corrupt=0.3, interrupt_after=7)
        assert FaultPlan.from_dict(plan.to_dict()) == plan


class TestTransientRecovery:
    def test_serial_retries_converge_bit_identically(self, golden):
        engine = SweepEngine(jobs=1, policy=RunPolicy(retries=2,
                                                      backoff=0.01),
                             faults=FaultPlan(seed=5, transient=0.9))
        assert_bit_identical(engine.run(tiny_specs()), golden)

    def test_parallel_retries_converge_bit_identically(self, golden):
        engine = SweepEngine(jobs=2, policy=CHAOS_POLICY,
                             faults=FaultPlan(seed=5, transient=0.9))
        assert_bit_identical(engine.run(tiny_specs()), golden)

    def test_one_bad_run_never_poisons_its_batch_mates(self, golden):
        # All three specs share one build_key (one worker batch); the
        # outcome-envelope protocol must retry only the disturbed run.
        # The disturbed subset depends on the spec digests (which move
        # whenever a config field is added), so search for a seed that
        # disturbs a strict subset instead of hard-coding one.
        for seed in range(100):
            plan = FaultPlan(seed=seed, transient=0.4)
            disturbed = [spec for spec in tiny_specs()
                         if plan.decide(spec.digest(), 0) == "transient"]
            if 1 <= len(disturbed) < 3:
                break
        else:
            raise AssertionError("no seed disturbs a strict subset")
        engine = SweepEngine(jobs=2, policy=CHAOS_POLICY, faults=plan)
        assert_bit_identical(engine.run(tiny_specs()), golden)


class TestWorkerDeathRecovery:
    def test_broken_pool_is_rebuilt_and_converges(self, golden):
        plan = FaultPlan(seed=7, kill=0.9)
        engine = SweepEngine(jobs=2, policy=CHAOS_POLICY, faults=plan)
        assert_bit_identical(engine.run(tiny_specs()), golden)
        assert engine.pool_restarts >= 1
        assert not engine.degraded

    def test_unusable_pool_degrades_to_serial(self, golden):
        # Every attempt kills its worker, so the pool can never make
        # progress; after max_pool_restarts the engine must fall back to
        # in-process execution, where kills are suppressed.
        plan = FaultPlan(seed=7, kill=1.0, max_faults_per_spec=1000)
        engine = SweepEngine(
            jobs=2, faults=plan,
            policy=RunPolicy(retries=1000, backoff=0.0,
                             max_pool_restarts=2))
        assert_bit_identical(engine.run(tiny_specs()), golden)
        assert engine.degraded
        assert engine.pool_restarts == 3


class TestTimeoutRecovery:
    def test_stalled_run_times_out_and_retries_clean(self, golden):
        # One batch stalls far past the per-run budget; the parent must
        # reclaim the stuck worker, charge a timeout, and the clean retry
        # (attempts beyond the bound are undisturbed) must converge.
        specs = tiny_specs(("base", "imp"))
        plan = FaultPlan(seed=3, stall=0.9, stall_seconds=120.0)
        assert any(plan.decide(spec.digest(), 0) == "stall"
                   for spec in specs)
        engine = SweepEngine(jobs=2, faults=plan,
                             policy=RunPolicy(timeout=1.5, retries=3,
                                              backoff=0.01))
        assert_bit_identical(
            engine.run(specs),
            {digest: fp for digest, fp in golden.items()
             if digest in {spec.digest() for spec in specs}})
        assert engine.pool_restarts >= 1


class TestPermanentFailures:
    def test_keep_going_finishes_everything_then_raises(self):
        # One spec fails on every attempt; the other two must complete.
        specs = tiny_specs()
        victim = specs[0].digest()

        class TargetedPlan(FaultPlan):
            def decide(self, digest, attempt):
                return "transient" if digest == victim else None

        engine = SweepEngine(jobs=1, faults=TargetedPlan(),
                             policy=RunPolicy(retries=1, backoff=0.0))
        with pytest.raises(SweepError) as excinfo:
            engine.run(specs)
        error = excinfo.value
        assert len(error.failures) == 1
        assert error.failures[0].digest == victim
        assert error.failures[0].kind == "transient"
        assert error.failures[0].attempts == 2
        assert len(error.results) == 2
        assert "1 run(s) permanently failed" in str(error)

    def test_fail_fast_abandons_outstanding_work(self):
        engine = SweepEngine(
            jobs=1, faults=FaultPlan(seed=1, transient=1.0,
                                     max_faults_per_spec=1000),
            policy=RunPolicy(retries=0, backoff=0.0, keep_going=False))
        with pytest.raises(SweepError) as excinfo:
            engine.run(tiny_specs())
        assert len(excinfo.value.failures) == 1

    def test_failure_kinds_are_distinguished(self):
        from repro.experiments.sweep import FailureRecord

        spec = tiny_specs()[0]
        record = FailureRecord.for_spec(spec, "timeout", 3, "too slow")
        doc = record.to_dict()
        assert doc["kind"] == "timeout"
        assert doc["workload"] == spec.workload
        assert doc["digest"] == spec.digest()


class TestInterruptAndResume:
    def test_injected_interrupt_then_resume_is_bit_identical(
            self, golden, tmp_path):
        cache_dir = tmp_path / "cache"
        journal_path = cache_dir / "journal.jsonl"
        first = SweepEngine(
            jobs=1, cache=ResultCache(cache_dir),
            journal=SweepJournal(journal_path),
            faults=FaultPlan(seed=1, interrupt_after=1))
        with pytest.raises(KeyboardInterrupt):
            first.run(tiny_specs())
        journal = SweepJournal(journal_path, resume=True)
        assert journal.resumed == 1
        cache = ResultCache(cache_dir)
        resumed = SweepEngine(jobs=1, cache=cache, journal=journal)
        assert_bit_identical(resumed.run(tiny_specs()), golden)
        assert resumed.simulations_run == 2
        assert cache.hits == 1

    def test_parallel_interrupt_cleans_up_the_pool(self, golden, tmp_path):
        cache_dir = tmp_path / "cache"
        engine = SweepEngine(
            jobs=2, cache=ResultCache(cache_dir), policy=CHAOS_POLICY,
            journal=SweepJournal(cache_dir / "journal.jsonl"),
            faults=FaultPlan(seed=1, interrupt_after=1))
        with pytest.raises(KeyboardInterrupt):
            engine.run(tiny_specs())
        assert engine._pool is None  # terminated, not leaked
        resumed = SweepEngine(jobs=2, cache=ResultCache(cache_dir),
                              policy=CHAOS_POLICY)
        assert_bit_identical(resumed.run(tiny_specs()), golden)


class TestCacheCorruptionInjection:
    def test_torn_publishes_quarantine_and_heal(self, golden, tmp_path):
        cache_dir = tmp_path / "cache"
        chaotic = SweepEngine(jobs=1, cache=ResultCache(cache_dir),
                              faults=FaultPlan(seed=1, corrupt=1.0))
        assert_bit_identical(chaotic.run(tiny_specs()), golden)
        # Every record on disk is now torn; a fresh sweep must quarantine
        # and recompute them all, still bit-identically.
        cache = ResultCache(cache_dir)
        healer = SweepEngine(jobs=1, cache=cache)
        assert_bit_identical(healer.run(tiny_specs()), golden)
        assert cache.quarantined == 3
        assert healer.simulations_run == 3
