"""Tests for the ``repro profile`` harness (experiments/profile.py).

Previously only exercised manually; these pin the report's invariants on a
tiny workload: subsystem self-time attribution buckets must sum to the
profiled total (and their shares to ~1), the document must round-trip
through JSON, and the CLI/formatting layer must render it.
"""

import io
import json

import pytest

from repro.experiments.profile import (
    OTHER,
    SUBSYSTEM_RULES,
    format_report,
    profile_run,
    subsystem_of,
)


@pytest.fixture(scope="module")
def document():
    """One profiled tiny run shared by every test in this module."""
    return profile_run("indirect_stream", prefetcher="stream", cores=4,
                       seed=1, quick=True)


def test_buckets_sum_to_profiled_total(document):
    total = document["profiled_seconds"]
    bucket_sum = sum(bucket["self_seconds"]
                     for bucket in document["subsystems"].values())
    assert bucket_sum == pytest.approx(total, rel=1e-9)
    share_sum = sum(bucket["share"]
                    for bucket in document["subsystems"].values())
    assert share_sum == pytest.approx(1.0, rel=1e-9)


def test_every_access_touches_the_core_subsystems(document):
    # A real simulation must attribute time to the core model and the
    # cache/hierarchy machinery; "other" must not swallow the simulator.
    assert document["subsystems"]["core"]["self_seconds"] > 0
    assert {"cache", "hierarchy"} & set(document["subsystems"])
    other = document["subsystems"].get(OTHER, {"share": 0.0})
    assert other["share"] < 0.5


def test_fingerprint_and_metadata_recorded(document):
    assert document["schema"] == "repro-profile-v1"
    assert document["workload"] == "indirect_stream"
    assert document["prefetcher"] == "stream"
    assert document["cores"] == 4
    assert document["runtime_cycles"] == \
        document["fingerprint"]["runtime_cycles"]
    assert document["runtime_cycles"] > 0
    assert document["top_functions"], "no hot functions recorded"
    for row in document["top_functions"]:
        assert row["self_seconds"] >= 0.0
        assert ":" in row["function"]


def test_document_round_trips_through_json(document):
    clone = json.loads(json.dumps(document))
    assert clone == document


def test_format_report_renders(document):
    out = io.StringIO()
    format_report(document, top=5, out=out)
    text = out.getvalue()
    assert "indirect_stream/stream" in text
    assert "subsystem" in text
    assert "top functions" in text
    # One line per subsystem bucket.
    for name in document["subsystems"]:
        assert name in text


def test_subsystem_rules_cover_known_paths():
    assert subsystem_of("src/repro/memory/cache.py") == "cache"
    assert subsystem_of("src\\repro\\noc\\mesh.py") == "noc.geometry"
    assert subsystem_of("src/repro/noc/kernel.py") == "noc.kernel"
    # ResourceSchedule is the shared reservation primitive (DRAM always,
    # the NoC only under the reference backend), so it gets its own
    # bucket rather than being folded into noc.kernel.
    assert subsystem_of("src/repro/sim/queueing.py") == "queueing"
    assert subsystem_of("/usr/lib/python3.11/heapq.py") == OTHER
    # First-match-wins keeps the rule list unambiguous.
    fragments = [fragment for fragment, _ in SUBSYSTEM_RULES]
    assert len(fragments) == len(set(fragments))


def test_extension_frames_attribute_to_noc_kernel():
    # cProfile records built-in (C) frames under the pseudo-filename '~'
    # with the function's qualified name; the compiled kernel's frames
    # must land in noc.kernel, not a generic builtins bucket.
    assert subsystem_of(
        "~", "<method 'reserve' of 'repro._nockernel.Route' objects>"
    ) == "noc.kernel"
    assert subsystem_of(
        "~", "<method 'sweep' of 'repro._nockernel.Kernel' objects>"
    ) == "noc.kernel"
    # Unrelated builtins keep falling through to OTHER.
    assert subsystem_of("~", "<built-in method builtins.len>") == OTHER
    # And the name-based rule never hijacks ordinary Python frames.
    assert subsystem_of("src/repro/memory/cache.py", "lookup") == "cache"


class TestCompiledBackendAttribution:
    """Regression for the satellite: with the compiled backend selected,
    profiled time must stay fully attributed (buckets sum to the profiled
    total) and the extension's reservation time must be visible in the
    noc.kernel bucket rather than misattributed to callers."""

    @pytest.fixture(scope="class")
    def compiled_document(self):
        from repro.noc.kernel import compiled_kernel_available
        if not compiled_kernel_available():
            pytest.skip("repro._nockernel extension not built")
        return profile_run("indirect_stream", prefetcher="imp", cores=4,
                           seed=1, quick=True)

    def test_buckets_sum_to_profiled_total(self, compiled_document):
        total = compiled_document["profiled_seconds"]
        bucket_sum = sum(bucket["self_seconds"]
                         for bucket in compiled_document["subsystems"].values())
        assert bucket_sum == pytest.approx(total, rel=1e-9)
        share_sum = sum(bucket["share"]
                        for bucket in compiled_document["subsystems"].values())
        assert share_sum == pytest.approx(1.0, rel=1e-9)

    def test_compiled_reserve_calls_land_in_noc_kernel(self,
                                                       compiled_document):
        # The C reserve is a genuine PyCFunction, so cProfile sees every
        # call; with traffic flowing the bucket must have recorded them.
        kernel_bucket = compiled_document["subsystems"]["noc.kernel"]
        assert kernel_bucket["calls"] > 0
        assert any("_nockernel" in row["function"]
                   for row in compiled_document["top_functions"]), \
            "extension frames missing from the function table"
