"""Tests for IMP's optional features: the read/write predictor (Exclusive
prefetches) and adaptive prefetch-distance throttling (the future-work
scheme suggested in Section 6.3.2)."""

from typing import List

import numpy as np
import pytest

from repro.core import IMP, IMPConfig
from repro.mem_image import MemoryImage
from repro.prefetchers.base import AccessContext, PrefetchRequest

PC_INDEX = 0x400100
PC_DATA = 0x400108


def make_image(n_indices=512, n_data=4096, seed=9) -> MemoryImage:
    rng = np.random.default_rng(seed)
    image = MemoryImage()
    image.add_array("B", rng.integers(0, n_data, n_indices, dtype=np.int32))
    image.add_array("A", np.zeros(n_data, dtype=np.float64), writable=True)
    return image


def ctx(image, pc, addr, *, hit, now, is_write=False, size=8) -> AccessContext:
    return AccessContext(core_id=0, pc=pc, addr=addr, size=size,
                         is_write=is_write, hit=hit, now=now,
                         read_value=lambda: image.read_value(addr))


def run_loop(imp, image, iterations, *, writes=False,
             start=0, loop_len=None) -> List[PrefetchRequest]:
    """``for i: load B[i]; (load|store) A[B[i]]``, optionally in short loops
    of ``loop_len`` iterations separated by jumps (to provoke overshoot)."""
    indices = image.data("B")
    requests: List[PrefetchRequest] = []
    now = 0.0
    for step in range(iterations):
        i = start + step
        if loop_len:
            # Jump to a far position at every loop boundary.
            block, offset = divmod(step, loop_len)
            i = (start + block * 64 + offset) % len(indices)
        addr_b = image.addr_of("B", i)
        requests.extend(imp.on_access(ctx(image, PC_INDEX, addr_b,
                                          hit=False, now=now, size=4)))
        now += 2
        addr_a = image.addr_of("A", int(indices[i]))
        requests.extend(imp.on_access(ctx(image, PC_DATA, addr_a, hit=False,
                                          now=now, is_write=writes)))
        now += 2
    return requests


class TestReadWritePredictor:
    def test_write_pattern_prefetched_exclusive(self):
        image = make_image()
        imp = IMP(IMPConfig(rw_predictor=True), image)
        requests = run_loop(imp, image, 60, writes=True)
        indirect = [r for r in requests if r.is_indirect]
        assert indirect
        # After the predictor warms up, indirect prefetches ask for Exclusive.
        assert any(r.exclusive for r in indirect)
        assert all(r.exclusive for r in indirect[-10:])

    def test_read_pattern_prefetched_shared(self):
        image = make_image()
        imp = IMP(IMPConfig(rw_predictor=True), image)
        requests = run_loop(imp, image, 60, writes=False)
        indirect = [r for r in requests if r.is_indirect]
        assert indirect
        assert not any(r.exclusive for r in indirect)

    def test_predictor_can_be_disabled(self):
        image = make_image()
        imp = IMP(IMPConfig(rw_predictor=False), image)
        requests = run_loop(imp, image, 60, writes=True)
        assert not any(r.exclusive for r in requests if r.is_indirect)

    def test_write_counter_saturates_and_decays(self):
        image = make_image()
        config = IMPConfig(rw_max_count=3)
        imp = IMP(config, image)
        run_loop(imp, image, 40, writes=True)
        entry = imp.pt.lookup_by_pc(PC_INDEX)
        assert entry.write_cnt == 3
        run_loop(imp, image, 40, writes=False, start=40)
        assert entry.write_cnt == 0


class TestAdaptiveDistance:
    def test_disabled_by_default(self):
        assert not IMPConfig().adaptive_distance
        config = IMPConfig().with_adaptive_distance()
        assert config.adaptive_distance

    def test_distance_reaches_max_on_long_streams(self):
        image = make_image()
        config = IMPConfig(adaptive_distance=True, max_prefetch_distance=16)
        imp = IMP(config, image)
        run_loop(imp, image, 200)
        entry = imp.pt.lookup_by_pc(PC_INDEX)
        assert entry.prefetch_distance >= 8    # useful prefetches keep the cap up

    def test_short_loops_shrink_the_distance_cap(self):
        image = make_image(n_indices=2048)
        config = IMPConfig(adaptive_distance=True, max_prefetch_distance=16,
                           throttle_window=16)
        imp = IMP(config, image)
        # Short loops of 4 iterations separated by jumps: most prefetched
        # elements (i + distance beyond the loop end) are never referenced.
        run_loop(imp, image, 400, loop_len=4)
        entry = imp.pt.lookup_by_pc(PC_INDEX)
        assert entry.distance_cap != 0
        assert entry.distance_cap < 16
        assert entry.prefetch_distance <= entry.distance_cap

    def test_throttling_off_keeps_full_ramp_on_short_loops(self):
        image = make_image(n_indices=2048)
        config = IMPConfig(adaptive_distance=False, max_prefetch_distance=16)
        imp = IMP(config, image)
        run_loop(imp, image, 400, loop_len=4)
        entry = imp.pt.lookup_by_pc(PC_INDEX)
        assert entry.prefetch_distance == 16
        assert entry.distance_cap == 0

    def test_window_counters_reset_after_decision(self):
        image = make_image()
        config = IMPConfig(adaptive_distance=True, throttle_window=8)
        imp = IMP(config, image)
        run_loop(imp, image, 100)
        entry = imp.pt.lookup_by_pc(PC_INDEX)
        assert entry.window_issued < 8

    def test_recent_prefetch_tracking_is_bounded(self):
        image = make_image()
        config = IMPConfig(adaptive_distance=True)
        imp = IMP(config, image)
        run_loop(imp, image, 300)
        entry = imp.pt.lookup_by_pc(PC_INDEX)
        assert len(entry.recent_prefetch_fifo) <= 64
        assert len(entry.recent_prefetch_set) <= 64
