"""Unit tests for Equation 2 address generation (repro.core.address)."""

import pytest

from repro.core.address import (
    apply_shift,
    coefficient_of,
    predict_address,
    shift_for_element_size,
    solve_base_addr,
)


class TestApplyShift:
    def test_positive_shift_multiplies_by_power_of_two(self):
        assert apply_shift(5, 2) == 20
        assert apply_shift(5, 3) == 40
        assert apply_shift(5, 4) == 80

    def test_negative_shift_divides(self):
        assert apply_shift(16, -3) == 2
        assert apply_shift(17, -3) == 2   # truncating, like a hardware shifter
        assert apply_shift(7, -3) == 0

    def test_zero_shift_is_identity(self):
        assert apply_shift(123, 0) == 123


class TestPredictAndSolve:
    @pytest.mark.parametrize("shift", [2, 3, 4, -3])
    def test_paper_example_shift2(self, shift):
        # Figure 4's example: idx1=1, miss 0x100, idx2=16, miss 0x13C,
        # detected shift=2, BaseAddr=0xFC.
        if shift != 2:
            pytest.skip("example is specific to shift 2")
        assert solve_base_addr(1, 0x100, 2) == 0xFC
        assert solve_base_addr(16, 0x13C, 2) == 0xFC
        assert predict_address(1, 2, 0xFC) == 0x100
        assert predict_address(16, 2, 0xFC) == 0x13C

    @pytest.mark.parametrize("shift", [2, 3, 4])
    @pytest.mark.parametrize("index", [0, 1, 7, 1000, 65535])
    def test_solve_then_predict_roundtrip(self, shift, index):
        base = 0x2000_0000
        addr = predict_address(index, shift, base)
        assert solve_base_addr(index, addr, shift) == base

    def test_negative_shift_roundtrip_on_aligned_values(self):
        base = 0x1000
        for index in (0, 8, 64, 4096):
            addr = predict_address(index, -3, base)
            assert solve_base_addr(index, addr, -3) == base


class TestCoefficient:
    def test_coefficients_match_table2(self):
        assert coefficient_of(2) == 4.0
        assert coefficient_of(3) == 8.0
        assert coefficient_of(4) == 16.0
        assert coefficient_of(-3) == pytest.approx(1 / 8)

    def test_shift_for_element_size(self):
        assert shift_for_element_size(4) == 2
        assert shift_for_element_size(8) == 3
        assert shift_for_element_size(16) == 4
        assert shift_for_element_size(1 / 8) == -3

    def test_shift_for_non_power_of_two_is_none(self):
        assert shift_for_element_size(12) is None
        assert shift_for_element_size(1 / 3) is None
