"""Unit tests for the Prefetch Table (Figures 5 and 6)."""

import pytest

from repro.core.config import IMPConfig
from repro.core.prefetch_table import IndirectType, PrefetchTable


class TestAllocation:
    def test_allocate_primary_and_lookup_by_pc(self):
        pt = PrefetchTable()
        entry = pt.allocate_primary(pc=0x400100, now=0)
        assert entry is not None
        assert pt.lookup_by_pc(0x400100) is entry
        assert entry.ind_type is IndirectType.PRIMARY
        assert not entry.enabled

    def test_allocate_primary_is_idempotent_per_pc(self):
        pt = PrefetchTable()
        first = pt.allocate_primary(pc=0x400100, now=0)
        second = pt.allocate_primary(pc=0x400100, now=5)
        assert first is second
        assert pt.occupancy == 1

    def test_table_size_enforced_with_lru_eviction(self):
        pt = PrefetchTable(IMPConfig(pt_size=4))
        for i in range(6):
            pt.allocate_primary(pc=0x400000 + i * 8, now=i)
        assert pt.occupancy == 4
        # The two oldest (never-enabled) entries were evicted.
        assert pt.lookup_by_pc(0x400000) is None
        assert pt.lookup_by_pc(0x400008) is None
        assert pt.lookup_by_pc(0x400028) is not None

    def test_enabled_entries_preferentially_retained(self):
        pt = PrefetchTable(IMPConfig(pt_size=2))
        first = pt.allocate_primary(pc=0x1000, now=0)
        pt.activate(first.entry_id, shift=3, base_addr=0x100)
        pt.allocate_primary(pc=0x2000, now=1)
        pt.allocate_primary(pc=0x3000, now=2)   # must evict the un-enabled one
        assert pt.lookup_by_pc(0x1000) is not None
        assert pt.lookup_by_pc(0x2000) is None


class TestActivationAndConfidence:
    def test_activate_stores_pattern(self):
        pt = PrefetchTable()
        entry = pt.allocate_primary(pc=0x1000, now=0)
        pt.activate(entry.entry_id, shift=2, base_addr=0xFC)
        assert entry.enabled
        assert entry.shift == 2
        assert entry.base_addr == 0xFC
        assert entry.hit_cnt == 0
        assert not entry.is_prefetching(IMPConfig().confidence_threshold)

    def test_confidence_builds_with_confirmed_matches(self):
        config = IMPConfig(confidence_threshold=2)
        pt = PrefetchTable(config)
        entry = pt.allocate_primary(pc=0x1000, now=0)
        pt.activate(entry.entry_id, shift=3, base_addr=0x1000)
        for step in range(2):
            pt.observe_index(entry, value=step, now=step)
            pt.confirm_match(entry)
        assert entry.hit_cnt == 2
        assert entry.is_prefetching(config.confidence_threshold)

    def test_overwritten_index_without_match_loses_confidence(self):
        pt = PrefetchTable()
        entry = pt.allocate_primary(pc=0x1000, now=0)
        pt.activate(entry.entry_id, shift=3, base_addr=0x1000)
        pt.observe_index(entry, value=1, now=0)
        pt.confirm_match(entry)
        assert entry.hit_cnt == 1
        pt.observe_index(entry, value=2, now=1)   # never matched
        pt.observe_index(entry, value=3, now=2)   # overwrite: decrement
        assert entry.hit_cnt == 0

    def test_hit_counter_saturates(self):
        config = IMPConfig(max_confidence=3)
        pt = PrefetchTable(config)
        entry = pt.allocate_primary(pc=0x1000, now=0)
        pt.activate(entry.entry_id, shift=3, base_addr=0x1000)
        for step in range(10):
            pt.observe_index(entry, value=step, now=step)
            pt.confirm_match(entry)
        assert entry.hit_cnt == 3


class TestSecondaryIndirections:
    def test_second_way_linked_to_parent(self):
        pt = PrefetchTable()
        parent = pt.allocate_primary(pc=0x1000, now=0)
        pt.activate(parent.entry_id, shift=3, base_addr=0x1000)
        child = pt.allocate_secondary(parent.entry_id, IndirectType.SECOND_WAY,
                                      now=1)
        assert child is not None
        assert child.prev == parent.entry_id
        assert child.entry_id in parent.next_ways
        assert pt.children_of(parent) == [child]

    def test_max_indirect_ways_enforced(self):
        pt = PrefetchTable(IMPConfig(max_indirect_ways=2))
        parent = pt.allocate_primary(pc=0x1000, now=0)
        first = pt.allocate_secondary(parent.entry_id, IndirectType.SECOND_WAY, now=1)
        second = pt.allocate_secondary(parent.entry_id, IndirectType.SECOND_WAY, now=2)
        assert first is not None
        assert second is None        # the primary itself is the first way

    def test_second_level_linked_and_limited(self):
        pt = PrefetchTable(IMPConfig(max_indirect_levels=2))
        parent = pt.allocate_primary(pc=0x1000, now=0)
        child = pt.allocate_secondary(parent.entry_id, IndirectType.SECOND_LEVEL,
                                      now=1)
        assert child is not None
        assert pt.level_child(parent) is child
        # A third level is rejected by the two-level limit of Table 2.
        grandchild = pt.allocate_secondary(child.entry_id,
                                           IndirectType.SECOND_LEVEL, now=2)
        assert grandchild is None

    def test_release_removes_whole_subtree(self):
        pt = PrefetchTable()
        parent = pt.allocate_primary(pc=0x1000, now=0)
        way = pt.allocate_secondary(parent.entry_id, IndirectType.SECOND_WAY, now=1)
        level = pt.allocate_secondary(parent.entry_id, IndirectType.SECOND_LEVEL,
                                      now=2)
        pt.release(parent.entry_id)
        assert pt.occupancy == 0
        assert pt.get(way.entry_id) is None
        assert pt.get(level.entry_id) is None

    def test_release_child_unlinks_from_parent(self):
        pt = PrefetchTable()
        parent = pt.allocate_primary(pc=0x1000, now=0)
        way = pt.allocate_secondary(parent.entry_id, IndirectType.SECOND_WAY, now=1)
        pt.release(way.entry_id)
        assert parent.next_ways == []
        assert pt.get(parent.entry_id) is parent


class TestReset:
    def test_reset_clears_table(self):
        pt = PrefetchTable()
        pt.allocate_primary(pc=0x1000, now=0)
        pt.reset()
        assert pt.occupancy == 0
        assert pt.lookup_by_pc(0x1000) is None
