"""Unit tests for the Granularity Predictor (Section 4.2, Algorithm 1)."""

import pytest

from repro.core.config import IMPConfig
from repro.core.granularity import (
    GranularityPredictor,
    min_consecutive_run,
    popcount,
)


class TestBitHelpers:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount(0xFF) == 8

    @pytest.mark.parametrize("mask,n,expected", [
        (0b0000_0000, 8, 8),     # nothing touched -> no evidence, full line
        (0b0000_0001, 8, 1),
        (0b0001_1000, 8, 2),
        (0b1100_0011, 8, 2),     # two runs of 2
        (0b1110_0001, 8, 1),     # runs of 3 and 1 -> min 1
        (0b1111_1111, 8, 8),
    ])
    def test_min_consecutive_run(self, mask, n, expected):
        assert min_consecutive_run(mask, n) == expected


def make_gp(**overrides) -> GranularityPredictor:
    config = IMPConfig(partial_enabled=True, **overrides)
    return GranularityPredictor(config)


LINE = 0x1000_0000


class TestSamplingAndPrediction:
    def test_initial_prediction_is_full_line(self):
        gp = make_gp()
        gp.allocate(pattern_id=0)
        assert gp.granularity_bytes(0) == 64

    def test_unknown_pattern_defaults_to_full_line(self):
        gp = make_gp()
        assert gp.granularity_bytes(99) == 64

    def test_sampling_limited_to_n_lines(self):
        gp = make_gp(gp_samples=2)
        assert gp.maybe_sample(0, LINE)
        assert gp.maybe_sample(0, LINE + 64)
        assert not gp.maybe_sample(0, LINE + 128)
        assert len(gp.entry(0).samples) == 2

    def test_same_line_not_sampled_twice(self):
        gp = make_gp()
        assert gp.maybe_sample(0, LINE)
        assert not gp.maybe_sample(0, LINE + 8)   # same cache line

    def test_sparse_touches_shrink_granularity(self):
        gp = make_gp(gp_samples=4)
        # Sample 4 lines; touch a single 8-byte sector in each.
        for i in range(4):
            line = LINE + i * 64
            gp.maybe_sample(0, line)
            gp.on_demand_access(line + 8, size=8)
        for i in range(4):
            gp.on_eviction(LINE + i * 64)
        # Algorithm 1: costFull = 4*(8+1) = 36; costPartial = 4 + 4/1 = 8.
        assert gp.entry(0).granularity_sectors == 1
        assert gp.granularity_bytes(0) == 8

    def test_dense_touches_keep_full_line(self):
        gp = make_gp(gp_samples=4)
        for i in range(4):
            line = LINE + i * 64
            gp.maybe_sample(0, line)
            for sector in range(8):
                gp.on_demand_access(line + sector * 8, size=8)
        for i in range(4):
            gp.on_eviction(LINE + i * 64)
        # costFull = 36; costPartial = 32 + 32/8 = 36 -> full line wins ties.
        assert gp.entry(0).granularity_sectors == 8
        assert gp.granularity_bytes(0) == 64

    def test_state_resets_after_each_update_round(self):
        gp = make_gp(gp_samples=2)
        for i in range(2):
            line = LINE + i * 64
            gp.maybe_sample(0, line)
            gp.on_demand_access(line, size=8)
            gp.on_eviction(line)
        entry = gp.entry(0)
        assert entry.evict == 0
        assert entry.tot_sector == 0
        assert entry.min_granu == gp.sectors_per_line
        assert gp.predictions_updated == 1

    def test_untracked_eviction_is_ignored(self):
        gp = make_gp()
        gp.allocate(0)
        gp.on_eviction(LINE)          # never sampled: no effect
        assert gp.entry(0).evict == 0

    def test_release_drops_pattern_state(self):
        gp = make_gp()
        gp.maybe_sample(0, LINE)
        gp.release(0)
        assert gp.entry(0) is None
        # The line is no longer tracked either.
        gp.on_demand_access(LINE, size=8)
        gp.on_eviction(LINE)
        assert gp.predictions_updated == 0

    def test_access_spanning_two_sectors_sets_both_bits(self):
        gp = make_gp()
        gp.maybe_sample(0, LINE)
        gp.on_demand_access(LINE + 6, size=8)     # crosses sectors 0 and 1
        assert gp.entry(0).samples[LINE] == 0b11
