"""Unit tests for the assembled IMP prefetcher (repro.core.imp).

These tests drive IMP directly with synthetic L1 access streams (no
simulator), checking pattern detection, confidence building, prefetch
address generation, multi-way / multi-level support and the nested-loop
optimisation.
"""

from typing import List, Optional

import numpy as np
import pytest

from repro.core import IMP, IMPConfig
from repro.core.prefetch_table import IndirectType
from repro.mem_image import MemoryImage
from repro.prefetchers.base import AccessContext, PrefetchRequest

PC_INDEX = 0x400100
PC_OTHER = 0x400900


def make_image(n_indices: int = 256, n_data: int = 4096, elem_size: int = 8,
               two_way: bool = False, seed: int = 3) -> MemoryImage:
    rng = np.random.default_rng(seed)
    image = MemoryImage()
    image.add_array("B", rng.integers(0, n_data, n_indices, dtype=np.int32))
    image.add_array("A", np.zeros(n_data, dtype=np.float64),
                    elem_size=elem_size, length=n_data)
    if two_way:
        image.add_array("C", np.zeros(n_data, dtype=np.float64),
                        elem_size=4, length=n_data)
    return image


def ctx(image: MemoryImage, pc: int, addr: int, *, hit: bool, now: float,
        size: int = 8, is_write: bool = False) -> AccessContext:
    return AccessContext(core_id=0, pc=pc, addr=addr, size=size,
                         is_write=is_write, hit=hit, now=now,
                         read_value=lambda: image.read_value(addr))


def run_loop(imp: IMP, image: MemoryImage, iterations: int,
             extra_arrays: Optional[List[str]] = None,
             start: int = 0) -> List[PrefetchRequest]:
    """Simulate ``for i: load B[i]; load A[B[i]] (...)`` and collect requests."""
    indices = image.data("B")
    arrays = ["A"] + (extra_arrays or [])
    requests: List[PrefetchRequest] = []
    now = 0.0
    for i in range(start, start + iterations):
        addr_b = image.addr_of("B", i)
        requests.extend(imp.on_access(ctx(image, PC_INDEX, addr_b,
                                          hit=False, now=now, size=4)))
        now += 2
        for array in arrays:
            addr_a = image.addr_of(array, int(indices[i]))
            requests.extend(imp.on_access(ctx(image, PC_INDEX + 8 * (1 + arrays.index(array)),
                                              addr_a, hit=False, now=now)))
            now += 2
    return requests


class TestDetection:
    def test_detects_primary_pattern_for_8_byte_elements(self):
        image = make_image()
        imp = IMP(IMPConfig(), image)
        run_loop(imp, image, iterations=12)
        assert imp.patterns_detected == 1
        entry = imp.pt.lookup_by_pc(PC_INDEX)
        assert entry is not None and entry.enabled
        assert entry.shift == 3
        assert entry.base_addr == image.array("A").base

    def test_detects_4_byte_element_pattern(self):
        image = make_image(elem_size=8)
        # Replace A with a 4-byte element array.
        image = MemoryImage()
        rng = np.random.default_rng(0)
        image.add_array("B", rng.integers(0, 1024, 256, dtype=np.int32))
        image.add_array("A", np.zeros(1024, dtype=np.int32))
        imp = IMP(IMPConfig(), image)
        run_loop(imp, image, iterations=12)
        entry = imp.pt.lookup_by_pc(PC_INDEX)
        assert entry is not None and entry.enabled
        assert entry.shift == 2

    def test_no_detection_without_indirection(self):
        """Streaming-only access patterns must not enable indirect prefetching
        (the paper's SPLASH-2 sanity check)."""
        image = MemoryImage()
        image.add_array("S", np.arange(4096, dtype=np.float64))
        imp = IMP(IMPConfig(), image)
        now = 0.0
        for i in range(200):
            imp.on_access(ctx(image, PC_OTHER, image.addr_of("S", i),
                              hit=(i % 8 != 0), now=now))
            now += 1
        assert imp.patterns_detected == 0
        assert imp.indirect_prefetches_generated == 0

    def test_prefetching_starts_only_after_confidence(self):
        image = make_image()
        config = IMPConfig(confidence_threshold=2)
        imp = IMP(config, image)
        run_loop(imp, image, iterations=4)
        entry = imp.pt.lookup_by_pc(PC_INDEX)
        # Detection happened, but very few iterations: counter may be low.
        assert entry is not None
        run_loop(imp, image, iterations=12, start=4)
        assert entry.is_prefetching(config.confidence_threshold)
        assert imp.indirect_prefetches_generated > 0


class TestPrefetchGeneration:
    def test_prefetch_addresses_follow_equation_2(self):
        image = make_image()
        imp = IMP(IMPConfig(), image)
        requests = run_loop(imp, image, iterations=60)
        indirect = [r for r in requests if r.is_indirect]
        assert indirect, "IMP generated no indirect prefetches"
        base = image.array("A").base
        indices = image.data("B")
        valid_targets = {base + int(v) * 8 for v in indices}
        for request in indirect:
            assert request.addr in valid_targets

    def test_prefetch_distance_ramps_up_to_configured_max(self):
        image = make_image()
        config = IMPConfig(max_prefetch_distance=16)
        imp = IMP(config, image)
        run_loop(imp, image, iterations=60)
        entry = imp.pt.lookup_by_pc(PC_INDEX)
        assert entry.prefetch_distance == 16

    def test_max_distance_respected_when_reduced(self):
        image = make_image()
        config = IMPConfig(max_prefetch_distance=4)
        imp = IMP(config, image)
        run_loop(imp, image, iterations=60)
        entry = imp.pt.lookup_by_pc(PC_INDEX)
        assert entry.prefetch_distance == 4

    def test_stream_prefetches_also_generated_for_index_array(self):
        image = make_image()
        imp = IMP(IMPConfig(), image)
        requests = run_loop(imp, image, iterations=60)
        stream = [r for r in requests if not r.is_indirect]
        assert stream, "the embedded stream prefetcher never fired"
        b_spec = image.array("B")
        assert any(b_spec.contains(r.addr) for r in stream)


class TestMultiWayAndMultiLevel:
    def test_two_way_indirection_detected_and_prefetched(self):
        image = make_image(two_way=True)
        imp = IMP(IMPConfig(), image)
        requests = run_loop(imp, image, iterations=60, extra_arrays=["C"])
        entry = imp.pt.lookup_by_pc(PC_INDEX)
        assert entry is not None and entry.enabled
        assert imp.secondary_patterns_detected >= 1
        children = imp.pt.children_of(entry)
        assert len(children) == 1
        assert children[0].ind_type is IndirectType.SECOND_WAY
        c_base = image.array("C").base
        c_spec = image.array("C")
        indirect = [r for r in requests if r.is_indirect]
        assert any(c_spec.contains(r.addr) for r in indirect)

    def test_max_ways_limit_respected(self):
        image = make_image(two_way=True)
        config = IMPConfig(max_indirect_ways=1)
        imp = IMP(config, image)
        run_loop(imp, image, iterations=60, extra_arrays=["C"])
        entry = imp.pt.lookup_by_pc(PC_INDEX)
        assert entry is not None
        assert imp.pt.children_of(entry) == []

    def test_two_level_indirection_detected(self):
        # A[B[C[i]]]: C is the scanned stream, B holds indices into A.
        rng = np.random.default_rng(5)
        image = MemoryImage()
        image.add_array("C", rng.integers(0, 512, 256, dtype=np.int32))
        image.add_array("B", rng.integers(0, 2048, 512, dtype=np.int32))
        image.add_array("A", np.zeros(2048, dtype=np.float64))
        imp = IMP(IMPConfig(), image)
        c_values = image.data("C")
        b_values = image.data("B")
        now = 0.0
        requests: List[PrefetchRequest] = []
        for i in range(120):
            c_addr = image.addr_of("C", i)
            requests.extend(imp.on_access(ctx(image, PC_INDEX, c_addr,
                                              hit=False, now=now, size=4)))
            now += 2
            b_index = int(c_values[i])
            b_addr = image.addr_of("B", b_index)
            requests.extend(imp.on_access(ctx(image, PC_INDEX + 8, b_addr,
                                              hit=False, now=now, size=4)))
            now += 2
            a_addr = image.addr_of("A", int(b_values[b_index]))
            requests.extend(imp.on_access(ctx(image, PC_INDEX + 16, a_addr,
                                              hit=False, now=now)))
            now += 2
        primary = imp.pt.lookup_by_pc(PC_INDEX)
        assert primary is not None and primary.enabled
        level_child = imp.pt.level_child(primary)
        assert level_child is not None
        assert level_child.ind_type is IndirectType.SECOND_LEVEL
        assert level_child.base_addr == image.array("A").base
        # Dependent prefetches are marked as such.
        dependent = [r for r in requests if r.depends_on_previous]
        assert dependent


class TestNestedLoops:
    def test_pattern_survives_stream_restart(self):
        """Section 3.3.1: the indirect pattern is PC-associated, so a new
        outer-loop iteration (stream hiccup) must not require re-learning."""
        image = make_image(n_indices=512)
        imp = IMP(IMPConfig(), image)
        run_loop(imp, image, iterations=40)
        detected_before = imp.patterns_detected
        assert detected_before == 1
        # Restart the scan at a distant position (new inner loop).
        requests = run_loop(imp, image, iterations=40, start=300)
        assert imp.patterns_detected == detected_before   # no re-detection
        assert any(r.is_indirect for r in requests)


class TestPartialAccessing:
    def test_partial_prefetches_use_gp_granularity(self):
        image = make_image()
        config = IMPConfig(partial_enabled=True)
        imp = IMP(config, image)
        requests = run_loop(imp, image, iterations=80)
        indirect = [r for r in requests if r.is_indirect]
        assert indirect
        # Before any GP update the granularity is a full line.
        assert all(r.size in (8, 16, 24, 32, 40, 48, 56, 64) for r in indirect)
        entry = imp.pt.lookup_by_pc(PC_INDEX)
        assert imp.gp.entry(entry.entry_id) is not None

    def test_eviction_hook_feeds_granularity_predictor(self):
        image = make_image()
        config = IMPConfig(partial_enabled=True, gp_samples=1)
        imp = IMP(config, image)
        run_loop(imp, image, iterations=40)
        entry = imp.pt.lookup_by_pc(PC_INDEX)
        gp_entry = imp.gp.entry(entry.entry_id)
        sampled = list(gp_entry.samples)
        assert sampled, "GP sampled no prefetched lines"
        imp.on_eviction(sampled[0], touched_sectors=0b1, now=1000.0)
        assert imp.gp.predictions_updated == 1

    def test_partial_disabled_always_full_line(self):
        image = make_image()
        imp = IMP(IMPConfig(partial_enabled=False), image)
        requests = run_loop(imp, image, iterations=60)
        assert all(r.size == 64 for r in requests if r.is_indirect)


class TestReset:
    def test_reset_clears_all_state(self):
        image = make_image()
        imp = IMP(IMPConfig(), image)
        run_loop(imp, image, iterations=30)
        imp.reset()
        assert imp.patterns_detected == 0
        assert imp.pt.occupancy == 0
        assert imp.ipd.occupancy == 0
        assert imp.stream.entries() == []
