"""Tests for the hardware cost model (Section 6.4)."""

import pytest

from repro.core.config import IMPConfig
from repro.core.cost import CostReport, energy_overhead, storage_cost_bits


class TestStorageCost:
    def test_default_costs_match_section_6_4(self):
        report = storage_cost_bits(IMPConfig())
        # "each entry requires less than 120 bits ... total PT storage
        #  overhead is less than 2 Kbits"
        assert report.pt_bits_per_entry <= 130
        assert report.pt_total_bits <= 2.1 * 1024
        # "the IPD requires 3.5 Kbits"
        assert 3.0 * 1024 <= report.ipd_total_bits <= 3.9 * 1024
        # "IMP requires 5.5 Kbits or only 0.7 KB of storage"
        assert 5.0 * 1024 <= report.imp_total_bits <= 6.0 * 1024
        assert report.imp_total_bytes <= 0.8 * 1024
        # "the overall storage of GP is 3.4 Kbits or 420 bytes"
        assert 3.0 * 1024 <= report.gp_total_bits <= 3.8 * 1024
        assert report.gp_total_bytes <= 470

    def test_sector_valid_bit_overheads(self):
        report = storage_cost_bits(IMPConfig())
        # 8-bit mask per 64-byte L1 line (~1.6%), 2-bit per L2 line (~0.4%).
        assert report.l1_sector_overhead == pytest.approx(8 / 512, rel=0.01)
        assert report.l2_sector_overhead == pytest.approx(2 / 512, rel=0.01)

    def test_cost_scales_with_table_sizes(self):
        small = storage_cost_bits(IMPConfig().with_pt_size(8))
        large = storage_cost_bits(IMPConfig().with_pt_size(32))
        assert small.pt_total_bits < large.pt_total_bits
        small_ipd = storage_cost_bits(IMPConfig().with_ipd_size(2))
        large_ipd = storage_cost_bits(IMPConfig().with_ipd_size(8))
        assert small_ipd.ipd_total_bits < large_ipd.ipd_total_bits

    def test_ipd_entry_dominated_by_baseaddr_array(self):
        config = IMPConfig()
        report = storage_cost_bits(config)
        baseaddr_bits = (len(config.shift_values) * config.baseaddr_array_len
                         * config.address_bits)
        assert report.ipd_bits_per_entry >= baseaddr_bits


class TestEnergyCost:
    def test_energy_overheads_below_paper_bounds(self):
        energy = energy_overhead(IMPConfig())
        # "Each PT access takes less than 3% of the energy of a baseline L1
        #  access" and "the GP ... less than 1%".
        assert 0.0 < energy["pt_vs_l1_access"] <= 0.03
        assert 0.0 < energy["gp_vs_l1_access"] <= 0.01
