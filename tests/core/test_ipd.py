"""Unit tests for the Indirect Pattern Detector (Section 3.2.2, Figure 4)."""

import pytest

from repro.core.config import IMPConfig
from repro.core.ipd import IndirectPatternDetector


def make_ipd(**overrides) -> IndirectPatternDetector:
    return IndirectPatternDetector(IMPConfig(**overrides) if overrides else IMPConfig())


BASE = 0x1000_0000


class TestBasicDetection:
    def test_detects_pattern_from_two_index_miss_pairs(self):
        ipd = make_ipd()
        key = ("primary", 1)
        shift, base = 3, BASE
        ipd.on_index_access(key, 10, now=0)
        detected = ipd.on_miss((10 << shift) + base, now=1)
        assert detected == []                     # only one pair so far
        ipd.on_index_access(key, 25, now=2)
        detected = ipd.on_miss((25 << shift) + base, now=3)
        assert len(detected) == 1
        pattern = detected[0]
        assert pattern.shift == shift
        assert pattern.base_addr == base
        assert pattern.stream_key == key

    def test_paper_figure4_example(self):
        # read idx1 (=1); miss 0x100; miss 0x120; read idx2 (=16); miss 0x13C
        # => shift=2, BaseAddr=0xFC.
        ipd = make_ipd()
        key = ("primary", 42)
        ipd.on_index_access(key, 1, now=0)
        assert ipd.on_miss(0x100, now=1) == []
        assert ipd.on_miss(0x120, now=2) == []
        ipd.on_index_access(key, 16, now=3)
        detected = ipd.on_miss(0x13C, now=4)
        assert len(detected) == 1
        assert detected[0].shift == 2
        assert detected[0].base_addr == 0xFC

    @pytest.mark.parametrize("shift", [2, 3, 4, -3])
    def test_all_table2_shift_values_detectable(self, shift):
        ipd = make_ipd()
        key = ("primary", 7)
        base = BASE
        idx1, idx2 = 64, 192                      # multiples of 8 so -3 is exact
        ipd.on_index_access(key, idx1, now=0)
        ipd.on_miss((idx1 << shift if shift >= 0 else idx1 >> -shift) + base, now=1)
        ipd.on_index_access(key, idx2, now=2)
        detected = ipd.on_miss((idx2 << shift if shift >= 0 else idx2 >> -shift) + base, now=3)
        assert [p.shift for p in detected] == [shift]

    def test_unrelated_misses_do_not_trigger_detection(self):
        ipd = make_ipd()
        key = ("primary", 1)
        ipd.on_index_access(key, 10, now=0)
        ipd.on_miss(0xDEAD000, now=1)
        ipd.on_index_access(key, 25, now=2)
        detected = ipd.on_miss(0xBEEF000, now=3)
        assert detected == []

    def test_entry_released_after_detection(self):
        ipd = make_ipd()
        key = ("primary", 1)
        ipd.on_index_access(key, 10, now=0)
        ipd.on_miss((10 << 3) + BASE, now=1)
        ipd.on_index_access(key, 25, now=2)
        ipd.on_miss((25 << 3) + BASE, now=3)
        assert ipd.entry_for(key) is None
        assert ipd.occupancy == 0


class TestFailureAndBackoff:
    def test_entry_released_on_third_index_without_detection(self):
        ipd = make_ipd()
        key = ("primary", 1)
        ipd.on_index_access(key, 10, now=0)
        ipd.on_index_access(key, 20, now=1)
        assert ipd.entry_for(key) is not None
        ipd.on_index_access(key, 30, now=2)     # third index: give up
        assert ipd.entry_for(key) is None
        assert ipd.failed_detections == 1

    def test_backoff_blocks_immediate_reallocation(self):
        config = IMPConfig(backoff_base=100)
        ipd = IndirectPatternDetector(config)
        key = ("primary", 1)
        for value in (10, 20, 30):
            ipd.on_index_access(key, value, now=0)
        assert ipd.entry_for(key) is None
        ipd.on_index_access(key, 40, now=1)     # still inside back-off window
        assert ipd.entry_for(key) is None
        ipd.on_index_access(key, 50, now=200)   # back-off expired
        assert ipd.entry_for(key) is not None

    def test_backoff_grows_exponentially(self):
        config = IMPConfig(backoff_base=10, max_backoff=10_000)
        ipd = IndirectPatternDetector(config)
        key = ("primary", 1)

        def fail_once(now):
            ipd.on_index_access(key, 1, now=now)
            ipd.on_index_access(key, 2, now=now)
            ipd.on_index_access(key, 3, now=now)

        fail_once(0)
        assert ipd._backoff[key].blocked_until == 10
        ipd.on_index_access(key, 1, now=20)
        ipd.on_index_access(key, 2, now=20)
        ipd.on_index_access(key, 3, now=20)
        assert ipd._backoff[key].blocked_until == 20 + 20

    def test_table_size_limits_concurrent_detections(self):
        config = IMPConfig(ipd_size=2)
        ipd = IndirectPatternDetector(config)
        for stream in range(4):
            ipd.on_index_access(("primary", stream), 10 + stream, now=0)
        assert ipd.occupancy == 2

    def test_baseaddr_array_length_limits_tracked_misses(self):
        config = IMPConfig(baseaddr_array_len=2)
        ipd = IndirectPatternDetector(config)
        key = ("primary", 1)
        ipd.on_index_access(key, 10, now=0)
        # Two unrelated misses fill the BaseAddr array; the real one is lost.
        ipd.on_miss(0x111000, now=1)
        ipd.on_miss(0x222000, now=2)
        ipd.on_miss((10 << 3) + BASE, now=3)
        ipd.on_index_access(key, 25, now=4)
        assert ipd.on_miss((25 << 3) + BASE, now=5) == []


class TestKnownPatterns:
    def test_known_pattern_not_redetected(self):
        ipd = make_ipd()
        key = ("way", 1)
        ipd.add_known_pattern(key, 3, BASE)
        ipd.on_index_access(key, 10, now=0)
        ipd.on_miss((10 << 3) + BASE, now=1)
        ipd.on_index_access(key, 25, now=2)
        assert ipd.on_miss((25 << 3) + BASE, now=3) == []

    def test_second_pattern_with_different_base_detected(self):
        ipd = make_ipd()
        key = ("way", 1)
        other_base = 0x3000_0000
        ipd.add_known_pattern(key, 3, BASE)
        ipd.on_index_access(key, 10, now=0)
        ipd.on_miss((10 << 2) + other_base, now=1)
        ipd.on_index_access(key, 25, now=2)
        detected = ipd.on_miss((25 << 2) + other_base, now=3)
        assert len(detected) == 1
        assert detected[0].base_addr == other_base
        assert detected[0].shift == 2

    def test_reset_clears_everything(self):
        ipd = make_ipd()
        ipd.on_index_access(("primary", 1), 10, now=0)
        ipd.add_known_pattern(("primary", 1), 3, BASE)
        ipd.reset()
        assert ipd.occupancy == 0
        assert ipd.known_patterns(("primary", 1)) == []
