"""Randomized equivalence: multi-attach vs the classic single-attach path.

The per-level attachment rework routed every explicit hierarchy through a
generalised multi-attach walk.  These tests pin its semantics to the two
paths that predate it:

* an explicit classic-geometry hierarchy whose single attachment is the
  mode's prefetcher must simulate **bit-identically** to the implicit
  ``hierarchy=None`` fast path (randomized access streams, several
  geometries, live prefetchers), and
* an attach list that names the prefetcher explicitly must be
  bit-identical to the legacy ``prefetch_level`` spelling and to the
  classic path (full workload runs).
"""

import random

import pytest

from repro.memory.hierarchy import MemorySystem
from repro.prefetchers.factory import make_prefetcher_factory
from repro.sim.config import (
    CacheConfig,
    HierarchyConfig,
    LevelConfig,
    PrefetcherAttach,
    SystemConfig,
)
from repro.sim.system import run_workload
from repro.workloads.synthetic import IndirectStreamWorkload

#: (l1 bytes, l1 assoc, total-L2 MB at 1 core, cores) — three distinct
#: geometries, including a single-core chip and a direct-mapped-ish L1.
GEOMETRIES = (
    (4 * 1024, 4, 0.0625, 4),
    (8 * 1024, 2, 0.125, 1),
    (16 * 1024, 4, 0.03125, 4),
)


def classic_config(l1_bytes, l1_assoc, l2_mb, cores) -> SystemConfig:
    return SystemConfig(n_cores=cores,
                        l1d=CacheConfig(size_bytes=l1_bytes,
                                        associativity=l1_assoc),
                        l2_total_mb_at_1core=l2_mb)


def explicit_hierarchy(config: SystemConfig,
                       prefetcher=None) -> HierarchyConfig:
    """The classic shape spelled as an explicit hierarchy, with its single
    attachment either inheriting the mode's prefetcher (``None``) or
    naming one explicitly."""
    resolved = config.resolved_hierarchy()
    return HierarchyConfig(
        levels=resolved.levels,
        attach=(PrefetcherAttach(level="l1", prefetcher=prefetcher),))


def random_stream(seed: int, cores: int, length: int = 3000):
    """A reproducible mixed demand stream (reads/writes, several PCs)."""
    rng = random.Random(seed)
    stream = []
    now = 0.0
    for _ in range(length):
        stream.append((rng.randrange(cores),
                       0x400 + (rng.randrange(48) << 3),
                       rng.randrange(0, 1 << 21),
                       rng.choice((4, 8, 64)),
                       rng.random() < 0.3,
                       now))
        now += rng.choice((1.0, 2.0, 3.0, 7.0))
    return stream


def drive(system: MemorySystem, stream):
    """Feed the stream through access_fast, collecting every outcome
    (copied: the hot path returns a reused scratch list)."""
    outcomes = []
    for core, pc, addr, size, is_write, now in stream:
        outcomes.append(tuple(system.access_fast(core, pc, addr, size,
                                                 is_write, now)))
    return outcomes


@pytest.mark.parametrize("geometry", GEOMETRIES)
@pytest.mark.parametrize("prefetcher", ["none", "stream", "ghb"])
def test_random_streams_match_classic_path(geometry, prefetcher):
    """Explicit single-attach hierarchy == implicit classic fast path, on
    randomized access streams: identical per-access outcomes and
    identical full statistics."""
    base = classic_config(*geometry)
    extended = base.with_hierarchy(explicit_hierarchy(base))
    stream = random_stream(seed=hash((geometry, prefetcher)) & 0xFFFF,
                           cores=base.n_cores)
    systems = [MemorySystem(cfg, prefetcher_factory=make_prefetcher_factory(
                   prefetcher))
               for cfg in (base, extended)]
    outcomes = [drive(system, stream) for system in systems]
    assert outcomes[0] == outcomes[1]
    assert systems[0].stats.to_dict() == systems[1].stats.to_dict()


@pytest.mark.parametrize("geometry", GEOMETRIES)
def test_workload_runs_match_classic_path(geometry):
    """Naming the prefetcher in the attach list (multi-attach machinery,
    explicitly resolved factory) must reproduce the classic inlined path
    bit-identically on full workload runs — for every stock prefetcher."""
    base = classic_config(*geometry)
    for prefetcher in ("none", "stream", "imp"):
        classic = run_workload(
            IndirectStreamWorkload(n_indices=512, n_data=2048, seed=3),
            base, prefetcher=prefetcher)
        hierarchy = explicit_hierarchy(base, prefetcher=prefetcher)
        # The mode-level spec is inert ("none"): the attach entry names
        # the prefetcher, exercising the named-factory resolution.
        attached = run_workload(
            IndirectStreamWorkload(n_indices=512, n_data=2048, seed=3),
            base.with_hierarchy(hierarchy), prefetcher="none")
        assert classic.stats.to_dict() == attached.stats.to_dict(), \
            f"multi-attach divergence: {prefetcher} @ {geometry}"


def test_legacy_prefetch_level_spelling_is_identical():
    """``prefetch_level: l2`` and ``attach: [{level: l2}]`` are one
    configuration: equal configs, equal digests, equal simulations."""
    levels = (
        LevelConfig(name="l1", size_bytes=4 * 1024, associativity=4),
        LevelConfig(name="l2", size_bytes=16 * 1024, associativity=8,
                    hit_latency=4),
        LevelConfig(name="l3", size_bytes=32 * 1024, associativity=8,
                    scope="shared", hit_latency=8),
    )
    legacy = HierarchyConfig(prefetch_level="l2", levels=levels)
    explicit = HierarchyConfig(attach=({"level": "l2"},), levels=levels)
    assert legacy == explicit
    config = classic_config(4 * 1024, 4, 0.0625, 4)
    runs = [run_workload(
        IndirectStreamWorkload(n_indices=512, n_data=2048, seed=3),
        config.with_hierarchy(hierarchy), prefetcher="imp")
        for hierarchy in (legacy, explicit)]
    assert runs[0].stats.to_dict() == runs[1].stats.to_dict()
