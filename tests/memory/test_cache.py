"""Unit tests for the set-associative cache model (repro.memory.cache)."""

import pytest

from repro.memory.cache import Cache, full_mask
from repro.sim.config import CacheConfig


def make_cache(size=1024, assoc=2, line=64, sector=0) -> Cache:
    return Cache(CacheConfig(size_bytes=size, associativity=assoc,
                             line_size=line, sector_size=sector))


class TestGeometry:
    def test_num_sets(self):
        cache = make_cache(size=1024, assoc=2, line=64)
        assert cache.num_sets == 8
        assert cache.capacity_lines == 16

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, associativity=3, line_size=64)

    def test_line_addr_and_tag(self):
        cache = make_cache()
        assert cache.line_addr(0x12345) == 0x12340
        assert cache.set_index(0x12340) == (0x12340 // 64) % cache.num_sets


class TestBasicAccess:
    def test_miss_then_fill_then_hit(self):
        cache = make_cache()
        result = cache.access(0x1000, 8, False, now=0)
        assert not result.hit
        cache.fill(0x1000, now=1, ready_time=10)
        result = cache.access(0x1008, 8, False, now=2)   # same line
        assert result.hit
        assert result.ready_time == 10

    def test_write_sets_dirty(self):
        cache = make_cache()
        cache.fill(0x1000, now=0, ready_time=0)
        cache.access(0x1000, 8, True, now=1)
        assert cache.probe(0x1000).dirty

    def test_different_lines_do_not_alias(self):
        cache = make_cache()
        cache.fill(0x1000, now=0, ready_time=0)
        assert not cache.access(0x2000, 8, False, now=1).hit

    def test_statistics_counted(self):
        cache = make_cache()
        cache.access(0x1000, 8, False, now=0)
        cache.fill(0x1000, now=0, ready_time=0)
        cache.access(0x1000, 8, False, now=1)
        assert cache.accesses == 2
        assert cache.misses == 1
        assert cache.hits == 1


class TestReplacement:
    def test_lru_eviction_within_set(self):
        cache = make_cache(size=256, assoc=2, line=64)   # 2 sets
        set_stride = cache.num_sets * 64
        a, b, c = 0x0, set_stride, 2 * set_stride        # all map to set 0
        cache.fill(a, now=0, ready_time=0)
        cache.fill(b, now=1, ready_time=1)
        cache.access(a, 8, False, now=2)                 # a is now MRU
        result = cache.fill(c, now=3, ready_time=3)
        assert result.evicted is not None
        assert result.evicted.addr == b                  # LRU victim
        assert cache.probe(a) is not None
        assert cache.probe(b) is None

    def test_occupancy_never_exceeds_capacity(self):
        cache = make_cache(size=512, assoc=2, line=64)
        for i in range(100):
            cache.fill(i * 64, now=i, ready_time=i)
        assert cache.occupancy() <= cache.capacity_lines

    def test_unused_prefetch_eviction_counted(self):
        cache = make_cache(size=128, assoc=1, line=64)   # 2 sets, direct mapped
        cache.fill(0x0, now=0, ready_time=0, is_prefetch=True)
        cache.fill(0x80, now=1, ready_time=1)            # evicts the prefetch
        assert cache.unused_prefetch_evictions == 1

    def test_invalidate_removes_line(self):
        cache = make_cache()
        cache.fill(0x1000, now=0, ready_time=0)
        victim = cache.invalidate(0x1000)
        assert victim is not None
        assert cache.probe(0x1000) is None
        assert cache.invalidate(0x1000) is None


class TestPrefetchTracking:
    def test_first_demand_touch_of_prefetched_line_flagged(self):
        cache = make_cache()
        cache.fill(0x1000, now=0, ready_time=5, is_prefetch=True)
        first = cache.access(0x1000, 8, False, now=1)
        second = cache.access(0x1000, 8, False, now=2)
        assert first.was_prefetched
        assert not second.was_prefetched

    def test_demand_fill_not_flagged_as_prefetch(self):
        cache = make_cache()
        cache.fill(0x1000, now=0, ready_time=0, is_prefetch=False)
        assert not cache.access(0x1000, 8, False, now=1).was_prefetched


class TestSectorCache:
    def test_sector_mask_computation(self):
        cache = make_cache(sector=8)
        assert cache.sector_mask(0x1000, 8) == 0b1
        assert cache.sector_mask(0x1008, 8) == 0b10
        assert cache.sector_mask(0x1000, 64) == full_mask(8)
        assert cache.sector_mask(0x1006, 8) == 0b11    # spans two sectors

    def test_partial_fill_then_sector_miss(self):
        cache = make_cache(sector=8)
        cache.fill(0x1000, now=0, ready_time=0, sectors=0b1)
        hit = cache.access(0x1000, 8, False, now=1)
        assert hit.hit
        miss = cache.access(0x1020, 8, False, now=2)   # sector 4 not present
        assert not miss.hit
        assert miss.sector_miss
        assert cache.sector_misses == 1

    def test_sector_fill_extends_existing_line(self):
        cache = make_cache(sector=8)
        cache.fill(0x1000, now=0, ready_time=0, sectors=0b1)
        cache.fill(0x1020, now=1, ready_time=1, sectors=0b10000)
        line = cache.probe(0x1000)
        assert line.sector_valid == 0b10001
        assert cache.access(0x1020, 8, False, now=2).hit

    def test_touched_sectors_recorded_on_hits(self):
        cache = make_cache(sector=8)
        cache.fill(0x1000, now=0, ready_time=0)
        cache.access(0x1000, 8, False, now=1)
        cache.access(0x1018, 8, False, now=2)
        assert cache.probe(0x1000).sector_touched == 0b1001

    def test_non_sectored_cache_has_single_sector(self):
        cache = make_cache(sector=0)
        assert cache.sectors_per_line == 1
        assert cache.sector_mask(0x1000, 8) == 0b1
