"""Unit tests for the DRAM models (repro.memory.dram)."""

import pytest

from repro.memory.dram import BankedDram, SimpleDram, make_dram
from repro.sim.config import DramConfig


class TestSimpleDram:
    def test_unloaded_latency_is_base_latency_plus_transfer(self):
        dram = SimpleDram(DramConfig(), n_controllers=2)
        done = dram.access(0, addr=0x1000, nbytes=64, now=100)
        assert done == pytest.approx(100 + 100 + 64 / 10.0)

    def test_bandwidth_limit_serialises_back_to_back_requests(self):
        config = DramConfig(latency_cycles=100, bandwidth_bytes_per_cycle=10.0)
        dram = SimpleDram(config, n_controllers=1)
        first = dram.access(0, 0x0, 64, now=0)
        second = dram.access(0, 0x40, 64, now=0)
        assert second == pytest.approx(first + 6.4)

    def test_controllers_are_independent(self):
        dram = SimpleDram(DramConfig(), n_controllers=2)
        first = dram.access(0, 0x0, 64, now=0)
        other = dram.access(1, 0x40, 64, now=0)
        assert other == pytest.approx(first)     # no cross-controller queueing

    def test_minimum_access_granularity_enforced(self):
        dram = SimpleDram(DramConfig(access_granularity=32), n_controllers=1)
        dram.access(0, 0x0, 8, now=0)
        assert dram.traffic.dram_bytes == 32

    def test_traffic_accounting(self):
        dram = SimpleDram(DramConfig(), n_controllers=1)
        dram.access(0, 0x0, 64, now=0)
        dram.access(0, 0x40, 32, now=10)
        assert dram.traffic.dram_requests == 2
        assert dram.traffic.dram_bytes == 96

    def test_out_of_range_controller_rejected(self):
        dram = SimpleDram(DramConfig(), n_controllers=2)
        with pytest.raises(ValueError):
            dram.access(2, 0x0, 64, now=0)

    def test_reset_contention_clears_queues(self):
        dram = SimpleDram(DramConfig(), n_controllers=1)
        for i in range(50):
            dram.access(0, i * 64, 64, now=0)
        dram.reset_contention()
        done = dram.access(0, 0x0, 64, now=0)
        assert done == pytest.approx(100 + 6.4)


class TestBankedDram:
    def test_row_hit_faster_than_row_miss(self):
        config = DramConfig(model="banked")
        dram = BankedDram(config, n_controllers=1)
        first = dram.access(0, 0x0, 64, now=0)          # row miss (activate)
        second = dram.access(0, 0x40, 64, now=first)    # same row: hit
        first_latency = first - 0
        second_latency = second - first
        assert second_latency < first_latency

    def test_bank_conflict_serialises(self):
        config = DramConfig(model="banked", row_size=2048, banks_per_rank=8)
        dram = BankedDram(config, n_controllers=1)
        # Two different rows mapping to the same bank (row % banks).
        addr_a = 0
        addr_b = 8 * 2048                                # row 8 -> bank 0
        first = dram.access(0, addr_a, 64, now=0)
        second = dram.access(0, addr_b, 64, now=0)
        assert second > first

    def test_different_banks_overlap(self):
        config = DramConfig(model="banked")
        dram = BankedDram(config, n_controllers=1)
        first = dram.access(0, 0 * 2048, 64, now=0)      # bank 0
        second = dram.access(0, 1 * 2048, 64, now=0)     # bank 1
        # Only the shared data bus serialises them, not the full access.
        assert second - first < (config.t_rp + config.t_rcd + config.t_cas)

    def test_channel_utilization_grows_with_traffic(self):
        dram = BankedDram(DramConfig(model="banked"), n_controllers=1)
        assert dram.channel_utilization(100) == 0.0
        for i in range(10):
            dram.access(0, i * 64, 64, now=0)
        assert dram.channel_utilization(100) > 0.0


class TestFactory:
    def test_make_dram_dispatches_on_model(self):
        assert isinstance(make_dram(DramConfig(model="simple"), 1), SimpleDram)
        assert isinstance(make_dram(DramConfig(model="banked"), 1), BankedDram)
        with pytest.raises(ValueError):
            make_dram(DramConfig(model="nonsense"), 1)
