"""Tests for explicit cache hierarchies (HierarchyConfig + the extended
MemorySystem level chain)."""

import pytest

from repro.memory.hierarchy import MemorySystem
from repro.prefetchers.base import PrefetchRequest
from repro.sim.config import (
    CacheConfig,
    HierarchyConfig,
    LevelConfig,
    PrefetcherAttach,
    SystemConfig,
)
from repro.sim.trace import AccessKind, MemRef


def three_level(prefetch_level="l2") -> HierarchyConfig:
    return HierarchyConfig(prefetch_level=prefetch_level, levels=(
        LevelConfig(name="l1", size_bytes=4 * 1024, associativity=4,
                    hit_latency=1),
        LevelConfig(name="l2", size_bytes=16 * 1024, associativity=8,
                    hit_latency=4),
        LevelConfig(name="l3", size_bytes=32 * 1024, associativity=8,
                    scope="shared", hit_latency=8),
    ))


def make_config(hierarchy=None, **overrides) -> SystemConfig:
    defaults = dict(n_cores=4,
                    l1d=CacheConfig(size_bytes=4 * 1024, associativity=4),
                    l2_total_mb_at_1core=0.0625,
                    hierarchy=hierarchy)
    defaults.update(overrides)
    return SystemConfig(**defaults)


def ref(addr, pc=0x400, write=False, size=8) -> MemRef:
    return MemRef(pc=pc, addr=addr, size=size, is_write=write,
                  kind=AccessKind.OTHER)


class TestHierarchyConfigValidation:
    def test_needs_two_levels(self):
        with pytest.raises(ValueError, match="at least two levels"):
            HierarchyConfig(levels=(
                LevelConfig(name="l1", size_bytes=4096, associativity=4,
                            scope="shared"),))

    def test_last_level_must_be_shared(self):
        with pytest.raises(ValueError, match="must be shared"):
            HierarchyConfig(levels=(
                LevelConfig(name="l1", size_bytes=4096, associativity=4),
                LevelConfig(name="l2", size_bytes=8192, associativity=8),))

    def test_only_last_level_may_be_shared(self):
        with pytest.raises(ValueError, match="only the last"):
            HierarchyConfig(levels=(
                LevelConfig(name="l1", size_bytes=4096, associativity=4,
                            scope="shared"),
                LevelConfig(name="l2", size_bytes=8192, associativity=8,
                            scope="shared"),))

    def test_duplicate_level_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            HierarchyConfig(levels=(
                LevelConfig(name="l1", size_bytes=4096, associativity=4),
                LevelConfig(name="l1", size_bytes=8192, associativity=8,
                            scope="shared"),))

    def test_line_sizes_must_agree(self):
        with pytest.raises(ValueError, match="line size"):
            HierarchyConfig(levels=(
                LevelConfig(name="l1", size_bytes=4096, associativity=4,
                            line_size=32),
                LevelConfig(name="l2", size_bytes=8192, associativity=8,
                            scope="shared"),))

    def test_prefetch_level_must_be_private(self):
        with pytest.raises(ValueError, match="private level"):
            three_level(prefetch_level="l3")

    def test_bad_scope_rejected(self):
        with pytest.raises(ValueError, match="scope"):
            LevelConfig(name="l1", size_bytes=4096, associativity=4,
                        scope="global")

    def test_dict_levels_coerced(self):
        hierarchy = HierarchyConfig(levels=(
            {"name": "l1", "size_bytes": 4096, "associativity": 4},
            {"name": "l2", "size_bytes": 8192, "associativity": 8,
             "scope": "shared"},
        ))
        assert all(isinstance(lvl, LevelConfig) for lvl in hierarchy.levels)

    def test_roundtrip_through_dict(self):
        hierarchy = three_level()
        assert HierarchyConfig.from_dict(hierarchy.to_dict()) == hierarchy

    def test_helpers(self):
        hierarchy = three_level()
        assert hierarchy.level_names() == ["l1", "l2", "l3"]
        assert hierarchy.shared_level.name == "l3"
        assert [lvl.name for lvl in hierarchy.private_levels] == ["l1", "l2"]
        # The legacy prefetch_level spelling normalises into the attach
        # list (and the field itself is normalised away).
        assert hierarchy.attach == (PrefetcherAttach(level="l2"),)
        assert hierarchy.prefetch_level is None
        assert hierarchy.level_index("l2") == 1
        assert hierarchy.private_attaches == hierarchy.attach
        assert hierarchy.shared_attaches == ()

    def test_attach_spelling_equals_legacy_spelling(self):
        legacy = three_level(prefetch_level="l2")
        explicit = HierarchyConfig(attach=({"level": "l2"},),
                                   levels=legacy.levels)
        assert legacy == explicit
        assert hash(legacy) == hash(explicit)


class TestSystemConfigIntegration:
    def test_resolved_hierarchy_for_classic_shape(self):
        config = make_config()
        resolved = config.resolved_hierarchy()
        assert resolved.level_names() == ["l1", "l2"]
        assert resolved.shared_level.scope == "shared"
        assert resolved.shared_level.size_bytes == config.l2_slice_bytes
        assert resolved.attach == (PrefetcherAttach(level="l1"),)

    def test_resolved_hierarchy_passthrough(self):
        hierarchy = three_level()
        config = make_config(hierarchy=hierarchy)
        assert config.resolved_hierarchy() is hierarchy

    def test_serialisation_roundtrip(self):
        config = make_config(hierarchy=three_level())
        rebuilt = SystemConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.hierarchy == config.hierarchy

    def test_serialisation_roundtrip_without_hierarchy(self):
        config = make_config()
        rebuilt = SystemConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.hierarchy is None


class TestExtendedMemorySystem:
    def test_levels_constructed(self):
        system = MemorySystem(make_config(hierarchy=three_level()))
        assert len(system._private_caches) == 2
        assert len(system._private_caches[0]) == 4
        assert len(system._private_caches[1]) == 4
        assert system.l1 is system._private_caches[0]
        # Shared slices take the l2 attribute (the fetch path's home-tile
        # machinery); their geometry is the l3 LevelConfig's.
        assert system.l2[0].config.size_bytes == 32 * 1024

    def test_miss_walks_all_levels_and_hits_dram(self):
        system = MemorySystem(make_config(hierarchy=three_level()))
        outcome = system.access(0, ref(0x10000), now=0)
        assert not outcome.l1_hit
        stats = system.stats.cores[0]
        assert stats.l2_misses == 1       # private L2
        assert stats.l3_misses == 1       # shared L3
        assert system.stats.traffic.dram_bytes > 0

    def test_l1_hit_after_fill(self):
        system = MemorySystem(make_config(hierarchy=three_level()))
        first = system.access(0, ref(0x10000), now=0)
        second = system.access(0, ref(0x10008), now=first.latency + 1)
        assert second.l1_hit
        assert second.latency == pytest.approx(1)

    def test_private_l2_hit_cheaper_than_l3(self):
        hierarchy = three_level()
        config = make_config(hierarchy=hierarchy)
        system = MemorySystem(config)
        system.access(0, ref(0x20000), now=0)
        # Evict the line from the small L1 by covering every set with
        # conflicting lines; the larger private L2 keeps it.
        l1 = system.l1[0]
        stride = l1.num_sets * l1.line_size
        for way in range(1, l1.assoc + 2):
            system.access(0, ref(0x20000 + way * stride), now=1000 + way)
        warm = system.access(0, ref(0x20000), now=10_000)
        assert not warm.l1_hit
        assert warm.l2_hit
        # Latency: L1 probe + private L2 hit, no NoC round trip.
        assert warm.latency == pytest.approx(1 + 4)
        assert system.stats.cores[0].l2_hits >= 1

    def test_shared_l3_hit_counted(self):
        system = MemorySystem(make_config(hierarchy=three_level()))
        cold = system.access(0, ref(0x30000), now=0)
        # A different core misses privately but hits the shared L3.
        warm = system.access(1, ref(0x30000), now=cold.latency + 10)
        assert not warm.l1_hit
        assert warm.l2_hit     # satisfied on-chip
        assert system.stats.cores[1].l3_hits == 1
        assert warm.latency < cold.latency

    def test_prefetch_fills_attachment_level_only(self):
        system = MemorySystem(make_config(hierarchy=three_level()))
        completion = system.issue_prefetch(
            0, PrefetchRequest(addr=0x40000), now=0)
        assert completion > 0
        # The line sits in the private L2 (the attachment level), not L1.
        assert system._private_caches[1][0].probe(0x40000) is not None
        assert system.l1[0].probe(0x40000) is None
        outcome = system.access(0, ref(0x40000), now=completion + 1)
        assert not outcome.l1_hit
        assert outcome.covered_by_prefetch
        assert system.stats.cores[0].prefetches_useful == 1

    def test_duplicate_prefetch_not_recounted(self):
        system = MemorySystem(make_config(hierarchy=three_level()))
        system.issue_prefetch(0, PrefetchRequest(addr=0x50000), now=0)
        before = system.stats.cores[0].prefetches_issued
        system.issue_prefetch(0, PrefetchRequest(addr=0x50000), now=1)
        assert system.stats.cores[0].prefetches_issued == before

    def test_dirty_l1_eviction_writes_back_into_l2(self):
        system = MemorySystem(make_config(hierarchy=three_level()))
        system.access(0, ref(0x0, write=True), now=0)
        l1 = system.l1[0]
        stride = l1.num_sets * l1.line_size
        noc_before = system.stats.traffic.noc_bytes
        for way in range(1, l1.assoc + 2):
            system.access(0, ref(way * stride), now=100 + way)
        # The dirty line moved into the private L2 locally: the write-back
        # itself must not have crossed the NoC (fills for the new lines
        # do).  The line must still be dirty somewhere private.
        l2_line = system._private_caches[1][0].probe(0x0)
        assert l2_line is not None and l2_line.dirty
        assert system.stats.traffic.noc_bytes >= noc_before

    def test_ideal_memory_short_circuits(self):
        system = MemorySystem(make_config(hierarchy=three_level(),
                                          ideal_memory=True))
        for index in range(20):
            outcome = system.access(0, ref(0x60000 + index * 64), now=index)
            assert outcome.l1_hit
            assert outcome.latency == 1
        assert system.stats.traffic.dram_bytes == 0


class TestInclusionAndCoherence:
    def test_outer_eviction_back_invalidates_inner_levels(self):
        """A line evicted from the outermost private level must leave the
        inner levels too: the directory stops tracking this core, so a
        surviving L1 copy would go stale under remote writes."""
        system = MemorySystem(make_config(hierarchy=three_level()))
        system.access(0, ref(0x70000), now=0)
        l1 = system.l1[0]
        l2 = system._private_caches[1][0]
        stride = l2.num_sets * l2.line_size
        # Fill the L2 set with conflicting lines while keeping 0x70000 MRU
        # in the L1 (so only back-invalidation can remove it from there).
        for way in range(1, l2.assoc):
            system.access(0, ref(0x70000 + way * stride), now=100 + way)
            system.access(0, ref(0x70008), now=200 + way)
        assert l1.probe(0x70000) is not None
        system.access(0, ref(0x70000 + l2.assoc * stride), now=1000)
        assert l2.probe(0x70000) is None
        assert l1.probe(0x70000) is None

    def test_four_level_chain_is_legal(self):
        """Chains deeper than three levels are supported: levels past the
        third account into CoreStats' dynamic lN_* counters."""
        hierarchy = HierarchyConfig(prefetch_level="l2", levels=(
            LevelConfig(name="l1", size_bytes=4096, associativity=4),
            LevelConfig(name="l2", size_bytes=8192, associativity=8,
                        hit_latency=2),
            LevelConfig(name="l3", size_bytes=8192, associativity=8,
                        hit_latency=4),
            LevelConfig(name="l4", size_bytes=16384, associativity=8,
                        scope="shared", hit_latency=8),))
        system = MemorySystem(make_config(hierarchy=hierarchy))
        outcome = system.access(0, ref(0x90000), now=0)
        assert not outcome.l1_hit
        stats = system.stats.cores[0]
        assert stats.l2_misses == 1              # private L2
        assert stats.l3_misses == 1              # private L3
        assert stats.level_misses(4) == 1        # shared L4 (dynamic key)
        assert stats.extra_levels == {"l4_misses": 1}
        # A second core's fetch finds the line in the shared L4.
        system.access(1, ref(0x90000), now=10_000)
        assert system.stats.cores[1].level_hits(4) == 1

    def test_l1_attached_prefetch_fills_outer_levels_too(self):
        """With the prefetcher at L1 in a 3-level chain, prefetches must
        install in the private L2 as well (inclusion): a line resident
        only in L1 would escape the directory's outermost-level
        bookkeeping on eviction."""
        system = MemorySystem(make_config(
            hierarchy=three_level(prefetch_level="l1")))
        completion = system.issue_prefetch(
            0, PrefetchRequest(addr=0x80000), now=0)
        assert completion > 0
        assert system.l1[0].probe(0x80000) is not None
        assert system._private_caches[1][0].probe(0x80000) is not None
