"""Unit tests for the ACKwise-style directory (repro.memory.coherence)."""

import pytest

from repro.memory.coherence import Directory, LineState

LINE = 0x4000
LINE_SIZE = 64
N_CORES = 16


def make_directory(pointers: int = 4) -> Directory:
    return Directory(home_tile=0, max_pointers=pointers)


class TestReads:
    def test_first_read_creates_shared_entry(self):
        directory = make_directory()
        action = directory.read(LINE, requester=3, n_cores=N_CORES,
                                line_size=LINE_SIZE)
        entry = directory.lookup(LINE)
        assert entry.state is LineState.SHARED
        assert 3 in entry.sharers
        assert action.extra_hops_messages == []

    def test_read_of_modified_line_fetches_from_owner(self):
        directory = make_directory()
        directory.write(LINE, requester=2, n_cores=N_CORES, line_size=LINE_SIZE)
        action = directory.read(LINE, requester=5, n_cores=N_CORES,
                                line_size=LINE_SIZE)
        assert action.writeback
        # Control message to the owner plus the data write-back.
        destinations = [dst for _, dst, _ in action.extra_hops_messages]
        assert 2 in destinations
        entry = directory.lookup(LINE)
        assert entry.state is LineState.SHARED
        assert {2, 5} <= entry.sharers

    def test_owner_rereading_its_own_line_is_free(self):
        directory = make_directory()
        directory.write(LINE, requester=2, n_cores=N_CORES, line_size=LINE_SIZE)
        action = directory.read(LINE, requester=2, n_cores=N_CORES,
                                line_size=LINE_SIZE)
        assert not action.writeback


class TestWrites:
    def test_write_invalidates_sharers(self):
        directory = make_directory()
        for core in (1, 2, 3):
            directory.read(LINE, core, N_CORES, LINE_SIZE)
        action = directory.write(LINE, requester=1, n_cores=N_CORES,
                                 line_size=LINE_SIZE)
        assert action.invalidations == 2            # cores 2 and 3
        assert not action.broadcast
        entry = directory.lookup(LINE)
        assert entry.state is LineState.MODIFIED
        assert entry.owner == 1
        assert entry.sharers == {1}

    def test_ackwise_broadcast_after_pointer_overflow(self):
        directory = make_directory(pointers=4)
        for core in range(6):                       # more sharers than pointers
            directory.read(LINE, core, N_CORES, LINE_SIZE)
        entry = directory.lookup(LINE)
        assert entry.overflowed
        action = directory.write(LINE, requester=0, n_cores=N_CORES,
                                 line_size=LINE_SIZE)
        assert action.broadcast
        # Broadcast goes to every other core, not just known sharers.
        assert action.invalidations == N_CORES - 1
        assert directory.traffic.broadcasts == 1

    def test_write_to_modified_line_fetches_from_previous_owner(self):
        directory = make_directory()
        directory.write(LINE, requester=2, n_cores=N_CORES, line_size=LINE_SIZE)
        action = directory.write(LINE, requester=7, n_cores=N_CORES,
                                 line_size=LINE_SIZE)
        assert action.writeback
        assert directory.lookup(LINE).owner == 7

    def test_invalidation_traffic_counted(self):
        directory = make_directory()
        for core in (1, 2, 3, 4):
            directory.read(LINE, core, N_CORES, LINE_SIZE)
        directory.write(LINE, requester=1, n_cores=N_CORES, line_size=LINE_SIZE)
        assert directory.traffic.invalidations == 3


class TestEvictions:
    def test_eviction_removes_sharer(self):
        directory = make_directory()
        directory.read(LINE, 1, N_CORES, LINE_SIZE)
        directory.read(LINE, 2, N_CORES, LINE_SIZE)
        directory.evict(LINE, 1)
        entry = directory.lookup(LINE)
        assert entry.sharers == {2}

    def test_eviction_of_owner_clears_ownership(self):
        directory = make_directory()
        directory.write(LINE, requester=1, n_cores=N_CORES, line_size=LINE_SIZE)
        directory.evict(LINE, 1)
        entry = directory.lookup(LINE)
        assert entry.owner is None

    def test_eviction_of_untracked_line_is_noop(self):
        directory = make_directory()
        directory.evict(0x9999, 1)              # must not raise
        assert directory.tracked_lines() == 0

    def test_last_eviction_invalidates_entry(self):
        directory = make_directory()
        directory.read(LINE, 1, N_CORES, LINE_SIZE)
        directory.evict(LINE, 1)
        assert directory.lookup(LINE).state is LineState.INVALID
