"""Integration-level tests for the full memory hierarchy
(repro.memory.hierarchy.MemorySystem)."""

import numpy as np
import pytest

from repro.core import IMP, IMPConfig
from repro.mem_image import MemoryImage
from repro.memory.hierarchy import MemorySystem
from repro.prefetchers.base import PrefetchRequest
from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.trace import AccessKind, MemRef


def make_config(**overrides) -> SystemConfig:
    defaults = dict(n_cores=4,
                    l1d=CacheConfig(size_bytes=4 * 1024, associativity=4),
                    l2_total_mb_at_1core=0.0625)
    defaults.update(overrides)
    return SystemConfig(**defaults)


def make_system(**overrides) -> MemorySystem:
    return MemorySystem(make_config(**overrides))


def ref(addr: int, pc: int = 0x400, write: bool = False, size: int = 8) -> MemRef:
    return MemRef(pc=pc, addr=addr, size=size, is_write=write,
                  kind=AccessKind.OTHER)


class TestDemandPath:
    def test_cold_miss_then_hit(self):
        system = make_system()
        first = system.access(0, ref(0x10000), now=0)
        assert not first.l1_hit
        assert first.latency > 1
        second = system.access(0, ref(0x10008), now=first.latency + 1)
        assert second.l1_hit
        assert second.latency == pytest.approx(1)

    def test_l2_hit_faster_than_dram(self):
        system = make_system()
        cold = system.access(0, ref(0x20000), now=0)       # DRAM fill
        # Another core misses in its L1 but hits the shared L2.
        warm = system.access(1, ref(0x20000), now=cold.latency + 10)
        assert not warm.l1_hit
        assert warm.l2_hit
        assert warm.latency < cold.latency

    def test_miss_counts_recorded_per_core(self):
        system = make_system()
        system.access(2, ref(0x30000), now=0)
        stats = system.stats.cores[2]
        assert system.l1[2].misses == 1
        assert stats.l2_misses == 1

    def test_ideal_memory_mode_never_misses(self):
        system = make_system(ideal_memory=True)
        for i in range(50):
            outcome = system.access(0, ref(0x40000 + i * 64), now=i)
            assert outcome.l1_hit
            assert outcome.latency == 1
        assert system.stats.traffic.dram_bytes == 0
        assert system.stats.traffic.noc_messages == 0

    def test_perfect_prefetch_hides_latency_when_bandwidth_available(self):
        system = make_system(perfect_prefetch=True)
        outcome = system.access(0, ref(0x50000), now=10_000)
        assert outcome.latency <= system.config.l1d.hit_latency + 1
        # Traffic is still generated (finite bandwidth is the whole point).
        assert system.stats.traffic.dram_bytes > 0

    def test_dirty_eviction_writes_back(self):
        config = make_config(l1d=CacheConfig(size_bytes=128, associativity=1,
                                             line_size=64))
        system = MemorySystem(config)
        set_stride = system.l1[0].num_sets * 64
        system.access(0, ref(0x0, write=True), now=0)
        before = system.stats.traffic.noc_bytes
        system.access(0, ref(set_stride), now=1000)   # evicts the dirty line
        after = system.stats.traffic.noc_bytes
        assert after > before


class TestPrefetchPath:
    def test_prefetch_installs_line_and_later_access_hits(self):
        system = make_system()
        completion = system.issue_prefetch(0, PrefetchRequest(addr=0x60000),
                                           now=0)
        assert completion > 0
        outcome = system.access(0, ref(0x60000), now=completion + 1)
        assert outcome.l1_hit
        assert outcome.covered_by_prefetch
        assert system.stats.cores[0].prefetches_useful == 1

    def test_late_prefetch_pays_remaining_latency(self):
        system = make_system()
        completion = system.issue_prefetch(0, PrefetchRequest(addr=0x70000),
                                           now=0)
        outcome = system.access(0, ref(0x70000), now=1)   # long before done
        assert outcome.l1_hit
        assert outcome.late_prefetch_cycles == pytest.approx(completion - 1)
        assert outcome.latency > 1

    def test_duplicate_prefetch_of_resident_line_not_counted(self):
        system = make_system()
        system.issue_prefetch(0, PrefetchRequest(addr=0x80000), now=0)
        issued_before = system.stats.cores[0].prefetches_issued
        system.issue_prefetch(0, PrefetchRequest(addr=0x80000), now=1)
        assert system.stats.cores[0].prefetches_issued == issued_before

    def test_indirect_prefetches_counted_separately(self):
        system = make_system()
        system.issue_prefetch(0, PrefetchRequest(addr=0x90000, is_indirect=True),
                              now=0)
        system.issue_prefetch(0, PrefetchRequest(addr=0xA0000, is_indirect=False),
                              now=0)
        stats = system.stats.cores[0]
        assert stats.indirect_prefetches_issued == 1
        assert stats.stream_prefetches_issued == 1

    def test_software_prefetch_counts_and_installs(self):
        system = make_system()
        system.software_prefetch(0, 0xB0000, now=0)
        assert system.stats.cores[0].sw_prefetches_issued == 1
        assert system.l1[0].probe(0xB0000) is not None


class TestPartialAccessing:
    def test_partial_prefetch_moves_fewer_noc_bytes(self):
        full_system = make_system()
        partial_system = make_system(partial_noc=True, partial_dram=True)
        # Pick an address whose home L2 slice is a remote tile so the data
        # response actually crosses the mesh.
        addr = 0xC0000
        while full_system.home_tile(addr) == 0:
            addr += 64
        full_system.issue_prefetch(0, PrefetchRequest(addr=addr, size=64,
                                                      is_indirect=True), now=0)
        partial_system.issue_prefetch(0, PrefetchRequest(addr=addr, size=8,
                                                         is_indirect=True), now=0)
        assert (partial_system.stats.traffic.noc_bytes
                < full_system.stats.traffic.noc_bytes)
        assert (partial_system.stats.traffic.dram_bytes
                <= full_system.stats.traffic.dram_bytes)

    def test_partial_prefetch_installs_only_requested_sectors(self):
        system = make_system(partial_noc=True, partial_dram=True)
        system.issue_prefetch(0, PrefetchRequest(addr=0xD0000, size=8,
                                                 is_indirect=True), now=0)
        line = system.l1[0].probe(0xD0000)
        assert line is not None
        assert line.sector_valid == 0b1
        # An access to an absent sector is a sector miss.
        outcome = system.access(0, ref(0xD0020), now=1_000)
        assert not outcome.l1_hit

    def test_dram_granularity_respected_for_partial_fetches(self):
        system = make_system(partial_noc=True, partial_dram=True)
        system.issue_prefetch(0, PrefetchRequest(addr=0xE0000, size=8,
                                                 is_indirect=True), now=0)
        # 8 bytes requested, but DRAM moves at least one 32-byte burst.
        assert system.stats.traffic.dram_bytes == 32


class TestCoherenceIntegration:
    def test_write_after_remote_read_generates_invalidation(self):
        system = make_system()
        system.access(0, ref(0xF0000), now=0)
        system.access(1, ref(0xF0000), now=100)
        before = system.stats.traffic.invalidations
        system.access(2, ref(0xF0000, write=True), now=200)
        assert system.stats.traffic.invalidations > before

    def test_read_after_remote_write_triggers_owner_writeback(self):
        system = make_system()
        system.access(0, ref(0x110000, write=True), now=0)
        messages_before = system.stats.traffic.noc_messages
        outcome = system.access(1, ref(0x110000), now=500)
        assert system.stats.traffic.noc_messages > messages_before + 2
        assert not outcome.l1_hit


class TestAddressMapping:
    def test_home_tiles_cover_all_tiles(self):
        system = make_system()
        homes = {system.home_tile(i * 64) for i in range(64)}
        assert homes == set(range(system.config.n_cores))

    def test_memory_controller_mapping_stable(self):
        system = make_system()
        index, tile = system.memory_controller(0x12345)
        assert 0 <= index < system.config.num_memory_controllers
        assert tile in system.config.memory_controller_tiles()
        assert system.memory_controller(0x12345) == (index, tile)


class TestIMPIntegration:
    def test_imp_attached_to_hierarchy_detects_and_prefetches(self):
        rng = np.random.default_rng(1)
        image = MemoryImage()
        image.add_array("B", rng.integers(0, 4096, 512, dtype=np.int32))
        image.add_array("A", np.zeros(4096, dtype=np.float64))
        config = make_config()
        imp_config = IMPConfig()
        system = MemorySystem(config, image,
                              prefetcher_factory=lambda c: IMP(imp_config, image))
        indices = image.data("B")
        now = 0.0
        for i in range(256):
            out1 = system.access(0, MemRef(pc=0x500, addr=image.addr_of("B", i),
                                           size=4, kind=AccessKind.INDEX), now)
            now += out1.latency
            out2 = system.access(0, MemRef(pc=0x508,
                                           addr=image.addr_of("A", int(indices[i])),
                                           kind=AccessKind.INDIRECT), now)
            now += out2.latency
        imp = system.prefetchers[0]
        assert imp.patterns_detected >= 1
        assert system.stats.cores[0].indirect_prefetches_issued > 0
        assert system.stats.cores[0].prefetch_covered_misses > 0
