"""Equivalence tests: flat-column cache vs the object-per-line reference.

The flat-array rewrite of :class:`repro.memory.cache.Cache` must be a pure
representation change.  ``ReferenceCache`` below re-implements the
pre-rewrite semantics — one ``{tag: CacheLine}`` dict per set, true-LRU
victim selection via ``min(..., key=last_use)`` over the dict's insertion
order — and randomized access/fill/invalidate streams drive both
implementations in lockstep, asserting bit-identical outcomes: hit/miss
results, LRU victim order, sector-mask fills, dirty write-back state,
statistics counters and the introspection API.
"""

import random

import pytest

from repro.memory.cache import Cache
from repro.sim.config import CacheConfig


class _RefLine:
    __slots__ = ("tag", "addr", "dirty", "ready_time", "last_use",
                 "from_prefetch", "prefetch_referenced", "sector_valid",
                 "sector_touched")

    def __init__(self, tag, addr, ready_time, last_use, from_prefetch,
                 sector_valid):
        self.tag = tag
        self.addr = addr
        self.dirty = False
        self.ready_time = ready_time
        self.last_use = last_use
        self.from_prefetch = from_prefetch
        self.prefetch_referenced = False
        self.sector_valid = sector_valid
        self.sector_touched = 0


class ReferenceCache:
    """The pre-flat-column cache model (dict of line objects per set)."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.line_size = config.line_size
        self.num_sets = config.num_sets
        self.assoc = config.associativity
        self.sector_size = config.sector_size
        self.sectors_per_line = config.sectors_per_line
        self._sets = [dict() for _ in range(self.num_sets)]
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.sector_misses = 0
        self.evictions = 0
        self.prefetch_fills = 0
        self.unused_prefetch_evictions = 0

    # -- address helpers (division forms: work for any geometry) --------
    def line_addr(self, addr):
        return addr - (addr % self.line_size)

    def set_index(self, addr):
        return (addr // self.line_size) % self.num_sets

    def tag_of(self, addr):
        return addr // (self.line_size * self.num_sets)

    def sector_mask(self, addr, size):
        if not self.sector_size:
            return 1
        offset = addr % self.line_size
        first = offset // self.sector_size
        last = min(self.line_size - 1,
                   offset + max(1, size) - 1) // self.sector_size
        return ((1 << (last - first + 1)) - 1) << first

    def _full_mask(self):
        return (1 << self.sectors_per_line) - 1

    # -- operations -----------------------------------------------------
    def access_fast(self, addr, size, is_write, now):
        self.accesses += 1
        line = self._sets[self.set_index(addr)].get(self.tag_of(addr))
        if line is None:
            self.misses += 1
            return None
        if self.sector_size:
            mask = self.sector_mask(addr, size)
            if (line.sector_valid & mask) != mask:
                self.sector_misses += 1
                self.misses += 1
                return None
        else:
            mask = 1
        self.hits += 1
        line.last_use = now
        line.sector_touched |= mask
        if is_write:
            line.dirty = True
        if line.from_prefetch:
            was_prefetched = not line.prefetch_referenced
            line.prefetch_referenced = True
            return line.ready_time, was_prefetched
        return line.ready_time, False

    def fill_fast(self, addr, now, ready_time, is_prefetch=False,
                  is_write=False, sectors=None):
        cache_set = self._sets[self.set_index(addr)]
        tag = self.tag_of(addr)
        if sectors is None:
            sectors = self._full_mask()
        line = cache_set.get(tag)
        evicted = None
        if line is None:
            if len(cache_set) >= self.assoc:
                victim_tag = min(cache_set,
                                 key=lambda t: cache_set[t].last_use)
                evicted = cache_set.pop(victim_tag)
                self.evictions += 1
                if evicted.from_prefetch and not evicted.prefetch_referenced:
                    self.unused_prefetch_evictions += 1
            line = _RefLine(tag, self.line_addr(addr), ready_time, now,
                            is_prefetch, sectors)
            cache_set[tag] = line
            if is_prefetch:
                self.prefetch_fills += 1
        else:
            line.sector_valid |= sectors
            line.ready_time = max(line.ready_time, ready_time)
            line.last_use = now
        if is_write:
            line.dirty = True
        if not is_prefetch:
            line.prefetch_referenced = True
        return evicted

    def invalidate(self, addr):
        return self._sets[self.set_index(addr)].pop(self.tag_of(addr), None)

    def resident_lines(self):
        return [line for cache_set in self._sets
                for line in cache_set.values()]

    def occupancy(self):
        return sum(len(cache_set) for cache_set in self._sets)


def _state_of(cache):
    """Canonical (sorted) full-state snapshot of either implementation."""
    lines = []
    for line in cache.resident_lines():
        lines.append((line.addr, bool(line.dirty), line.ready_time,
                      line.last_use, bool(line.from_prefetch),
                      bool(line.prefetch_referenced), line.sector_valid,
                      line.sector_touched))
    return sorted(lines)


def _counters_of(cache):
    return (cache.accesses, cache.hits, cache.misses, cache.sector_misses,
            cache.evictions, cache.prefetch_fills,
            cache.unused_prefetch_evictions)


def _drive(config: CacheConfig, seed: int, steps: int = 2500,
           addr_space_lines: int = 96):
    """Drive both implementations through one randomized stream in
    lockstep, asserting equivalent outcomes at every step.

    The mix mirrors the hierarchy's usage: demand accesses whose misses
    fill (demand fills), standalone prefetch fills (sometimes partial
    sector masks), and occasional invalidations.  The address space is a
    small multiple of the capacity so conflict evictions are constant.
    """
    rng = random.Random(seed)
    flat = Cache(config)
    reference = ReferenceCache(config)
    line_size = config.line_size
    now = 0.0
    for step in range(steps):
        # Fractional times exercise float LRU stamps; repeated identical
        # stamps (every ~7th step keeps `now` unchanged) exercise the
        # insertion-order tie-break.
        if step % 7:
            now += rng.choice((0.5, 1.0, 1.0, 2.25))
        addr = (rng.randrange(addr_space_lines) * line_size
                + rng.randrange(line_size))
        op = rng.random()
        if op < 0.55:
            size = rng.choice((1, 4, 8, 16, 64))
            is_write = rng.random() < 0.3
            got = flat.access_fast(addr, size, is_write, now)
            want = reference.access_fast(addr, size, is_write, now)
            assert got == want, f"step {step}: access {got} != {want}"
            if got is None:
                ready = now + rng.choice((1.0, 12.0, 40.0))
                evicted_flat = flat.fill_fast(addr, now, ready, False,
                                              is_write)
                evicted_ref = reference.fill_fast(addr, now, ready, False,
                                                  is_write)
                _check_eviction(flat, evicted_flat, evicted_ref, step)
        elif op < 0.85:
            ready = now + rng.choice((4.0, 25.0))
            sectors = None
            if config.sector_size and rng.random() < 0.6:
                sectors = flat.sector_mask(addr, rng.choice((1, 8, 16)))
            evicted_flat = flat.fill_fast(addr, now, ready, True, False,
                                          sectors)
            evicted_ref = reference.fill_fast(addr, now, ready, True,
                                              False, sectors)
            _check_eviction(flat, evicted_flat, evicted_ref, step)
        else:
            got = flat.invalidate(addr)
            want = reference.invalidate(addr)
            assert (got is None) == (want is None), f"step {step}"
            if got is not None:
                assert got.addr == want.addr
                assert bool(got.dirty) == bool(want.dirty)
                assert got.sector_valid == want.sector_valid
                assert got.sector_touched == want.sector_touched
        if step % 97 == 0:
            assert _state_of(flat) == _state_of(reference), f"step {step}"
    assert _state_of(flat) == _state_of(reference)
    assert _counters_of(flat) == _counters_of(reference)
    assert flat.occupancy() == reference.occupancy()


def _check_eviction(flat, evicted_flat, evicted_ref, step):
    """The flat cache reports victims via scalar scratch fields; compare
    them to the reference's victim object."""
    assert bool(evicted_flat) == (evicted_ref is not None), f"step {step}"
    if evicted_ref is not None:
        assert flat.victim_addr == evicted_ref.addr, f"step {step}"
        assert bool(flat.victim_dirty) == bool(evicted_ref.dirty), \
            f"step {step}"
        assert flat.victim_touched == evicted_ref.sector_touched, \
            f"step {step}"


GEOMETRIES = [
    pytest.param(CacheConfig(size_bytes=4096, associativity=4,
                             line_size=64), id="4way-nonsectored"),
    pytest.param(CacheConfig(size_bytes=4096, associativity=8,
                             line_size=64), id="8way-nonsectored"),
    pytest.param(CacheConfig(size_bytes=2048, associativity=2, line_size=64,
                             sector_size=8), id="2way-sectored"),
    pytest.param(CacheConfig(size_bytes=1536, associativity=3,
                             line_size=64), id="3way-odd-geometry"),
    pytest.param(CacheConfig(size_bytes=512, associativity=1, line_size=64,
                             sector_size=16), id="direct-mapped-sectored"),
]


@pytest.mark.parametrize("config", GEOMETRIES)
@pytest.mark.parametrize("seed", [1, 7, 23])
def test_randomized_stream_equivalence(config, seed):
    _drive(config, seed)


def test_lru_victim_order_matches_reference():
    """Deterministic check of the (last_use, insertion-order) tie-break:
    lines filled at identical times must evict in fill order."""
    config = CacheConfig(size_bytes=512, associativity=4, line_size=64)
    flat, reference = Cache(config), ReferenceCache(config)
    stride = config.num_sets * 64
    # Four fills into set 0, all at now=0 (tied LRU stamps).
    for way in range(4):
        flat.fill_fast(way * stride, 0.0, 0.0, False, False)
        reference.fill_fast(way * stride, 0.0, 0.0, False, False)
    # Touch way 0 later so it is MRU; the tie among ways 1..3 must break
    # by insertion order in both implementations.
    flat.access_fast(0, 8, False, 1.0)
    reference.access_fast(0, 8, False, 1.0)
    for fill in range(4, 7):
        assert flat.fill_fast(fill * stride, 1.0, 1.0, False, False)
        evicted = reference.fill_fast(fill * stride, 1.0, 1.0, False, False)
        assert flat.victim_addr == evicted.addr == (fill - 3) * stride
        assert _state_of(flat) == _state_of(reference)
    # All stamps tied at 1.0 again: the next victim is the earliest
    # insertion, the line at address 0.
    assert flat.fill_fast(7 * stride, 1.0, 1.0, False, False)
    evicted = reference.fill_fast(7 * stride, 1.0, 1.0, False, False)
    assert flat.victim_addr == evicted.addr == 0
    assert _state_of(flat) == _state_of(reference)


def test_resident_lines_and_invalidate_api_parity():
    config = CacheConfig(size_bytes=1024, associativity=2, line_size=64,
                         sector_size=8)
    flat, reference = Cache(config), ReferenceCache(config)
    rng = random.Random(5)
    for step in range(300):
        addr = rng.randrange(64) * 64
        flat.fill_fast(addr, float(step), float(step), step % 3 == 0,
                       step % 5 == 0,
                       flat.sector_mask(addr, 8) if step % 2 else None)
        reference.fill_fast(addr, float(step), float(step), step % 3 == 0,
                            step % 5 == 0,
                            reference.sector_mask(addr, 8) if step % 2
                            else None)
    assert _state_of(flat) == _state_of(reference)
    for addr in range(0, 64 * 64, 64):
        got = flat.invalidate(addr)
        want = reference.invalidate(addr)
        assert (got is None) == (want is None)
    assert flat.occupancy() == reference.occupancy() == 0
    assert flat.resident_lines() == []
