"""Tests for the wall-clock benchmark harness (repro.experiments.bench)."""

import copy
import io

from repro.experiments.bench import PREFETCHERS, compare, run_benchmark


def small_run():
    return run_benchmark(cores=4, seed=1, repeat=1, quick=True,
                         workloads=["indirect_stream"], out=io.StringIO())


class TestRunBenchmark:
    def test_document_shape(self):
        document = small_run()
        assert document["schema"] == "repro-bench-v1"
        assert document["cores"] == 4
        keys = set(document["scenarios"])
        assert keys == {f"indirect_stream/{p}" for p in PREFETCHERS}
        for entry in document["scenarios"].values():
            assert entry["wall_seconds"] > 0
            fp = entry["fingerprint"]
            assert fp["runtime_cycles"] > 0
            assert fp["mem_accesses"] > 0
        assert document["total_wall_seconds"] > 0

    def test_fingerprints_reproducible(self):
        first = small_run()
        second = small_run()
        for key, entry in first["scenarios"].items():
            assert entry["fingerprint"] == second["scenarios"][key]["fingerprint"]


class TestCompare:
    def test_identical_documents_pass(self):
        document = small_run()
        assert compare(document, document, out=io.StringIO()) == 0

    def test_fingerprint_divergence_fails(self):
        document = small_run()
        broken = copy.deepcopy(document)
        key = next(iter(broken["scenarios"]))
        broken["scenarios"][key]["fingerprint"]["runtime_cycles"] += 1
        assert compare(broken, document, out=io.StringIO()) != 0

    def test_wall_clock_regression_fails(self):
        document = small_run()
        slow = copy.deepcopy(document)
        slow["total_wall_seconds"] = document["total_wall_seconds"] * 2.0
        assert compare(slow, document, budget=1.25, out=io.StringIO()) != 0

    def test_mismatched_parameters_fail(self):
        document = small_run()
        other = copy.deepcopy(document)
        other["quick"] = not document["quick"]
        assert compare(other, document, out=io.StringIO()) != 0
