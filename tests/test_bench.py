"""Tests for the wall-clock benchmark harness (repro.experiments.bench)."""

import copy
import io

import pytest

from repro.experiments.bench import (
    PREFETCHERS,
    check_sweep_document,
    compare,
    run_benchmark,
    run_sweep_benchmark,
)


def small_run():
    return run_benchmark(cores=4, seed=1, repeat=1, quick=True,
                         workloads=["indirect_stream"], out=io.StringIO())


class TestRunBenchmark:
    def test_document_shape(self):
        document = small_run()
        assert document["schema"] == "repro-bench-v1"
        assert document["cores"] == 4
        keys = set(document["scenarios"])
        assert keys == {f"indirect_stream/{p}" for p in PREFETCHERS}
        for entry in document["scenarios"].values():
            assert entry["wall_seconds"] > 0
            fp = entry["fingerprint"]
            assert fp["runtime_cycles"] > 0
            assert fp["mem_accesses"] > 0
        assert document["total_wall_seconds"] > 0

    def test_fingerprints_reproducible(self):
        first = small_run()
        second = small_run()
        for key, entry in first["scenarios"].items():
            assert entry["fingerprint"] == second["scenarios"][key]["fingerprint"]


class TestKernelAB:
    def test_same_session_ab_document_shape(self):
        document = run_benchmark(cores=4, seed=1, repeat=1, quick=True,
                                 workloads=["indirect_stream"],
                                 ab_kernels=["reference", "fused"],
                                 out=io.StringIO())
        section = document["kernel_ab"]
        assert section["kernels"] == ["reference", "fused"]
        assert section["baseline_kernel"] == "reference"
        # Fingerprint identity across backends is enforced during
        # collection (a divergence raises), so the section records True.
        assert section["fingerprints_identical"] is True
        keys = {f"indirect_stream/{p}" for p in PREFETCHERS}
        for kernel in ("reference", "fused"):
            assert set(section["wall_seconds"][kernel]) == keys
            assert all(wall > 0
                       for wall in section["wall_seconds"][kernel].values())
        speedups = section["speedup_by_scenario"]["fused"]
        assert set(speedups) == keys
        assert section["miss_heavy_rows"] == sorted(
            key for key in keys if key.rsplit("/", 1)[-1] in ("ghb", "imp"))
        geomean = section["miss_heavy_geomean_speedup"]["fused"]
        assert geomean is not None and geomean > 0
        # The headline scenarios table carries the default backend's walls
        # when it took part in the A/B, else the baseline backend's.
        from repro.sim.config import NoCConfig
        default = NoCConfig().kernel
        headline = default if default in section["kernels"] \
            else section["baseline_kernel"]
        for key in keys:
            assert document["scenarios"][key]["wall_seconds"] \
                == section["wall_seconds"][headline][key]

    def test_three_way_ab_in_one_session(self):
        from repro.noc.kernel import compiled_kernel_available
        if not compiled_kernel_available():
            pytest.skip("repro._nockernel extension not built")
        document = run_benchmark(cores=4, seed=1, repeat=1, quick=True,
                                 workloads=["indirect_stream"],
                                 ab_kernels=["reference", "fused",
                                             "compiled"],
                                 out=io.StringIO())
        section = document["kernel_ab"]
        assert section["kernels"] == ["reference", "fused", "compiled"]
        assert section["baseline_kernel"] == "reference"
        assert section["fingerprints_identical"] is True
        keys = {f"indirect_stream/{p}" for p in PREFETCHERS}
        for kernel in ("reference", "fused", "compiled"):
            assert set(section["wall_seconds"][kernel]) == keys
        # Every non-baseline backend gets its own speedup column and
        # miss-heavy geomean entry.
        assert set(section["speedup_by_scenario"]) == {"fused", "compiled"}
        assert set(section["miss_heavy_geomean_speedup"]) == {"fused",
                                                              "compiled"}
        for geomean in section["miss_heavy_geomean_speedup"].values():
            assert geomean is not None and geomean > 0

    def test_unknown_kernel_fails_fast(self):
        from repro.registry import RegistryError

        with pytest.raises(RegistryError, match="fused"):
            run_benchmark(cores=4, seed=1, quick=True,
                          workloads=["indirect_stream"],
                          ab_kernels=["typo"], out=io.StringIO())

    def test_unavailable_kernel_fails_fast(self, monkeypatch):
        # The mesh would silently substitute fused and make the compiled
        # lane an A/A; the harness must refuse instead.
        monkeypatch.setenv("REPRO_NO_CEXT", "1")
        with pytest.raises(RuntimeError, match="unavailable"):
            run_benchmark(cores=4, seed=1, quick=True,
                          workloads=["indirect_stream"],
                          ab_kernels=["reference", "compiled"],
                          out=io.StringIO())

    def test_ab_ignores_ambient_kernel_override(self, monkeypatch):
        # An exported $REPRO_NOC_KERNEL would turn the A/B into an A/A;
        # the harness measures the named backends and restores the
        # variable afterwards.
        monkeypatch.setenv("REPRO_NOC_KERNEL", "reference")
        import os
        run_benchmark(cores=4, seed=1, quick=True,
                      workloads=["indirect_stream"],
                      ab_kernels=["reference", "fused"], out=io.StringIO())
        assert os.environ["REPRO_NOC_KERNEL"] == "reference"


class TestCompare:
    def test_identical_documents_pass(self):
        document = small_run()
        assert compare(document, document, out=io.StringIO()) == 0

    def test_fingerprint_divergence_fails(self):
        document = small_run()
        broken = copy.deepcopy(document)
        key = next(iter(broken["scenarios"]))
        broken["scenarios"][key]["fingerprint"]["runtime_cycles"] += 1
        assert compare(broken, document, out=io.StringIO()) != 0

    def test_wall_clock_regression_fails(self):
        document = small_run()
        slow = copy.deepcopy(document)
        slow["total_wall_seconds"] = document["total_wall_seconds"] * 2.0
        assert compare(slow, document, budget=1.25, out=io.StringIO()) != 0

    def test_mismatched_parameters_fail(self):
        document = small_run()
        other = copy.deepcopy(document)
        other["quick"] = not document["quick"]
        assert compare(other, document, out=io.StringIO()) != 0


class TestSweepBenchmark:
    def test_quick_sweep_document_and_invariants(self):
        document = run_sweep_benchmark(quick=True, jobs=2,
                                       figures=["fig1"], out=io.StringIO())
        assert document["schema"] == "repro-sweep-bench-v1"
        assert document["fingerprints_identical"] is True
        phases = document["phases"]
        assert phases["serial"]["simulations"] == \
            phases["serial"]["unique_runs"] > 0
        assert phases["warm_cache"]["simulations"] == 0
        assert phases["warm_cache"]["cache_hits"] == \
            phases["serial"]["unique_runs"]
        # The built-in validation accepts its own output.
        assert check_sweep_document(document, min_warm_speedup=1.0,
                                    out=io.StringIO()) == 0

    def test_check_rejects_divergence_and_warm_simulations(self):
        document = run_sweep_benchmark(quick=True, jobs=2,
                                       figures=["fig1"], out=io.StringIO())
        divergent = copy.deepcopy(document)
        divergent["fingerprints_identical"] = False
        assert check_sweep_document(divergent, out=io.StringIO()) != 0
        warm_sim = copy.deepcopy(document)
        warm_sim["phases"]["warm_cache"]["simulations"] = 1
        assert check_sweep_document(warm_sim, out=io.StringIO()) != 0
        slow = copy.deepcopy(document)
        slow["speedup"]["warm_vs_serial"] = 2.0
        assert check_sweep_document(slow, out=io.StringIO()) != 0


class TestSweepScaling:
    def test_single_cpu_host_records_documented_skip(self, monkeypatch):
        import repro.experiments.bench as bench
        monkeypatch.setattr(bench.os, "cpu_count", lambda: 1)
        out = io.StringIO()
        section = bench.sweep_scaling_section(quick=True, out=out)
        assert section["measured"] is False
        assert section["cpus"] == 1
        assert "single CPU" in section["skip_reason"]
        assert "SKIPPED" in out.getvalue()

    def test_multi_cpu_host_measures_jobs_1_vs_n(self, monkeypatch):
        import repro.experiments.bench as bench
        if (bench.os.cpu_count() or 1) <= 1:
            pytest.skip("host has a single CPU")
        section = bench.sweep_scaling_section(quick=True, jobs=2,
                                              out=io.StringIO())
        assert section["measured"] is True
        assert section["jobs"] == 2
        assert section["jobs_1"]["wall_seconds"] > 0
        assert section["jobs_n"]["wall_seconds"] > 0
        assert section["fingerprints_identical"] is True


class TestBaselineComparison:
    def _document(self, wall, cycles):
        return {"schema": "repro-bench-v1",
                "scenarios": {
                    "spmv/imp": {"wall_seconds": wall,
                                 "fingerprint": {"runtime_cycles": cycles}},
                    "spmv/none": {"wall_seconds": 2 * wall,
                                  "fingerprint": {"runtime_cycles": cycles}},
                }}

    def test_speedups_and_miss_heavy_geomean(self):
        from repro.experiments.bench import baseline_comparison

        current = self._document(1.0, 100)
        baseline = self._document(1.5, 100)
        section = baseline_comparison(current, baseline)
        assert section["speedup_by_scenario"]["spmv/imp"] == pytest.approx(1.5)
        assert section["miss_heavy_rows"] == ["spmv/imp"]
        assert section["miss_heavy_geomean_speedup"] == pytest.approx(1.5)
        assert section["fingerprints_identical"] is True

    def test_fingerprint_divergence_flagged(self):
        from repro.experiments.bench import baseline_comparison

        current = self._document(1.0, 100)
        baseline = self._document(1.0, 101)
        assert baseline_comparison(current,
                                   baseline)["fingerprints_identical"] is False

    def test_zero_overlap_is_not_vacuously_identical(self):
        """Comparing against a baseline that shares no scenario keys (a
        wrong/renamed baseline document) must not claim identical
        fingerprints over an empty set."""
        from repro.experiments.bench import baseline_comparison

        current = self._document(1.0, 100)
        section = baseline_comparison(current, {"schema": "repro-bench-v1",
                                                "scenarios": {}})
        assert section["compared_scenarios"] == 0
        assert section["fingerprints_identical"] is False
        assert section["miss_heavy_geomean_speedup"] is None

    def test_compared_scenario_count_recorded(self):
        from repro.experiments.bench import baseline_comparison

        section = baseline_comparison(self._document(1.0, 100),
                                      self._document(1.5, 100))
        assert section["compared_scenarios"] == 2
