"""Durability and crash-window recovery of the service job store."""

import json

from svc_helpers import journal_entries, tiny_scenario

from repro.service.store import (
    DONE,
    FAILED,
    INTERRUPTED,
    JOB_STORE_SCHEMA,
    QUEUED,
    RUNNING,
    JobStore,
)


class TestAppendAndReplay:
    def test_boot_header_and_transitions_round_trip(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        store.record_queued("a" * 64, tiny_scenario(1), name="tiny-1")
        store.record_running("a" * 64)
        store.record_done("a" * 64, cached=False, simulated=True,
                          fingerprint={"runtime_cycles": 42})
        store.close()

        entries = journal_entries(path)
        assert entries[0] == {"service": JOB_STORE_SCHEMA, "boot": 1}
        assert [e.get("status") for e in entries[1:]] == [QUEUED, RUNNING,
                                                          DONE]

        replayed = JobStore(path)
        job = replayed.get("a" * 64)
        assert job["status"] == DONE
        assert job["simulated"] is True
        assert job["fingerprint"] == {"runtime_cycles": 42}
        assert job["scenario"] == tiny_scenario(1)
        assert replayed.boots == 2
        assert replayed.recoverable() == []
        replayed.close()

    def test_each_crash_window_state_is_recoverable(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        store.record_queued("a" * 64, tiny_scenario(1))           # window 1-2
        store.record_queued("b" * 64, tiny_scenario(2))
        store.record_running("b" * 64)                            # window 2-3
        store.record_queued("c" * 64, tiny_scenario(3))
        store.record_running("c" * 64)
        store.record_done("c" * 64, cached=False, simulated=True)  # complete
        store.record_queued("d" * 64, tiny_scenario(4))
        store.record_interrupted("d" * 64)                        # drained out
        store.close()

        replayed = JobStore(path)
        recoverable = {job["id"]: job["status"]
                       for job in replayed.recoverable()}
        assert recoverable == {"a" * 64: QUEUED, "b" * 64: RUNNING,
                               "d" * 64: INTERRUPTED}
        assert replayed.get("c" * 64)["status"] == DONE
        replayed.close()

    def test_attempts_count_across_lifetimes(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        store.record_queued("a" * 64, tiny_scenario(1))
        assert store.record_running("a" * 64) == 1
        store.close()
        store = JobStore(path)
        assert store.record_running("a" * 64) == 2
        store.close()

    def test_requeue_clears_a_previous_failure(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        store.record_queued("a" * 64, tiny_scenario(1))
        store.record_failed("a" * 64, {"kind": "timeout"})
        store.record_queued("a" * 64, tiny_scenario(1))
        assert store.get("a" * 64)["status"] == QUEUED
        assert "failure" not in store.get("a" * 64)
        store.close()


class TestCorruptionTolerance:
    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        store.record_queued("a" * 64, tiny_scenario(1))
        store.record_running("a" * 64)
        store.close()
        with open(path, "a") as handle:   # the crash-torn final line
            handle.write('{"id": "' + "a" * 64 + '", "status": "do')

        replayed = JobStore(path)
        assert replayed.corrupt_lines == 1
        assert replayed.get("a" * 64)["status"] == RUNNING
        assert [job["id"] for job in replayed.recoverable()] == ["a" * 64]
        replayed.close()

    def test_damaged_middle_line_only_affects_its_transition(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        store.record_queued("a" * 64, tiny_scenario(1))
        store.record_running("a" * 64)
        store.record_done("a" * 64, cached=False, simulated=True)
        store.close()

        lines = path.read_text().splitlines()
        assert '"status":"done"' in lines[-1]
        lines[-1] = lines[-1][:-7]        # tear the done record mid-line
        path.write_text("\n".join(lines) + "\n")

        replayed = JobStore(path)
        assert replayed.corrupt_lines == 1
        # The job replays at its last durable state and is re-enqueued.
        assert replayed.get("a" * 64)["status"] == RUNNING
        replayed.close()

    def test_corrupt_tail_hook_tears_the_last_record(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        store.record_queued("a" * 64, tiny_scenario(1))
        store.corrupt_tail()
        store.record_queued("b" * 64, tiny_scenario(2))
        store.close()

        raw_lines = path.read_text().splitlines()
        parseable = []
        torn = 0
        for line in raw_lines:
            try:
                parseable.append(json.loads(line))
            except json.JSONDecodeError:
                torn += 1
        assert torn == 1
        replayed = JobStore(path)
        assert replayed.corrupt_lines == 1
        assert replayed.get("b" * 64)["status"] == QUEUED
        assert replayed.get("a" * 64) is None     # its record was torn
        replayed.close()

    def test_simulated_done_count_reads_full_history(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        store.record_queued("a" * 64, tiny_scenario(1))
        store.record_done("a" * 64, cached=False, simulated=True)
        store.record_done("a" * 64, cached=True, simulated=False)
        store.record_queued("b" * 64, tiny_scenario(2))
        store.record_done("b" * 64, cached=True, simulated=False)
        assert store.simulated_done_count("a" * 64) == 1
        assert store.simulated_done_count("b" * 64) == 0
        store.close()
