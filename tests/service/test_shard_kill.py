"""Sharded sweeps under fire: kill one ``repro serve`` shard mid-sweep
(via the deterministic fault plan) and prove the service backend
requeues its work to the survivor, finishes with fingerprints
bit-identical to a serial run, and never simulates anything twice."""

import json

from svc_helpers import simulated_done_counts
from test_chaos import serve_env, start_serve, stop_serve

from repro.experiments.faults import KILL_EXIT_CODE
from repro.experiments.sweep import (ResultCache, RunPolicy, RunSpec,
                                     SweepEngine)
from repro.service.app import JOB_STORE_FILENAME
from repro.workloads.synthetic import IndirectStreamWorkload


def make_specs(n):
    """Moderate-size specs: big enough that the doomed shard is still
    mid-simulation when the backend notices it is gone."""
    specs, lookup = [], {}
    for seed in range(1, n + 1):
        workload = IndirectStreamWorkload(n_indices=1024, n_data=4096,
                                          seed=seed)
        spec = RunSpec.for_run(workload, "imp", 1)
        specs.append(spec)
        lookup[spec] = workload
    return specs, lookup


def test_shard_kill_requeues_to_survivor_without_duplicates(tmp_path):
    specs, lookup = make_specs(4)
    baseline = SweepEngine(jobs=1, backend="serial").run(
        list(specs), workload_lookup=lookup.get)

    # The doomed shard kills itself pre-publish on its first execution of
    # *any* job (probability 1.0 — no seed search needed); the survivor
    # runs clean.
    doomed_dir = tmp_path / "doomed"
    survivor_dir = tmp_path / "survivor"
    faults = json.dumps({"seed": 1, "serve_kill": 1.0})
    doomed, doomed_url, _ = start_serve(
        doomed_dir, env=serve_env(REPRO_FAULTS=faults))
    survivor, survivor_url, _ = start_serve(survivor_dir)

    try:
        engine = SweepEngine(
            jobs=1, cache=ResultCache(tmp_path / "local"),
            policy=RunPolicy(retries=2, backoff=0.05),
            backend="service", shards=[doomed_url, survivor_url])
        results = engine.run(specs, workload_lookup=lookup.get)
    finally:
        doomed.wait(timeout=60)
        code, _ = stop_serve(survivor)

    assert doomed.returncode == KILL_EXIT_CODE
    assert code == 143

    # Bit-identical to the serial reference, shard kill or not.
    for spec in specs:
        assert (results[spec].stats.fingerprint()
                == baseline[spec].stats.fingerprint())

    backend = engine.backend
    assert backend.dead_shards == [doomed_url]
    # At least the job the doomed shard died executing was stranded
    # in-flight and requeued uncharged to the survivor.
    assert backend.requeued >= 1
    # The survivor finished everything: no process-backend fallback.
    assert backend.fallback_specs == 0
    assert backend.ingested == len(specs)
    assert engine.simulations_run == len(specs)

    # Zero duplicate simulations across both shard journals: the doomed
    # shard died pre-publish, so every spec simulated exactly once, all
    # on the survivor.
    counts = {}
    for directory in (doomed_dir, survivor_dir):
        journal = directory / JOB_STORE_FILENAME
        if journal.exists():
            for digest, count in simulated_done_counts(journal).items():
                counts[digest] = counts.get(digest, 0) + count
    assert all(count <= 1 for count in counts.values())
    assert sum(counts.values()) == len(specs)
    assert set(counts) == {spec.digest() for spec in specs}

    # The ingested records warmed the local cache: a rerun simulates
    # nothing and needs no shards at all.
    warm = SweepEngine(jobs=1, cache=ResultCache(tmp_path / "local"))
    warm_results = warm.run(specs, workload_lookup=lookup.get)
    assert warm.simulations_run == 0
    for spec in specs:
        assert (warm_results[spec].stats.fingerprint()
                == baseline[spec].stats.fingerprint())
