"""Fixtures for the sweep-service tests (helpers live in svc_helpers)."""

from __future__ import annotations

import pytest


@pytest.fixture
def app(tmp_path):
    """A started :class:`ServiceApp` on an ephemeral port, torn down
    gracefully at the end of the test."""
    from repro.service import ServiceApp

    application = ServiceApp(tmp_path / "cache", port=0, queue_depth=8)
    application.start()
    yield application
    application.stop(drain_timeout=10.0)
