"""The versioned REST surface: routing, envelopes, status codes and the
live HTTP server (end-to-end submit → poll → result)."""

import json

import pytest

from svc_helpers import http, poll_job, scenario_digest, tiny_scenario

from repro.experiments.sweep import ResultCache
from repro.service.api import (
    API_VERSION,
    MAX_BODY_BYTES,
    RETRY_AFTER_SECONDS,
    ServiceAPI,
)
from repro.service.jobs import JobManager
from repro.service.store import JobStore


@pytest.fixture
def api(tmp_path):
    """An API over a manager whose drain worker is NOT running, so queue
    contents are fully deterministic."""
    store = JobStore(tmp_path / "jobs.jsonl")
    cache = ResultCache(tmp_path / "cache")
    manager = JobManager(store, cache, queue_depth=2)
    yield ServiceAPI(manager)
    store.close()


def post_job(api, doc):
    return api.handle("POST", "/v1/jobs", json.dumps(doc).encode())


class TestProbesAndRegistries:
    def test_healthz_is_alive(self, api):
        status, envelope, _ = api.handle("GET", "/healthz")
        assert status == 200
        assert envelope == {"ok": True,
                            "data": {"status": "alive", "api": API_VERSION}}

    def test_readyz_reports_queue_state(self, api):
        status, envelope, _ = api.handle("GET", "/readyz")
        assert status == 200
        assert envelope["data"] == {"ready": True, "draining": False,
                                    "pending": 0, "queue_depth": 2}

    def test_readyz_503_while_draining(self, api):
        api.manager.begin_drain()
        status, envelope, headers = api.handle("GET", "/readyz")
        assert status == 503
        assert envelope["error"]["code"] == "draining"
        assert headers["Retry-After"] == str(RETRY_AFTER_SECONDS)

    def test_retry_after_clamps_to_the_drain_deadline(self, api):
        # Satellite regression: a 503 during a timed drain must never
        # advertise a Retry-After beyond the moment the server will be
        # gone — a client honoring the hint would otherwise wake up to a
        # dead socket.
        api.manager.begin_drain(timeout=1.0)
        _, _, headers = api.handle("GET", "/readyz")
        assert int(headers["Retry-After"]) <= 1
        api.manager.begin_drain(timeout=0.0)     # deadline only shrinks
        status, _, headers = api.handle("GET", "/readyz")
        assert status == 503
        assert headers["Retry-After"] == "0"
        _, _, headers = api.handle(
            "POST", "/v1/jobs", json.dumps(tiny_scenario(1)).encode())
        assert headers["Retry-After"] == "0"

    def test_retry_after_keeps_default_under_long_drains(self, api):
        # A generous (or unbounded) drain window must not inflate the
        # hint past the default.
        api.manager.begin_drain(timeout=3600.0)
        _, _, headers = api.handle("GET", "/readyz")
        assert headers["Retry-After"] == str(RETRY_AFTER_SECONDS)

    def test_registries_lists_every_component_registry(self, api):
        status, envelope, _ = api.handle("GET", "/v1/registries")
        assert status == 200
        registries = envelope["data"]["registries"]
        assert set(registries) == {"prefetchers", "dram-models",
                                   "workloads", "modes", "noc-kernels",
                                   "sweep-backends"}
        assert any(entry["name"] == "imp"
                   for entry in registries["prefetchers"])
        assert all(entry["description"]
                   for entries in registries.values() for entry in entries)

    def test_registries_filter_unavailable_backends(self, api, monkeypatch):
        # The compiled NoC kernel is listed only where its extension
        # imports: the endpoint describes what this host can run.
        from repro.noc.kernel import compiled_kernel_available
        monkeypatch.setenv("REPRO_NO_CEXT", "1")
        _, envelope, _ = api.handle("GET", "/v1/registries")
        names = [e["name"] for e in envelope["data"]["registries"]["noc-kernels"]]
        assert names == ["reference", "fused"]
        monkeypatch.delenv("REPRO_NO_CEXT")
        if compiled_kernel_available():
            _, envelope, _ = api.handle("GET", "/v1/registries")
            names = [e["name"]
                     for e in envelope["data"]["registries"]["noc-kernels"]]
            assert names == ["reference", "fused", "compiled"]


class TestSubmission:
    def test_submit_queues_with_202_and_links(self, api):
        doc = tiny_scenario(1)
        status, envelope, _ = post_job(api, doc)
        assert status == 202
        data = envelope["data"]
        assert data["id"] == scenario_digest(doc)
        assert data["status"] == "queued"
        assert data["created"] is True
        assert data["links"]["self"] == f"/v1/jobs/{data['id']}"
        assert data["links"]["result"] == f"/v1/results/{data['id']}"

    def test_resubmission_joins_with_200(self, api):
        doc = tiny_scenario(1)
        post_job(api, doc)
        status, envelope, _ = post_job(api, doc)
        assert status == 200
        assert envelope["data"]["created"] is False

    def test_invalid_json_is_400(self, api):
        status, envelope, _ = api.handle("POST", "/v1/jobs", b"{ not json")
        assert status == 400
        assert envelope["error"]["code"] == "invalid-json"

    def test_unknown_workload_400_lists_choices(self, api):
        doc = dict(tiny_scenario(1), workload="does_not_exist")
        status, envelope, _ = post_job(api, doc)
        assert status == 400
        assert envelope["error"]["code"] == "invalid-scenario"
        assert "indirect_stream" in envelope["error"]["message"]

    def test_non_object_body_is_400(self, api):
        status, envelope, _ = api.handle("POST", "/v1/jobs", b"[1, 2]")
        assert status == 400
        assert envelope["error"]["code"] == "invalid-scenario"

    def test_oversized_body_is_413(self, api):
        body = b"x" * (MAX_BODY_BYTES + 1)
        status, envelope, _ = api.handle("POST", "/v1/jobs", body)
        assert status == 413
        assert envelope["error"]["code"] == "body-too-large"

    def test_queue_full_is_429_with_retry_after(self, api):
        post_job(api, tiny_scenario(1))     # queue_depth=2, no worker
        post_job(api, tiny_scenario(2))
        status, envelope, headers = post_job(api, tiny_scenario(3))
        assert status == 429
        assert envelope["error"]["code"] == "queue-full"
        assert headers["Retry-After"] == str(RETRY_AFTER_SECONDS)

    def test_draining_rejects_submissions_503(self, api):
        api.manager.begin_drain()
        status, envelope, headers = post_job(api, tiny_scenario(1))
        assert status == 503
        assert envelope["error"]["code"] == "draining"
        assert "Retry-After" in headers


class TestLookups:
    def test_unknown_job_is_404(self, api):
        status, envelope, _ = api.handle("GET", f"/v1/jobs/{'a' * 64}")
        assert status == 404
        assert envelope["error"]["code"] == "job-not-found"

    def test_bad_result_digest_is_400(self, api):
        status, envelope, _ = api.handle("GET", "/v1/results/abc123")
        assert status == 400
        assert envelope["error"]["code"] == "bad-digest"

    def test_missing_result_is_404(self, api):
        status, envelope, _ = api.handle("GET", f"/v1/results/{'a' * 64}")
        assert status == 404
        assert envelope["error"]["code"] == "result-not-found"

    def test_unrouted_paths_are_404(self, api):
        status, envelope, _ = api.handle("GET", "/v2/jobs")
        assert status == 404
        status, envelope, _ = api.handle("POST", "/v1/registries", b"{}")
        assert status == 404

    def test_unsupported_method_is_405(self, api):
        status, envelope, _ = api.handle("DELETE", "/v1/jobs")
        assert status == 405
        assert envelope["error"]["code"] == "method-not-allowed"

    def test_jobs_listing_carries_queue_counters(self, api):
        post_job(api, tiny_scenario(1))
        status, envelope, _ = api.handle("GET", "/v1/jobs")
        assert status == 200
        data = envelope["data"]
        assert len(data["jobs"]) == 1
        assert data["queue"]["pending"] == 1
        assert data["queue"]["by_status"] == {"queued": 1}


class TestLiveServer:
    """End-to-end over a real socket: submit, poll, fetch the result."""

    def test_submit_poll_result_round_trip(self, app):
        doc = tiny_scenario(5)
        status, envelope, _ = http("POST", f"{app.url}/v1/jobs", doc)
        assert status == 202
        job_id = envelope["data"]["id"]

        final = poll_job(app.url, job_id)
        assert final["status"] == "done"
        assert final["simulated"] is True
        assert final["cached"] is False
        fingerprint = final["fingerprint"]
        assert fingerprint["runtime_cycles"] > 0

        status, envelope, _ = http("GET", f"{app.url}/v1/results/{job_id}")
        assert status == 200
        assert envelope["data"]["record"]["fingerprint"] == fingerprint

        # Resubmission after completion: instant, joined, same fingerprint.
        status, envelope, _ = http("POST", f"{app.url}/v1/jobs", doc)
        assert status == 200
        assert envelope["data"]["status"] == "done"
        assert envelope["data"]["fingerprint"] == fingerprint

    def test_cache_warm_submission_never_simulates(self, app):
        doc = tiny_scenario(6)
        _, envelope, _ = http("POST", f"{app.url}/v1/jobs", doc)
        poll_job(app.url, envelope["data"]["id"])
        before = app.manager.simulations_run

        status, envelope, _ = http("POST", f"{app.url}/v1/jobs", doc)
        assert status == 200
        assert app.manager.simulations_run == before

    def test_failed_job_carries_failure_record(self, app, monkeypatch):
        import repro.service.jobs as jobs_module
        from repro.experiments.sweep import FailureRecord, SweepError

        class ExhaustedEngine:
            def __init__(self, **kwargs):
                self.simulations_run = 0

            def run(self, specs, workload_lookup=None):
                raise SweepError([FailureRecord.for_spec(
                    specs[0], "transient", 3, "injected: still failing")], {})

        monkeypatch.setattr(jobs_module, "SweepEngine", ExhaustedEngine)
        doc = tiny_scenario(7)
        status, envelope, _ = http("POST", f"{app.url}/v1/jobs", doc)
        assert status == 202
        final = poll_job(app.url, envelope["data"]["id"])
        assert final["status"] == "failed"
        failure = final["failure"]
        assert failure["kind"] == "transient"
        assert failure["attempts"] == 3
        assert failure["digest"] == envelope["data"]["id"]

        # A resubmission re-queues the failed job for another try.
        status, envelope, _ = http("POST", f"{app.url}/v1/jobs", doc)
        assert status == 202
        assert envelope["data"]["created"] is True
