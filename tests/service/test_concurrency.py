"""Idempotent admission under concurrency: N clients racing to submit the
same scenario must share exactly one simulation."""

import threading
import time

from svc_helpers import (
    http,
    poll_job,
    scenario_digest,
    simulated_done_counts,
    tiny_scenario,
)

from repro.experiments.sweep import ResultCache
from repro.service.jobs import JobManager
from repro.service.store import JobStore


class TestConcurrentDuplicateSubmission:
    def test_n_threads_same_scenario_one_simulation(self, tmp_path):
        store = JobStore(tmp_path / "jobs.jsonl")
        cache = ResultCache(tmp_path / "cache")
        manager = JobManager(store, cache, queue_depth=16)
        manager.start()
        doc = tiny_scenario(11)
        digest = scenario_digest(doc)

        n_threads = 8
        barrier = threading.Barrier(n_threads)
        outcomes = [None] * n_threads

        def submit(index):
            barrier.wait()
            outcomes[index] = manager.submit(dict(doc))

        threads = [threading.Thread(target=submit, args=(index,))
                   for index in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Every thread got the same job id; exactly one created it.
        assert all(outcome is not None for outcome in outcomes)
        assert {job.id for job, _ in outcomes} == {digest}
        assert sum(created for _, created in outcomes) == 1

        deadline = time.monotonic() + 30
        while manager.get(digest).status not in ("done", "failed"):
            assert time.monotonic() < deadline
            time.sleep(0.02)

        job = manager.get(digest)
        assert job.status == "done"
        assert manager.simulations_run == 1
        assert manager.drain(10.0)
        store.close()

        # Durable evidence: one simulated `done` in the whole journal.
        assert simulated_done_counts(tmp_path / "jobs.jsonl") == {digest: 1}

    def test_http_race_shares_one_simulation(self, app):
        doc = tiny_scenario(12)
        digest = scenario_digest(doc)
        n_threads = 6
        barrier = threading.Barrier(n_threads)
        responses = [None] * n_threads

        def post(index):
            barrier.wait()
            responses[index] = http("POST", f"{app.url}/v1/jobs", doc)

        threads = [threading.Thread(target=post, args=(index,))
                   for index in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert all(response is not None for response in responses)
        statuses = sorted(status for status, _, _ in responses)
        assert set(statuses) <= {200, 202}
        ids = {envelope["data"]["id"] for _, envelope, _ in responses}
        assert ids == {digest}
        created = [envelope["data"]["created"]
                   for _, envelope, _ in responses]
        assert sum(created) == 1

        final = poll_job(app.url, digest)
        assert final["status"] == "done"
        assert app.manager.simulations_run == 1
        fingerprints = set()
        for _ in range(3):   # repeated polls answer bit-identically
            doc_now = poll_job(app.url, digest)
            fingerprints.add(str(sorted(doc_now["fingerprint"].items())))
        assert len(fingerprints) == 1
