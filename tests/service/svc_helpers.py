"""Shared helpers for the sweep-service tests."""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.experiments.scenario import ScenarioSpec


def tiny_scenario(seed: int = 1, n_indices: int = 64) -> dict:
    """A scenario document that simulates in milliseconds."""
    return {
        "name": f"tiny-{seed}",
        "workload": "indirect_stream",
        "workload_params": {"n_indices": n_indices, "n_data": 256,
                            "seed": seed},
        "mode": "imp",
        "n_cores": 1,
    }


def scenario_digest(doc: dict) -> str:
    return ScenarioSpec.from_dict(doc).to_runspec().digest()


def http(method: str, url: str, doc=None, timeout: float = 10.0):
    """One JSON request; returns ``(status, envelope, headers)`` and never
    raises on HTTP error statuses (they carry JSON envelopes too)."""
    data = None if doc is None else json.dumps(doc).encode()
    request = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return (response.status, json.loads(response.read().decode()),
                    dict(response.headers))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode()), dict(exc.headers)


def poll_job(base_url: str, job_id: str, deadline: float = 30.0) -> dict:
    """Poll ``GET /v1/jobs/<id>`` until the job settles; returns its doc."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        status, envelope, _ = http("GET", f"{base_url}/v1/jobs/{job_id}")
        if status == 200 and envelope["data"]["status"] in ("done", "failed"):
            return envelope["data"]
        time.sleep(0.05)
    raise AssertionError(f"job {job_id[:12]} did not settle in {deadline}s")


def journal_entries(path) -> list:
    """Parse the service job journal, skipping corrupt lines the way the
    store does."""
    entries = []
    for line in path.read_text().splitlines():
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict):
            entries.append(entry)
    return entries


def simulated_done_counts(path) -> dict:
    """Per-job count of ``done`` records marking a real simulation across
    the whole journal history — the zero-duplicate-work evidence."""
    counts: dict = {}
    for entry in journal_entries(path):
        if entry.get("status") == "done" and entry.get("simulated"):
            counts[entry["id"]] = counts.get(entry["id"], 0) + 1
    return counts
