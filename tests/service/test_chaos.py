"""Chaos proof for the sweep service: kill the server mid-sweep (both via
the deterministic fault plan and a literal SIGKILL), restart it on the
same cache directory, and prove bit-identical fingerprints with zero
duplicate simulations and no accepted job lost."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from svc_helpers import http, journal_entries, poll_job, scenario_digest, \
    simulated_done_counts

from repro.experiments.faults import KILL_EXIT_CODE, FaultPlan
from repro.experiments.scenario import ScenarioSpec
from repro.experiments.sweep import SweepEngine
from repro.service.app import JOB_STORE_FILENAME

REPO_ROOT = Path(__file__).resolve().parents[2]


def serve_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    # In-process execution inside the server: deterministic timing, no
    # orphaned pool workers when the server is killed.
    env.pop("REPRO_JOBS", None)
    env.pop("REPRO_FAULTS", None)
    env.update(extra)
    return env


def start_serve(cache_dir, *, env=None, queue_depth=32):
    process = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.cli", "serve", "--port", "0",
         "--cache-dir", str(cache_dir), "--queue-depth", str(queue_depth)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env or serve_env(), cwd=str(cache_dir.parent))
    port = None
    startup = []
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        startup.append(line)
        if "port=" in line:
            port = int(line.split("port=")[1].split()[0])
            break
    if port is None:
        process.kill()
        raise AssertionError("server never printed its port: "
                             + "".join(startup))
    return process, f"http://127.0.0.1:{port}", startup


def stop_serve(process):
    """SIGTERM and return (exit_code, remaining_output)."""
    process.send_signal(signal.SIGTERM)
    output = process.stdout.read()
    process.wait(timeout=30)
    return process.returncode, output


def clean_fingerprint(doc):
    """The ground-truth fingerprint, simulated in this (test) process."""
    spec = ScenarioSpec.from_dict(doc)
    runspec = spec.to_runspec()
    results = SweepEngine(jobs=1).run(
        [runspec], workload_lookup=lambda _: spec.resolve()[0])
    return results[runspec].stats.fingerprint()


def moderate_scenario(seed):
    """Big enough that a six-scenario sweep takes a few seconds — a
    window to SIGKILL the server mid-sweep."""
    return {"name": f"chaos-{seed}", "workload": "indirect_stream",
            "workload_params": {"n_indices": 1024, "n_data": 4096,
                                "seed": seed},
            "mode": "imp", "n_cores": 4}


class TestFaultInjectedKillWindows:
    """Deterministic kills in both crash windows of one sweep: before the
    cache publish (the run must re-execute exactly once) and after it
    (the completed run must never re-execute)."""

    def find_seed(self, digests, rate=0.25):
        # decide_serve_kill is pure, so the seed that produces
        # [survive, post-kill, pre-kill] over our FIFO submission order
        # can be found without running anything.
        for seed in range(20000):
            plan = FaultPlan(seed=seed, serve_kill=rate,
                             serve_kill_post=rate)
            if [plan.decide_serve_kill(digest, 0)
                    for digest in digests] == [None, "post", "pre"]:
                return seed
        raise AssertionError("no kill seed found (plan draw changed?)")

    def test_kill_windows_recover_losslessly(self, tmp_path):
        # Big enough that submitting all three comfortably outruns the
        # first execution (admission never touches the simulator).
        docs = [{"name": f"kw-{seed}", "workload": "indirect_stream",
                 "workload_params": {"n_indices": 1024, "n_data": 4096,
                                     "seed": seed},
                 "mode": "imp", "n_cores": 1} for seed in (1, 2, 3)]
        digests = [scenario_digest(doc) for doc in docs]
        baseline = {digest: clean_fingerprint(doc)
                    for digest, doc in zip(digests, docs)}
        seed = self.find_seed(digests)
        cache_dir = tmp_path / "cache"

        faults = json.dumps({"seed": seed, "serve_kill": 0.25,
                             "serve_kill_post": 0.25})
        process, url, _ = start_serve(cache_dir,
                                      env=serve_env(REPRO_FAULTS=faults))
        for doc in docs:
            status, envelope, _ = http("POST", f"{url}/v1/jobs", doc)
            assert status == 202
        # d0 completes, d1 simulates + publishes then dies post-publish
        # (d2's pre-publish kill is never reached this boot).
        process.wait(timeout=60)
        assert process.returncode == KILL_EXIT_CODE

        process, url, startup = start_serve(cache_dir)  # no faults now
        assert any("recovered 2 interrupted job(s)" in line
                   for line in startup)
        # Resubmission after the crash: every job already exists — the
        # accepted work survived the kill.
        for doc in docs:
            status, envelope, _ = http("POST", f"{url}/v1/jobs", doc)
            assert envelope["data"]["created"] is False
        finals = {digest: poll_job(url, digest) for digest in digests}
        code, _ = stop_serve(process)
        assert code == 143

        assert all(final["status"] == "done"
                   for final in finals.values())
        # Bit-identical fingerprints across the crash.
        for digest in digests:
            assert finals[digest]["fingerprint"] == baseline[digest]
        # d1 was published before the kill: completed from the cache,
        # provably not re-simulated.
        assert finals[digests[1]]["cached"] is True
        assert finals[digests[1]]["simulated"] is False
        # d2 never ran before the kill: simulated exactly once, after it.
        assert finals[digests[2]]["simulated"] is True

        journal = cache_dir / JOB_STORE_FILENAME
        counts = simulated_done_counts(journal)
        assert counts.get(digests[0], 0) == 1
        assert counts.get(digests[1], 0) == 0   # done record was lost,
        assert (cache_dir / f"{digests[1]}.json").exists()  # result wasn't
        assert counts.get(digests[2], 0) == 1
        assert all(count <= 1 for count in counts.values())
        boots = [entry for entry in journal_entries(journal)
                 if "service" in entry]
        assert len(boots) == 2


class TestSigkillMidSweep:
    def test_sigkill_restart_bit_identical_no_duplicates(self, tmp_path):
        docs = [moderate_scenario(seed) for seed in range(1, 7)]
        digests = [scenario_digest(doc) for doc in docs]
        baseline = {digest: clean_fingerprint(doc)
                    for digest, doc in zip(digests, docs)}
        cache_dir = tmp_path / "cache"

        process, url, _ = start_serve(cache_dir)
        for doc in docs:
            status, _, _ = http("POST", f"{url}/v1/jobs", doc)
            assert status == 202
        # SIGKILL the instant the first job lands — mid-sweep, with the
        # rest queued or running.
        poll_job(url, digests[0], deadline=60)
        process.kill()
        process.wait(timeout=30)
        assert process.returncode == -signal.SIGKILL

        process, url, _ = start_serve(cache_dir)
        for doc in docs:                     # idempotent resubmission
            _, envelope, _ = http("POST", f"{url}/v1/jobs", doc)
            assert envelope["data"]["created"] is False
        finals = {digest: poll_job(url, digest, deadline=120)
                  for digest in digests}
        code, output = stop_serve(process)
        assert code == 143
        assert "drained cleanly" in output

        # No accepted job lost, every fingerprint bit-identical.
        assert all(final["status"] == "done" for final in finals.values())
        for digest in digests:
            assert finals[digest]["fingerprint"] == baseline[digest]
        # Zero duplicate simulations across both server lifetimes.
        counts = simulated_done_counts(cache_dir / JOB_STORE_FILENAME)
        assert all(count <= 1 for count in counts.values())
        # The first job survived the kill as completed work: its restart
        # lifetime added no second simulated record.
        assert counts.get(digests[0], 0) == 1


def test_decide_serve_kill_is_pure_and_budgeted():
    plan = FaultPlan(seed=7, serve_kill=0.5, serve_kill_post=0.5)
    digest = "ab" * 32
    decisions = {plan.decide_serve_kill(digest, 0) for _ in range(32)}
    assert len(decisions) == 1
    # Beyond the per-spec fault budget nothing fires.
    assert plan.decide_serve_kill(digest, plan.max_faults_per_spec) is None
