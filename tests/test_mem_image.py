"""Unit tests for the memory image (repro.mem_image)."""

import numpy as np
import pytest

from repro.mem_image import PAGE_SIZE, AddressError, ArraySpec, MemoryImage


class TestRegistration:
    def test_arrays_are_page_aligned_and_non_overlapping(self):
        image = MemoryImage()
        a = image.add_array("a", np.zeros(1000, dtype=np.int32))
        b = image.add_array("b", np.zeros(1000, dtype=np.float64))
        assert a.base % PAGE_SIZE == 0
        assert b.base % PAGE_SIZE == 0
        assert b.base >= a.end

    def test_duplicate_name_rejected(self):
        image = MemoryImage()
        image.add_array("a", np.zeros(8, dtype=np.int32))
        with pytest.raises(ValueError):
            image.add_array("a", np.zeros(8, dtype=np.int32))

    def test_array_without_data_needs_length_and_elem_size(self):
        image = MemoryImage()
        with pytest.raises(ValueError):
            image.add_array("x")
        spec = image.add_array("x", length=128, elem_size=8)
        assert spec.size_bytes == 1024

    def test_explicit_base_respected(self):
        image = MemoryImage()
        spec = image.add_array("x", np.zeros(4, dtype=np.int32), base=0x5000_0000)
        assert spec.base == 0x5000_0000

    def test_len_and_contains(self):
        image = MemoryImage()
        image.add_array("x", np.zeros(4, dtype=np.int32))
        assert "x" in image
        assert "y" not in image
        assert len(image) == 1


class TestAddressing:
    def test_addr_of_scales_with_element_size(self):
        image = MemoryImage()
        spec = image.add_array("a", np.zeros(100, dtype=np.float64))
        assert image.addr_of("a", 0) == spec.base
        assert image.addr_of("a", 10) == spec.base + 80

    def test_bit_vector_addresses(self):
        image = MemoryImage()
        spec = image.add_array("bits", np.zeros(64, dtype=np.uint8),
                               elem_size=1 / 8, length=512)
        # Bit 0..7 live in the first byte, bit 8 in the second.
        assert spec.addr_of(0) == spec.base
        assert spec.addr_of(7) == spec.base
        assert spec.addr_of(8) == spec.base + 1
        assert spec.size_bytes == 64

    def test_index_of_roundtrip(self):
        image = MemoryImage()
        spec = image.add_array("a", np.zeros(64, dtype=np.int32))
        for index in (0, 1, 33, 63):
            assert spec.index_of(spec.addr_of(index)) == index

    def test_index_of_out_of_range_raises(self):
        image = MemoryImage()
        spec = image.add_array("a", np.zeros(4, dtype=np.int32))
        with pytest.raises(AddressError):
            spec.index_of(spec.base - 1)
        with pytest.raises(IndexError):
            spec.addr_of(4)

    def test_find_locates_containing_array(self):
        image = MemoryImage()
        a = image.add_array("a", np.zeros(16, dtype=np.int64))
        b = image.add_array("b", np.zeros(16, dtype=np.int64))
        assert image.find(a.base + 8).name == "a"
        assert image.find(b.base).name == "b"
        assert image.find(a.end + 1) is None        # guard page
        assert image.find(0) is None


class TestReadValue:
    def test_read_integer_values(self):
        image = MemoryImage()
        data = np.array([5, 10, 15, 20], dtype=np.int32)
        image.add_array("idx", data)
        assert image.read_value(image.addr_of("idx", 0)) == 5
        assert image.read_value(image.addr_of("idx", 3)) == 20

    def test_read_value_outside_any_array_returns_default(self):
        image = MemoryImage()
        image.add_array("idx", np.array([1, 2], dtype=np.int32))
        assert image.read_value(0x10) is None
        assert image.read_value(0x10, default=-1) == -1

    def test_read_value_without_backing_data_returns_default(self):
        image = MemoryImage()
        spec = image.add_array("raw", length=16, elem_size=8)
        assert image.read_value(spec.base) is None

    def test_data_accessor(self):
        image = MemoryImage()
        data = np.arange(8, dtype=np.int32)
        image.add_array("idx", data)
        assert np.array_equal(image.data("idx"), data)
        spec = image.add_array("raw", length=4, elem_size=4)
        with pytest.raises(ValueError):
            image.data("raw")

    def test_arrays_listing_in_address_order(self):
        image = MemoryImage()
        image.add_array("b", np.zeros(4, dtype=np.int8))
        image.add_array("a", np.zeros(4, dtype=np.int8))
        bases = [spec.base for spec in image.arrays()]
        assert bases == sorted(bases)
