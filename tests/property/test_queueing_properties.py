"""Property-based tests for the reservation scheduler."""

from hypothesis import given, settings, strategies as st

from repro.sim.queueing import ResourceSchedule

requests = st.lists(
    st.tuples(st.floats(min_value=0, max_value=5000, allow_nan=False),
              st.floats(min_value=0.1, max_value=100, allow_nan=False)),
    min_size=1, max_size=60)


@given(requests=requests)
def test_reservations_never_start_before_arrival(requests):
    schedule = ResourceSchedule()
    for arrival, duration in requests:
        start = schedule.reserve(arrival, duration)
        assert start >= arrival


@given(requests=requests)
@settings(max_examples=50)
def test_reservations_never_overlap(requests):
    schedule = ResourceSchedule()
    intervals = []
    for arrival, duration in requests:
        start = schedule.reserve(arrival, duration)
        intervals.append((start, start + duration))
    intervals.sort()
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        assert s2 >= e1 - 1e-6


@given(requests=requests)
def test_total_busy_equals_sum_of_durations(requests):
    schedule = ResourceSchedule()
    for arrival, duration in requests:
        schedule.reserve(arrival, duration)
    expected = sum(duration for _, duration in requests)
    assert abs(schedule.busy_time() - expected) < 1e-6


@given(arrival=st.floats(min_value=0, max_value=1e6, allow_nan=False),
       duration=st.floats(min_value=0.1, max_value=100, allow_nan=False))
def test_single_reservation_on_idle_resource_starts_immediately(arrival, duration):
    schedule = ResourceSchedule()
    assert schedule.reserve(arrival, duration) == arrival


@given(requests=requests,
       probe=st.floats(min_value=0, max_value=6000, allow_nan=False))
def test_next_free_is_at_or_after_arrival_and_outside_intervals(requests, probe):
    schedule = ResourceSchedule()
    for arrival, duration in requests:
        schedule.reserve(arrival, duration)
    free = schedule.next_free(probe)
    assert free >= probe
    for start, end in zip(schedule._starts, schedule._ends):
        assert not start <= free < end, "next_free landed inside an interval"
    # A free instant stays free: probing it again moves nothing.
    assert schedule.next_free(free) == free


@given(requests=requests)
@settings(max_examples=50)
def test_interval_slabs_stay_sorted_disjoint_and_coalesced(requests):
    schedule = ResourceSchedule()
    for arrival, duration in requests:
        schedule.reserve(arrival, duration)
        starts, ends = schedule._starts, schedule._ends
        assert len(starts) == len(ends)
        for start, end in zip(starts, ends):
            assert start < end
        for i in range(1, len(starts)):
            # Strictly increasing ends, and a strictly positive gap
            # between neighbours: exact-touch neighbours must have been
            # coalesced into one interval at reservation time.
            assert ends[i - 1] < ends[i]
            assert starts[i] > ends[i - 1]


@given(requests=requests,
       continuation=st.lists(
           st.tuples(st.floats(min_value=0, max_value=4000, allow_nan=False),
                     st.floats(min_value=0.1, max_value=100,
                               allow_nan=False)),
           min_size=1, max_size=40))
@settings(max_examples=50)
def test_prune_timing_never_changes_placements(requests, continuation):
    # Pruning hysteresis is an implementation freedom, not a semantic one:
    # a schedule force-pruned at its newest arrival and an unpruned copy
    # must place every subsequent bounded-disorder arrival identically.
    pruned, virgin = ResourceSchedule(), ResourceSchedule()
    newest = 0.0
    for arrival, duration in requests:
        newest = max(newest, arrival)
        assert pruned.reserve(arrival, duration) \
            == virgin.reserve(arrival, duration)
    pruned._prune(newest)
    floor = newest - ResourceSchedule.PRUNE_SLACK
    for offset, duration in continuation:
        arrival = floor + offset     # never undercuts the prune cutoff
        assert pruned.reserve(arrival, duration) \
            == virgin.reserve(arrival, duration)
    assert pruned.busy_time() == virgin.busy_time()
