"""Property-based tests for the reservation scheduler."""

from hypothesis import given, settings, strategies as st

from repro.sim.queueing import ResourceSchedule

requests = st.lists(
    st.tuples(st.floats(min_value=0, max_value=5000, allow_nan=False),
              st.floats(min_value=0.1, max_value=100, allow_nan=False)),
    min_size=1, max_size=60)


@given(requests=requests)
def test_reservations_never_start_before_arrival(requests):
    schedule = ResourceSchedule()
    for arrival, duration in requests:
        start = schedule.reserve(arrival, duration)
        assert start >= arrival


@given(requests=requests)
@settings(max_examples=50)
def test_reservations_never_overlap(requests):
    schedule = ResourceSchedule()
    intervals = []
    for arrival, duration in requests:
        start = schedule.reserve(arrival, duration)
        intervals.append((start, start + duration))
    intervals.sort()
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        assert s2 >= e1 - 1e-6


@given(requests=requests)
def test_total_busy_equals_sum_of_durations(requests):
    schedule = ResourceSchedule()
    for arrival, duration in requests:
        schedule.reserve(arrival, duration)
    expected = sum(duration for _, duration in requests)
    assert abs(schedule.busy_time() - expected) < 1e-6


@given(arrival=st.floats(min_value=0, max_value=1e6, allow_nan=False),
       duration=st.floats(min_value=0.1, max_value=100, allow_nan=False))
def test_single_reservation_on_idle_resource_starts_immediately(arrival, duration):
    schedule = ResourceSchedule()
    assert schedule.reserve(arrival, duration) == arrival
