"""Property-based tests for Equation 2 address arithmetic."""

from hypothesis import given, strategies as st

from repro.core.address import (
    apply_shift,
    coefficient_of,
    predict_address,
    shift_for_element_size,
    solve_base_addr,
)

shifts = st.sampled_from([2, 3, 4, -3])
indices = st.integers(min_value=0, max_value=2**32 - 1)
bases = st.integers(min_value=0, max_value=2**47 - 1)


@given(index=indices, base=bases, shift=st.sampled_from([2, 3, 4]))
def test_predict_solve_roundtrip_for_positive_shifts(index, base, shift):
    addr = predict_address(index, shift, base)
    assert solve_base_addr(index, addr, shift) == base


@given(index=indices, base=bases)
def test_predict_solve_roundtrip_for_bit_vectors_on_aligned_indices(index, base):
    aligned = index & ~0x7                  # multiples of 8 shift exactly
    addr = predict_address(aligned, -3, base)
    assert solve_base_addr(aligned, addr, -3) == base


@given(index=indices, shift=shifts)
def test_apply_shift_matches_coefficient(index, shift):
    coefficient = coefficient_of(shift)
    assert apply_shift(index, shift) == int(index * coefficient)


@given(shift=st.sampled_from([2, 3, 4, -3]))
def test_shift_for_element_size_inverts_coefficient(shift):
    assert shift_for_element_size(coefficient_of(shift)) == shift


@given(index=indices, base=bases, shift=shifts, delta=st.integers(1, 1000))
def test_prediction_is_monotonic_in_index(index, base, shift, delta):
    smaller = predict_address(index, shift, base)
    larger = predict_address(index + delta * 8, shift, base)
    assert larger > smaller
