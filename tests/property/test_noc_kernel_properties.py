"""Property-based tests for the fused NoC reservation kernel.

The randomized equivalence suite (tests/noc/) drives whole meshes; these
properties attack the kernel directly with hypothesis-generated
bounded-disorder streams, the regime every backend is specified for.
"""

from hypothesis import given, settings, strategies as st

from repro.noc.kernel import (FusedKernel, PRUNE_SLACK, ReferenceKernel,
                              live_intervals)
from repro.sim.queueing import ResourceSchedule

LINK = (0, 1)

#: A bounded-disorder arrival stream: a non-decreasing base clock with
#: backward jitter far below PRUNE_SLACK — the shape the simulator's event
#: heap produces — paired with a serialization per message.
streams = st.lists(
    st.tuples(st.floats(min_value=0, max_value=30, allow_nan=False),   # dt
              st.floats(min_value=0, max_value=PRUNE_SLACK / 4,
                        allow_nan=False),                              # jitter
              st.floats(min_value=0.1, max_value=50, allow_nan=False)),
    min_size=1, max_size=80)


def arrivals(stream):
    base = 0.0
    for dt, jitter, serialization in stream:
        base += dt
        yield max(0.0, base - jitter), serialization


@given(stream=streams, hop=st.floats(min_value=0, max_value=4,
                                     allow_nan=False))
@settings(max_examples=60)
def test_single_link_parity_with_resource_schedule(stream, hop):
    # Per-link placement must be bit-identical to the executable spec:
    # delivery through a one-link fused route equals the schedule's start
    # plus hop latency plus the pipeline drain.
    fused = FusedKernel(hop_latency=hop)
    spec = ResourceSchedule()
    for arrival, serialization in arrivals(stream):
        reserve = fused.route_reserver((LINK,), serialization)
        start = spec.reserve(arrival, serialization)
        assert reserve(arrival) == start + hop + serialization
    assert fused.busy_time(LINK) == spec.busy_time()


@given(stream=streams)
@settings(max_examples=60)
def test_slab_invariants_hold_after_every_reservation(stream):
    fused = FusedKernel(hop_latency=1.0)
    newest = 0.0
    for arrival, serialization in arrivals(stream):
        newest = max(newest, arrival)
        fused.route_reserver((LINK,), serialization)(arrival)
        state = fused._states[fused._ids[LINK]]
        starts, ends, head, frontier = state[2], state[3], state[4], state[5]
        n = len(ends)
        assert len(starts) == n
        assert 0 <= head <= n
        assert 0 <= frontier <= n
        assert state[0] == (ends[-1] if ends else float("-inf")), \
            "watermark out of sync with the tail interval"
        for start, end in zip(starts, ends):
            assert start < end
        for i in range(1, n):
            assert ends[i - 1] < ends[i]
            assert starts[i] >= ends[i - 1]
            if i > head:
                # Live neighbours must never exactly touch — reserve
                # coalesces them.  (A live interval may touch a dead one
                # across the head boundary: coalescing stops at the
                # logical prune point.)
                assert starts[i] > ends[i - 1]
    # The retained live suffix is what intervals() exposes.
    live_starts, live_ends = fused.intervals(LINK)
    assert live_starts == starts[head:]
    assert live_ends == ends[head:]


@given(stream=streams)
@settings(max_examples=60)
def test_forced_sweeps_never_change_placements(stream):
    # Sweep timing is an implementation freedom: a kernel swept after
    # every single message must place identically to one that never
    # sweeps on its own schedule.
    swept = FusedKernel(hop_latency=1.0)
    unswept = FusedKernel(hop_latency=1.0)
    newest = 0.0
    for arrival, serialization in arrivals(stream):
        newest = max(newest, arrival)
        a = swept.route_reserver((LINK,), serialization)(arrival)
        b = unswept.route_reserver((LINK,), serialization)(arrival)
        assert a == b
        swept._sweep(newest)
    assert swept.busy_time(LINK) == unswept.busy_time(LINK)
    horizon = newest - PRUNE_SLACK
    assert (live_intervals(*swept.intervals(LINK), horizon)
            == live_intervals(*unswept.intervals(LINK), horizon))


@given(stream=streams)
@settings(max_examples=40)
def test_multi_link_route_parity_with_reference(stream):
    # A three-hop route, reserved link by link by the reference backend
    # and in one fused pass, must agree end to end.
    route = ((0, 1), (1, 5), (5, 6))
    fused = FusedKernel(hop_latency=1.0)
    reference = ReferenceKernel(hop_latency=1.0)
    for arrival, serialization in arrivals(stream):
        assert (fused.route_reserver(route, serialization)(arrival)
                == reference.route_reserver(route, serialization)(arrival))
    for link in route:
        assert fused.busy_time(link) == reference.busy_time(link)


@given(stream=streams,
       horizon=st.floats(min_value=-100, max_value=3000, allow_nan=False))
@settings(max_examples=40)
def test_live_intervals_is_sorted_disjoint_clipped_coverage(stream, horizon):
    spec = ResourceSchedule()
    for arrival, serialization in arrivals(stream):
        spec.reserve(arrival, serialization)
    coverage = live_intervals(spec._starts, spec._ends, horizon)
    for start, end in coverage:
        assert horizon <= start < end
    for (s1, e1), (s2, e2) in zip(coverage, coverage[1:]):
        assert s2 > e1, "coverage intervals must be fused and disjoint"
    # Clipping discards exactly the busy time below the horizon.
    raw = sum(end - max(start, horizon)
              for start, end in zip(spec._starts, spec._ends)
              if end > horizon)
    assert abs(sum(end - start for start, end in coverage) - raw) < 1e-6
