"""Property-based tests for the mesh NoC routing and timing."""

from hypothesis import given, settings, strategies as st

from repro.noc.mesh import MeshNoC, Message

mesh_sizes = st.sampled_from([4, 16, 64])


@st.composite
def mesh_and_pair(draw):
    n_tiles = draw(mesh_sizes)
    src = draw(st.integers(0, n_tiles - 1))
    dst = draw(st.integers(0, n_tiles - 1))
    return n_tiles, src, dst


@given(args=mesh_and_pair())
def test_route_length_equals_manhattan_distance(args):
    n_tiles, src, dst = args
    noc = MeshNoC(n_tiles)
    assert len(noc.route(src, dst)) == noc.hops(src, dst)


@given(args=mesh_and_pair())
def test_route_hops_are_adjacent_and_reach_destination(args):
    n_tiles, src, dst = args
    noc = MeshNoC(n_tiles)
    position = src
    for a, b in noc.route(src, dst):
        assert a == position
        assert noc.hops(a, b) == 1
        position = b
    assert position == dst


@given(args=mesh_and_pair(),
       payload=st.integers(min_value=0, max_value=512),
       now=st.floats(min_value=0, max_value=1e6, allow_nan=False))
def test_send_never_arrives_before_zero_load_latency(args, payload, now):
    n_tiles, src, dst = args
    noc = MeshNoC(n_tiles)
    arrival = noc.send(Message(src, dst, payload), now)
    if src != dst:
        assert arrival >= now + noc.zero_load_latency(src, dst, payload) - 1e-6


@given(args=mesh_and_pair(), count=st.integers(1, 20))
@settings(max_examples=40)
def test_repeated_sends_are_monotonically_non_decreasing(args, count):
    n_tiles, src, dst = args
    noc = MeshNoC(n_tiles)
    arrivals = [noc.send(Message(src, dst, 64), now=0) for _ in range(count)]
    assert arrivals == sorted(arrivals)
