"""Property-based tests for the memory image address arithmetic."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mem_image import MemoryImage

elem_sizes = st.sampled_from([1, 2, 4, 8, 16])
lengths = st.integers(min_value=1, max_value=4096)


@given(length=lengths, elem_size=elem_sizes)
@settings(max_examples=60)
def test_addr_of_index_of_roundtrip(length, elem_size):
    image = MemoryImage()
    spec = image.add_array("a", length=length, elem_size=elem_size)
    for index in {0, length // 2, length - 1}:
        assert spec.index_of(spec.addr_of(index)) == index


@given(lengths_list=st.lists(lengths, min_size=1, max_size=8))
@settings(max_examples=60)
def test_registered_arrays_never_overlap(lengths_list):
    image = MemoryImage()
    for i, length in enumerate(lengths_list):
        image.add_array(f"array{i}", length=length, elem_size=8)
    specs = image.arrays()
    for first, second in zip(specs, specs[1:]):
        assert first.end <= second.base


@given(values=st.lists(st.integers(0, 2**31 - 1), min_size=1, max_size=256))
@settings(max_examples=60)
def test_read_value_returns_stored_integers(values):
    image = MemoryImage()
    data = np.array(values, dtype=np.int64)
    image.add_array("idx", data)
    for index in {0, len(values) // 2, len(values) - 1}:
        assert image.read_value(image.addr_of("idx", index)) == values[index]


@given(length=lengths)
@settings(max_examples=60)
def test_find_is_consistent_with_contains(length):
    image = MemoryImage()
    spec = image.add_array("a", length=length, elem_size=4)
    inside = spec.base + (spec.size_bytes // 2)
    outside = spec.end + 1
    assert image.find(inside).name == "a"
    assert image.find(outside) is None
