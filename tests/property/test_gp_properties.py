"""Property-based tests for Granularity Predictor helpers and Algorithm 1."""

from hypothesis import given, settings, strategies as st

from repro.core.config import IMPConfig
from repro.core.granularity import (
    GranularityPredictor,
    min_consecutive_run,
    popcount,
)

masks = st.integers(min_value=0, max_value=255)


@given(mask=masks)
def test_min_run_bounded_by_sector_count(mask):
    run = min_consecutive_run(mask, 8)
    assert 1 <= run <= 8


@given(mask=masks)
def test_min_run_never_exceeds_popcount_unless_empty(mask):
    run = min_consecutive_run(mask, 8)
    if mask:
        assert run <= popcount(mask)
    else:
        assert run == 8


@given(mask=st.integers(min_value=1, max_value=255))
def test_min_run_of_solid_prefix_equals_popcount(mask):
    solid = (1 << popcount(mask)) - 1        # same popcount, one solid run
    assert min_consecutive_run(solid, 8) == popcount(mask)


@given(touch_masks=st.lists(masks, min_size=4, max_size=4))
@settings(max_examples=80)
def test_predicted_granularity_always_legal(touch_masks):
    config = IMPConfig(partial_enabled=True, gp_samples=4)
    gp = GranularityPredictor(config)
    base = 0x1000_0000
    for i, mask in enumerate(touch_masks):
        line = base + i * 64
        gp.maybe_sample(0, line)
        for sector in range(8):
            if (mask >> sector) & 1:
                gp.on_demand_access(line + sector * 8, size=8)
    for i in range(4):
        gp.on_eviction(base + i * 64)
    granularity = gp.entry(0).granularity_sectors
    assert 1 <= granularity <= 8
    assert gp.granularity_bytes(0) == granularity * 8


@given(touch_masks=st.lists(st.just(255), min_size=4, max_size=4))
def test_fully_touched_lines_predict_full_cacheline(touch_masks):
    config = IMPConfig(partial_enabled=True, gp_samples=4)
    gp = GranularityPredictor(config)
    base = 0x2000_0000
    for i in range(4):
        line = base + i * 64
        gp.maybe_sample(0, line)
        for sector in range(8):
            gp.on_demand_access(line + sector * 8, size=8)
        gp.on_eviction(line)
    assert gp.granularity_bytes(0) == 64
