"""Property-based tests for the cache model invariants."""

from hypothesis import given, settings, strategies as st

from repro.memory.cache import Cache
from repro.sim.config import CacheConfig


def make_cache(sector=0) -> Cache:
    return Cache(CacheConfig(size_bytes=1024, associativity=2, line_size=64,
                             sector_size=sector))


addresses = st.integers(min_value=0, max_value=0xF_FFFF)
address_lists = st.lists(addresses, min_size=1, max_size=200)


@given(addrs=address_lists)
@settings(max_examples=60)
def test_occupancy_never_exceeds_capacity(addrs):
    cache = make_cache()
    for now, addr in enumerate(addrs):
        result = cache.access(addr, 8, False, now)
        if not result.hit:
            cache.fill(addr, now, now)
    assert cache.occupancy() <= cache.capacity_lines


@given(addrs=address_lists)
@settings(max_examples=60)
def test_access_immediately_after_fill_hits(addrs):
    cache = make_cache()
    for now, addr in enumerate(addrs):
        cache.fill(addr, now, now)
        assert cache.access(addr, 1, False, now).hit


@given(addrs=address_lists)
@settings(max_examples=60)
def test_hits_plus_misses_equals_accesses(addrs):
    cache = make_cache()
    for now, addr in enumerate(addrs):
        result = cache.access(addr, 8, False, now)
        if not result.hit:
            cache.fill(addr, now, now)
    assert cache.hits + cache.misses == cache.accesses


@given(addrs=address_lists)
@settings(max_examples=60)
def test_resident_lines_have_distinct_line_addresses(addrs):
    cache = make_cache()
    for now, addr in enumerate(addrs):
        cache.fill(addr, now, now)
    lines = [line.addr for line in cache.resident_lines()]
    assert len(lines) == len(set(lines))


@given(addrs=address_lists, sizes=st.lists(st.integers(1, 64), min_size=1,
                                           max_size=200))
@settings(max_examples=60)
def test_sector_masks_within_line_bounds(addrs, sizes):
    cache = make_cache(sector=8)
    for addr, size in zip(addrs, sizes):
        mask = cache.sector_mask(addr, size)
        assert 0 < mask < (1 << cache.sectors_per_line) or mask == (
            (1 << cache.sectors_per_line) - 1)
        assert mask.bit_length() <= cache.sectors_per_line
