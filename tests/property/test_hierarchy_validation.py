"""Property-style validation tests for HierarchyConfig / ScenarioSpec.

Every malformed hierarchy or scenario input must fail *at configuration
time* with an error whose message lists the valid choices (the
``RegistryError`` convention): unknown level names list the hierarchy's
levels, unknown prefetchers list the registry, scope typos list the two
scopes, and the legacy >3-level cap is gone — deep chains validate.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.scenario import ScenarioError, ScenarioSpec
from repro.registry import RegistryError
from repro.sim.config import HierarchyConfig, LevelConfig, PrefetcherAttach


def chain(n_levels: int, names=None) -> tuple:
    """A well-formed chain of ``n_levels`` levels (last one shared)."""
    names = names or [f"l{i + 1}" for i in range(n_levels)]
    return tuple(
        LevelConfig(name=name, size_bytes=4096 << index, associativity=4,
                    scope="shared" if index == n_levels - 1 else "private",
                    hit_latency=1 + index)
        for index, name in enumerate(names))


# ----------------------------------------------------------------------
# HierarchyConfig
# ----------------------------------------------------------------------
class TestAttachValidation:
    def test_unknown_attach_level_lists_valid_names(self):
        with pytest.raises(ValueError,
                           match=r"valid levels: \['l1', 'l2', 'l3'\]"):
            HierarchyConfig(levels=chain(3),
                            attach=({"level": "l9", "prefetcher": "imp"},))

    def test_unknown_attach_prefetcher_lists_registry(self):
        with pytest.raises(RegistryError, match="none, stream, ghb, imp"):
            HierarchyConfig(levels=chain(2),
                            attach=({"level": "l1",
                                     "prefetcher": "warp_drive"},))

    def test_duplicate_attach_rejected(self):
        with pytest.raises(ValueError, match="duplicate prefetcher attach"):
            HierarchyConfig(levels=chain(3),
                            attach=({"level": "l2", "prefetcher": "imp"},
                                    {"level": "l2", "prefetcher": "imp"}))

    def test_same_level_different_prefetchers_allowed(self):
        hierarchy = HierarchyConfig(
            levels=chain(2),
            attach=({"level": "l1", "prefetcher": "stream"},
                    {"level": "l1", "prefetcher": "ghb"}))
        assert len(hierarchy.attach) == 2

    def test_unknown_attach_key_rejected(self):
        with pytest.raises(ValueError, match="valid keys: level, prefetcher"):
            HierarchyConfig(levels=chain(2),
                            attach=({"level": "l1", "degree": 4},))

    def test_attach_entry_must_name_a_level(self):
        with pytest.raises(ValueError, match="must name a 'level'"):
            HierarchyConfig(levels=chain(2),
                            attach=({"prefetcher": "imp"},))

    def test_attach_and_prefetch_level_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            HierarchyConfig(levels=chain(3), prefetch_level="l1",
                            attach=({"level": "l2"},))

    def test_legacy_prefetch_level_must_be_private(self):
        with pytest.raises(ValueError,
                           match=r"private levels: \['l1', 'l2'\]"):
            HierarchyConfig(levels=chain(3), prefetch_level="l3")

    def test_shared_scope_typo_lists_valid_scopes(self):
        with pytest.raises(ValueError, match="'private' or 'shared'"):
            LevelConfig(name="l2", size_bytes=8192, associativity=8,
                        scope="sharde")

    def test_empty_attach_list_means_no_prefetchers(self):
        hierarchy = HierarchyConfig(levels=chain(2), attach=())
        assert hierarchy.attach == ()
        assert hierarchy.private_attaches == ()
        assert hierarchy.shared_attaches == ()

    def test_shared_level_attach_is_classified(self):
        hierarchy = HierarchyConfig(
            levels=chain(3),
            attach=({"level": "l3", "prefetcher": "imp"},
                    {"level": "l1", "prefetcher": "stream"}))
        assert [a.level for a in hierarchy.private_attaches] == ["l1"]
        assert [a.level for a in hierarchy.shared_attaches] == ["l3"]

    def test_deep_chains_validate(self):
        """The pre-fix >3-level cap is gone: deep chains are legal and
        round-trip through their dict form."""
        for depth in (4, 5, 6):
            hierarchy = HierarchyConfig(levels=chain(depth),
                                        prefetch_level="l2")
            assert len(hierarchy.levels) == depth
            assert HierarchyConfig.from_dict(hierarchy.to_dict()) == hierarchy


@settings(max_examples=25, deadline=None)
@given(depth=st.integers(min_value=2, max_value=6), data=st.data())
def test_any_attach_subset_of_levels_validates(depth, data):
    """Any attach list drawn from the chain's own level names (with stock
    prefetchers, deduplicated) validates; attach order never matters for
    the canonical classification."""
    levels = chain(depth)
    names = [lvl.name for lvl in levels]
    entries = data.draw(st.lists(
        st.tuples(st.sampled_from(names),
                  st.sampled_from(["stream", "ghb", "imp", None])),
        max_size=4, unique=True))
    attach = tuple(PrefetcherAttach(level=lvl, prefetcher=pf)
                   for lvl, pf in entries)
    hierarchy = HierarchyConfig(levels=levels, attach=attach)
    assert set(hierarchy.private_attaches + hierarchy.shared_attaches) \
        == set(attach)
    # Reversing the attach list yields the same canonical private order.
    reversed_form = HierarchyConfig(levels=levels, attach=attach[::-1])
    assert [a.level for a in reversed_form.private_attaches] \
        == [a.level for a in hierarchy.private_attaches]


@settings(max_examples=25, deadline=None)
@given(depth=st.integers(min_value=2, max_value=5),
       bogus=st.text(alphabet="xyz", min_size=1, max_size=3))
def test_unknown_level_always_lists_the_chain(depth, bogus):
    levels = chain(depth)
    names = [lvl.name for lvl in levels]
    if bogus in names:
        return
    with pytest.raises(ValueError) as excinfo:
        HierarchyConfig(levels=levels, attach=({"level": bogus},))
    for name in names:
        assert name in str(excinfo.value)


# ----------------------------------------------------------------------
# ScenarioSpec (the same errors must surface through scenario files)
# ----------------------------------------------------------------------
def scenario_doc(**hierarchy_overrides):
    hierarchy = {
        "levels": [
            {"name": "l1", "size_bytes": 4096, "associativity": 4},
            {"name": "l2", "size_bytes": 16384, "associativity": 8,
             "hit_latency": 4},
            {"name": "l3", "size_bytes": 32768, "associativity": 8,
             "scope": "shared", "hit_latency": 8},
        ],
    }
    hierarchy.update(hierarchy_overrides)
    return {
        "workload": "indirect_stream",
        "workload_params": {"n_indices": 256, "n_data": 1024, "seed": 3},
        "mode": "imp",
        "n_cores": 4,
        "system": {"hierarchy": hierarchy},
    }


class TestScenarioAttachValidation:
    def test_unknown_attach_level_fails_at_validation(self):
        doc = scenario_doc(attach=[{"level": "l7", "prefetcher": "imp"}])
        with pytest.raises(ScenarioError, match="valid levels"):
            ScenarioSpec.from_dict(doc)

    def test_unknown_attach_prefetcher_fails_listing_registry(self):
        doc = scenario_doc(attach=[{"level": "l1", "prefetcher": "hyper"}])
        with pytest.raises(ValueError, match="none, stream, ghb, imp"):
            ScenarioSpec.from_dict(doc)

    def test_duplicate_attach_fails(self):
        doc = scenario_doc(attach=[{"level": "l2"}, {"level": "l2"}])
        with pytest.raises(ScenarioError, match="duplicate"):
            ScenarioSpec.from_dict(doc)

    def test_attach_plus_prefetch_level_fails(self):
        doc = scenario_doc(attach=[{"level": "l2"}], prefetch_level="l1")
        with pytest.raises(ScenarioError, match="not both"):
            ScenarioSpec.from_dict(doc)

    def test_deep_chain_scenario_validates(self):
        doc = scenario_doc()
        doc["system"]["hierarchy"]["levels"].insert(2, {
            "name": "l2b", "size_bytes": 32768, "associativity": 8,
            "hit_latency": 6})
        doc["system"]["hierarchy"]["attach"] = [{"level": "l2b",
                                                 "prefetcher": "imp"}]
        spec = ScenarioSpec.from_dict(doc)
        assert spec.digest()

    def test_attach_spelling_shares_digest_with_legacy(self):
        legacy = ScenarioSpec.from_dict(scenario_doc(prefetch_level="l2"))
        explicit = ScenarioSpec.from_dict(scenario_doc(
            attach=[{"level": "l2", "prefetcher": None}]))
        assert legacy.digest() == explicit.digest()

    def test_shared_attach_changes_digest(self):
        base = ScenarioSpec.from_dict(scenario_doc(
            attach=[{"level": "l2", "prefetcher": "imp"}]))
        shared = ScenarioSpec.from_dict(scenario_doc(
            attach=[{"level": "l3", "prefetcher": "imp"}]))
        assert base.digest() != shared.digest()
