"""Tests for the command-line interface (repro.cli)."""

import io

import pytest

from repro.cli import FIGURES, main


def run_cli(*argv) -> str:
    out = io.StringIO()
    code = main(list(argv), out=out)
    assert code == 0
    return out.getvalue()


class TestListAndCost:
    def test_list_workloads_names_all_seven(self):
        output = run_cli("list-workloads")
        for name in ("pagerank", "tri_count", "graph500", "sgd", "lsh",
                     "spmv", "symgs"):
            assert name in output
        assert "dense_stencil" in output

    def test_cost_reports_kbits(self):
        output = run_cli("cost")
        assert "imp_total_kbits" in output
        assert "gp_total_bytes" in output


class TestRun:
    def test_run_indirect_stream_with_imp(self):
        output = run_cli("run", "indirect_stream", "--cores", "4",
                         "--prefetcher", "imp")
        assert "runtime (cycles)" in output
        assert "prefetch coverage" in output

    def test_run_with_partial_and_ooo_flags(self):
        output = run_cli("run", "streaming", "--cores", "4", "--partial",
                         "--ooo", "--prefetcher", "stream")
        assert "NoC traffic" in output

    def test_unknown_workload_exits_with_error(self):
        with pytest.raises(SystemExit):
            run_cli("run", "does_not_exist")

    def test_unknown_prefetcher_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            run_cli("run", "streaming", "--prefetcher", "oracle")


class TestCompareAndFigure:
    def test_compare_prints_all_requested_modes(self):
        output = run_cli("compare", "indirect_stream", "--cores", "4",
                         "--modes", "ideal", "base", "imp", "perfpref")
        for mode in ("ideal", "base", "imp", "perfpref"):
            assert mode in output

    def test_figure_names_registered(self):
        assert {"fig1", "fig2", "fig9", "table3", "fig12"} <= set(FIGURES)

    def test_figure_cost_free_generation(self, tmp_path):
        # fig14 on a tiny scale exercises the runner path end to end.
        output = run_cli("figure", "fig1", "--cores", "4", "--scale", "0.05",
                         "--cache-dir", str(tmp_path / "cache"))
        assert "workload" in output
        assert "avg" in output

    def test_figure_no_cache_writes_nothing(self, tmp_path):
        run_cli("figure", "fig1", "--cores", "4", "--scale", "0.05",
                "--cache-dir", str(tmp_path / "cache"), "--no-cache")
        assert not (tmp_path / "cache").exists()


class TestSweep:
    def test_sweep_builds_figures_and_reports_cache_reuse(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = run_cli("sweep", "--figures", "fig1", "fig2", "--cores", "4",
                       "--scale", "0.05", "--jobs", "2",
                       "--cache-dir", cache_dir)
        assert "== fig1 ==" in cold and "== fig2 ==" in cold
        assert "[sweep]" in cold
        # Warm rerun: every run comes from the on-disk cache.
        warm = run_cli("sweep", "--figures", "fig1", "fig2", "--cores", "4",
                       "--scale", "0.05", "--cache-dir", cache_dir)
        assert "0 simulated" in warm
        # The figures themselves are identical to the cold run.
        assert warm.split("[sweep]")[0] == cold.split("[sweep]")[0]


class TestRegistryList:
    def test_list_shows_all_registries(self):
        output = run_cli("list")
        for heading in ("prefetchers", "dram-models", "workloads", "modes"):
            assert heading in output
        # Entries appear with their descriptions.
        assert "imp" in output
        assert "Indirect Memory Prefetcher" in output
        assert "imp_partial_noc_dram" in output

    def test_list_single_registry(self):
        output = run_cli("list", "modes")
        assert "imp_partial_noc_dram" in output
        assert "dram-models" not in output

    def test_list_includes_noc_kernels(self):
        output = run_cli("list", "noc-kernels")
        assert "reference" in output
        assert "fused" in output

    def test_list_hides_unavailable_compiled_kernel(self, monkeypatch):
        from repro.noc.kernel import compiled_kernel_available

        def listed(output):
            # First token of each entry line ("  name  description...").
            return [line.split()[0] for line in output.splitlines()
                    if line.startswith("  ")]

        monkeypatch.setenv("REPRO_NO_CEXT", "1")
        assert listed(run_cli("list", "noc-kernels")) == ["reference",
                                                          "fused"]
        monkeypatch.delenv("REPRO_NO_CEXT")
        if compiled_kernel_available():
            assert listed(run_cli("list", "noc-kernels")) == [
                "reference", "fused", "compiled"]


class TestScenario:
    SCENARIO = "examples/scenarios/tiny_smoke.json"
    FINGERPRINT = "examples/scenarios/tiny_smoke.fingerprint.json"

    def test_scenario_run_prints_summary(self):
        output = run_cli("run", "--scenario", self.SCENARIO)
        assert "scenario          : tiny-smoke" in output
        assert "hierarchy         : l1(private) -> l2(shared) -> dram" in output
        assert "fingerprint       :" in output

    def test_scenario_fingerprint_check_passes(self):
        output = run_cli("run", "--scenario", self.SCENARIO,
                         "--expect-fingerprint", self.FINGERPRINT)
        assert "fingerprint check : ok" in output

    def test_three_level_scenario_runs(self):
        output = run_cli(
            "run", "--scenario", "examples/scenarios/imp_l2_three_level.json",
            "--expect-fingerprint",
            "examples/scenarios/imp_l2_three_level.fingerprint.json")
        assert "l1(private) -> l2(private) -> l3(shared) -> dram" in output
        assert "prefetch: imp@l2" in output
        assert "fingerprint check : ok" in output

    def test_fingerprint_mismatch_fails(self, tmp_path):
        import io
        import json

        bogus = tmp_path / "wrong.json"
        bogus.write_text(json.dumps({"fingerprint": {"runtime_cycles": 1}}))
        out = io.StringIO()
        code = main(["run", "--scenario", self.SCENARIO,
                     "--expect-fingerprint", str(bogus)], out=out)
        assert code == 1
        assert "FINGERPRINT MISMATCH" in out.getvalue()

    def test_write_fingerprint(self, tmp_path):
        import json

        target = tmp_path / "fp.json"
        run_cli("run", "--scenario", self.SCENARIO,
                "--write-fingerprint", str(target))
        doc = json.loads(target.read_text())
        assert doc["scenario"] == "tiny-smoke"
        assert doc["fingerprint"]["runtime_cycles"] > 0

    def test_workload_and_scenario_are_exclusive(self):
        import io

        out = io.StringIO()
        code = main(["run", "spmv", "--scenario", self.SCENARIO], out=out)
        assert code == 2

    def test_run_without_workload_or_scenario_errors(self):
        import io

        out = io.StringIO()
        code = main(["run"], out=out)
        assert code == 2
        assert "repro list" in out.getvalue()

    def test_invalid_scenario_file_reports_error(self, tmp_path):
        import io

        bad = tmp_path / "bad.json"
        bad.write_text('{"workload": "minesweeper"}')
        out = io.StringIO()
        code = main(["run", "--scenario", str(bad)], out=out)
        assert code == 2
        assert "minesweeper" in out.getvalue()

    def test_plain_run_flags_rejected_with_scenario(self):
        import io

        out = io.StringIO()
        code = main(["run", "--scenario", self.SCENARIO, "--cores", "64"],
                    out=out)
        assert code == 2
        assert "--cores" in out.getvalue()

    def test_missing_expectation_file_fails_cleanly(self, tmp_path):
        import io

        out = io.StringIO()
        code = main(["run", "--scenario", self.SCENARIO,
                     "--expect-fingerprint", str(tmp_path / "absent.json")],
                    out=out)
        assert code == 2
        assert "cannot read expected fingerprint" in out.getvalue()


class TestProfileCommand:
    def test_profile_reports_subsystem_attribution(self):
        output = run_cli("profile", "indirect_stream", "--prefetcher",
                         "stream", "--quick", "--cores", "4")
        assert "subsystem" in output
        for bucket in ("noc", "cache", "prefetcher"):
            assert bucket in output
        assert "simulated cycles" in output

    def test_profile_writes_json_document(self, tmp_path):
        import json

        out_path = tmp_path / "profile.json"
        run_cli("profile", "indirect_stream", "--prefetcher", "none",
                "--quick", "--cores", "4", "--out", str(out_path))
        document = json.loads(out_path.read_text())
        assert document["schema"] == "repro-profile-v1"
        assert document["runtime_cycles"] > 0
        assert 0.99 < sum(bucket["share"] for bucket
                          in document["subsystems"].values()) < 1.01
        assert document["top_functions"]

    def test_profile_unknown_workload_errors(self):
        out = io.StringIO()
        assert main(["profile", "nonsense"], out=out) == 2
        assert "unknown bench workload" in out.getvalue()


class TestSweepScenarioDir:
    def test_scenario_dir_checks_fingerprints(self, tmp_path):
        output = run_cli("sweep", "--scenario-dir", "examples/scenarios",
                         "--cache-dir", str(tmp_path / "cache"))
        assert "tiny_smoke.json" in output
        assert "imp_l2_three_level.json" in output
        assert "fingerprint ok" in output
        assert "MISMATCH" not in output

    def test_scenario_dir_warm_cache_simulates_nothing(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_cli("sweep", "--scenario-dir", "examples/scenarios",
                "--cache-dir", cache_dir)
        output = run_cli("sweep", "--scenario-dir", "examples/scenarios",
                         "--cache-dir", cache_dir)
        assert "0 simulated" in output

    def test_scenario_dir_mismatch_fails(self, tmp_path):
        import json
        import shutil

        scenario_dir = tmp_path / "scenarios"
        scenario_dir.mkdir()
        shutil.copy("examples/scenarios/tiny_smoke.json",
                    scenario_dir / "tiny_smoke.json")
        (scenario_dir / "tiny_smoke.fingerprint.json").write_text(
            json.dumps({"fingerprint": {"runtime_cycles": -1}}))
        out = io.StringIO()
        assert main(["sweep", "--scenario-dir", str(scenario_dir),
                     "--no-cache"], out=out) == 1
        assert "MISMATCH" in out.getvalue()

    def test_scenario_dir_empty_errors(self, tmp_path):
        out = io.StringIO()
        assert main(["sweep", "--scenario-dir", str(tmp_path)], out=out) == 2
        assert "no scenario files" in out.getvalue()

    def test_scenario_dir_excludes_figures(self):
        out = io.StringIO()
        assert main(["sweep", "--scenario-dir", "examples/scenarios",
                     "--figures", "fig1"], out=out) == 2
        assert "not both" in out.getvalue()


class TestSweepRobustness:
    """The fault-tolerance surface of ``repro sweep``: policy flags,
    --resume, exit codes, the failure report and quarantine warnings."""

    def sweep(self, *extra, code=0):
        out = io.StringIO()
        argv = ["sweep", "--figures", "fig1", "--cores", "4",
                "--scale", "0.05", *extra]
        assert main(argv, out=out) == code
        return out.getvalue()

    def test_policy_flags_are_accepted(self, tmp_path):
        output = self.sweep("--cache-dir", str(tmp_path / "cache"),
                            "--timeout", "60", "--retries", "1",
                            "--backoff", "0.1", "--keep-going")
        assert "== fig1 ==" in output

    def test_keep_going_and_fail_fast_are_exclusive(self):
        with pytest.raises(SystemExit):
            self.sweep("--keep-going", "--fail-fast", "--no-cache")

    def test_resume_requires_the_cache(self):
        out = io.StringIO()
        assert main(["sweep", "--figures", "fig1", "--cores", "4",
                     "--scale", "0.05", "--resume", "--no-cache"],
                    out=out) == 2
        assert "--resume needs the persistent cache" in out.getvalue()

    def test_sweep_journals_and_resume_reports_prior_work(self, tmp_path):
        cache_dir = tmp_path / "cache"
        self.sweep("--cache-dir", str(cache_dir))
        journals = list(cache_dir.glob("journal-*.jsonl"))
        assert len(journals) == 1
        warm = self.sweep("--cache-dir", str(cache_dir), "--resume")
        assert "[sweep] resuming from journal-" in warm
        assert "0 simulated" in warm

    def test_quarantine_warning_after_corruption(self, tmp_path):
        cache_dir = tmp_path / "cache"
        self.sweep("--cache-dir", str(cache_dir))
        record = sorted(cache_dir.glob("*.json"))[0]
        record.write_text("{ torn")
        healed = self.sweep("--cache-dir", str(cache_dir))
        assert "[cache] warning: 1 quarantined record(s)" in healed
        assert "repro cache doctor" in healed
        # The damaged run was recomputed, not skipped.
        assert "== fig1 ==" in healed

    def test_permanent_failures_exit_3_with_report(self, tmp_path,
                                                   monkeypatch):
        import json

        monkeypatch.setenv("REPRO_FAULTS", json.dumps(
            {"seed": 2, "transient": 1.0, "max_faults_per_spec": 1000}))
        failures_out = tmp_path / "failures.json"
        out = io.StringIO()
        code = main(["sweep", "--figures", "fig1", "--cores", "4",
                     "--scale", "0.05", "--no-cache", "--retries", "0",
                     "--failures-out", str(failures_out)], out=out)
        assert code == 3
        text = out.getvalue()
        assert "permanently failed" in text
        assert "transient" in text
        report = json.loads(failures_out.read_text())
        assert report["schema"] == "repro-failures-v1"
        assert report["failed_runs"] == len(report["failures"]) > 0
        assert report["policy"]["retries"] == 0
        assert all(failure["kind"] == "transient"
                   for failure in report["failures"])

    def test_keyboard_interrupt_exits_130(self, monkeypatch):
        def boom(args, out, policy=None):
            raise KeyboardInterrupt()

        monkeypatch.setattr("repro.cli._command_sweep_figures", boom)
        out = io.StringIO()
        assert main(["sweep", "--figures", "fig1", "--no-cache"],
                    out=out) == 130
        assert "rerun with --resume" in out.getvalue()

    def test_sigterm_exits_143(self, monkeypatch):
        import signal

        def self_terminate(args, out, policy=None):
            # _sigterm_raises() must have installed its handler by now.
            signal.raise_signal(signal.SIGTERM)

        monkeypatch.setattr("repro.cli._command_sweep_figures",
                            self_terminate)
        out = io.StringIO()
        assert main(["sweep", "--figures", "fig1", "--no-cache"],
                    out=out) == 143
        assert "terminated (SIGTERM)" in out.getvalue()


class TestSweepResumeMismatch:
    """Satellite of the service PR: ``--resume`` against a journal that
    was written for a *different* spec set warns and starts fresh instead
    of silently mixing two sweeps' progress."""

    def sweep_dir(self, scenario_dir, cache_dir, *extra, code=0):
        out = io.StringIO()
        argv = ["sweep", "--scenario-dir", str(scenario_dir),
                "--cache-dir", str(cache_dir), *extra]
        assert main(argv, out=out) == code
        return out.getvalue()

    def test_resume_mismatch_warns_and_starts_fresh(self, tmp_path):
        import json
        import shutil

        scenario_dir = tmp_path / "scenarios"
        scenario_dir.mkdir()
        shutil.copy("examples/scenarios/tiny_smoke.json",
                    scenario_dir / "tiny_smoke.json")
        cache_dir = tmp_path / "cache"
        self.sweep_dir(scenario_dir, cache_dir)

        # Same directory (same journal file), different spec set.
        doc = json.loads((scenario_dir / "tiny_smoke.json").read_text())
        doc["workload_params"]["seed"] = 99
        (scenario_dir / "tiny_smoke.json").write_text(json.dumps(doc))
        changed = self.sweep_dir(scenario_dir, cache_dir, "--resume")
        assert "different spec set" in changed
        assert "starting a fresh journal" in changed
        assert "resuming from" not in changed

        # Resuming the *same* spec set stays quiet and does no work.
        again = self.sweep_dir(scenario_dir, cache_dir, "--resume")
        assert "different spec set" not in again
        assert "resuming from" in again
        assert "0 simulated" in again

    def test_failure_report_creates_missing_parents(self, tmp_path,
                                                    monkeypatch):
        import json

        monkeypatch.setenv("REPRO_FAULTS", json.dumps(
            {"seed": 2, "transient": 1.0, "max_faults_per_spec": 1000}))
        failures_out = tmp_path / "deep" / "nested" / "dirs" / "failures.json"
        out = io.StringIO()
        code = main(["sweep", "--figures", "fig1", "--cores", "4",
                     "--scale", "0.05", "--no-cache", "--retries", "0",
                     "--failures-out", str(failures_out)], out=out)
        assert code == 3
        report = json.loads(failures_out.read_text())
        assert report["failed_runs"] > 0


class TestServeArguments:
    """Fast argument-validation paths of ``repro serve`` (live-server
    behaviour is covered end to end by tests/service/)."""

    def test_queue_depth_must_be_positive(self):
        out = io.StringIO()
        assert main(["serve", "--queue-depth", "0"], out=out) == 2
        assert "--queue-depth" in out.getvalue()

    def test_cache_dir_is_required(self):
        out = io.StringIO()
        assert main(["serve", "--cache-dir", ""], out=out) == 2
        assert "durable job journal" in out.getvalue()


class TestSweepBackendFlags:
    def test_shard_requires_service_backend(self):
        out = io.StringIO()
        assert main(["sweep", "--figures", "fig1",
                     "--shard", "http://h:1"], out=out) == 2
        assert "--shard requires --backend service" in out.getvalue()

    def test_service_backend_requires_a_shard(self):
        out = io.StringIO()
        assert main(["sweep", "--figures", "fig1",
                     "--backend", "service"], out=out) == 2
        assert "at least one" in out.getvalue()

    def test_figure_validates_backend_pairing_too(self):
        out = io.StringIO()
        assert main(["figure", "fig1", "--backend", "service"],
                    out=out) == 2
        assert "--shard" in out.getvalue()

    def test_unknown_backend_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            run_cli("sweep", "--figures", "fig1", "--backend", "cloud")

    def test_jobs_flag_rejects_negative_and_garbage(self):
        for bad in ("-1", "many"):
            with pytest.raises(SystemExit):
                run_cli("sweep", "--figures", "fig1", "--jobs", bad)

    def test_summary_names_the_backend(self, tmp_path):
        output = run_cli("sweep", "--figures", "fig1", "--cores", "4",
                         "--scale", "0.05", "--cache-dir", str(tmp_path),
                         "--backend", "serial")
        assert "serial backend" in output


class TestCacheDoctor:
    def test_clean_cache_reports_nothing(self, tmp_path):
        output = run_cli("cache", "doctor", "--cache-dir", str(tmp_path))
        assert "no quarantined records" in output

    def test_lists_then_purges_quarantined_records(self, tmp_path):
        out = io.StringIO()
        assert main(["sweep", "--figures", "fig1", "--cores", "4",
                     "--scale", "0.05", "--cache-dir", str(tmp_path)],
                    out=out) == 0
        record = sorted(tmp_path.glob("*.json"))[0]
        record.write_text("{ torn")
        # Heal it (moves the damage into quarantine/).
        assert main(["sweep", "--figures", "fig1", "--cores", "4",
                     "--scale", "0.05", "--cache-dir", str(tmp_path)],
                    out=io.StringIO()) == 0
        listing = run_cli("cache", "doctor", "--cache-dir", str(tmp_path))
        assert "1 quarantined record(s)" in listing
        assert "truncated" in listing
        assert "--purge" in listing
        purged = run_cli("cache", "doctor", "--cache-dir", str(tmp_path),
                         "--purge")
        assert "purged 1 quarantined record(s)" in purged
        after = run_cli("cache", "doctor", "--cache-dir", str(tmp_path))
        assert "no quarantined records" in after

    def test_repeat_damage_lists_every_quarantine(self, tmp_path):
        # The same record torn twice (same digest, same reason): doctor
        # must list two uniquified evidence files, and purge both.
        from repro.experiments.faults import corrupt_record
        from repro.experiments.sweep import ResultCache, SweepEngine
        from repro.workloads.synthetic import IndirectStreamWorkload

        workload = IndirectStreamWorkload(n_indices=64, n_data=256, seed=1)
        lookup = {}
        from repro.experiments.sweep import RunSpec
        spec = RunSpec.for_run(workload, "base", 1)
        lookup[spec] = workload
        for _ in range(2):
            cache = ResultCache(tmp_path)
            SweepEngine(jobs=1, cache=cache).run(
                [spec], workload_lookup=lookup.get)
            corrupt_record(cache._path(spec))
            assert ResultCache(tmp_path).get(spec) is None

        listing = run_cli("cache", "doctor", "--cache-dir", str(tmp_path))
        assert "2 quarantined record(s)" in listing
        assert f"{spec.digest()}.truncated.json" in listing
        assert f"{spec.digest()}.truncated.1.json" in listing
        purged = run_cli("cache", "doctor", "--cache-dir", str(tmp_path),
                         "--purge")
        assert "purged 2 quarantined record(s)" in purged
