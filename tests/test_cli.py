"""Tests for the command-line interface (repro.cli)."""

import io

import pytest

from repro.cli import FIGURES, main


def run_cli(*argv) -> str:
    out = io.StringIO()
    code = main(list(argv), out=out)
    assert code == 0
    return out.getvalue()


class TestListAndCost:
    def test_list_workloads_names_all_seven(self):
        output = run_cli("list-workloads")
        for name in ("pagerank", "tri_count", "graph500", "sgd", "lsh",
                     "spmv", "symgs"):
            assert name in output
        assert "dense_stencil" in output

    def test_cost_reports_kbits(self):
        output = run_cli("cost")
        assert "imp_total_kbits" in output
        assert "gp_total_bytes" in output


class TestRun:
    def test_run_indirect_stream_with_imp(self):
        output = run_cli("run", "indirect_stream", "--cores", "4",
                         "--prefetcher", "imp")
        assert "runtime (cycles)" in output
        assert "prefetch coverage" in output

    def test_run_with_partial_and_ooo_flags(self):
        output = run_cli("run", "streaming", "--cores", "4", "--partial",
                         "--ooo", "--prefetcher", "stream")
        assert "NoC traffic" in output

    def test_unknown_workload_exits_with_error(self):
        with pytest.raises(SystemExit):
            run_cli("run", "does_not_exist")

    def test_unknown_prefetcher_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            run_cli("run", "streaming", "--prefetcher", "oracle")


class TestCompareAndFigure:
    def test_compare_prints_all_requested_modes(self):
        output = run_cli("compare", "indirect_stream", "--cores", "4",
                         "--modes", "ideal", "base", "imp", "perfpref")
        for mode in ("ideal", "base", "imp", "perfpref"):
            assert mode in output

    def test_figure_names_registered(self):
        assert {"fig1", "fig2", "fig9", "table3", "fig12"} <= set(FIGURES)

    def test_figure_cost_free_generation(self, tmp_path):
        # fig14 on a tiny scale exercises the runner path end to end.
        output = run_cli("figure", "fig1", "--cores", "4", "--scale", "0.05",
                         "--cache-dir", str(tmp_path / "cache"))
        assert "workload" in output
        assert "avg" in output

    def test_figure_no_cache_writes_nothing(self, tmp_path):
        run_cli("figure", "fig1", "--cores", "4", "--scale", "0.05",
                "--cache-dir", str(tmp_path / "cache"), "--no-cache")
        assert not (tmp_path / "cache").exists()


class TestSweep:
    def test_sweep_builds_figures_and_reports_cache_reuse(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = run_cli("sweep", "--figures", "fig1", "fig2", "--cores", "4",
                       "--scale", "0.05", "--jobs", "2",
                       "--cache-dir", cache_dir)
        assert "== fig1 ==" in cold and "== fig2 ==" in cold
        assert "[sweep]" in cold
        # Warm rerun: every run comes from the on-disk cache.
        warm = run_cli("sweep", "--figures", "fig1", "fig2", "--cores", "4",
                       "--scale", "0.05", "--cache-dir", cache_dir)
        assert "0 simulated" in warm
        # The figures themselves are identical to the cold run.
        assert warm.split("[sweep]")[0] == cold.split("[sweep]")[0]
