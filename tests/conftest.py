"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.config import IMPConfig
from repro.mem_image import MemoryImage
from repro.sim.config import CacheConfig, SystemConfig
from repro.workloads.synthetic import IndirectStreamWorkload, StreamingWorkload


@pytest.fixture(scope="session", autouse=True)
def no_ambient_fault_injection():
    """Strip an exported ``$REPRO_FAULTS`` chaos plan for the session so
    it cannot disturb the suite; tests that want injection construct a
    ``FaultPlan`` (or set the variable via ``monkeypatch``) explicitly."""
    plan = os.environ.pop("REPRO_FAULTS", None)
    yield
    if plan is not None:
        os.environ["REPRO_FAULTS"] = plan


@pytest.fixture(scope="session", autouse=True)
def no_ambient_noc_kernel_override():
    """Strip an exported ``$REPRO_NOC_KERNEL`` override for the session:
    the suite pins backend expectations (defaults, equivalence pairs) and
    an ambient override must not skew them.  Tests that want an override
    set the variable via ``monkeypatch``."""
    name = os.environ.pop("REPRO_NOC_KERNEL", None)
    yield
    if name is not None:
        os.environ["REPRO_NOC_KERNEL"] = name


@pytest.fixture
def small_config() -> SystemConfig:
    """A tiny 4-core platform with small caches; fast to simulate."""
    return SystemConfig(
        n_cores=4,
        l1d=CacheConfig(size_bytes=4 * 1024, associativity=4),
        l2_total_mb_at_1core=0.0625,
    )


@pytest.fixture
def imp_config() -> IMPConfig:
    return IMPConfig()


@pytest.fixture
def simple_image() -> MemoryImage:
    """A memory image with one index array B and one data array A."""
    image = MemoryImage()
    indices = np.arange(0, 512, dtype=np.int32)[::-1].copy()
    image.add_array("B", indices)
    image.add_array("A", np.zeros(1024, dtype=np.float64))
    return image


@pytest.fixture
def indirect_workload() -> IndirectStreamWorkload:
    return IndirectStreamWorkload(n_indices=1024, n_data=4096, seed=7)


@pytest.fixture
def streaming_workload() -> StreamingWorkload:
    return StreamingWorkload(n_elements=2048, seed=7)
