"""The kernel boundary itself: backend registry, selection, and the mesh's
strict separation from reservation internals."""

import inspect

import pytest

from repro.noc import kernel as noc_kernel
from repro.noc import mesh as noc_mesh
from repro.noc.kernel import (NOC_KERNELS, CompiledKernel, FusedKernel,
                              ReferenceKernel, compiled_kernel_available)
from repro.noc.mesh import MeshNoC, resolve_kernel_name
from repro.registry import RegistryError
from repro.sim.config import NoCConfig

needs_cext = pytest.mark.skipif(
    not compiled_kernel_available(),
    reason="repro._nockernel extension not built (or $REPRO_NO_CEXT=1)")


class TestRegistry:
    def test_stock_backends(self):
        assert NOC_KERNELS.names() == ["reference", "fused", "compiled"]
        assert NOC_KERNELS.get("reference").factory is ReferenceKernel
        assert NOC_KERNELS.get("fused").factory is FusedKernel
        assert NOC_KERNELS.get("compiled").factory is CompiledKernel

    def test_default_backend_is_compiled(self):
        # The name is the default everywhere; which class the mesh
        # instantiates depends on host availability (fallback below).
        assert NoCConfig().kernel == "compiled"
        expected = (CompiledKernel if compiled_kernel_available()
                    else FusedKernel)
        assert isinstance(MeshNoC(16).kernel, expected)

    def test_only_compiled_is_availability_gated(self):
        for entry in NOC_KERNELS.entries():
            if entry.name == "compiled":
                assert entry.available is compiled_kernel_available
            else:
                assert entry.available is None
                assert entry.is_available()

    def test_unknown_backend_rejected_at_config_time(self):
        with pytest.raises(RegistryError, match="fused"):
            NoCConfig(kernel="warp-drive")

    def test_every_entry_has_description(self):
        assert all(entry.description for entry in NOC_KERNELS.entries())


class TestSelection:
    def test_config_selects_backend(self):
        assert isinstance(MeshNoC(16, NoCConfig(kernel="reference")).kernel,
                          ReferenceKernel)

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_NOC_KERNEL", "reference")
        noc = MeshNoC(16, NoCConfig(kernel="fused"))
        assert noc.kernel_name == "reference"
        assert isinstance(noc.kernel, ReferenceKernel)

    def test_empty_env_override_is_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_NOC_KERNEL", "")
        assert resolve_kernel_name(NoCConfig(kernel="fused")) == "fused"

    def test_invalid_env_override_lists_backends(self, monkeypatch):
        monkeypatch.setenv("REPRO_NOC_KERNEL", "nope")
        with pytest.raises(RegistryError, match="reference"):
            MeshNoC(16)

    def test_scenario_nested_noc_kernel(self, tmp_path):
        # Scenario JSON reaches the kernel through the nested system
        # config path.
        from repro.experiments.scenario import load_scenario
        path = tmp_path / "s.json"
        path.write_text('{"name": "t", "workload": "indirect_stream",'
                        ' "system": {"noc": {"kernel": "reference"}}}')
        _, config, _ = load_scenario(path).resolve()
        assert config.noc.kernel == "reference"


class TestAvailabilityFallback:
    """A registered-but-unavailable backend resolves to ``fused`` with a
    one-line warning — specs naming ``compiled`` stay portable to hosts
    without the extension build."""

    @pytest.fixture
    def no_cext(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CEXT", "1")
        # The once-per-process warning set must not leak between tests.
        monkeypatch.setattr(noc_mesh, "_FALLBACK_WARNED", set())

    def test_unavailable_compiled_resolves_to_fused(self, no_cext, capsys):
        assert resolve_kernel_name(NoCConfig(kernel="compiled")) == "fused"
        assert "falling back to 'fused'" in capsys.readouterr().err

    def test_fallback_warns_once_per_process(self, no_cext, capsys):
        for _ in range(3):
            resolve_kernel_name(NoCConfig(kernel="compiled"))
        assert capsys.readouterr().err.count("falling back") == 1

    def test_mesh_built_on_no_cext_host_uses_fused(self, no_cext):
        noc = MeshNoC(16, NoCConfig(kernel="compiled"))
        assert noc.kernel_name == "fused"
        assert isinstance(noc.kernel, FusedKernel)

    def test_env_override_to_compiled_also_falls_back(self, no_cext,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_NOC_KERNEL", "compiled")
        assert resolve_kernel_name(NoCConfig(kernel="reference")) == "fused"

    def test_available_backends_never_fall_back(self, no_cext, capsys):
        assert resolve_kernel_name(NoCConfig(kernel="fused")) == "fused"
        assert (resolve_kernel_name(NoCConfig(kernel="reference"))
                == "reference")
        assert "falling back" not in capsys.readouterr().err

    @needs_cext
    def test_available_compiled_resolves_to_itself(self):
        assert resolve_kernel_name(NoCConfig(kernel="compiled")) == "compiled"
        noc = MeshNoC(16)
        assert isinstance(noc.kernel, CompiledKernel)

    def test_config_accepts_compiled_even_when_unavailable(self, no_cext):
        # Name validation is registry membership, not availability: a
        # scenario written on a built host must load everywhere.
        assert NoCConfig(kernel="compiled").kernel == "compiled"


class TestCompiledKernelGuards:
    @needs_cext
    def test_stale_route_after_reset_raises(self):
        kernel = CompiledKernel(hop_latency=2.0)
        reserve = kernel.route_reserver(((0, 1),), 8.0)
        assert reserve(0.0) > 0.0
        kernel.reset()
        with pytest.raises(RuntimeError, match="reset"):
            reserve(1.0)

    @needs_cext
    def test_constructor_raises_when_extension_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CEXT", "1")
        with pytest.raises(RuntimeError, match="REPRO_NO_CEXT"):
            CompiledKernel(hop_latency=2.0)

    @needs_cext
    def test_zero_serialization_takes_flat_path(self):
        kernel = CompiledKernel(hop_latency=2.0)
        reserve = kernel.route_reserver(((0, 1), (1, 2)), 0.0)
        assert reserve(10.0) == 14.0
        assert kernel.links() == []         # extension never saw the route
        assert kernel.busy_time((0, 1)) == 0.0


class TestMeshKernelSeparation:
    def test_mesh_never_touches_reservation_internals(self):
        # The whole point of the boundary: geometry/caching code must not
        # re-grow a private copy of the reservation algorithm.
        source = inspect.getsource(noc_mesh)
        for forbidden in ("_starts", "_ends", "bisect_left", "bisect_right",
                          "import bisect", "ResourceSchedule", "total_busy",
                          "PRUNE"):
            assert forbidden not in source, (
                f"mesh module references reservation internal {forbidden!r}")

    def test_kernel_module_owns_the_registry_entries(self):
        source = inspect.getsource(noc_kernel)
        assert 'NOC_KERNELS.register(\n    "reference"' in source
        assert 'NOC_KERNELS.register(\n    "fused"' in source
        assert 'NOC_KERNELS.register(\n    "compiled"' in source

    def test_reset_contention_drops_compiled_reservers(self):
        noc = MeshNoC(16)
        noc.send_fast(0, 5, 64, 0.0)
        assert noc._send_cache
        assert noc.kernel.links()
        noc.reset_contention()
        assert not noc._send_cache
        assert not noc.kernel.links()
        # And the mesh keeps working against the fresh kernel state.
        assert noc.send_fast(0, 5, 64, 0.0) == noc.zero_load_latency(0, 5, 64)


class TestSendCacheKeying:
    # Regression target: the packed key ``pair << 20 | payload`` ORs a
    # payload of 2**20 + 64 into the pair bits, colliding with the same
    # route's 64-byte entry.  Payloads that overflow 20 bits must take
    # the unpacked tuple key instead.

    BIG = (1 << 20) + 64

    def test_large_payload_does_not_alias_packed_keys(self):
        noc = MeshNoC(16)
        # Prime the cache with the entry the old scheme collided into.
        noc.send_fast(0, 1, 64, 0.0)
        assert len(noc._send_cache) == 1
        noc.send_fast(0, 1, self.BIG, 0.0)
        assert len(noc._send_cache) == 2, "large payload aliased a packed key"

    def test_large_payload_accounting_is_correct(self):
        noc = MeshNoC(16)
        noc.send_fast(0, 1, 64, 0.0)
        before = (noc.traffic.noc_flits, noc.traffic.noc_bytes)
        noc.send_fast(0, 1, self.BIG, 0.0)
        flits = noc._flits(self.BIG) * noc.hops(0, 1)
        assert noc.traffic.noc_flits - before[0] == flits
        assert noc.traffic.noc_bytes - before[1] == self.BIG * noc.hops(0, 1)

    def test_large_payload_timing_matches_fresh_mesh(self):
        # Under the old aliasing, the big message reused the 64-byte
        # entry's serialization; its delivery time must instead match a
        # mesh that never saw the colliding entry.  The big message is
        # injected long after the 64-byte one drains, so link contention
        # cannot mask (or mimic) the difference.
        aliased, fresh = MeshNoC(16), MeshNoC(16)
        aliased.send_fast(0, 1, 64, 0.0)
        assert (aliased.send_fast(0, 1, self.BIG, 1000.0)
                == fresh.send_fast(0, 1, self.BIG, 1000.0))
