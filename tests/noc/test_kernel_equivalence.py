"""Randomized equivalence suite: every NoC kernel backend must reproduce
the reference backend bit for bit.

Identical message streams are driven through two meshes, one per backend,
and the suite asserts bit-identical delivery times, traffic accounting,
per-link busy totals and utilisation, and live reservation state.  Streams
respect the simulator's bounded-disorder invariant (the event heap
dispatches cores in time order), which both backends rely on for pruning;
pruning *timing* is the one sanctioned difference, so state comparisons
window intervals to the common live horizon (``live_intervals``).
"""

import heapq
import random

import pytest

from repro.noc.kernel import NOC_KERNELS, PRUNE_SLACK, live_intervals
from repro.noc.mesh import MeshNoC
from repro.sim.config import NoCConfig, SystemConfig
from repro.sim.queueing import ResourceSchedule


def make_pair(n_tiles=16):
    return (MeshNoC(n_tiles, NoCConfig(kernel="fused")),
            MeshNoC(n_tiles, NoCConfig(kernel="reference")))


def assert_same_state(fused, reference, newest_arrival):
    """Bit-identical busy totals and live coverage on every link.

    Coverage is windowed to a horizon neither backend has pruned past:
    the later of the two first retained interval ends (at least the
    bounded-disorder horizon).  On saturated links per-link arrivals
    outrun injection times, so a backend may legitimately prune past
    ``newest_arrival - PRUNE_SLACK``.
    """
    links = set(fused.kernel.links()) | set(reference.kernel.links())
    assert set(fused.kernel.links()) == set(reference.kernel.links())
    horizon = newest_arrival - PRUNE_SLACK
    for link in links:
        assert fused.kernel.busy_time(link) == reference.kernel.busy_time(link)
        f_starts, f_ends = fused.kernel.intervals(link)
        r_starts, r_ends = reference.kernel.intervals(link)
        link_horizon = max(horizon,
                           f_ends[0] if f_ends else float("-inf"),
                           r_ends[0] if r_ends else float("-inf"))
        f = live_intervals(f_starts, f_ends, link_horizon)
        r = live_intervals(r_starts, r_ends, link_horizon)
        assert f == r, f"live coverage diverges on link {link}"


def drive(stream, n_tiles=16):
    """Send one stream through both backends; return the meshes."""
    fused, reference = make_pair(n_tiles)
    newest = float("-inf")
    for i, (src, dst, payload, now) in enumerate(stream):
        newest = max(newest, now)
        a = fused.send_fast(src, dst, payload, now)
        b = reference.send_fast(src, dst, payload, now)
        assert a == b, f"delivery time diverges at message {i}"
    assert fused.traffic.noc_messages == reference.traffic.noc_messages
    assert fused.traffic.noc_flits == reference.traffic.noc_flits
    assert fused.traffic.noc_bytes == reference.traffic.noc_bytes
    assert_same_state(fused, reference, newest)
    if newest > 0:
        assert (fused.link_utilization(newest)
                == reference.link_utilization(newest))
        assert (fused.max_link_utilization(newest)
                == reference.max_link_utilization(newest))
    return fused, reference


class TestStreamEquivalence:
    def test_in_order_uniform_random(self):
        rng = random.Random(101)
        t, stream = 0.0, []
        for _ in range(4000):
            t += rng.random() * 4.0
            stream.append((rng.randrange(16), rng.randrange(16),
                           rng.choice([0, 8, 64, 72]), t))
        drive(stream)

    def test_bounded_out_of_order(self):
        # Arrivals jitter backwards by far less than PRUNE_SLACK — the
        # disorder the event heap's in-flight lookahead can produce.
        rng = random.Random(202)
        base, stream = 0.0, []
        for _ in range(4000):
            base += rng.random() * 6.0
            jitter = rng.random() * (PRUNE_SLACK / 4)
            stream.append((rng.randrange(16), rng.randrange(16),
                           rng.choice([8, 64]), max(0.0, base - jitter)))
        drive(stream)

    def test_exact_touch_coalescing(self):
        # Back-to-back messages on one route serialize behind each other:
        # each arrival lands exactly on the previous reservation's end,
        # exercising the exact-touch coalesce on every link.
        fused, reference = make_pair()
        t_f = t_r = 0.0
        newest = 0.0
        for i in range(500):
            newest = max(newest, t_f)
            a = fused.send_fast(0, 15, 64, t_f)
            b = reference.send_fast(0, 15, 64, t_r)
            assert a == b
            # Re-inject exactly when the head would clear the first link.
            t_f = t_r = a - a % 1.0 if i % 7 == 0 else a
        assert_same_state(fused, reference, newest)

    def test_prune_window_crossings(self):
        # Idle gaps longer than the prune trigger force both backends to
        # discard history at (different) moments; live state and
        # placements must not move.
        rng = random.Random(303)
        t, stream = 0.0, []
        for epoch in range(6):
            for _ in range(600):
                t += rng.random() * 3.0
                stream.append((rng.randrange(16), rng.randrange(16),
                               rng.choice([8, 64, 72]), t))
            t += 2.5 * ResourceSchedule.PRUNE_TRIGGER   # cross the window
        drive(stream)

    def test_saturated_links(self):
        # Every message crosses the same central column: heavy contention,
        # long busy runs, constant slow-path placements.
        rng = random.Random(404)
        t, stream = 0.0, []
        for _ in range(4000):
            t += rng.random() * 0.5
            stream.append((rng.choice([0, 1, 4, 5]),
                           rng.choice([10, 11, 14, 15]), 64, t))
        drive(stream)

    def test_heap_ordered_closed_loop(self):
        # Self-clocking senders dispatched in global time order — the
        # sharpest model of the simulator's traffic.
        fused, reference = make_pair()
        rng = random.Random(505)
        pairs = [(rng.randrange(16), rng.randrange(16)) for _ in range(32)]
        heap = [(i * 0.25, i) for i in range(32)]
        heapq.heapify(heap)
        newest = 0.0
        for _ in range(8000):
            t, i = heapq.heappop(heap)
            newest = max(newest, t)
            src, dst = pairs[i]
            a = fused.send_fast(src, dst, 64 if i % 3 else 8, t)
            b = reference.send_fast(src, dst, 64 if i % 3 else 8, t)
            assert a == b
            heapq.heappush(heap, (a + 1.0, i))
        assert_same_state(fused, reference, newest)


class TestWholeRunEquivalence:
    @pytest.mark.parametrize("prefetcher", ["none", "imp"])
    def test_run_workload_fingerprints_match(self, prefetcher):
        from repro.registry import WORKLOADS
        from repro.sim.system import run_workload

        def fingerprint(kernel):
            workload = WORKLOADS.get("indirect_stream").factory(
                n_indices=2048, n_data=8192, seed=3)
            config = SystemConfig(n_cores=16, noc=NoCConfig(kernel=kernel))
            result = run_workload(workload, config, prefetcher=prefetcher)
            return result.stats.fingerprint()

        assert fingerprint("fused") == fingerprint("reference")


class TestEveryRegisteredBackend:
    def test_all_backends_match_reference(self):
        # Any future backend registered in NOC_KERNELS is held to the same
        # bar automatically.
        rng = random.Random(606)
        t, stream = 0.0, []
        for _ in range(1500):
            t += rng.random() * 2.0
            stream.append((rng.randrange(16), rng.randrange(16),
                           rng.choice([8, 64]), t))
        reference = MeshNoC(16, NoCConfig(kernel="reference"))
        ref_times = [reference.send_fast(*m) for m in stream]
        newest = max(m[3] for m in stream)
        for name in NOC_KERNELS.names():
            mesh = MeshNoC(16, NoCConfig(kernel=name))
            times = [mesh.send_fast(*m) for m in stream]
            assert times == ref_times, f"backend {name!r} diverges"
            assert_same_state(mesh, reference, newest)
