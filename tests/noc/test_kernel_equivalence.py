"""Randomized equivalence suite: every NoC kernel backend must reproduce
the reference backend bit for bit.

Identical message streams are driven through two meshes, one per backend,
and the suite asserts bit-identical delivery times, traffic accounting,
per-link busy totals and utilisation, and live reservation state.  Streams
respect the simulator's bounded-disorder invariant (the event heap
dispatches cores in time order), which both backends rely on for pruning;
pruning *timing* is the one sanctioned difference, so state comparisons
window intervals to the common live horizon (``live_intervals``).

The stream tests parametrize over every registered non-reference backend
(``fused`` and, where the extension is built, ``compiled``), so a new
``NOC_KERNELS`` entry is held to the same bar by adding nothing here.
"""

import heapq
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc.kernel import (NOC_KERNELS, PRUNE_SLACK,
                              compiled_kernel_available, live_intervals)
from repro.noc.mesh import MeshNoC
from repro.sim.config import NoCConfig, SystemConfig
from repro.sim.queueing import ResourceSchedule


def backend_params(include_reference=False):
    """One pytest param per registered backend; entries whose
    implementation is absent on this host are skipped, not silently
    dropped, so a missing extension build is visible in the test report."""
    params = []
    for entry in NOC_KERNELS.entries():
        if entry.name == "reference" and not include_reference:
            continue
        marks = ()
        if not entry.is_available():
            marks = pytest.mark.skip(
                reason=f"backend {entry.name!r} unavailable on this host")
        params.append(pytest.param(entry.name, marks=marks))
    return params


def kernel_pair(name, hop_latency=1.0):
    """Bare kernel instances (no mesh): the named backend plus reference."""
    return (NOC_KERNELS.get(name).factory(hop_latency=hop_latency),
            NOC_KERNELS.get("reference").factory(hop_latency=hop_latency))


def make_pair(kernel="fused", n_tiles=16):
    return (MeshNoC(n_tiles, NoCConfig(kernel=kernel)),
            MeshNoC(n_tiles, NoCConfig(kernel="reference")))


def assert_same_state(fused, reference, newest_arrival):
    """Bit-identical busy totals and live coverage on every link.

    Coverage is windowed to a horizon neither backend has pruned past:
    the later of the two first retained interval ends (at least the
    bounded-disorder horizon).  On saturated links per-link arrivals
    outrun injection times, so a backend may legitimately prune past
    ``newest_arrival - PRUNE_SLACK``.
    """
    links = set(fused.kernel.links()) | set(reference.kernel.links())
    assert set(fused.kernel.links()) == set(reference.kernel.links())
    horizon = newest_arrival - PRUNE_SLACK
    for link in links:
        assert fused.kernel.busy_time(link) == reference.kernel.busy_time(link)
        f_starts, f_ends = fused.kernel.intervals(link)
        r_starts, r_ends = reference.kernel.intervals(link)
        link_horizon = max(horizon,
                           f_ends[0] if f_ends else float("-inf"),
                           r_ends[0] if r_ends else float("-inf"))
        f = live_intervals(f_starts, f_ends, link_horizon)
        r = live_intervals(r_starts, r_ends, link_horizon)
        assert f == r, f"live coverage diverges on link {link}"


def drive(stream, kernel="fused", n_tiles=16):
    """Send one stream through both backends; return the meshes."""
    fused, reference = make_pair(kernel, n_tiles)
    newest = float("-inf")
    for i, (src, dst, payload, now) in enumerate(stream):
        newest = max(newest, now)
        a = fused.send_fast(src, dst, payload, now)
        b = reference.send_fast(src, dst, payload, now)
        assert a == b, f"delivery time diverges at message {i}"
    assert fused.traffic.noc_messages == reference.traffic.noc_messages
    assert fused.traffic.noc_flits == reference.traffic.noc_flits
    assert fused.traffic.noc_bytes == reference.traffic.noc_bytes
    assert_same_state(fused, reference, newest)
    if newest > 0:
        assert (fused.link_utilization(newest)
                == reference.link_utilization(newest))
        assert (fused.max_link_utilization(newest)
                == reference.max_link_utilization(newest))
    return fused, reference


@pytest.mark.parametrize("kernel", backend_params())
class TestStreamEquivalence:
    def test_in_order_uniform_random(self, kernel):
        rng = random.Random(101)
        t, stream = 0.0, []
        for _ in range(4000):
            t += rng.random() * 4.0
            stream.append((rng.randrange(16), rng.randrange(16),
                           rng.choice([0, 8, 64, 72]), t))
        drive(stream, kernel)

    def test_bounded_out_of_order(self, kernel):
        # Arrivals jitter backwards by far less than PRUNE_SLACK — the
        # disorder the event heap's in-flight lookahead can produce.
        rng = random.Random(202)
        base, stream = 0.0, []
        for _ in range(4000):
            base += rng.random() * 6.0
            jitter = rng.random() * (PRUNE_SLACK / 4)
            stream.append((rng.randrange(16), rng.randrange(16),
                           rng.choice([8, 64]), max(0.0, base - jitter)))
        drive(stream, kernel)

    def test_exact_touch_coalescing(self, kernel):
        # Back-to-back messages on one route serialize behind each other:
        # each arrival lands exactly on the previous reservation's end,
        # exercising the exact-touch coalesce on every link.
        fused, reference = make_pair(kernel)
        t_f = t_r = 0.0
        newest = 0.0
        for i in range(500):
            newest = max(newest, t_f)
            a = fused.send_fast(0, 15, 64, t_f)
            b = reference.send_fast(0, 15, 64, t_r)
            assert a == b
            # Re-inject exactly when the head would clear the first link.
            t_f = t_r = a - a % 1.0 if i % 7 == 0 else a
        assert_same_state(fused, reference, newest)

    def test_prune_window_crossings(self, kernel):
        # Idle gaps longer than the prune trigger force both backends to
        # discard history at (different) moments; live state and
        # placements must not move.
        rng = random.Random(303)
        t, stream = 0.0, []
        for epoch in range(6):
            for _ in range(600):
                t += rng.random() * 3.0
                stream.append((rng.randrange(16), rng.randrange(16),
                               rng.choice([8, 64, 72]), t))
            t += 2.5 * ResourceSchedule.PRUNE_TRIGGER   # cross the window
        drive(stream, kernel)

    def test_saturated_links(self, kernel):
        # Every message crosses the same central column: heavy contention,
        # long busy runs, constant slow-path placements.
        rng = random.Random(404)
        t, stream = 0.0, []
        for _ in range(4000):
            t += rng.random() * 0.5
            stream.append((rng.choice([0, 1, 4, 5]),
                           rng.choice([10, 11, 14, 15]), 64, t))
        drive(stream, kernel)

    def test_heap_ordered_closed_loop(self, kernel):
        # Self-clocking senders dispatched in global time order — the
        # sharpest model of the simulator's traffic.
        fused, reference = make_pair(kernel)
        rng = random.Random(505)
        pairs = [(rng.randrange(16), rng.randrange(16)) for _ in range(32)]
        heap = [(i * 0.25, i) for i in range(32)]
        heapq.heapify(heap)
        newest = 0.0
        for _ in range(8000):
            t, i = heapq.heappop(heap)
            newest = max(newest, t)
            src, dst = pairs[i]
            a = fused.send_fast(src, dst, 64 if i % 3 else 8, t)
            b = reference.send_fast(src, dst, 64 if i % 3 else 8, t)
            assert a == b
            heapq.heappush(heap, (a + 1.0, i))
        assert_same_state(fused, reference, newest)


class TestWholeRunEquivalence:
    @pytest.mark.parametrize("kernel", backend_params())
    @pytest.mark.parametrize("prefetcher", ["none", "imp"])
    def test_run_workload_fingerprints_match(self, prefetcher, kernel):
        from repro.registry import WORKLOADS
        from repro.sim.system import run_workload

        def fingerprint(kernel):
            workload = WORKLOADS.get("indirect_stream").factory(
                n_indices=2048, n_data=8192, seed=3)
            config = SystemConfig(n_cores=16, noc=NoCConfig(kernel=kernel))
            result = run_workload(workload, config, prefetcher=prefetcher)
            return result.stats.fingerprint()

        assert fingerprint(kernel) == fingerprint("reference")


#: One directed link and a short route for the kernel-level properties.
LINK = (0, 1)
ROUTE = ((0, 1), (1, 5), (5, 6))

#: Bounded-disorder storm: a non-decreasing base clock with backward
#: jitter up to half the slack — far more disorder than the event heap
#: produces, but still inside the regime every backend is specified for —
#: plus a serialization that may be exactly zero (a message whose route
#: reserves nothing).
storm_streams = st.lists(
    st.tuples(st.floats(min_value=0, max_value=25, allow_nan=False),   # dt
              st.floats(min_value=0, max_value=PRUNE_SLACK / 2,
                        allow_nan=False),                              # jitter
              st.one_of(st.just(0.0),
                        st.floats(min_value=0.1, max_value=40,
                                  allow_nan=False))),                  # serial
    min_size=1, max_size=120)


def storm_arrivals(stream):
    base = 0.0
    for dt, jitter, serialization in stream:
        base += dt
        yield max(0.0, base - jitter), serialization


@pytest.mark.parametrize("kernel", backend_params())
class TestFrontierResumeProperties:
    """Hypothesis attacks on the frontier-resume search path, the one part
    of the fused/compiled algorithm with no counterpart in the reference
    backend: out-of-order bisect storms (every placement lands behind the
    watermark, so every placement exercises the frontier validity check),
    zero-length reservations interleaved between them, and reservations at
    exactly the pruned boundary immediately after a forced sweep."""

    @given(stream=storm_streams)
    @settings(max_examples=40, deadline=None)
    def test_out_of_order_bisect_storm(self, kernel, stream):
        candidate, reference = kernel_pair(kernel)
        for arrival, serialization in storm_arrivals(stream):
            assert (candidate.route_reserver(ROUTE, serialization)(arrival)
                    == reference.route_reserver(ROUTE, serialization)(arrival))
        for link in ROUTE:
            assert candidate.busy_time(link) == reference.busy_time(link)

    @given(stream=storm_streams)
    @settings(max_examples=40, deadline=None)
    def test_zero_length_reservations_never_occupy_links(self, kernel,
                                                         stream):
        candidate, reference = kernel_pair(kernel)
        busy = 0.0
        for arrival, serialization in storm_arrivals(stream):
            a = candidate.route_reserver((LINK,), serialization)(arrival)
            b = reference.route_reserver((LINK,), serialization)(arrival)
            assert a == b
            if serialization <= 0.0:
                # Pure pass-through: hop latency only, no busy accrual.
                assert a == arrival + 1.0
            busy += max(serialization, 0.0)
        assert candidate.busy_time(LINK) == busy
        assert reference.busy_time(LINK) == busy

    @given(stream=storm_streams,
           offsets=st.lists(st.floats(min_value=0, max_value=PRUNE_SLACK,
                                      allow_nan=False),
                            min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_post_sweep_reservation_at_pruned_boundary(self, kernel, stream,
                                                       offsets):
        # Force a sweep at the newest arrival, then reserve at exactly the
        # pruned cutoff (newest - PRUNE_SLACK, the oldest arrival the
        # bounded-disorder invariant permits) and at offsets above it.
        # The reference backend prunes on its own schedule and may still
        # retain (and exact-touch coalesce with) intervals the swept
        # backend discarded; placements and busy totals must not move.
        candidate, reference = kernel_pair(kernel)
        newest = 0.0
        for arrival, serialization in storm_arrivals(stream):
            newest = max(newest, arrival)
            assert (candidate.route_reserver((LINK,), serialization)(arrival)
                    == reference.route_reserver((LINK,), serialization)(arrival))
        candidate._sweep(newest)
        boundary = max(0.0, newest - PRUNE_SLACK)
        for offset in [0.0] + offsets:
            arrival = boundary + offset
            assert (candidate.route_reserver((LINK,), 2.0)(arrival)
                    == reference.route_reserver((LINK,), 2.0)(arrival))
        assert candidate.busy_time(LINK) == reference.busy_time(LINK)
        horizon = max(newest, boundary + max(offsets)) - PRUNE_SLACK
        c_live = live_intervals(*candidate.intervals(LINK), horizon)
        r_live = live_intervals(*reference.intervals(LINK), horizon)
        if c_live and r_live and c_live[0] != r_live[0]:
            # One backend may have pruned past the common horizon on a
            # saturated link; re-window to the later first-retained end.
            horizon = max(horizon,
                          candidate.intervals(LINK)[1][0],
                          reference.intervals(LINK)[1][0])
            c_live = live_intervals(*candidate.intervals(LINK), horizon)
            r_live = live_intervals(*reference.intervals(LINK), horizon)
        assert c_live == r_live


class TestEveryRegisteredBackend:
    def test_all_backends_match_reference(self):
        # Any future backend registered in NOC_KERNELS is held to the same
        # bar automatically.
        rng = random.Random(606)
        t, stream = 0.0, []
        for _ in range(1500):
            t += rng.random() * 2.0
            stream.append((rng.randrange(16), rng.randrange(16),
                           rng.choice([8, 64]), t))
        reference = MeshNoC(16, NoCConfig(kernel="reference"))
        ref_times = [reference.send_fast(*m) for m in stream]
        newest = max(m[3] for m in stream)
        for name in NOC_KERNELS.names():
            mesh = MeshNoC(16, NoCConfig(kernel=name))
            times = [mesh.send_fast(*m) for m in stream]
            assert times == ref_times, f"backend {name!r} diverges"
            assert_same_state(mesh, reference, newest)
