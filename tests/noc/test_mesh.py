"""Unit tests for the 2-D mesh NoC (repro.noc.mesh)."""

import pytest

from repro.noc.mesh import MeshNoC, Message
from repro.sim.config import NoCConfig


class TestGeometry:
    def test_coords_and_tile_roundtrip(self):
        noc = MeshNoC(16)
        for tile in range(16):
            x, y = noc.coords(tile)
            assert noc.tile(x, y) == tile

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            MeshNoC(12)

    def test_hops_is_manhattan_distance(self):
        noc = MeshNoC(16)      # 4x4
        assert noc.hops(0, 0) == 0
        assert noc.hops(0, 3) == 3
        assert noc.hops(0, 15) == 6
        assert noc.hops(5, 10) == 2

    def test_xy_route_goes_x_first(self):
        noc = MeshNoC(16)
        links = noc.route(0, 5)          # (0,0) -> (1,1)
        assert links[0] == (0, 1)        # x move first
        assert links[1] == (1, 5)        # then y move
        assert len(links) == noc.hops(0, 5)

    def test_route_links_are_adjacent(self):
        noc = MeshNoC(64)
        for src, dst in [(0, 63), (7, 56), (20, 43)]:
            for a, b in noc.route(src, dst):
                assert noc.hops(a, b) == 1


class TestTiming:
    def test_zero_load_latency(self):
        noc = MeshNoC(16, NoCConfig(hop_latency=2, flit_bytes=8, header_flits=1))
        # 3 hops * 2 cycles + 1 header flit + 8 data flits.
        assert noc.zero_load_latency(0, 3, payload_bytes=64) == 3 * 2 + 9

    def test_send_on_idle_network_matches_zero_load(self):
        noc = MeshNoC(16)
        arrival = noc.send(Message(0, 3, 64), now=100)
        assert arrival == pytest.approx(100 + noc.zero_load_latency(0, 3, 64))

    def test_local_message_costs_one_hop(self):
        noc = MeshNoC(16)
        assert noc.send(Message(5, 5, 64), now=10) == 10 + noc.config.hop_latency

    def test_contention_delays_overlapping_messages(self):
        noc = MeshNoC(16)
        first = noc.send(Message(0, 3, 64), now=0)
        second = noc.send(Message(0, 3, 64), now=0)
        assert second > first

    def test_messages_on_disjoint_paths_do_not_interfere(self):
        noc = MeshNoC(16)
        a = noc.send(Message(0, 1, 64), now=0)
        b = noc.send(Message(14, 15, 64), now=0)
        assert a == pytest.approx(b)

    def test_earlier_message_can_use_idle_gap_before_future_reservation(self):
        """A message sent 'later in wall-clock order' by the simulator but with
        an earlier timestamp must not queue behind future reservations."""
        noc = MeshNoC(16)
        noc.send(Message(0, 3, 64), now=1000)          # reservation at t=1000+
        early = noc.send(Message(0, 3, 64), now=0)
        assert early == pytest.approx(noc.zero_load_latency(0, 3, 64))

    def test_round_trip_includes_remote_latency(self):
        noc = MeshNoC(16)
        done = noc.round_trip(0, 5, request_bytes=8, response_bytes=64,
                              now=0, remote_latency=50)
        assert done > 50

    def test_traffic_accounting_scales_with_hops(self):
        noc = MeshNoC(16)
        noc.send(Message(0, 3, 64), now=0)
        assert noc.traffic.noc_messages == 1
        assert noc.traffic.noc_bytes == 64 * 3
        assert noc.traffic.noc_flits == 9 * 3

    def test_reset_contention(self):
        noc = MeshNoC(16)
        for _ in range(10):
            noc.send(Message(0, 3, 64), now=0)
        noc.reset_contention()
        arrival = noc.send(Message(0, 3, 64), now=0)
        assert arrival == pytest.approx(noc.zero_load_latency(0, 3, 64))

    def test_utilization_metrics(self):
        noc = MeshNoC(16)
        assert noc.link_utilization(100) == 0.0
        noc.send(Message(0, 3, 64), now=0)
        assert noc.link_utilization(100) > 0.0
        assert noc.max_link_utilization(100) >= noc.link_utilization(100)
