"""Unit tests for statistics aggregation (repro.sim.stats)."""

import pytest

from repro.sim.stats import CoreStats, SystemStats, TrafficStats
from repro.sim.trace import AccessKind


def make_core(core_id=0, **overrides) -> CoreStats:
    stats = CoreStats(core_id=core_id)
    for key, value in overrides.items():
        setattr(stats, key, value)
    return stats


class TestCoreStats:
    def test_miss_rate(self):
        stats = make_core(mem_accesses=100, l1_misses=25)
        assert stats.l1_miss_rate == 0.25

    def test_miss_rate_with_no_accesses(self):
        assert CoreStats().l1_miss_rate == 0.0

    def test_avg_mem_latency(self):
        stats = make_core(mem_accesses=10, total_mem_latency=150)
        assert stats.avg_mem_latency == 15.0

    def test_coverage(self):
        stats = make_core(l1_misses=20, prefetch_covered_misses=80)
        assert stats.coverage == 0.8

    def test_accuracy_clamped_to_one(self):
        stats = make_core(prefetches_issued=10, prefetches_useful=12)
        assert stats.accuracy == 1.0

    def test_accuracy_zero_without_prefetches(self):
        assert CoreStats().accuracy == 0.0

    def test_ipc(self):
        stats = make_core(instructions=500, cycles=1000)
        assert stats.ipc == 0.5


class TestSystemStats:
    def make_system_stats(self) -> SystemStats:
        core0 = make_core(0, cycles=1000, instructions=800, mem_accesses=100,
                          l1_misses=30, total_mem_latency=900,
                          prefetches_issued=40, prefetches_useful=30,
                          prefetch_covered_misses=20)
        core1 = make_core(1, cycles=1200, instructions=700, mem_accesses=50,
                          l1_misses=10, total_mem_latency=300,
                          prefetches_issued=10, prefetches_useful=10,
                          prefetch_covered_misses=10)
        return SystemStats(cores=[core0, core1])

    def test_runtime_is_slowest_core(self):
        assert self.make_system_stats().runtime_cycles == 1200

    def test_throughput(self):
        stats = self.make_system_stats()
        assert stats.throughput == pytest.approx(1500 / 1200)

    def test_aggregates(self):
        stats = self.make_system_stats()
        assert stats.total_instructions == 1500
        assert stats.total_l1_misses == 40
        assert stats.total_mem_accesses == 150
        assert stats.avg_mem_latency == pytest.approx(1200 / 150)
        assert stats.prefetches_issued == 50
        assert stats.prefetches_useful == 40
        assert stats.coverage == pytest.approx(30 / 70)
        assert stats.accuracy == pytest.approx(40 / 50)

    def test_empty_system(self):
        stats = SystemStats()
        assert stats.runtime_cycles == 0
        assert stats.throughput == 0.0
        assert stats.coverage == 0.0

    def test_miss_fraction_by_kind(self):
        stats = self.make_system_stats()
        stats.cores[0].misses_by_kind[AccessKind.INDIRECT] = 20
        stats.cores[0].misses_by_kind[AccessKind.INDEX] = 5
        stats.cores[1].misses_by_kind[AccessKind.INDIRECT] = 10
        stats.cores[1].misses_by_kind[AccessKind.OTHER] = 5
        fractions = stats.miss_fraction_by_kind()
        assert fractions[AccessKind.INDIRECT] == pytest.approx(30 / 40)
        assert fractions[AccessKind.INDEX] == pytest.approx(5 / 40)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_stall_fraction_by_kind_empty(self):
        fractions = SystemStats(cores=[CoreStats()]).stall_fraction_by_kind()
        assert all(value == 0.0 for value in fractions.values())

    def test_traffic_defaults(self):
        stats = SystemStats()
        assert isinstance(stats.traffic, TrafficStats)
        assert stats.traffic.noc_bytes == 0
