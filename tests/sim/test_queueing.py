"""Unit tests for the reservation scheduler (repro.sim.queueing)."""

import pytest

from repro.sim.queueing import ResourceSchedule


class TestReserve:
    def test_idle_resource_starts_immediately(self):
        schedule = ResourceSchedule()
        assert schedule.reserve(arrival=10.0, duration=5.0) == 10.0

    def test_back_to_back_requests_serialise(self):
        schedule = ResourceSchedule()
        first = schedule.reserve(0.0, 5.0)
        second = schedule.reserve(0.0, 5.0)
        assert first == 0.0
        assert second == 5.0

    def test_request_fits_in_gap_between_reservations(self):
        schedule = ResourceSchedule()
        schedule.reserve(0.0, 2.0)        # [0, 2)
        schedule.reserve(10.0, 2.0)       # [10, 12)
        start = schedule.reserve(3.0, 4.0)
        assert start == 3.0               # fits in the idle gap [2, 10)

    def test_request_too_big_for_gap_goes_after(self):
        schedule = ResourceSchedule()
        schedule.reserve(0.0, 2.0)
        schedule.reserve(4.0, 2.0)        # gap [2, 4) of size 2
        start = schedule.reserve(1.0, 3.0)
        assert start == 6.0

    def test_earlier_arrival_not_blocked_by_future_reservation(self):
        schedule = ResourceSchedule()
        schedule.reserve(1000.0, 5.0)
        assert schedule.reserve(0.0, 5.0) == 0.0

    def test_zero_duration_is_noop(self):
        schedule = ResourceSchedule()
        assert schedule.reserve(7.0, 0.0) == 7.0
        assert len(schedule) == 0

    def test_busy_time_accumulates(self):
        schedule = ResourceSchedule()
        schedule.reserve(0.0, 3.0)
        schedule.reserve(100.0, 4.0)
        assert schedule.busy_time() == pytest.approx(7.0)

    def test_next_free(self):
        schedule = ResourceSchedule()
        schedule.reserve(5.0, 10.0)
        assert schedule.next_free(7.0) == 15.0
        assert schedule.next_free(20.0) == 20.0

    def test_reset(self):
        schedule = ResourceSchedule()
        schedule.reserve(0.0, 5.0)
        schedule.reset()
        assert len(schedule) == 0
        assert schedule.busy_time() == 0.0
        assert schedule.reserve(0.0, 5.0) == 0.0

    def test_old_reservations_pruned(self):
        schedule = ResourceSchedule()
        for i in range(100):
            schedule.reserve(float(i), 0.5)
        # Arrive far in the future: the old entries should be discarded.
        schedule.reserve(1_000_000.0, 1.0)
        assert len(schedule) < 100
