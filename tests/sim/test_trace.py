"""Unit tests for the trace representation (repro.sim.trace)."""

import pytest

from repro.sim.trace import (
    KIND_BY_CODE,
    KIND_CODES,
    OP_COMPUTE,
    OP_LOAD,
    OP_STORE,
    OP_SW_PREFETCH,
    AccessKind,
    Compute,
    MemRef,
    SwPrefetch,
    Trace,
    TraceBuilder,
)


class TestTraceBuilder:
    def test_consecutive_compute_coalesced(self):
        builder = TraceBuilder(core_id=0)
        builder.compute(3).compute(2)
        builder.load(0x400, 0x1000)
        trace = builder.build()
        assert isinstance(trace.entries[0], Compute)
        assert trace.entries[0].ops == 5
        assert isinstance(trace.entries[1], MemRef)

    def test_trailing_compute_flushed_on_build(self):
        builder = TraceBuilder(core_id=0)
        builder.load(0x400, 0x1000).compute(4)
        trace = builder.build()
        assert isinstance(trace.entries[-1], Compute)
        assert trace.entries[-1].ops == 4

    def test_zero_compute_ignored(self):
        trace = TraceBuilder(0).compute(0).load(0x400, 0x1000).build()
        assert len(trace) == 1

    def test_load_store_and_prefetch_entries(self):
        builder = TraceBuilder(core_id=1)
        builder.load(0x400, 0x1000, kind=AccessKind.INDEX)
        builder.store(0x408, 0x2000, kind=AccessKind.STREAM)
        builder.sw_prefetch(0x410, 0x3000, overhead_ops=3)
        trace = builder.build()
        load, store, prefetch = trace.entries
        assert load.is_read and load.kind is AccessKind.INDEX
        assert store.is_write and store.kind is AccessKind.STREAM
        assert isinstance(prefetch, SwPrefetch)
        assert prefetch.overhead_ops == 3


class TestTraceSummaries:
    def test_instruction_count(self):
        builder = TraceBuilder(0)
        builder.compute(10)
        builder.load(0x400, 0x1000)
        builder.sw_prefetch(0x408, 0x2000, overhead_ops=3)
        trace = builder.build()
        # 10 compute + 1 load + (1 + 3) for the software prefetch.
        assert trace.instruction_count == 15

    def test_memory_reference_count_excludes_prefetches(self):
        builder = TraceBuilder(0)
        builder.load(0x400, 0x1000)
        builder.store(0x408, 0x2000)
        builder.sw_prefetch(0x410, 0x3000)
        trace = builder.build()
        assert trace.memory_reference_count == 2

    def test_count_by_kind(self):
        builder = TraceBuilder(0)
        builder.load(0x400, 0x1000, kind=AccessKind.INDEX)
        builder.load(0x408, 0x2000, kind=AccessKind.INDIRECT)
        builder.load(0x410, 0x3000, kind=AccessKind.INDIRECT)
        counts = builder.build().count_by_kind()
        assert counts[AccessKind.INDEX] == 1
        assert counts[AccessKind.INDIRECT] == 2
        assert counts[AccessKind.OTHER] == 0

    def test_iteration_and_len(self):
        trace = TraceBuilder(0).load(0x400, 0x1000).compute(1).build()
        assert len(trace) == 2
        assert len(list(trace)) == 2

    def test_empty_trace(self):
        trace = Trace(core_id=0)
        assert trace.instruction_count == 0
        assert trace.memory_reference_count == 0


class TestColumnarStorage:
    """The columnar encoding behind the object-level API."""

    def test_columns_encode_opcodes(self):
        trace = (TraceBuilder(0)
                 .compute(3)
                 .load(0x400, 0x1000, kind=AccessKind.INDEX)
                 .store(0x408, 0x2000)
                 .sw_prefetch(0x410, 0x3000, overhead_ops=2)
                 .build())
        # The leading compute(3) is folded into the load row's lead column.
        assert list(trace.op) == [OP_LOAD, OP_STORE, OP_SW_PREFETCH]
        assert list(trace.addr) == [0x1000, 0x2000, 0x3000]
        assert list(trace.lead) == [3, 0, 0]
        assert trace.aux[0] == KIND_CODES[AccessKind.INDEX]    # load kind
        assert trace.aux[2] == 2                               # overhead ops
        assert trace.num_rows == 3
        assert len(trace) == 4          # the object view still has 4 entries
        assert trace.entries[0] == Compute(3)

    def test_trailing_compute_gets_its_own_row(self):
        trace = TraceBuilder(0).load(0x400, 0x1000).compute(4).build()
        assert list(trace.op) == [OP_LOAD, OP_COMPUTE]
        assert trace.aux[1] == 4
        assert len(trace) == 2

    def test_entry_at_round_trips(self):
        trace = Trace(core_id=1)
        entries = [Compute(5),
                   MemRef(pc=0x400, addr=0x1000, size=4, is_write=False,
                          kind=AccessKind.INDIRECT),
                   MemRef(pc=0x408, addr=0x2000, is_write=True,
                          kind=AccessKind.STREAM),
                   SwPrefetch(pc=0x410, addr=0x3000, overhead_ops=7)]
        trace.extend(entries)
        assert trace.entries == entries
        assert trace.entry_at(-1) == entries[-1]
        assert list(trace) == entries

    def test_counts_maintained_incrementally(self):
        trace = Trace(core_id=0)
        assert trace.count_by_kind() == {kind: 0 for kind in KIND_BY_CODE}
        trace.append(MemRef(pc=0, addr=0, kind=AccessKind.INDIRECT))
        trace.append(Compute(9))
        trace.append(SwPrefetch(pc=0, addr=64, overhead_ops=3))
        assert trace.instruction_count == 1 + 9 + 4
        assert trace.memory_reference_count == 1
        assert trace.count_by_kind()[AccessKind.INDIRECT] == 1

    def test_append_rejects_unknown_entry(self):
        with pytest.raises(TypeError):
            Trace(core_id=0).append(object())

    def test_parallel_columns_stay_aligned(self):
        builder = TraceBuilder(0)
        for i in range(100):
            builder.compute(1).load(0x400, 0x1000 + 64 * i)
        trace = builder.build()
        # 100 rows (compute folded into each load), 200 logical entries.
        assert (len(trace.op) == len(trace.pc) == len(trace.addr)
                == len(trace.size) == len(trace.aux) == len(trace.lead)
                == trace.num_rows == 100)
        assert len(trace) == 200
        assert trace.instruction_count == 200
