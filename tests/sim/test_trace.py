"""Unit tests for the trace representation (repro.sim.trace)."""

import pytest

from repro.sim.trace import (
    AccessKind,
    Compute,
    MemRef,
    SwPrefetch,
    Trace,
    TraceBuilder,
)


class TestTraceBuilder:
    def test_consecutive_compute_coalesced(self):
        builder = TraceBuilder(core_id=0)
        builder.compute(3).compute(2)
        builder.load(0x400, 0x1000)
        trace = builder.build()
        assert isinstance(trace.entries[0], Compute)
        assert trace.entries[0].ops == 5
        assert isinstance(trace.entries[1], MemRef)

    def test_trailing_compute_flushed_on_build(self):
        builder = TraceBuilder(core_id=0)
        builder.load(0x400, 0x1000).compute(4)
        trace = builder.build()
        assert isinstance(trace.entries[-1], Compute)
        assert trace.entries[-1].ops == 4

    def test_zero_compute_ignored(self):
        trace = TraceBuilder(0).compute(0).load(0x400, 0x1000).build()
        assert len(trace) == 1

    def test_load_store_and_prefetch_entries(self):
        builder = TraceBuilder(core_id=1)
        builder.load(0x400, 0x1000, kind=AccessKind.INDEX)
        builder.store(0x408, 0x2000, kind=AccessKind.STREAM)
        builder.sw_prefetch(0x410, 0x3000, overhead_ops=3)
        trace = builder.build()
        load, store, prefetch = trace.entries
        assert load.is_read and load.kind is AccessKind.INDEX
        assert store.is_write and store.kind is AccessKind.STREAM
        assert isinstance(prefetch, SwPrefetch)
        assert prefetch.overhead_ops == 3


class TestTraceSummaries:
    def test_instruction_count(self):
        builder = TraceBuilder(0)
        builder.compute(10)
        builder.load(0x400, 0x1000)
        builder.sw_prefetch(0x408, 0x2000, overhead_ops=3)
        trace = builder.build()
        # 10 compute + 1 load + (1 + 3) for the software prefetch.
        assert trace.instruction_count == 15

    def test_memory_reference_count_excludes_prefetches(self):
        builder = TraceBuilder(0)
        builder.load(0x400, 0x1000)
        builder.store(0x408, 0x2000)
        builder.sw_prefetch(0x410, 0x3000)
        trace = builder.build()
        assert trace.memory_reference_count == 2

    def test_count_by_kind(self):
        builder = TraceBuilder(0)
        builder.load(0x400, 0x1000, kind=AccessKind.INDEX)
        builder.load(0x408, 0x2000, kind=AccessKind.INDIRECT)
        builder.load(0x410, 0x3000, kind=AccessKind.INDIRECT)
        counts = builder.build().count_by_kind()
        assert counts[AccessKind.INDEX] == 1
        assert counts[AccessKind.INDIRECT] == 2
        assert counts[AccessKind.OTHER] == 0

    def test_iteration_and_len(self):
        trace = TraceBuilder(0).load(0x400, 0x1000).compute(1).build()
        assert len(trace) == 2
        assert len(list(trace)) == 2

    def test_empty_trace(self):
        trace = Trace(core_id=0)
        assert trace.instruction_count == 0
        assert trace.memory_reference_count == 0
