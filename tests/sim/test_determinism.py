"""Determinism regression tests.

Two runs of the same (workload, config, prefetcher) triple must produce
identical ``SystemStats``.  This guards the columnar-trace/hot-path
refactors and any future parallelism work: a change that makes simulation
results depend on allocation order, dict iteration, caching, or wall-clock
time shows up here as a diff.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.configs import CONFIG_MODES, experiment_config, scaled_config
from repro.experiments.runner import ExperimentRunner, RunRequest
from repro.sim.config import HierarchyConfig, LevelConfig
from repro.sim.stats import SystemStats
from repro.sim.system import run_workload
from repro.sim.trace import AccessKind
from repro.workloads import PagerankWorkload
from repro.workloads.synthetic import IndirectStreamWorkload

GOLDEN_PATH = (Path(__file__).resolve().parents[1] / "data"
               / "mode_fingerprints.json")


def snapshot(stats: SystemStats) -> dict:
    """A complete, comparable snapshot of one simulation's statistics."""
    return {
        "runtime_cycles": stats.runtime_cycles,
        "cores": [
            {
                "cycles": core.cycles,
                "instructions": core.instructions,
                "mem_accesses": core.mem_accesses,
                "loads": core.loads,
                "stores": core.stores,
                "l1_hits": core.l1_hits,
                "l1_misses": core.l1_misses,
                "l2_hits": core.l2_hits,
                "l2_misses": core.l2_misses,
                "total_mem_latency": core.total_mem_latency,
                "total_stall_cycles": core.total_stall_cycles,
                "misses_by_kind": {k.value: v
                                   for k, v in core.misses_by_kind.items()},
                "stalls_by_kind": {
                    k.value: v for k, v in core.stall_cycles_by_kind.items()},
                "prefetches_issued": core.prefetches_issued,
                "prefetches_useful": core.prefetches_useful,
                "prefetch_covered_misses": core.prefetch_covered_misses,
                "sw_prefetches_issued": core.sw_prefetches_issued,
            }
            for core in stats.cores
        ],
        "traffic": {
            "noc_bytes": stats.traffic.noc_bytes,
            "noc_flits": stats.traffic.noc_flits,
            "noc_messages": stats.traffic.noc_messages,
            "dram_bytes": stats.traffic.dram_bytes,
            "dram_requests": stats.traffic.dram_requests,
            "invalidations": stats.traffic.invalidations,
        },
    }


@pytest.mark.parametrize("prefetcher", ["none", "stream", "imp"])
def test_repeated_runs_are_identical(prefetcher):
    config = scaled_config(4)
    snapshots = []
    for _ in range(2):
        # Fresh workload objects: determinism must not depend on build
        # caching or on reusing prefetcher/simulator state.
        workload = IndirectStreamWorkload(n_indices=2048, n_data=4096, seed=3)
        result = run_workload(workload, config, prefetcher=prefetcher)
        snapshots.append(snapshot(result.stats))
    assert snapshots[0] == snapshots[1]


def test_same_workload_object_reruns_identically():
    """Build caching (Workload.cached_build) must not change results."""
    config = scaled_config(4)
    workload = IndirectStreamWorkload(n_indices=2048, n_data=4096, seed=5)
    first = run_workload(workload, config, prefetcher="imp")
    second = run_workload(workload, config, prefetcher="imp")
    assert snapshot(first.stats) == snapshot(second.stats)


def test_ooo_core_model_is_deterministic():
    config = scaled_config(4).with_ooo()
    runs = [
        run_workload(IndirectStreamWorkload(n_indices=2048, seed=7), config,
                     prefetcher="imp")
        for _ in range(2)
    ]
    assert snapshot(runs[0].stats) == snapshot(runs[1].stats)


def test_parallel_sweep_matches_serial_fingerprints():
    """A ``--jobs 4`` sweep must be bit-identical to the serial engine.

    Covers every scenario of a small cross-product (two workloads, five
    modes, two core counts): worker processes rebuild workloads from specs
    with deterministic per-spec seeding, so parallel execution must not
    change a single statistic.
    """
    def make_runner(jobs):
        workloads = [
            IndirectStreamWorkload(n_indices=1024, n_data=4096, seed=3),
            PagerankWorkload(n_vertices=256, seed=3),
        ]
        return ExperimentRunner(workloads=workloads,
                                base_config=scaled_config(4), jobs=jobs)

    requests = [RunRequest(workload, mode, n_cores)
                for workload in ("indirect_stream", "pagerank")
                for mode in ("ideal", "base", "imp", "swpref",
                             "imp_partial_noc_dram")
                for n_cores in (1, 4)]
    serial, parallel = make_runner(1), make_runner(4)
    parallel.prefetch(requests)
    assert parallel.engine.jobs == 4
    snapshots = {}
    for request in requests:
        record_s = serial.run(request.workload, request.mode, request.n_cores)
        record_p = parallel.run(request.workload, request.mode,
                                request.n_cores)
        key = (request.workload, request.mode, request.n_cores)
        snapshots[key] = (snapshot(record_s.result.stats),
                          snapshot(record_p.result.stats))
    assert parallel.engine.simulations_run == len(requests)
    for key, (serial_snap, parallel_snap) in snapshots.items():
        assert serial_snap == parallel_snap, f"divergence in {key}"


def test_access_kind_attribution_is_populated():
    """The per-kind breakdowns survive the columnar refactor."""
    config = scaled_config(4)
    workload = IndirectStreamWorkload(n_indices=2048, n_data=4096, seed=3)
    result = run_workload(workload, config, prefetcher="none")
    misses = {kind: 0 for kind in AccessKind}
    for core in result.stats.cores:
        for kind, count in core.misses_by_kind.items():
            misses[kind] += count
    assert misses[AccessKind.INDIRECT] > 0
    assert sum(misses.values()) == result.stats.total_l1_misses


# ----------------------------------------------------------------------
# Registry-refactor bit-identity
# ----------------------------------------------------------------------
def _golden_workloads():
    params = json.loads(GOLDEN_PATH.read_text())["workloads"]
    return {
        "indirect_stream": IndirectStreamWorkload(**params["indirect_stream"]),
        "pagerank": PagerankWorkload(**params["pagerank"]),
    }


def test_registry_modes_match_pre_refactor_fingerprints():
    """Every mode, resolved through the registry, must reproduce the
    fingerprints captured before the registry/hierarchy refactor
    bit-identically (tests/data/mode_fingerprints.json)."""
    golden = json.loads(GOLDEN_PATH.read_text())["fingerprints"]
    workloads = _golden_workloads()
    assert set(golden) == {f"{name}/{mode}/4" for name in workloads
                           for mode in CONFIG_MODES}
    for name, workload in workloads.items():
        for mode in CONFIG_MODES:
            config, prefetcher, imp_cfg, software = experiment_config(
                mode, 4, base_config=scaled_config(4))
            result = run_workload(workload, config, prefetcher=prefetcher,
                                  imp_config=imp_cfg,
                                  software_prefetch=software)
            key = f"{name}/{mode}/4"
            assert result.stats.fingerprint() == golden[key], \
                f"fingerprint drift in {key}"


def test_explicit_classic_hierarchy_matches_inlined_path():
    """An explicit (l1 private, l2 shared) HierarchyConfig with the classic
    geometry must simulate bit-identically to the implicit fast path —
    the strongest check that the generalised level chain implements the
    same semantics the inlined classic code does."""
    base = scaled_config(4)
    explicit = base.with_hierarchy(HierarchyConfig(levels=(
        LevelConfig(name="l1", size_bytes=base.l1d.size_bytes,
                    associativity=base.l1d.associativity,
                    hit_latency=base.l1d.hit_latency),
        LevelConfig(name="l2", size_bytes=base.l2_slice.size_bytes,
                    associativity=base.l2_slice.associativity,
                    scope="shared", hit_latency=base.l2_slice.hit_latency),
    )))
    for prefetcher in ("none", "stream", "imp"):
        classic = run_workload(
            IndirectStreamWorkload(n_indices=1024, n_data=4096, seed=3),
            base, prefetcher=prefetcher)
        generalised = run_workload(
            IndirectStreamWorkload(n_indices=1024, n_data=4096, seed=3),
            explicit, prefetcher=prefetcher)
        assert snapshot(classic.stats) == snapshot(generalised.stats), \
            f"extended-path divergence with prefetcher={prefetcher}"


def test_hybrid_mode_is_deterministic_and_multi_attach():
    """The 'hybrid' mode (stream@L1 + per-slice IMP@shared-L2) must be
    reproducible from fresh state and actually run both attachments.

    Its golden fingerprint lives in tests/data/mode_fingerprints.json
    (covered by test_registry_modes_match_pre_refactor_fingerprints); this
    entry keeps the next golden re-anchor mechanical by pinning the mode's
    structure, not just its numbers."""
    config, prefetcher, imp_cfg, software = experiment_config(
        "hybrid", 4, base_config=scaled_config(4))
    hierarchy = config.hierarchy
    assert [(a.level, a.prefetcher) for a in hierarchy.attach] \
        == [("l1", "stream"), ("l2", "imp")]
    assert hierarchy.shared_attaches  # IMP rides the shared slices
    runs = [
        run_workload(IndirectStreamWorkload(n_indices=1024, n_data=4096,
                                            seed=3),
                     config, prefetcher=prefetcher, imp_config=imp_cfg,
                     software_prefetch=software)
        for _ in range(2)
    ]
    assert snapshot(runs[0].stats) == snapshot(runs[1].stats)
    # Both banks exist: one stream prefetcher per core + one IMP per slice.
    assert len(runs[0].imps) == 4


def test_three_level_hierarchy_is_deterministic():
    hierarchy = HierarchyConfig(prefetch_level="l2", levels=(
        LevelConfig(name="l1", size_bytes=4 * 1024, associativity=4),
        LevelConfig(name="l2", size_bytes=16 * 1024, associativity=8,
                    hit_latency=4),
        LevelConfig(name="l3", size_bytes=32 * 1024, associativity=8,
                    scope="shared", hit_latency=8),
    ))
    config = scaled_config(4).with_hierarchy(hierarchy)
    runs = [
        run_workload(IndirectStreamWorkload(n_indices=1024, n_data=4096,
                                            seed=3),
                     config, prefetcher="imp")
        for _ in range(2)
    ]
    assert snapshot(runs[0].stats) == snapshot(runs[1].stats)
