"""Unit tests for the core timing models (in-order and out-of-order)."""

import pytest

from repro.memory.hierarchy import AccessOutcome, MemorySystem
from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.core_model import InOrderCore, OutOfOrderCore, make_core
from repro.sim.stats import CoreStats
from repro.sim.trace import AccessKind, TraceBuilder


class FixedLatencyMemory:
    """A stand-in memory system returning a constant miss latency."""

    def __init__(self, latency: float, hit_every: int = 0) -> None:
        self.latency = latency
        self.hit_every = hit_every
        self.accesses = 0
        self.sw_prefetches = []

    def access(self, core_id, ref, now):
        self.accesses += 1
        if self.hit_every and self.accesses % self.hit_every == 0:
            return AccessOutcome(latency=1.0, l1_hit=True)
        return AccessOutcome(latency=self.latency, l1_hit=False)

    def software_prefetch(self, core_id, addr, now):
        self.sw_prefetches.append((core_id, addr, now))


def build_trace(n_loads: int, compute_between: int = 0) -> "Trace":
    builder = TraceBuilder(core_id=0)
    for i in range(n_loads):
        if compute_between:
            builder.compute(compute_between)
        builder.load(0x400, 0x10000 + i * 64, kind=AccessKind.INDIRECT)
    return builder.build()


def make_config(core_model="in-order", rob=32) -> SystemConfig:
    return SystemConfig(n_cores=4, core_model=core_model, rob_size=rob,
                        l1d=CacheConfig(4 * 1024, 4),
                        l2_total_mb_at_1core=0.0625)


def run_core(core) -> None:
    while not core.done:
        core.run_until_memory_access()
    core.finish()


class TestInOrderCore:
    def test_blocks_for_full_miss_latency(self):
        trace = build_trace(n_loads=10)
        memory = FixedLatencyMemory(latency=100.0)
        stats = CoreStats(core_id=0)
        core = InOrderCore(0, trace, memory, stats, make_config())
        run_core(core)
        # Each load: 1 cycle issue + 99 stall.
        assert stats.cycles == 10 * 100
        assert stats.instructions == 10
        assert stats.total_stall_cycles == 10 * 99

    def test_compute_only_trace_runs_at_one_cpi(self):
        builder = TraceBuilder(0)
        builder.compute(500)
        memory = FixedLatencyMemory(latency=100.0)
        stats = CoreStats(core_id=0)
        core = InOrderCore(0, builder.build(), memory, stats, make_config())
        run_core(core)
        assert stats.cycles == 500
        assert stats.instructions == 500

    def test_stall_cycles_attributed_to_access_kind(self):
        trace = build_trace(n_loads=4)
        memory = FixedLatencyMemory(latency=50.0)
        stats = CoreStats(core_id=0)
        core = InOrderCore(0, trace, memory, stats, make_config())
        run_core(core)
        assert stats.stall_cycles_by_kind[AccessKind.INDIRECT] == 4 * 49
        assert stats.stall_cycles_by_kind[AccessKind.STREAM] == 0

    def test_software_prefetch_costs_instructions_not_stalls(self):
        builder = TraceBuilder(0)
        builder.sw_prefetch(0x400, 0x2000, overhead_ops=3)
        builder.compute(10)
        memory = FixedLatencyMemory(latency=100.0)
        stats = CoreStats(core_id=0)
        core = InOrderCore(0, builder.build(), memory, stats, make_config())
        run_core(core)
        assert stats.instructions == 14
        assert stats.cycles == 14
        assert memory.sw_prefetches


class TestOutOfOrderCore:
    def test_ooo_hides_latency_within_rob_window(self):
        # Misses separated by plenty of independent compute: the 32-entry
        # window lets the core keep running while the miss is outstanding.
        trace = build_trace(n_loads=8, compute_between=200)
        memory = FixedLatencyMemory(latency=100.0)
        io_stats, ooo_stats = CoreStats(0), CoreStats(0)
        run_core(InOrderCore(0, trace, memory, io_stats, make_config()))
        memory2 = FixedLatencyMemory(latency=100.0)
        run_core(OutOfOrderCore(0, trace, memory2, ooo_stats,
                                make_config(core_model="ooo")))
        assert ooo_stats.cycles < io_stats.cycles

    def test_ooo_still_stalls_on_back_to_back_misses(self):
        trace = build_trace(n_loads=50)
        memory = FixedLatencyMemory(latency=100.0)
        stats = CoreStats(0)
        run_core(OutOfOrderCore(0, trace, memory, stats,
                                make_config(core_model="ooo", rob=32)))
        # With no independent work, the MSHR/ROB limits force stalls.
        assert stats.cycles > 50
        assert stats.total_stall_cycles > 0

    def test_pending_misses_drained_at_end(self):
        trace = build_trace(n_loads=2, compute_between=5)
        memory = FixedLatencyMemory(latency=1000.0)
        stats = CoreStats(0)
        run_core(OutOfOrderCore(0, trace, memory, stats,
                                make_config(core_model="ooo")))
        # Completion of the last miss bounds the runtime.
        assert stats.cycles >= 1000

    def test_larger_rob_hides_more_latency(self):
        trace = build_trace(n_loads=16, compute_between=64)
        small_stats, large_stats = CoreStats(0), CoreStats(0)
        run_core(OutOfOrderCore(0, trace, FixedLatencyMemory(100.0),
                                small_stats, make_config("ooo", rob=8)))
        run_core(OutOfOrderCore(0, trace, FixedLatencyMemory(100.0),
                                large_stats, make_config("ooo", rob=64)))
        assert large_stats.cycles <= small_stats.cycles


class TestFactory:
    def test_make_core_dispatches_on_config(self):
        trace = build_trace(1)
        memory = FixedLatencyMemory(10.0)
        assert isinstance(make_core(make_config("in-order"), 0, trace, memory,
                                    CoreStats(0)), InOrderCore)
        assert isinstance(make_core(make_config("ooo"), 0, trace, memory,
                                    CoreStats(0)), OutOfOrderCore)
