"""Unit tests for the system configuration (Table 1 defaults and scaling)."""

import math

import pytest

from repro.sim.config import CacheConfig, DramConfig, NoCConfig, SystemConfig


class TestTable1Defaults:
    def test_default_matches_table1(self):
        config = SystemConfig()
        assert config.n_cores == 64
        assert config.core_model == "in-order"
        assert config.l1d.size_bytes == 32 * 1024
        assert config.l1d.associativity == 4
        assert config.l1d.line_size == 64
        assert config.l2_assoc == 8
        assert config.noc.hop_latency == 2
        assert config.noc.flit_bytes == 8
        assert config.dram.latency_cycles == 100
        assert config.dram.bandwidth_bytes_per_cycle == pytest.approx(10.0)
        assert config.ackwise_pointers == 4

    @pytest.mark.parametrize("n_cores", [16, 64, 256])
    def test_l2_scales_with_sqrt_n(self, n_cores):
        config = SystemConfig(n_cores=n_cores)
        expected_mb = 2.0 / math.sqrt(n_cores)
        assert config.l2_slice_bytes == pytest.approx(expected_mb * 1024 * 1024,
                                                      rel=0.01)

    @pytest.mark.parametrize("n_cores,expected_mcs", [(16, 2), (64, 4), (256, 8)])
    def test_memory_controllers_scale_with_sqrt_n(self, n_cores, expected_mcs):
        config = SystemConfig(n_cores=n_cores)
        assert config.num_memory_controllers == expected_mcs

    def test_non_square_core_count_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(n_cores=48)

    def test_invalid_core_model_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(core_model="vliw")


class TestDerivedGeometry:
    def test_mesh_dim(self):
        assert SystemConfig(n_cores=16).mesh_dim == 4
        assert SystemConfig(n_cores=256).mesh_dim == 16

    def test_memory_controller_tiles_distinct_rows_and_columns(self):
        config = SystemConfig(n_cores=64)
        tiles = config.memory_controller_tiles()
        assert len(tiles) == config.num_memory_controllers
        rows = [t // config.mesh_dim for t in tiles]
        cols = [t % config.mesh_dim for t in tiles]
        assert len(set(rows)) == len(tiles)
        assert len(set(cols)) == len(tiles)

    def test_sectored_caches_only_when_partial_enabled(self):
        plain = SystemConfig()
        assert plain.l1d_effective.sector_size == 0
        assert plain.l2_slice.sector_size == 0
        partial = SystemConfig(partial_noc=True)
        assert partial.l1d_effective.sector_size == 8
        assert partial.l2_slice.sector_size == 32


class TestNamedConfigurations:
    def test_as_ideal(self):
        config = SystemConfig().as_ideal()
        assert config.ideal_memory and not config.perfect_prefetch

    def test_as_perfect_prefetch(self):
        config = SystemConfig().as_perfect_prefetch()
        assert config.perfect_prefetch and not config.ideal_memory

    def test_with_partial_and_ooo(self):
        config = SystemConfig().with_partial(noc=True, dram=True).with_ooo(32)
        assert config.partial_noc and config.partial_dram
        assert config.core_model == "ooo"
        assert config.rob_size == 32

    def test_with_cores_preserves_other_fields(self):
        config = SystemConfig(l1d=CacheConfig(16 * 1024, 4)).with_cores(16)
        assert config.n_cores == 16
        assert config.l1d.size_bytes == 16 * 1024

    def test_configs_are_immutable(self):
        config = SystemConfig()
        with pytest.raises(AttributeError):
            config.n_cores = 128


class TestCacheConfig:
    def test_invalid_sector_size_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=32 * 1024, associativity=4, line_size=64,
                        sector_size=48)

    def test_sectors_per_line(self):
        config = CacheConfig(32 * 1024, 4, sector_size=8)
        assert config.sectors_per_line == 8
