"""Tests for the system builder and simulation driver (repro.sim.system)."""

import pytest

from repro.core import IMP, IMPConfig
from repro.prefetchers.ghb import GHBPrefetcher
from repro.prefetchers.null import NullPrefetcher
from repro.prefetchers.stream import StreamPrefetcher
from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.system import (
    System,
    build_system,
    make_prefetcher_factory,
    run_workload,
)
from repro.sim.trace import Trace
from repro.workloads.synthetic import IndirectStreamWorkload, StreamingWorkload


def small_config(n_cores=4) -> SystemConfig:
    return SystemConfig(n_cores=n_cores,
                        l1d=CacheConfig(4 * 1024, 4),
                        l2_total_mb_at_1core=0.0625)


class TestPrefetcherFactory:
    def test_named_factories(self):
        assert isinstance(make_prefetcher_factory("none")(0), NullPrefetcher)
        assert isinstance(make_prefetcher_factory("stream")(0), StreamPrefetcher)
        assert isinstance(make_prefetcher_factory("ghb")(0), GHBPrefetcher)
        assert isinstance(make_prefetcher_factory("imp")(0), IMP)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_prefetcher_factory("magic")

    def test_callable_passthrough(self):
        sentinel = NullPrefetcher()
        factory = make_prefetcher_factory(lambda core_id: sentinel)
        assert factory(3) is sentinel

    def test_each_core_gets_its_own_prefetcher(self):
        factory = make_prefetcher_factory("imp")
        assert factory(0) is not factory(1)


class TestSystemConstruction:
    def test_trace_count_must_match_core_count(self):
        config = small_config(4)
        with pytest.raises(ValueError):
            System(config, [Trace(core_id=0)])

    def test_build_system_runs_empty_traces(self):
        config = small_config(4)
        system = build_system(config, [Trace(core_id=i) for i in range(4)])
        result = system.run()
        assert result.runtime_cycles == 0
        assert len(result.stats.cores) == 4


class TestRunWorkload:
    def test_run_workload_produces_result(self):
        workload = IndirectStreamWorkload(n_indices=512, n_data=2048)
        result = run_workload(workload, small_config(), prefetcher="stream")
        assert result.workload == "indirect_stream"
        assert result.prefetcher == "stream"
        assert result.runtime_cycles > 0
        assert result.throughput > 0
        assert result.stats.total_mem_accesses > 0

    def test_all_cores_execute_instructions(self):
        workload = StreamingWorkload(n_elements=1024)
        result = run_workload(workload, small_config(), prefetcher="none")
        assert all(core.instructions > 0 for core in result.stats.cores)

    def test_ideal_config_is_fastest(self):
        workload = IndirectStreamWorkload(n_indices=512, n_data=4096)
        config = small_config()
        ideal = run_workload(workload, config.as_ideal(), prefetcher="none")
        real = run_workload(workload, config, prefetcher="none")
        assert ideal.runtime_cycles < real.runtime_cycles
        assert real.speedup_over(ideal) < 1.0

    def test_imp_result_exposes_prefetcher_instances(self):
        workload = IndirectStreamWorkload(n_indices=512, n_data=4096)
        result = run_workload(workload, small_config(), prefetcher="imp")
        assert len(result.imps) == small_config().n_cores
        assert all(isinstance(p, IMP) for p in result.imps)

    def test_software_prefetch_variant_adds_instructions(self):
        workload = IndirectStreamWorkload(n_indices=512, n_data=4096)
        config = small_config()
        plain = run_workload(workload, config, prefetcher="stream")
        sw = run_workload(workload, config, prefetcher="stream",
                          software_prefetch=True)
        assert sw.prefetcher == "stream+sw"
        assert (sw.stats.total_instructions > plain.stats.total_instructions)
        assert sum(c.sw_prefetches_issued for c in sw.stats.cores) > 0

    def test_normalized_throughput_and_speedup_consistent(self):
        workload = IndirectStreamWorkload(n_indices=512, n_data=4096)
        config = small_config()
        base = run_workload(workload, config, prefetcher="stream")
        imp = run_workload(workload, config, prefetcher="imp")
        speedup = imp.speedup_over(base)
        norm = imp.normalized_throughput(base)
        assert speedup == pytest.approx(
            base.runtime_cycles / imp.runtime_cycles)
        assert norm == pytest.approx(imp.throughput / base.throughput)

    def test_deterministic_given_same_seed(self):
        workload = IndirectStreamWorkload(n_indices=512, n_data=4096, seed=11)
        config = small_config()
        first = run_workload(workload, config, prefetcher="imp")
        second = run_workload(IndirectStreamWorkload(n_indices=512, n_data=4096,
                                                     seed=11),
                              config, prefetcher="imp")
        assert first.runtime_cycles == second.runtime_cycles
        assert first.stats.total_l1_misses == second.stats.total_l1_misses
