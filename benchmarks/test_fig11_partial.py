"""Figure 11: IMP with partial cacheline accessing (NoC only, NoC + DRAM),
normalised to Perfect Prefetching, with Ideal shown for reference.

Paper: partial accessing adds up to ~9.4% average speedup on top of IMP at
64 cores, with per-application behaviour depending on L1 vs L2 spatial
locality (partial DRAM access can hurt a few workloads).
"""

from benchmarks.conftest import bench_core_counts, record_table, run_once
from repro.experiments import figures


def test_fig11_partial(benchmark, runner):
    results = run_once(benchmark, figures.fig11_partial, runner,
                       core_counts=bench_core_counts())
    for n_cores, rows in results.items():
        record_table(f"Figure 11: partial cacheline accessing @ {n_cores} cores",
                     rows)
        avg = rows[-1]
        # Ideal bounds everything; partial accessing must not wreck IMP.
        assert avg["ideal"] >= avg["imp_partial_noc_dram"] * 0.95
        assert avg["imp_partial_noc"] >= avg["imp"] * 0.9
        assert avg["imp_partial_noc_dram"] >= avg["imp"] * 0.9
