"""Ablation: adaptive prefetch-distance throttling (DESIGN.md §5).

The paper's Figure 16 discussion suggests, as future work, dynamically
decreasing the prefetch distance when prefetches overshoot short loops.
This ablation compares the evaluated design (fixed linear ramp to the
maximum distance) against the implemented adaptive throttle on one
short-loop workload (triangle counting) and one long-stream workload
(pagerank): the throttle must not hurt long streams and must not make the
short-loop case worse.
"""

from benchmarks.conftest import bench_cores, record_table, run_once
from repro.core import IMPConfig
from repro.experiments import scaled_config
from repro.sim.system import run_workload
from repro.workloads import PagerankWorkload, TriangleCountWorkload


def _run_ablation():
    config = scaled_config(bench_cores())
    workloads = [PagerankWorkload(n_vertices=2048, seed=11),
                 TriangleCountWorkload(n_vertices=1024, seed=11)]
    rows = []
    for workload in workloads:
        fixed = run_workload(workload, config, prefetcher="imp",
                             imp_config=IMPConfig())
        adaptive = run_workload(workload, config, prefetcher="imp",
                                imp_config=IMPConfig().with_adaptive_distance())
        rows.append({
            "workload": workload.name,
            "fixed_cycles": fixed.runtime_cycles,
            "adaptive_cycles": adaptive.runtime_cycles,
            "adaptive_vs_fixed": fixed.runtime_cycles / adaptive.runtime_cycles,
            "fixed_accuracy": fixed.stats.accuracy,
            "adaptive_accuracy": adaptive.stats.accuracy,
        })
    return rows


def test_ablation_adaptive_distance(benchmark):
    rows = run_once(benchmark, _run_ablation)
    record_table("Ablation: adaptive prefetch distance", rows)
    for row in rows:
        # The throttle must never cost more than a few percent...
        assert row["adaptive_vs_fixed"] > 0.95
        # ...and must not degrade prefetch accuracy.
        assert row["adaptive_accuracy"] >= row["fixed_accuracy"] - 0.05
