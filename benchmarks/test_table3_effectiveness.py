"""Table 3: prefetch coverage, accuracy and relative memory latency for the
streaming prefetcher alone and for streaming + IMP.

Paper: coverage improves from 28% to 85% on average, accuracy stays high,
and average memory latency moves much closer to Perfect Prefetching.
"""

from benchmarks.conftest import record_table, run_once
from repro.experiments import figures


def test_table3_effectiveness(benchmark, runner, n_cores):
    rows = run_once(benchmark, figures.table3_effectiveness, runner, n_cores)
    record_table("Table 3: prefetching effectiveness", rows)
    avg = rows[-1]
    assert avg["imp_cov"] > avg["stream_cov"] + 0.2
    assert avg["imp_cov"] > 0.5
    assert avg["imp_lat"] <= avg["stream_lat"]
    assert 0.0 < avg["imp_acc"] <= 1.0
