"""Figure 15: sensitivity to the Indirect Pattern Detector size (2 / 4 / 8
entries), normalised to the default of 4.

Paper: the IPD is only used during detection, so most applications are
insensitive to its size; SymGS benefits slightly from 4 entries over 2.
"""

from benchmarks.conftest import record_table, run_once
from repro.experiments import figures


def test_fig15_ipd_size(benchmark, runner, n_cores):
    rows = run_once(benchmark, figures.fig15_ipd_size, runner, n_cores,
                    sizes=(2, 4, 8))
    record_table("Figure 15: IPD size sensitivity", rows)
    avg = rows[-1]
    assert avg["IPD=4"] == 1.0
    assert abs(avg["IPD=8"] - 1.0) < 0.1     # more entries barely matter
    assert avg["IPD=2"] <= 1.1
