"""Figure 10: dynamic instruction count of IMP and software prefetching,
normalised to the baseline (64 cores in the paper).

Paper: IMP adds no instructions (except the busy-waiting SymGS), while
software indirect prefetching costs ~29% more instructions on average.
"""

from benchmarks.conftest import record_table, run_once
from repro.experiments import figures


def test_fig10_sw_overhead(benchmark, runner, n_cores):
    rows = run_once(benchmark, figures.fig10_sw_overhead, runner, n_cores)
    record_table("Figure 10: instruction overhead of software prefetching", rows)
    avg = rows[-1]
    assert avg["imp"] <= 1.05                 # hardware adds no instructions
    assert avg["swpref"] > avg["imp"] + 0.05  # software pays real overhead
