"""Figure 9: throughput of Base / IMP / SW-prefetching normalised to Perfect
Prefetching, per core count.

Paper: IMP speeds the baseline up by 74%/56%/33% on average at 16/64/256
cores and lands within 18-26% of Perfect Prefetching; software prefetching
helps but less than IMP.
"""

from benchmarks.conftest import bench_core_counts, record_table, run_once
from repro.experiments import figures


def test_fig09_performance(benchmark, runner):
    core_counts = bench_core_counts()
    results = run_once(benchmark, figures.fig09_performance, runner,
                       core_counts=core_counts)
    for n_cores, rows in results.items():
        record_table(f"Figure 9: normalised throughput @ {n_cores} cores", rows)
        avg = rows[-1]
        # Shape checks: IMP beats the baseline and approaches PerfPref.
        assert avg["imp"] > avg["base"] * 1.1
        assert avg["imp"] <= 1.05
        speedups = figures.imp_speedup_over_base(rows)
        assert all(value >= 0.95 for value in speedups.values())
        assert max(speedups.values()) > 1.3
