"""Ablation: confidence threshold before indirect prefetching starts
(DESIGN.md §5).

The PT's saturating counter must reach a threshold before IMP trusts a
detected pattern (Section 3.2.3).  A threshold of 0 prefetches immediately
on detection (more aggressive, risks useless prefetches on coincidental
matches); a large threshold delays the benefit.  The evaluated design uses a
small threshold; this ablation shows the sensitivity.
"""

from benchmarks.conftest import bench_cores, record_table, run_once
from dataclasses import replace

from repro.core import IMPConfig
from repro.experiments import scaled_config
from repro.sim.system import run_workload
from repro.workloads import PagerankWorkload


def _run_ablation():
    config = scaled_config(bench_cores())
    workload = PagerankWorkload(n_vertices=2048, seed=13)
    rows = []
    reference = None
    for threshold in (0, 2, 4, 6):
        imp_config = replace(IMPConfig(), confidence_threshold=threshold)
        result = run_workload(workload, config, prefetcher="imp",
                              imp_config=imp_config)
        if threshold == 2:
            reference = result
        rows.append({"threshold": threshold,
                     "cycles": result.runtime_cycles,
                     "coverage": result.stats.coverage,
                     "accuracy": result.stats.accuracy})
    for row in rows:
        row["vs_default"] = reference.runtime_cycles / row["cycles"]
    return rows


def test_ablation_confidence_threshold(benchmark):
    rows = run_once(benchmark, _run_ablation)
    record_table("Ablation: confidence threshold", rows)
    by_threshold = {row["threshold"]: row for row in rows}
    # All choices are within 15% of the default; a very conservative
    # threshold cannot beat the default by much (it only delays prefetching).
    for row in rows:
        assert 0.85 <= row["vs_default"] <= 1.15
    assert by_threshold[6]["coverage"] <= by_threshold[2]["coverage"] + 0.02
