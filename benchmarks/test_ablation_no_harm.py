"""Ablation: IMP on regular (SPLASH-2-style) codes — the no-harm check.

Section 6.1 of the paper reports that IMP does not hurt SPLASH-2 benchmarks
without indirect patterns because it never triggers indirect prefetching.
This benchmark runs the three regular kernels under the stream baseline and
under IMP and checks both the performance parity and that zero indirect
patterns were detected.
"""

from benchmarks.conftest import bench_cores, record_table, run_once
from repro.experiments import scaled_config
from repro.sim.system import run_workload
from repro.workloads.regular import (
    BlockedMatMulWorkload,
    DenseStencilWorkload,
    StridedCopyWorkload,
)


def _run_ablation():
    config = scaled_config(bench_cores())
    workloads = [DenseStencilWorkload(rows=96, cols=96, seed=3),
                 BlockedMatMulWorkload(size=48, block=8, seed=3),
                 StridedCopyWorkload(n_elements=16384, stride=16, seed=3)]
    rows = []
    for workload in workloads:
        base = run_workload(workload, config, prefetcher="stream")
        imp = run_workload(workload, config, prefetcher="imp")
        rows.append({
            "workload": workload.name,
            "base_cycles": base.runtime_cycles,
            "imp_cycles": imp.runtime_cycles,
            "imp_vs_base": base.runtime_cycles / imp.runtime_cycles,
            "patterns_detected": sum(p.patterns_detected for p in imp.imps),
        })
    return rows


def test_ablation_no_harm_on_regular_codes(benchmark):
    rows = run_once(benchmark, _run_ablation)
    record_table("Ablation: IMP on regular (no-indirection) kernels", rows)
    for row in rows:
        assert row["patterns_detected"] == 0
        assert 0.95 <= row["imp_vs_base"] <= 1.05
