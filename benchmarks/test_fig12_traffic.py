"""Figure 12: NoC and DRAM traffic with partial cacheline accessing,
normalised to full-cacheline accessing (64 cores in the paper).

Paper: partial accessing cuts NoC traffic by 16.7% and DRAM traffic by 7.5%
on average, with the largest reduction (39%/28%) on pagerank.
"""

from benchmarks.conftest import record_table, run_once
from repro.experiments import figures


def test_fig12_traffic(benchmark, runner, n_cores):
    rows = run_once(benchmark, figures.fig12_traffic, runner, n_cores)
    record_table("Figure 12: traffic with partial accessing", rows)
    avg = rows[-1]
    assert avg["noc_traffic"] < 1.0           # NoC traffic is reduced
    assert avg["dram_traffic"] <= 1.05        # DRAM traffic not inflated
    assert min(row["noc_traffic"] for row in rows) < 0.95
