"""The benchmark-tables results file must be rewritten deterministically.

Regression tests for the section-merge behaviour of
``benchmarks.conftest.record_table``: re-recording a table replaces its
section instead of appending a duplicate block (the file once accumulated
four identical copies of every table), unrelated sections survive partial
runs, and the section order is stable (sorted) regardless of recording
order.
"""

import benchmarks.conftest as bench_conftest
from benchmarks.conftest import load_sections, write_sections


def _with_tables_path(tmp_path, monkeypatch):
    path = tmp_path / "benchmark_tables.txt"
    monkeypatch.setattr(bench_conftest, "TABLES_PATH", path)
    monkeypatch.setattr(bench_conftest, "RESULTS_PATH", tmp_path)
    monkeypatch.setattr(bench_conftest, "_sections", None)
    return path


def test_rerecording_replaces_section(tmp_path, monkeypatch):
    path = _with_tables_path(tmp_path, monkeypatch)
    rows = [{"workload": "spmv", "cycles": 1}]
    bench_conftest.record_table("Table X", rows)
    bench_conftest.record_table("Table X", [{"workload": "spmv",
                                             "cycles": 2}])
    text = path.read_text()
    assert text.count("== Table X ==") == 1
    assert "2" in text


def test_partial_run_preserves_other_sections(tmp_path, monkeypatch):
    path = _with_tables_path(tmp_path, monkeypatch)
    write_sections({"Old table": "kept-row 1"}, path)
    bench_conftest.record_table("New table", [{"a": 1}])
    sections = load_sections(path)
    assert set(sections) == {"Old table", "New table"}
    assert sections["Old table"] == "kept-row 1"


def test_sections_written_in_sorted_order(tmp_path, monkeypatch):
    path = _with_tables_path(tmp_path, monkeypatch)
    bench_conftest.record_table("B table", [{"a": 1}])
    bench_conftest.record_table("A table", [{"a": 1}])
    text = path.read_text()
    assert text.index("== A table ==") < text.index("== B table ==")


def test_load_sections_collapses_legacy_duplicates(tmp_path):
    path = tmp_path / "tables.txt"
    block = "== Dup ==\nrow\n\n"
    path.write_text(block * 4 + "== Other ==\nvalue\n\n")
    sections = load_sections(path)
    assert sections == {"Dup": "row", "Other": "value"}


# ----------------------------------------------------------------------
# Scenario-corpus sections: free text that must merge deterministically
# ----------------------------------------------------------------------
CORPUS_REPORT = (
    "hybrid_classic.json       39917 cycles  fingerprint ok\n"
    "tiny_smoke.json            6248 cycles  fingerprint ok"
)


def test_corpus_text_section_rerecords_deterministically(tmp_path,
                                                         monkeypatch):
    """Recording the scenario-corpus report twice must converge to one
    section — and leave table sections untouched."""
    path = _with_tables_path(tmp_path, monkeypatch)
    bench_conftest.record_table("Table 3", [{"workload": "spmv", "cov": 1}])
    bench_conftest.record_text("Scenario corpus", CORPUS_REPORT)
    first = path.read_text()
    bench_conftest.record_text("Scenario corpus", CORPUS_REPORT)
    assert path.read_text() == first
    assert first.count("== Scenario corpus ==") == 1
    sections = load_sections(path)
    assert sections["Scenario corpus"] == CORPUS_REPORT
    assert "Table 3" in sections


def test_corpus_section_with_header_like_lines_round_trips(tmp_path,
                                                           monkeypatch):
    """A corpus body quoting sweep output (`== fig9 (16 cores) ==` lines)
    must survive the rewrite instead of being split into new sections —
    the bug that made corpus sections merge nondeterministically."""
    path = _with_tables_path(tmp_path, monkeypatch)
    body = "== fig9 (16 cores) ==\nrow a\n== fig9 (64 cores) ==\nrow b"
    bench_conftest.record_text("Scenario corpus", body)
    sections = load_sections(path)
    assert set(sections) == {"Scenario corpus"}
    assert sections["Scenario corpus"] == body
    # Idempotent under a second session that re-loads from disk.
    monkeypatch.setattr(bench_conftest, "_sections", None)
    bench_conftest.record_table("A table", [{"a": 1}])
    sections = load_sections(path)
    assert set(sections) == {"Scenario corpus", "A table"}
    assert sections["Scenario corpus"] == body


def test_already_escaped_header_lines_round_trip(tmp_path, monkeypatch):
    """A body line that itself starts with the escape prefix before a
    header shape must survive load/write cycles unchanged (the escape
    scheme nests instead of being stripped asymmetrically)."""
    path = _with_tables_path(tmp_path, monkeypatch)
    body = "\\== quoted ==\nplain\n== real-looking ==\n\\\\== double =="
    bench_conftest.record_text("Nested", body)
    for _ in range(2):   # repeated reload/rewrite cycles stay stable
        sections = load_sections(path)
        assert sections == {"Nested": body}
        write_sections(sections, path)
