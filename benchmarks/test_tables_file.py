"""The benchmark-tables results file must be rewritten deterministically.

Regression tests for the section-merge behaviour of
``benchmarks.conftest.record_table``: re-recording a table replaces its
section instead of appending a duplicate block (the file once accumulated
four identical copies of every table), unrelated sections survive partial
runs, and the section order is stable (sorted) regardless of recording
order.
"""

import benchmarks.conftest as bench_conftest
from benchmarks.conftest import load_sections, write_sections


def _with_tables_path(tmp_path, monkeypatch):
    path = tmp_path / "benchmark_tables.txt"
    monkeypatch.setattr(bench_conftest, "TABLES_PATH", path)
    monkeypatch.setattr(bench_conftest, "RESULTS_PATH", tmp_path)
    monkeypatch.setattr(bench_conftest, "_sections", None)
    return path


def test_rerecording_replaces_section(tmp_path, monkeypatch):
    path = _with_tables_path(tmp_path, monkeypatch)
    rows = [{"workload": "spmv", "cycles": 1}]
    bench_conftest.record_table("Table X", rows)
    bench_conftest.record_table("Table X", [{"workload": "spmv",
                                             "cycles": 2}])
    text = path.read_text()
    assert text.count("== Table X ==") == 1
    assert "2" in text


def test_partial_run_preserves_other_sections(tmp_path, monkeypatch):
    path = _with_tables_path(tmp_path, monkeypatch)
    write_sections({"Old table": "kept-row 1"}, path)
    bench_conftest.record_table("New table", [{"a": 1}])
    sections = load_sections(path)
    assert set(sections) == {"Old table", "New table"}
    assert sections["Old table"] == "kept-row 1"


def test_sections_written_in_sorted_order(tmp_path, monkeypatch):
    path = _with_tables_path(tmp_path, monkeypatch)
    bench_conftest.record_table("B table", [{"a": 1}])
    bench_conftest.record_table("A table", [{"a": 1}])
    text = path.read_text()
    assert text.index("== A table ==") < text.index("== B table ==")


def test_load_sections_collapses_legacy_duplicates(tmp_path):
    path = tmp_path / "tables.txt"
    block = "== Dup ==\nrow\n\n"
    path.write_text(block * 4 + "== Other ==\nvalue\n\n")
    sections = load_sections(path)
    assert sections == {"Dup": "row", "Other": "value"}
