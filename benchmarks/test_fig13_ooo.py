"""Figure 13: IMP and partial accessing on in-order vs out-of-order cores
(pagerank and SGD), normalised to the baseline out-of-order core.

Paper: OoO execution improves the baseline, but IMP continues to provide
significant benefit on both core types.
"""

from benchmarks.conftest import bench_cores, bench_scale, record_table, run_once
from repro.experiments import figures


def test_fig13_ooo(benchmark):
    rows = run_once(benchmark, figures.fig13_ooo, n_cores=bench_cores(),
                    scale=bench_scale())
    record_table("Figure 13: in-order vs out-of-order cores", rows)
    for row in rows:
        # The OoO baseline is the reference (1.0) and beats the in-order one.
        assert row["base_ooo"] == 1.0
        assert row["base_io"] <= 1.05
        # IMP helps both core designs.
        assert row["imp_io"] > row["base_io"]
        assert row["imp_ooo"] >= row["base_ooo"] * 0.98
