"""Wall-clock benchmark of the simulation core (wrapper).

The actual harness lives in :mod:`repro.experiments.bench` so the ``repro
bench`` CLI sub-command can import it; this wrapper keeps the conventional
``benchmarks/perf/bench_sim.py`` entry point runnable directly::

    PYTHONPATH=src python benchmarks/perf/bench_sim.py --quick
    PYTHONPATH=src python benchmarks/perf/bench_sim.py --out BENCH_1.json
    PYTHONPATH=src python benchmarks/perf/bench_sim.py --check \\
        --baseline BENCH_1.json --budget 1.25
"""

import sys

from repro.experiments.bench import main

if __name__ == "__main__":
    sys.exit(main())
