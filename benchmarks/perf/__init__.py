"""Wall-clock performance harness for the simulator (not a pytest suite)."""
