"""Figure 2: runtime of the realistic system and of Perfect Prefetching,
normalised to the Ideal (all-hits) configuration.

Paper: the realistic baseline is several times slower than Ideal, indirect
stalls account for most of that gap, and even Perfect Prefetching stays well
above Ideal because of finite NoC/DRAM bandwidth (on average ~1.8x).
"""

from benchmarks.conftest import record_table, run_once
from repro.experiments import figures


def test_fig02_motivation(benchmark, runner, n_cores):
    rows = run_once(benchmark, figures.fig02_motivation, runner, n_cores)
    record_table("Figure 2: runtime normalised to Ideal", rows)
    avg = rows[-1]
    assert avg["norm_runtime"] > 1.5          # baseline far from Ideal
    assert avg["perfpref_norm_runtime"] > 1.0  # bandwidth-bound even when magic
    assert avg["perfpref_norm_runtime"] < avg["norm_runtime"]
    assert avg["indirect_fraction"] > 0.2      # indirect stalls are the story
