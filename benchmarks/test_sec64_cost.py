"""Section 6.4: hardware storage and energy cost of IMP and the Granularity
Predictor.

Paper: the PT needs <2 Kbit, the IPD 3.5 Kbit (5.5 Kbit / 0.7 KB total for
IMP), the GP 3.4 Kbit / 420 B; sector valid bits cost 1.6% (L1) and 0.4%
(L2); PT accesses cost <3% of an L1 access, GP accesses <1%.
"""

from benchmarks.conftest import record_table, run_once
from repro.experiments import figures


def test_sec64_hardware_cost(benchmark):
    cost = run_once(benchmark, figures.sec64_hardware_cost)
    record_table("Section 6.4: hardware cost",
                 [{"metric": key, "value": value} for key, value in cost.items()])
    assert cost["pt_total_kbits"] <= 2.1
    assert 3.0 <= cost["ipd_total_kbits"] <= 3.9
    assert 5.0 <= cost["imp_total_kbits"] <= 6.0
    assert cost["imp_total_bytes"] <= 800
    assert cost["gp_total_bytes"] <= 470
    assert cost["pt_energy_vs_l1"] <= 0.03
    assert cost["gp_energy_vs_l1"] <= 0.01
    assert cost["l1_sector_overhead"] <= 0.017
    assert cost["l2_sector_overhead"] <= 0.005
