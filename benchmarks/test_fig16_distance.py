"""Figure 16: sensitivity to the maximum indirect prefetch distance
(4 / 8 / 16 / 32), normalised to the default of 16.

Paper: long-stream applications benefit from larger distances, while
short-loop workloads (triangle counting) can lose performance when the
distance overshoots loop ends.
"""

from benchmarks.conftest import record_table, run_once
from repro.experiments import figures


def test_fig16_prefetch_distance(benchmark, runner, n_cores):
    rows = run_once(benchmark, figures.fig16_prefetch_distance, runner, n_cores,
                    distances=(4, 8, 16, 32))
    record_table("Figure 16: prefetch distance sensitivity", rows)
    avg = rows[-1]
    assert avg["Dist=16"] == 1.0
    # At the scaled L1 size the sweet spot sits at a shorter distance than in
    # the paper (see EXPERIMENTS.md), so the checks here are structural: no
    # distance choice changes average performance by more than ~15%, and the
    # longest distance is never the best one (it overshoots short loops).
    for key in ("Dist=4", "Dist=8", "Dist=32"):
        assert abs(avg[key] - 1.0) < 0.15
    assert avg["Dist=32"] <= max(avg["Dist=4"], avg["Dist=8"], 1.0) + 0.02
