"""Figure 14: sensitivity to the Prefetch Table size (8 / 16 / 32 entries),
normalised to the default of 16.

Paper: most applications are insensitive; only workloads with many
concurrent indirect patterns gain from more entries, and 32 entries add
little over 16.
"""

from benchmarks.conftest import record_table, run_once
from repro.experiments import figures


def test_fig14_pt_size(benchmark, runner, n_cores):
    rows = run_once(benchmark, figures.fig14_pt_size, runner, n_cores,
                    sizes=(8, 16, 32))
    record_table("Figure 14: PT size sensitivity", rows)
    avg = rows[-1]
    assert avg["PT=16"] == 1.0
    # Going to 32 entries changes little; shrinking to 8 never helps much.
    assert abs(avg["PT=32"] - 1.0) < 0.15
    assert avg["PT=8"] <= 1.1
