"""Shared fixtures for the per-figure benchmark harness.

Every benchmark regenerates one table or figure of the paper on scaled-down
inputs (pure-Python simulation of the full 64-core platform at paper scale
would take hours).  Scale and core count can be raised from the environment
to run closer to the paper's configuration:

* ``REPRO_BENCH_SCALE``  — workload size multiplier (default 1.0; lower it
  for a quick smoke run, at the cost of working sets shrinking toward the
  scaled L1 and the partial-accessing figures losing their signal)
* ``REPRO_BENCH_CORES``  — core count for the single-core-count figures
  (default 16)
* ``REPRO_BENCH_ALL_CORES=1`` — run Figures 9 and 11 at 16/64/256 cores
  instead of only ``REPRO_BENCH_CORES``.

Each benchmark prints the regenerated rows (visible with ``pytest -s``) and
records them in ``results/benchmark_tables.txt`` so EXPERIMENTS.md can be
cross-checked against a recorded run.  The file is rewritten
deterministically: it is parsed into named ``== table ==`` sections once
per session, each regenerated table replaces its section, and the whole
file is written back with sections in sorted order — re-running any subset
of the benchmarks, any number of times, converges to the same file instead
of appending duplicate blocks.
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import Dict, Optional

import pytest

from repro.experiments import ExperimentRunner, scaled_config
from repro.experiments.figures import format_table

RESULTS_PATH = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session", autouse=True)
def no_fault_injection():
    """Strip ``$REPRO_FAULTS`` for the whole benchmark session: an exported
    chaos plan must never contaminate recorded tables or perf numbers."""
    plan = os.environ.pop("REPRO_FAULTS", None)
    yield
    if plan is not None:
        os.environ["REPRO_FAULTS"] = plan


@pytest.fixture(scope="session", autouse=True)
def no_noc_kernel_override():
    """Strip ``$REPRO_NOC_KERNEL`` for the whole benchmark session:
    recorded tables and perf numbers must always reflect the configured
    (default) reservation kernel, not an ambient override."""
    name = os.environ.pop("REPRO_NOC_KERNEL", None)
    yield
    if name is not None:
        os.environ["REPRO_NOC_KERNEL"] = name

TABLES_PATH = RESULTS_PATH / "benchmark_tables.txt"

_SECTION_HEADER = re.compile(r"^== (.+) ==$")

#: Body lines that would parse as a section header on re-load (a recorded
#: scenario-corpus section may quote ``== fig9 (16 cores) ==``-style sweep
#: output) are escaped with this prefix on write and unescaped on load,
#: so any recorded text round-trips instead of splitting its section.
#: Lines that already carry escape prefixes gain one more (and lose one on
#: load), keeping the scheme symmetric at every nesting depth.
_HEADER_ESCAPE = "\\"

#: A header line under zero or more escape prefixes.
_ESCAPED_HEADER = re.compile(r"^\\*== .+ ==$")

#: Section name -> table text, loaded from the existing file on first use.
_sections: Optional[Dict[str, str]] = None


def load_sections(path: Optional[Path] = None) -> Dict[str, str]:
    """Parse a benchmark-tables file into ``{section name: table text}``.

    Duplicate sections (the legacy append behaviour) collapse to the last
    occurrence.
    """
    if path is None:
        path = TABLES_PATH
    sections: Dict[str, str] = {}
    if not path.exists():
        return sections
    name = None
    lines: list = []
    for line in path.read_text().splitlines():
        match = _SECTION_HEADER.match(line)
        if match:
            if name is not None:
                sections[name] = "\n".join(lines).strip("\n")
            name = match.group(1)
            lines = []
        elif name is not None:
            if line.startswith(_HEADER_ESCAPE) \
                    and _ESCAPED_HEADER.match(line[len(_HEADER_ESCAPE):]):
                line = line[len(_HEADER_ESCAPE):]
            lines.append(line)
    if name is not None:
        sections[name] = "\n".join(lines).strip("\n")
    return sections


def _escape_body(text: str) -> str:
    """Escape body lines that would be mistaken for section headers (or
    for already-escaped headers, which load_sections would unescape)."""
    return "\n".join(
        _HEADER_ESCAPE + line if _ESCAPED_HEADER.match(line) else line
        for line in text.splitlines())


def write_sections(sections: Dict[str, str],
                   path: Optional[Path] = None) -> None:
    """Write the sections file: sorted names, one blank line between."""
    if path is None:
        path = TABLES_PATH
    path.parent.mkdir(exist_ok=True)
    with open(path, "w") as handle:
        for name in sorted(sections):
            handle.write(f"== {name} ==\n{_escape_body(sections[name])}\n\n")


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_cores() -> int:
    return int(os.environ.get("REPRO_BENCH_CORES", "16"))


def bench_core_counts():
    if os.environ.get("REPRO_BENCH_ALL_CORES", "0") == "1":
        return (16, 64, 256)
    return (bench_cores(),)


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """One shared (caching) runner so figures reuse common simulations."""
    return ExperimentRunner(scale=bench_scale(), seed=1,
                            base_config=scaled_config(bench_cores()))


@pytest.fixture(scope="session")
def n_cores() -> int:
    return bench_cores()


def record_table(name: str, rows, columns=None) -> str:
    """Pretty-print a figure's rows and record them in the results file.

    The named section is replaced (not appended) and the file rewritten in
    sorted-section order; sections not regenerated by this session are
    preserved from the existing file.
    """
    return record_text(name, format_table(rows, columns))


def record_text(name: str, body: str) -> str:
    """Record a pre-formatted text block (e.g. the scenario-corpus sweep
    report) as one section, with the same deterministic replace-merge
    semantics as :func:`record_table`."""
    global _sections
    body = body.strip("\n")
    text = f"== {name} ==\n{body}\n"
    print("\n" + text)
    if _sections is None:
        _sections = load_sections()
    _sections[name] = body
    write_sections(_sections)
    return text


def run_once(benchmark, func, *args, **kwargs):
    """Run a figure generator exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
