"""Shared fixtures for the per-figure benchmark harness.

Every benchmark regenerates one table or figure of the paper on scaled-down
inputs (pure-Python simulation of the full 64-core platform at paper scale
would take hours).  Scale and core count can be raised from the environment
to run closer to the paper's configuration:

* ``REPRO_BENCH_SCALE``  — workload size multiplier (default 1.0; lower it
  for a quick smoke run, at the cost of working sets shrinking toward the
  scaled L1 and the partial-accessing figures losing their signal)
* ``REPRO_BENCH_CORES``  — core count for the single-core-count figures
  (default 16)
* ``REPRO_BENCH_ALL_CORES=1`` — run Figures 9 and 11 at 16/64/256 cores
  instead of only ``REPRO_BENCH_CORES``.

Each benchmark prints the regenerated rows (visible with ``pytest -s``) and
appends them to ``results/benchmark_tables.txt`` so EXPERIMENTS.md can be
cross-checked against a recorded run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentRunner, scaled_config
from repro.experiments.figures import format_table

RESULTS_PATH = Path(__file__).resolve().parent.parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_cores() -> int:
    return int(os.environ.get("REPRO_BENCH_CORES", "16"))


def bench_core_counts():
    if os.environ.get("REPRO_BENCH_ALL_CORES", "0") == "1":
        return (16, 64, 256)
    return (bench_cores(),)


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """One shared (caching) runner so figures reuse common simulations."""
    return ExperimentRunner(scale=bench_scale(), seed=1,
                            base_config=scaled_config(bench_cores()))


@pytest.fixture(scope="session")
def n_cores() -> int:
    return bench_cores()


def record_table(name: str, rows, columns=None) -> str:
    """Pretty-print a figure's rows and append them to the results file."""
    text = f"== {name} ==\n{format_table(rows, columns)}\n"
    print("\n" + text)
    RESULTS_PATH.mkdir(exist_ok=True)
    with open(RESULTS_PATH / "benchmark_tables.txt", "a") as handle:
        handle.write(text + "\n")
    return text


def run_once(benchmark, func, *args, **kwargs):
    """Run a figure generator exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
