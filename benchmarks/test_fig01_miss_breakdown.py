"""Figure 1: L1 cache miss breakdown (indirect / stream / other).

Paper: on the 64-core baseline, indirect accesses cause ~60% of all L1
misses on average, and indirect + streaming misses dominate in every
application.
"""

from benchmarks.conftest import record_table, run_once
from repro.experiments import figures


def test_fig01_miss_breakdown(benchmark, runner, n_cores):
    rows = run_once(benchmark, figures.fig01_miss_breakdown, runner, n_cores)
    record_table("Figure 1: miss breakdown", rows)
    avg = rows[-1]
    # Shape check: indirect misses dominate on average, and together with
    # streaming misses they are the majority everywhere.
    assert avg["indirect"] > 0.3
    for row in rows:
        assert row["indirect"] + row["stream"] >= row["other"] - 0.25
