"""Scenario-corpus regression benchmark.

Runs every checked-in ``examples/scenarios/*.json`` through the batched
sweep engine — exactly what CI's scenario-corpus job does with ``repro
sweep --scenario-dir`` — asserting every pinned ``.fingerprint.json``
matches bit-for-bit, and records the per-scenario report as one
deterministic section of ``results/benchmark_tables.txt``.

``--jobs 1`` (overriding ``$REPRO_JOBS``) and ``--no-cache`` keep the
recorded report byte-identical across environments: the trailing summary
line would otherwise embed the worker count and cache-hit statistics.
"""

import io
from pathlib import Path

from benchmarks.conftest import record_text
from repro.cli import main

SCENARIO_DIR = Path(__file__).resolve().parent.parent / "examples" / "scenarios"


def test_scenario_corpus_fingerprints(benchmark):
    out = io.StringIO()
    code = benchmark.pedantic(
        main,
        args=(["sweep", "--scenario-dir", str(SCENARIO_DIR),
               "--jobs", "1", "--no-cache"],),
        kwargs={"out": out},
        rounds=1, iterations=1, warmup_rounds=0)
    report = out.getvalue()
    assert code == 0, f"scenario corpus failed:\n{report}"
    assert "MISMATCH" not in report
    # Every scenario with a pinned fingerprint must have been checked.
    pinned = sorted(path.name[:-len(".fingerprint.json")] + ".json"
                    for path in SCENARIO_DIR.glob("*.fingerprint.json"))
    for name in pinned:
        assert f"{name}" in report
        assert "no expectation" not in report.split(name, 1)[1].split("\n")[0]
    # Drop the engine-summary line (worker/cache details vary by
    # environment) so the recorded section is deterministic.
    body = "\n".join(line for line in report.splitlines()
                     if not line.startswith("[sweep]"))
    record_text("Scenario corpus", body)
