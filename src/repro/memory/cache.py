"""Set-associative cache model with optional sector support.

The cache stores tags and per-line metadata only (the simulator reads data
values through :class:`repro.mem_image.MemoryImage`).  Lines track:

* LRU position (true LRU within a set),
* dirty bit,
* ``ready_time`` — the cycle at which an in-flight fill completes, so that a
  demand access hitting a line that a prefetch is still bringing in pays the
  remaining latency (a *late prefetch*, Section 6.1.1),
* whether the line was brought in by a prefetch and whether it has been
  referenced since (for prefetch accuracy accounting),
* a valid-bit mask over sectors when the cache is sectored (Section 4.1) and
  a touched-bit mask used by the granularity predictor.

``Cache.access`` sits on the hot path of every simulated memory reference,
so line/set/tag arithmetic uses shifts and masks for the (ubiquitous)
power-of-two geometries, sector masks come from a precomputed table instead
of a per-access Python loop, and the line/result records use ``__slots__``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.config import CacheConfig


def full_mask(num_sectors: int) -> int:
    """Bit mask with ``num_sectors`` low bits set."""
    return (1 << num_sectors) - 1


def _shift_of(value: int) -> Optional[int]:
    """log2 of ``value`` when it is a power of two, else None."""
    if value > 0 and (value & (value - 1)) == 0:
        return value.bit_length() - 1
    return None


class CacheLine:
    """Metadata of one resident cache line."""

    __slots__ = ("tag", "addr", "valid", "dirty", "ready_time", "last_use",
                 "from_prefetch", "prefetch_referenced", "sector_valid",
                 "sector_touched")

    def __init__(self, tag: int, addr: int, valid: bool = True,
                 dirty: bool = False, ready_time: float = 0.0,
                 last_use: float = 0.0, from_prefetch: bool = False,
                 prefetch_referenced: bool = False, sector_valid: int = 0,
                 sector_touched: int = 0) -> None:
        self.tag = tag
        self.addr = addr                     # base address of the line
        self.valid = valid
        self.dirty = dirty
        self.ready_time = ready_time
        self.last_use = last_use
        self.from_prefetch = from_prefetch
        self.prefetch_referenced = prefetch_referenced
        self.sector_valid = sector_valid     # bit i set => sector i present
        self.sector_touched = sector_touched  # bit i set => sector i referenced

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CacheLine(tag={self.tag:#x}, addr={self.addr:#x}, "
                f"dirty={self.dirty}, sector_valid={self.sector_valid:#x})")


class AccessResult:
    """Outcome of a cache lookup/access."""

    __slots__ = ("hit", "line", "sector_miss", "evicted", "was_prefetched",
                 "ready_time")

    def __init__(self, hit: bool, line: Optional[CacheLine] = None,
                 sector_miss: bool = False,
                 evicted: Optional[CacheLine] = None,
                 was_prefetched: bool = False,
                 ready_time: float = 0.0) -> None:
        self.hit = hit
        self.line = line
        self.sector_miss = sector_miss     # line present but the sector is not
        self.evicted = evicted
        self.was_prefetched = was_prefetched  # hit on a prefetch-installed line
        self.ready_time = ready_time       # when the in-flight line is usable


class Cache:
    """A single level of cache (one L1, or one slice of the shared L2)."""

    __slots__ = ("config", "line_size", "num_sets", "assoc", "sector_size",
                 "sectors_per_line", "_sets", "_line_shift", "_set_shift",
                 "_offset_mask", "_set_mask", "_tag_shift",
                 "_sector_mask_cache", "accesses", "hits", "misses",
                 "sector_misses", "evictions", "prefetch_fills",
                 "unused_prefetch_evictions")

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.line_size = config.line_size
        self.num_sets = config.num_sets
        self.assoc = config.associativity
        self.sector_size = config.sector_size
        self.sectors_per_line = config.sectors_per_line
        self._sets: List[Dict[int, CacheLine]] = [dict() for _ in range(self.num_sets)]
        # Shift/mask addressing for power-of-two geometries (the normal
        # case); division/modulo fallbacks keep odd geometries working.
        self._line_shift = _shift_of(self.line_size)
        self._set_shift = _shift_of(self.num_sets)
        if self._line_shift is not None:
            self._offset_mask = self.line_size - 1
        else:
            self._offset_mask = None
        if self._line_shift is not None and self._set_shift is not None:
            self._set_mask = self.num_sets - 1
            self._tag_shift = self._line_shift + self._set_shift
        else:
            self._set_mask = None
            self._tag_shift = None
        # Sector masks for every (line offset, access size) pair seen so far.
        # The per-access loop over sectors this replaces showed up in every
        # profile of partial-cacheline runs.
        self._sector_mask_cache: Dict[int, int] = {}
        # Statistics owned by the cache itself.
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.sector_misses = 0
        self.evictions = 0
        self.prefetch_fills = 0
        self.unused_prefetch_evictions = 0

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def line_addr(self, addr: int) -> int:
        """Base address of the line containing ``addr``."""
        if self._line_shift is not None:
            return addr & ~self._offset_mask
        return addr - (addr % self.line_size)

    def set_index(self, addr: int) -> int:
        if self._tag_shift is not None:
            return (addr >> self._line_shift) & self._set_mask
        return (addr // self.line_size) % self.num_sets

    def tag_of(self, addr: int) -> int:
        if self._tag_shift is not None:
            return addr >> self._tag_shift
        return addr // (self.line_size * self.num_sets)

    def sector_mask(self, addr: int, size: int) -> int:
        """Mask of sectors covered by an access of ``size`` bytes at ``addr``."""
        if not self.sector_size:
            return 1
        offset = (addr & self._offset_mask if self._line_shift is not None
                  else addr % self.line_size)
        key = (offset << 16) | min(size, 0xFFFF)
        mask = self._sector_mask_cache.get(key)
        if mask is None:
            first = offset // self.sector_size
            last = min(self.line_size - 1,
                       offset + max(1, size) - 1) // self.sector_size
            mask = (full_mask(last - first + 1)) << first
            self._sector_mask_cache[key] = mask
        return mask

    # ------------------------------------------------------------------
    # Lookup / access
    # ------------------------------------------------------------------
    def probe(self, addr: int) -> Optional[CacheLine]:
        """Return the resident line containing ``addr`` without side effects."""
        if self._tag_shift is not None:
            return self._sets[(addr >> self._line_shift) & self._set_mask].get(
                addr >> self._tag_shift)
        return self._sets[self.set_index(addr)].get(self.tag_of(addr))

    def access(self, addr: int, size: int, is_write: bool, now: float) -> AccessResult:
        """Perform a demand access and return the outcome.

        A hit updates LRU, dirty and touch state.  A miss (or sector miss)
        leaves the cache unmodified; the caller is expected to call
        :meth:`fill` once the data has been fetched.
        """
        line = self.probe(addr)
        hit = self.access_fast(addr, size, is_write, now)
        if hit is None:
            return AccessResult(hit=False, line=line,
                                sector_miss=line is not None)
        ready_time, was_prefetched = hit
        return AccessResult(hit=True, line=line, was_prefetched=was_prefetched,
                            ready_time=ready_time)

    def access_fast(self, addr: int, size: int, is_write: bool, now: float):
        """Hot-path demand access: ``(ready_time, was_prefetched)`` on a hit,
        ``None`` on a miss.  Same state transitions and counters as
        :meth:`access`, without building an :class:`AccessResult`."""
        self.accesses += 1
        if self._tag_shift is not None:
            line = self._sets[(addr >> self._line_shift) & self._set_mask].get(
                addr >> self._tag_shift)
        else:
            line = self._sets[self.set_index(addr)].get(self.tag_of(addr))
        if line is None:
            self.misses += 1
            return None
        if self.sector_size:
            mask = self.sector_mask(addr, size)
            if (line.sector_valid & mask) != mask:
                # Line present but the requested sector(s) are not.
                self.sector_misses += 1
                self.misses += 1
                return None
        else:
            mask = 1
        self.hits += 1
        line.last_use = now
        line.sector_touched |= mask
        if is_write:
            line.dirty = True
        if line.from_prefetch:
            was_prefetched = not line.prefetch_referenced
            line.prefetch_referenced = True
            return line.ready_time, was_prefetched
        return line.ready_time, False

    # ------------------------------------------------------------------
    # Fill / eviction
    # ------------------------------------------------------------------
    def fill(self, addr: int, now: float, ready_time: float, *,
             is_prefetch: bool = False, is_write: bool = False,
             sectors: Optional[int] = None) -> AccessResult:
        """Install (or extend) the line containing ``addr``.

        ``sectors`` is the mask of sectors being brought in; ``None`` means
        the full line.  Returns an :class:`AccessResult` whose ``evicted``
        field carries the victim line, if any (the caller charges write-back
        traffic for dirty victims).
        """
        line, evicted = self.fill_fast(addr, now, ready_time,
                                       is_prefetch=is_prefetch,
                                       is_write=is_write, sectors=sectors)
        return AccessResult(hit=True, line=line, evicted=evicted,
                            ready_time=line.ready_time)

    def fill_fast(self, addr: int, now: float, ready_time: float, *,
                  is_prefetch: bool = False, is_write: bool = False,
                  sectors: Optional[int] = None):
        """Hot-path :meth:`fill`: returns ``(line, evicted_line_or_None)``
        without building an :class:`AccessResult`."""
        if self._tag_shift is not None:
            index = (addr >> self._line_shift) & self._set_mask
            tag = addr >> self._tag_shift
        else:
            index = self.set_index(addr)
            tag = self.tag_of(addr)
        cache_set = self._sets[index]
        if sectors is None:
            sectors = full_mask(self.sectors_per_line)
        line = cache_set.get(tag)
        evicted = None
        if line is None:
            if len(cache_set) >= self.assoc:
                evicted = self._evict(cache_set)
            # Positional CacheLine construction (hot): (tag, addr, valid,
            # dirty, ready_time, last_use, from_prefetch,
            # prefetch_referenced, sector_valid, sector_touched).
            line = CacheLine(tag, self.line_addr(addr), True, False,
                             ready_time, now, is_prefetch, False, sectors, 0)
            cache_set[tag] = line
            if is_prefetch:
                self.prefetch_fills += 1
        else:
            # Sector fill into an already-resident line.
            line.sector_valid |= sectors
            line.ready_time = max(line.ready_time, ready_time)
            line.last_use = now
        if is_write:
            line.dirty = True
        if not is_prefetch:
            line.prefetch_referenced = True
        return line, evicted

    def _evict(self, cache_set: Dict[int, CacheLine]) -> CacheLine:
        victim_tag = min(cache_set, key=lambda t: cache_set[t].last_use)
        victim = cache_set.pop(victim_tag)
        self.evictions += 1
        if victim.from_prefetch and not victim.prefetch_referenced:
            self.unused_prefetch_evictions += 1
        return victim

    def invalidate(self, addr: int) -> Optional[CacheLine]:
        """Invalidate the line containing ``addr``; return it if present."""
        index = self.set_index(addr)
        return self._sets[index].pop(self.tag_of(addr), None)

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests)
    # ------------------------------------------------------------------
    def resident_lines(self) -> List[CacheLine]:
        """Return every valid line currently in the cache."""
        lines: List[CacheLine] = []
        for cache_set in self._sets:
            lines.extend(cache_set.values())
        return lines

    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(cache_set) for cache_set in self._sets)

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.assoc
