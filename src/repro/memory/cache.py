"""Set-associative cache model with optional sector support.

The cache stores tags and per-line metadata only (the simulator reads data
values through :class:`repro.mem_image.MemoryImage`).  Lines track:

* LRU position (true LRU within a set),
* dirty bit,
* ``ready_time`` — the cycle at which an in-flight fill completes, so that a
  demand access hitting a line that a prefetch is still bringing in pays the
  remaining latency (a *late prefetch*, Section 6.1.1),
* whether the line was brought in by a prefetch and whether it has been
  referenced since (for prefetch accuracy accounting),
* a valid-bit mask over sectors when the cache is sectored (Section 4.1) and
  a touched-bit mask used by the granularity predictor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.config import CacheConfig


def full_mask(num_sectors: int) -> int:
    """Bit mask with ``num_sectors`` low bits set."""
    return (1 << num_sectors) - 1


@dataclass
class CacheLine:
    """Metadata of one resident cache line."""

    tag: int
    addr: int                      # base address of the line
    valid: bool = True
    dirty: bool = False
    ready_time: float = 0.0
    last_use: float = 0.0
    from_prefetch: bool = False
    prefetch_referenced: bool = False
    sector_valid: int = 0          # bit i set => sector i present
    sector_touched: int = 0        # bit i set => sector i demanded-referenced


@dataclass
class AccessResult:
    """Outcome of a cache lookup/access."""

    hit: bool
    line: Optional[CacheLine] = None
    sector_miss: bool = False      # line present but the sector is not
    evicted: Optional[CacheLine] = None
    was_prefetched: bool = False   # hit on a line installed by a prefetch
    ready_time: float = 0.0        # when the (possibly in-flight) line is usable


class Cache:
    """A single level of cache (one L1, or one slice of the shared L2)."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.line_size = config.line_size
        self.num_sets = config.num_sets
        self.assoc = config.associativity
        self.sector_size = config.sector_size
        self.sectors_per_line = config.sectors_per_line
        self._sets: List[Dict[int, CacheLine]] = [dict() for _ in range(self.num_sets)]
        # Statistics owned by the cache itself.
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.sector_misses = 0
        self.evictions = 0
        self.prefetch_fills = 0
        self.unused_prefetch_evictions = 0

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def line_addr(self, addr: int) -> int:
        """Base address of the line containing ``addr``."""
        return addr - (addr % self.line_size)

    def set_index(self, addr: int) -> int:
        return (addr // self.line_size) % self.num_sets

    def tag_of(self, addr: int) -> int:
        return addr // (self.line_size * self.num_sets)

    def sector_mask(self, addr: int, size: int) -> int:
        """Mask of sectors covered by an access of ``size`` bytes at ``addr``."""
        if not self.sector_size:
            return full_mask(1)
        offset = addr % self.line_size
        first = offset // self.sector_size
        last = min(self.line_size - 1, offset + max(1, size) - 1) // self.sector_size
        mask = 0
        for sector in range(first, last + 1):
            mask |= 1 << sector
        return mask

    # ------------------------------------------------------------------
    # Lookup / access
    # ------------------------------------------------------------------
    def probe(self, addr: int) -> Optional[CacheLine]:
        """Return the resident line containing ``addr`` without side effects."""
        index = self.set_index(addr)
        return self._sets[index].get(self.tag_of(addr))

    def access(self, addr: int, size: int, is_write: bool, now: float) -> AccessResult:
        """Perform a demand access and return the outcome.

        A hit updates LRU, dirty and touch state.  A miss (or sector miss)
        leaves the cache unmodified; the caller is expected to call
        :meth:`fill` once the data has been fetched.
        """
        self.accesses += 1
        line = self.probe(addr)
        if line is None:
            self.misses += 1
            return AccessResult(hit=False)
        mask = self.sector_mask(addr, size)
        if self.sector_size and (line.sector_valid & mask) != mask:
            # Line present but the requested sector(s) are not.
            self.sector_misses += 1
            self.misses += 1
            return AccessResult(hit=False, line=line, sector_miss=True)
        self.hits += 1
        line.last_use = now
        line.sector_touched |= mask
        if is_write:
            line.dirty = True
        was_prefetched = line.from_prefetch and not line.prefetch_referenced
        if line.from_prefetch:
            line.prefetch_referenced = True
        return AccessResult(hit=True, line=line, was_prefetched=was_prefetched,
                            ready_time=line.ready_time)

    # ------------------------------------------------------------------
    # Fill / eviction
    # ------------------------------------------------------------------
    def fill(self, addr: int, now: float, ready_time: float, *,
             is_prefetch: bool = False, is_write: bool = False,
             sectors: Optional[int] = None) -> AccessResult:
        """Install (or extend) the line containing ``addr``.

        ``sectors`` is the mask of sectors being brought in; ``None`` means
        the full line.  Returns an :class:`AccessResult` whose ``evicted``
        field carries the victim line, if any (the caller charges write-back
        traffic for dirty victims).
        """
        index = self.set_index(addr)
        tag = self.tag_of(addr)
        cache_set = self._sets[index]
        if sectors is None:
            sectors = full_mask(self.sectors_per_line)
        line = cache_set.get(tag)
        evicted = None
        if line is None:
            if len(cache_set) >= self.assoc:
                evicted = self._evict(cache_set)
            line = CacheLine(tag=tag, addr=self.line_addr(addr),
                             ready_time=ready_time, last_use=now,
                             from_prefetch=is_prefetch,
                             sector_valid=sectors)
            cache_set[tag] = line
            if is_prefetch:
                self.prefetch_fills += 1
        else:
            # Sector fill into an already-resident line.
            line.sector_valid |= sectors
            line.ready_time = max(line.ready_time, ready_time)
            line.last_use = now
        if is_write:
            line.dirty = True
        if not is_prefetch:
            line.prefetch_referenced = True
        return AccessResult(hit=True, line=line, evicted=evicted,
                            ready_time=line.ready_time)

    def _evict(self, cache_set: Dict[int, CacheLine]) -> CacheLine:
        victim_tag = min(cache_set, key=lambda t: cache_set[t].last_use)
        victim = cache_set.pop(victim_tag)
        self.evictions += 1
        if victim.from_prefetch and not victim.prefetch_referenced:
            self.unused_prefetch_evictions += 1
        return victim

    def invalidate(self, addr: int) -> Optional[CacheLine]:
        """Invalidate the line containing ``addr``; return it if present."""
        index = self.set_index(addr)
        return self._sets[index].pop(self.tag_of(addr), None)

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests)
    # ------------------------------------------------------------------
    def resident_lines(self) -> List[CacheLine]:
        """Return every valid line currently in the cache."""
        lines: List[CacheLine] = []
        for cache_set in self._sets:
            lines.extend(cache_set.values())
        return lines

    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(cache_set) for cache_set in self._sets)

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.assoc
