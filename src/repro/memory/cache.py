"""Set-associative cache model with optional sector support.

The cache stores tags and per-line metadata only (the simulator reads data
values through :class:`repro.mem_image.MemoryImage`).  Lines track:

* LRU position (true LRU within a set),
* dirty bit,
* ``ready_time`` — the cycle at which an in-flight fill completes, so that a
  demand access hitting a line that a prefetch is still bringing in pays the
  remaining latency (a *late prefetch*, Section 6.1.1),
* whether the line was brought in by a prefetch and whether it has been
  referenced since (for prefetch accuracy accounting),
* a valid-bit mask over sectors when the cache is sectored (Section 4.1) and
  a touched-bit mask used by the granularity predictor.

``Cache.access`` sits on the hot path of every simulated memory reference,
so the steady-state storage is **flat preallocated columns**, not objects:
one slot per (set, way) in parallel columns holding tag, line address,
ready time, LRU stamp, insertion sequence number, packed status flags and
the two sector masks.  A per-set ``{tag: way}`` dict provides the O(1)
probe; misses, fills and evictions move integers and floats between the
columns and allocate nothing.  (The columns are plain Python lists rather
than ``array('q')``/``array('d')`` buffers: ``array`` re-boxes a fresh
int/float object on *every* subscript read, which measures ~40% slower on
the miss-heavy fill/evict loop this layout exists for.)

:class:`CacheLine` objects survive only at the slow-path API boundary —
:meth:`probe`, :meth:`access`, :meth:`fill`, :meth:`invalidate` and
:meth:`resident_lines` materialise read-only snapshots for tests and
external callers.  The hot path (:meth:`access_fast` / :meth:`fill_fast`)
returns scalars, and eviction victims are exposed as the ``victim_addr`` /
``victim_dirty`` / ``victim_touched`` scalar scratch fields, valid until
the next fill into the same cache.

Victim selection is true LRU with the insertion-order tie-break of the
previous ``Dict[int, CacheLine]`` representation: the per-line ``seq``
column carries a monotonically increasing fill sequence number, and the
victim is the minimum of ``(last_use, seq)`` — bit-identical to
``min(cache_set, key=last_use)`` over an insertion-ordered dict.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.config import CacheConfig

#: Packed per-line status flags (the ``_flags`` column).
FLAG_DIRTY = 1
FLAG_FROM_PREFETCH = 2
FLAG_PREFETCH_REFERENCED = 4


def full_mask(num_sectors: int) -> int:
    """Bit mask with ``num_sectors`` low bits set."""
    return (1 << num_sectors) - 1


def _shift_of(value: int) -> Optional[int]:
    """log2 of ``value`` when it is a power of two, else None."""
    if value > 0 and (value & (value - 1)) == 0:
        return value.bit_length() - 1
    return None


class CacheLine:
    """Read-only snapshot of one resident cache line (API boundary only).

    The simulator's steady state lives in the flat columns of
    :class:`Cache`; a ``CacheLine`` is materialised on demand for tests and
    slow-path callers.  Mutating a snapshot does not write back.
    """

    __slots__ = ("tag", "addr", "valid", "dirty", "ready_time", "last_use",
                 "from_prefetch", "prefetch_referenced", "sector_valid",
                 "sector_touched")

    def __init__(self, tag: int, addr: int, valid: bool = True,
                 dirty: bool = False, ready_time: float = 0.0,
                 last_use: float = 0.0, from_prefetch: bool = False,
                 prefetch_referenced: bool = False, sector_valid: int = 0,
                 sector_touched: int = 0) -> None:
        self.tag = tag
        self.addr = addr                     # base address of the line
        self.valid = valid
        self.dirty = dirty
        self.ready_time = ready_time
        self.last_use = last_use
        self.from_prefetch = from_prefetch
        self.prefetch_referenced = prefetch_referenced
        self.sector_valid = sector_valid     # bit i set => sector i present
        self.sector_touched = sector_touched  # bit i set => sector i referenced

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CacheLine(tag={self.tag:#x}, addr={self.addr:#x}, "
                f"dirty={self.dirty}, sector_valid={self.sector_valid:#x})")


class AccessResult:
    """Outcome of a cache lookup/access."""

    __slots__ = ("hit", "line", "sector_miss", "evicted", "was_prefetched",
                 "ready_time")

    def __init__(self, hit: bool, line: Optional[CacheLine] = None,
                 sector_miss: bool = False,
                 evicted: Optional[CacheLine] = None,
                 was_prefetched: bool = False,
                 ready_time: float = 0.0) -> None:
        self.hit = hit
        self.line = line
        self.sector_miss = sector_miss     # line present but the sector is not
        self.evicted = evicted
        self.was_prefetched = was_prefetched  # hit on a prefetch-installed line
        self.ready_time = ready_time       # when the in-flight line is usable


class Cache:
    """A single level of cache (one L1, or one slice of the shared L2)."""

    __slots__ = ("config", "line_size", "num_sets", "assoc", "sector_size",
                 "sectors_per_line", "_index", "_free", "_tags", "_addrs",
                 "_ready", "_last_use", "_seq", "_flags", "_sector_valid",
                 "_sector_touched", "_fill_seq", "_full_sectors",
                 "_line_shift", "_set_shift", "_offset_mask", "_set_mask",
                 "_tag_shift", "_sector_mask_cache", "accesses", "hits",
                 "misses", "sector_misses", "evictions", "prefetch_fills",
                 "unused_prefetch_evictions", "victim_addr", "victim_dirty",
                 "victim_touched")

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.line_size = config.line_size
        self.num_sets = config.num_sets
        self.assoc = config.associativity
        self.sector_size = config.sector_size
        self.sectors_per_line = config.sectors_per_line
        slots = self.num_sets * self.assoc
        # Flat per-(set, way) columns; slot s*assoc+w belongs to set s.
        self._tags: List[int] = [-1] * slots
        self._addrs: List[int] = [0] * slots
        self._ready: List[float] = [0.0] * slots
        self._last_use: List[float] = [0.0] * slots
        self._seq: List[int] = [0] * slots
        self._flags: List[int] = [0] * slots
        self._sector_valid: List[int] = [0] * slots
        self._sector_touched: List[int] = [0] * slots
        # O(1) probe index: one {tag: way} dict per set.  Slots not in the
        # index are free and listed (in reverse so pop() hands them out in
        # way order) in the per-set free list.
        self._index: List[Dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._free: List[List[int]] = [
            list(range((s + 1) * self.assoc - 1, s * self.assoc - 1, -1))
            for s in range(self.num_sets)]
        #: Monotonic fill counter: the LRU tie-break (insertion order).
        self._fill_seq = 0
        self._full_sectors = full_mask(self.sectors_per_line)
        # Scratch fields describing the victim of the most recent evicting
        # fill (valid until the next fill into this cache).
        self.victim_addr = 0
        self.victim_dirty = 0
        self.victim_touched = 0
        # Shift/mask addressing for power-of-two geometries (the normal
        # case); division/modulo fallbacks keep odd geometries working.
        self._line_shift = _shift_of(self.line_size)
        self._set_shift = _shift_of(self.num_sets)
        if self._line_shift is not None:
            self._offset_mask = self.line_size - 1
        else:
            self._offset_mask = None
        if self._line_shift is not None and self._set_shift is not None:
            self._set_mask = self.num_sets - 1
            self._tag_shift = self._line_shift + self._set_shift
        else:
            self._set_mask = None
            self._tag_shift = None
        # Sector masks for every (line offset, access size) pair seen so far.
        # The per-access loop over sectors this replaces showed up in every
        # profile of partial-cacheline runs.
        self._sector_mask_cache: Dict[int, int] = {}
        # Statistics owned by the cache itself.
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.sector_misses = 0
        self.evictions = 0
        self.prefetch_fills = 0
        self.unused_prefetch_evictions = 0

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def line_addr(self, addr: int) -> int:
        """Base address of the line containing ``addr``."""
        if self._line_shift is not None:
            return addr & ~self._offset_mask
        return addr - (addr % self.line_size)

    def set_index(self, addr: int) -> int:
        if self._tag_shift is not None:
            return (addr >> self._line_shift) & self._set_mask
        return (addr // self.line_size) % self.num_sets

    def tag_of(self, addr: int) -> int:
        if self._tag_shift is not None:
            return addr >> self._tag_shift
        return addr // (self.line_size * self.num_sets)

    def sector_mask(self, addr: int, size: int) -> int:
        """Mask of sectors covered by an access of ``size`` bytes at ``addr``."""
        if not self.sector_size:
            return 1
        offset = (addr & self._offset_mask if self._line_shift is not None
                  else addr % self.line_size)
        key = (offset << 16) | min(size, 0xFFFF)
        mask = self._sector_mask_cache.get(key)
        if mask is None:
            first = offset // self.sector_size
            last = min(self.line_size - 1,
                       offset + max(1, size) - 1) // self.sector_size
            mask = (full_mask(last - first + 1)) << first
            self._sector_mask_cache[key] = mask
        return mask

    # ------------------------------------------------------------------
    # Lookup / access
    # ------------------------------------------------------------------
    def _way_of(self, addr: int) -> Optional[int]:
        """Slot of the resident line containing ``addr``, or None."""
        if self._tag_shift is not None:
            return self._index[(addr >> self._line_shift)
                               & self._set_mask].get(addr >> self._tag_shift)
        return self._index[self.set_index(addr)].get(self.tag_of(addr))

    def _line_view(self, way: int) -> CacheLine:
        """Materialise a :class:`CacheLine` snapshot of one slot."""
        flags = self._flags[way]
        return CacheLine(self._tags[way], self._addrs[way], True,
                         bool(flags & FLAG_DIRTY), self._ready[way],
                         self._last_use[way],
                         bool(flags & FLAG_FROM_PREFETCH),
                         bool(flags & FLAG_PREFETCH_REFERENCED),
                         self._sector_valid[way], self._sector_touched[way])

    def probe(self, addr: int) -> Optional[CacheLine]:
        """Snapshot of the resident line containing ``addr`` (no side
        effects); None when absent.  Slow path — hot callers use the way
        index and columns directly."""
        way = self._way_of(addr)
        return None if way is None else self._line_view(way)

    def access(self, addr: int, size: int, is_write: bool, now: float) -> AccessResult:
        """Perform a demand access and return the outcome.

        A hit updates LRU, dirty and touch state.  A miss (or sector miss)
        leaves the cache unmodified; the caller is expected to call
        :meth:`fill` once the data has been fetched.
        """
        hit = self.access_fast(addr, size, is_write, now)
        line = self.probe(addr)
        if hit is None:
            return AccessResult(hit=False, line=line,
                                sector_miss=line is not None)
        ready_time, was_prefetched = hit
        return AccessResult(hit=True, line=line, was_prefetched=was_prefetched,
                            ready_time=ready_time)

    def access_fast(self, addr: int, size: int, is_write: bool, now: float):
        """Hot-path demand access: ``(ready_time, was_prefetched)`` on a hit,
        ``None`` on a miss.  Same state transitions and counters as
        :meth:`access`, without building an :class:`AccessResult`."""
        self.accesses += 1
        if self._tag_shift is not None:
            way = self._index[(addr >> self._line_shift)
                              & self._set_mask].get(addr >> self._tag_shift)
        else:
            way = self._index[self.set_index(addr)].get(self.tag_of(addr))
        if way is None:
            self.misses += 1
            return None
        if self.sector_size:
            mask = self.sector_mask(addr, size)
            if (self._sector_valid[way] & mask) != mask:
                # Line present but the requested sector(s) are not.
                self.sector_misses += 1
                self.misses += 1
                return None
        else:
            mask = 1
        self.hits += 1
        self._last_use[way] = now
        self._sector_touched[way] |= mask
        flags = self._flags[way]
        if is_write:
            flags |= FLAG_DIRTY
        if flags & FLAG_FROM_PREFETCH:
            was_prefetched = not flags & FLAG_PREFETCH_REFERENCED
            self._flags[way] = flags | FLAG_PREFETCH_REFERENCED
            return self._ready[way], was_prefetched
        self._flags[way] = flags
        return self._ready[way], False

    def access_hit(self, addr: int, size: int, is_write: bool,
                   now: float) -> bool:
        """:meth:`access_fast` for callers that only need the hit/miss
        outcome (the shared-level lookup): same state transitions and
        counters, no ``(ready_time, was_prefetched)`` tuple built."""
        self.accesses += 1
        if self._tag_shift is not None:
            way = self._index[(addr >> self._line_shift)
                              & self._set_mask].get(addr >> self._tag_shift)
        else:
            way = self._index[self.set_index(addr)].get(self.tag_of(addr))
        if way is None:
            self.misses += 1
            return False
        if self.sector_size:
            mask = self.sector_mask(addr, size)
            if (self._sector_valid[way] & mask) != mask:
                self.sector_misses += 1
                self.misses += 1
                return False
        else:
            mask = 1
        self.hits += 1
        self._last_use[way] = now
        self._sector_touched[way] |= mask
        flags = self._flags[way]
        if is_write:
            flags |= FLAG_DIRTY
        if flags & FLAG_FROM_PREFETCH:
            self._flags[way] = flags | FLAG_PREFETCH_REFERENCED
        else:
            self._flags[way] = flags
        return True

    # ------------------------------------------------------------------
    # Fill / eviction
    # ------------------------------------------------------------------
    def fill(self, addr: int, now: float, ready_time: float, *,
             is_prefetch: bool = False, is_write: bool = False,
             sectors: Optional[int] = None) -> AccessResult:
        """Install (or extend) the line containing ``addr``.

        ``sectors`` is the mask of sectors being brought in; ``None`` means
        the full line.  Returns an :class:`AccessResult` whose ``evicted``
        field carries a snapshot of the victim line, if any (the caller
        charges write-back traffic for dirty victims).
        """
        # Snapshot the victim (if this fill will evict) before the columns
        # are overwritten; fill_fast repeats the same deterministic scan.
        evicted = None
        if self._tag_shift is not None:
            set_i = (addr >> self._line_shift) & self._set_mask
            tag = addr >> self._tag_shift
        else:
            set_i = self.set_index(addr)
            tag = self.tag_of(addr)
        if tag not in self._index[set_i] and not self._free[set_i]:
            evicted = self._line_view(self._victim_way(set_i))
        self.fill_fast(addr, now, ready_time, is_prefetch, is_write, sectors)
        way = self._index[set_i][tag]
        return AccessResult(hit=True, line=self._line_view(way),
                            evicted=evicted, ready_time=self._ready[way])

    def fill_fast(self, addr: int, now: float, ready_time: float,
                  is_prefetch: bool = False, is_write: bool = False,
                  sectors: Optional[int] = None) -> bool:
        """Hot-path :meth:`fill`: returns True when a line was evicted, in
        which case ``victim_addr`` / ``victim_dirty`` / ``victim_touched``
        describe the victim (valid until the next fill).  Allocates
        nothing."""
        if self._tag_shift is not None:
            set_i = (addr >> self._line_shift) & self._set_mask
            tag = addr >> self._tag_shift
        else:
            set_i = self.set_index(addr)
            tag = self.tag_of(addr)
        index = self._index[set_i]
        way = index.get(tag)
        if way is not None:
            # Sector fill into an already-resident line.
            if sectors is None:
                sectors = self._full_sectors
            self._sector_valid[way] |= sectors
            if ready_time > self._ready[way]:
                self._ready[way] = ready_time
            self._last_use[way] = now
            flags = self._flags[way]
            if is_write:
                flags |= FLAG_DIRTY
            if not is_prefetch:
                flags |= FLAG_PREFETCH_REFERENCED
            self._flags[way] = flags
            return False
        flag_col = self._flags
        last_use = self._last_use
        free = self._free[set_i]
        evicted = False
        if free:
            way = free.pop()
        else:
            # _victim_way, inlined (per steady-state miss).
            seq_col = self._seq
            base = set_i * self.assoc
            way = base
            best = last_use[base]
            best_seq = seq_col[base]
            for slot in range(base + 1, base + self.assoc):
                stamp = last_use[slot]
                if stamp < best or (stamp == best and seq_col[slot] < best_seq):
                    best = stamp
                    best_seq = seq_col[slot]
                    way = slot
            flags = flag_col[way]
            self.evictions += 1
            if flags & FLAG_FROM_PREFETCH \
                    and not flags & FLAG_PREFETCH_REFERENCED:
                self.unused_prefetch_evictions += 1
            self.victim_addr = self._addrs[way]
            self.victim_dirty = flags & FLAG_DIRTY
            self.victim_touched = self._sector_touched[way]
            del index[self._tags[way]]
            evicted = True
        self._fill_seq = seq = self._fill_seq + 1
        self._tags[way] = tag
        if self._line_shift is not None:
            self._addrs[way] = addr & ~self._offset_mask
        else:
            self._addrs[way] = addr - (addr % self.line_size)
        self._ready[way] = ready_time
        last_use[way] = now
        self._seq[way] = seq
        flags = 0
        if is_write:
            flags = FLAG_DIRTY
        if is_prefetch:
            flags |= FLAG_FROM_PREFETCH
            self.prefetch_fills += 1
        else:
            flags |= FLAG_PREFETCH_REFERENCED
        flag_col[way] = flags
        self._sector_valid[way] = (self._full_sectors if sectors is None
                                   else sectors)
        self._sector_touched[way] = 0
        index[tag] = way
        return evicted

    def _victim_way(self, set_i: int) -> int:
        """LRU victim slot of a full set: minimum ``(last_use, seq)``.

        The ``seq`` tie-break reproduces the insertion-order iteration of
        the previous dict-of-lines representation, so victim choice (and
        therefore every downstream fingerprint) is unchanged.
        """
        last_use = self._last_use
        seq = self._seq
        base = set_i * self.assoc
        way = base
        best = last_use[base]
        best_seq = seq[base]
        for slot in range(base + 1, base + self.assoc):
            stamp = last_use[slot]
            if stamp < best or (stamp == best and seq[slot] < best_seq):
                best = stamp
                best_seq = seq[slot]
                way = slot
        return way

    def invalidate(self, addr: int) -> Optional[CacheLine]:
        """Invalidate the line containing ``addr``; return a snapshot of it
        if it was present."""
        way = self._way_of(addr)
        if way is None:
            return None
        line = self._line_view(way)
        set_i = self.set_index(addr)
        del self._index[set_i][self._tags[way]]
        self._free[set_i].append(way)
        return line

    def invalidate_fast(self, addr: int) -> Optional[int]:
        """Hot-path :meth:`invalidate`: returns the victim's flags (test
        ``FLAG_DIRTY`` for write-back) or None when absent.  Allocates no
        snapshot."""
        way = self._way_of(addr)
        if way is None:
            return None
        flags = self._flags[way]
        set_i = self.set_index(addr)
        del self._index[set_i][self._tags[way]]
        self._free[set_i].append(way)
        return flags

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests)
    # ------------------------------------------------------------------
    def resident_lines(self) -> List[CacheLine]:
        """Return a snapshot of every valid line currently in the cache."""
        return [self._line_view(way)
                for index in self._index for way in index.values()]

    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(index) for index in self._index)

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.assoc
