"""The full memory system: per-core L1s, distributed shared L2, directory
coherence, mesh NoC and DRAM, plus per-L1 prefetchers.

This is the component the cores talk to.  For every demand reference it
returns the access latency, performing along the way all the side effects a
real hierarchy would have: cache fills and evictions, directory updates,
NoC messages (with contention) and DRAM requests (with bandwidth limits).
Prefetch requests walk the same path but do not stall the core.

Idealised configurations of Section 5.4 are supported directly:

* ``ideal_memory`` — every access costs one L1 hit and moves no traffic,
* ``perfect_prefetch`` — every miss behaves as if a magic prefetcher issued
  the fill ``perfect_prefetch_lead`` cycles earlier; latency is hidden unless
  the NoC/DRAM are so congested that even that lead time is not enough,
  which is exactly what makes *PerfPref* fall behind *Ideal* at high core
  counts in the paper (Section 2.2).

The hierarchy *shape* is configurable (``SystemConfig.hierarchy``, a
:class:`~repro.sim.config.HierarchyConfig`): a chain of private per-core
levels (arbitrarily deep; levels past the third account into dynamic
``lN_*`` counters) under one shared, distributed last level, with zero or
more prefetchers attachable per level (``HierarchyConfig.attach``).  A
private-level attachment is per-core and observes the access stream
reaching its level; a shared-level attachment is per-slice — each slice of
the distributed last level carries its own prefetcher instance observing
the demand fetches that arrive at that slice, and its prefetches fill the
slice from DRAM (their NoC/DRAM traffic and slice capacity are their
cost; they complete after the demand they trained on, so they never
shorten that demand's latency).  Attachment points may name a registered
prefetcher explicitly (hybrid stream@L1 + IMP@L2) or inherit the
experiment mode's choice.

The default (``hierarchy is None``) is the classic Table 1 shape —
private L1s + shared L2, one mode-chosen prefetcher per L1 — and runs on
the fully inlined fast path below; explicit hierarchies (a private L2, a
shared L3, IMP attached at L2, multi-attach, ...) take the generalised
``_access_extended`` walk, which reuses the same shared-level fetch,
directory, NoC and DRAM machinery.  An explicit hierarchy with the classic
geometry simulates bit-identically to the fast path, and a single-attach
chain simulates bit-identically through the multi-attach walk (the
determinism and equivalence suites assert both).

Hot-path notes: cores call :meth:`MemorySystem.access_fast` with plain
scalars (no :class:`MemRef` is built per dynamic reference); the
object-based :meth:`MemorySystem.access` remains as a thin wrapper.  One
:class:`AccessContext` per memory system is reused across prefetcher
notifications, and cores whose prefetcher can never issue anything (the
``NullPrefetcher`` baseline) skip the notification machinery entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.mem_image import MemoryImage
from repro.memory.cache import Cache, full_mask
from repro.memory.coherence import Directory
from repro.memory.dram import make_dram
from repro.noc.mesh import MeshNoC
from repro.prefetchers.base import AccessContext, PrefetcherBase, PrefetchRequest
from repro.prefetchers.factory import make_prefetcher_factory
from repro.prefetchers.null import NullPrefetcher
from repro.sim.config import SystemConfig
from repro.sim.stats import CoreStats, SystemStats, TrafficStats
from repro.sim.trace import MemRef


#: Size in bytes of a coherence/request header message on the NoC.
CONTROL_MESSAGE_BYTES = 8


class _Attach:
    """One resolved prefetcher attachment: a bank of prefetcher instances
    (per core for private levels, per slice for the shared level) plus the
    precomputed notification gates the access walk consults."""

    __slots__ = ("level_index", "prefetchers", "notify_enabled",
                 "notify_hits", "has_on_fill", "has_on_eviction")

    def __init__(self, level_index: int,
                 prefetchers: List[PrefetcherBase]) -> None:
        self.level_index = level_index
        self.prefetchers = prefetchers
        self.notify_enabled = [not _prefetcher_is_inert(p)
                               for p in prefetchers]
        self.notify_hits = [enabled and getattr(p, "observes_hits", True)
                            for enabled, p in zip(self.notify_enabled,
                                                  prefetchers)]
        self.has_on_fill = [type(p).on_fill is not PrefetcherBase.on_fill
                            for p in prefetchers]
        self.has_on_eviction = [
            type(p).on_eviction is not PrefetcherBase.on_eviction
            and getattr(p, "observes_evictions", True)
            for p in prefetchers]


@dataclass
class AccessOutcome:
    """What happened for one demand access."""

    latency: float
    l1_hit: bool
    l2_hit: bool = False
    covered_by_prefetch: bool = False
    late_prefetch_cycles: float = 0.0


PrefetcherFactory = Callable[[int], PrefetcherBase]


def _prefetcher_is_inert(prefetcher: PrefetcherBase) -> bool:
    """True when ``on_access`` can never produce work (no-prefetch baselines)."""
    if isinstance(prefetcher, NullPrefetcher):
        return True
    return type(prefetcher).on_access is PrefetcherBase.on_access


class MemorySystem:
    """Cache hierarchy + interconnect + DRAM for the whole chip."""

    __slots__ = ("config", "mem_image", "stats", "traffic", "noc", "dram",
                 "_mc_tiles", "_num_mcs", "l1", "l2", "directories",
                 "prefetchers", "line_size", "_line_shift", "_line_mask",
                 "_cores_pow2_mask", "_hit_latency", "_l2_hit_latency",
                 "_l1_inline", "_l1_line_shift", "_l1_set_mask",
                 "_l1_tag_shift", "_plain_hit", "_ret", "_has_on_fill",
                 "_has_on_eviction",
                 "_notify_enabled", "_notify_hits", "_ctx", "_extended",
                 "_private_caches",
                 "_private_latencies", "_pf_level", "_outermost_private",
                 "_shared_pos", "_attaches", "_shared_attaches")

    def __init__(self, config: SystemConfig, mem_image: Optional[MemoryImage] = None,
                 prefetcher_factory: Optional[PrefetcherFactory] = None,
                 stats: Optional[SystemStats] = None,
                 named_prefetcher_factory=None) -> None:
        self.config = config
        self.mem_image = mem_image or MemoryImage()
        n = config.n_cores
        self.stats = stats or SystemStats(
            cores=[CoreStats(core_id=i) for i in range(n)])
        if len(self.stats.cores) != n:
            raise ValueError("stats must have one CoreStats per core")
        self.traffic: TrafficStats = self.stats.traffic
        self.noc = MeshNoC(n, config.noc, traffic=self.traffic)
        self.dram = make_dram(config.dram, config.num_memory_controllers,
                              traffic=self.traffic)
        self._mc_tiles = config.memory_controller_tiles()
        self._num_mcs = len(self._mc_tiles)
        hierarchy = config.hierarchy
        self._extended = hierarchy is not None
        factory = prefetcher_factory or (lambda core_id: PrefetcherBase())
        if named_prefetcher_factory is None:
            # Attach entries that name a prefetcher explicitly resolve
            # through the registry against this system's memory image
            # (System passes a resolver that also shares its IMP config).
            named_prefetcher_factory = (
                lambda name: make_prefetcher_factory(name, self.mem_image))
        if not self._extended:
            # Classic Table 1 shape: private L1s + shared distributed L2.
            # This is the hot configuration; it keeps the fully inlined
            # access path below.
            l1_cfg = config.l1d_effective
            l2_cfg = config.l2_slice
            self.l1 = [Cache(l1_cfg) for _ in range(n)]
            self.l2 = [Cache(l2_cfg) for _ in range(n)]
            self._private_caches = [self.l1]
            self._private_latencies = [config.l1d.hit_latency]
            self._pf_level = 0
            self._outermost_private = 0
            self._shared_pos = 2
            self._attaches = ()
            self._shared_attaches = ()
            self.prefetchers: List[PrefetcherBase] = [factory(i)
                                                      for i in range(n)]
        else:
            # Explicit hierarchy: a chain of private levels under one
            # shared, distributed last level (see HierarchyConfig).  Built
            # generically; accesses take _access_extended.
            partial = config.partial_noc or config.partial_dram
            privates = hierarchy.private_levels
            shared = hierarchy.shared_level
            private_attaches = hierarchy.private_attaches
            #: Level index of the *primary* attachment (the innermost
            #: private attach): the target of software prefetches and of
            #: the public issue_prefetch API, and — under partial
            #: accessing — the private level that gets sectored.
            self._pf_level = (hierarchy.level_index(private_attaches[0].level)
                              if private_attaches else 0)
            self._outermost_private = len(privates) - 1
            self._private_caches = []
            self._private_latencies = []
            for index, level in enumerate(privates):
                sector = level.sector_size
                if not sector and partial and index == self._pf_level:
                    sector = config.l1_sector_size
                level_cfg = level.cache_config(sector_size=sector)
                self._private_caches.append(
                    [Cache(level_cfg) for _ in range(n)])
                self._private_latencies.append(level.hit_latency)
            self.l1 = self._private_caches[0]
            shared_sector = shared.sector_size or (
                config.l2_sector_size if partial else 0)
            l2_cfg = shared.cache_config(sector_size=shared_sector)
            self.l2 = [Cache(l2_cfg) for _ in range(n)]
            self._shared_pos = len(hierarchy.levels)
            # One _Attach (a bank of prefetcher instances + notification
            # gates) per attachment point.  Private banks are per-core;
            # shared banks are per-slice.  ``private_attaches`` is already
            # sorted inner-level-first, which fixes notification order.
            def build_attach(spec, level_index):
                make = (factory if spec.prefetcher is None
                        else named_prefetcher_factory(spec.prefetcher))
                return _Attach(level_index, [make(i) for i in range(n)])

            self._attaches = tuple(
                build_attach(spec, hierarchy.level_index(spec.level))
                for spec in private_attaches)
            self._shared_attaches = tuple(
                build_attach(spec, len(privates))
                for spec in hierarchy.shared_attaches)
            # Flat instance list (attach-major): what System introspects
            # for IMP state; identical to the per-core list when a single
            # private attachment exists (the pre-multi-attach layout).
            self.prefetchers = [p for a in self._attaches
                                for p in a.prefetchers]
            self.prefetchers += [p for a in self._shared_attaches
                                 for p in a.prefetchers]
            l1_cfg = self._private_caches[0][0].config
        self.directories = [Directory(tile, config.ackwise_pointers, self.traffic)
                            for tile in range(n)]
        self.line_size = l1_cfg.line_size
        # ----- hot-path precomputation ---------------------------------
        line_size = self.line_size
        if line_size > 0 and (line_size & (line_size - 1)) == 0:
            self._line_shift = line_size.bit_length() - 1
            self._line_mask = ~(line_size - 1)
        else:
            self._line_shift = None
            self._line_mask = None
        self._cores_pow2_mask = (n - 1) if (n & (n - 1)) == 0 else None
        self._hit_latency = self._private_latencies[0]
        self._l2_hit_latency = l2_cfg.hit_latency
        # All L1s share one geometry; when it is power-of-two and
        # non-sectored (the default), the demand-hit lookup is inlined in
        # access_fast (mirrors Cache.access_fast — keep the two in sync).
        # Extended hierarchies always take the generic lookups.
        sample_l1 = self.l1[0]
        self._l1_inline = (not self._extended
                           and sample_l1._tag_shift is not None
                           and not sample_l1.sector_size)
        self._l1_line_shift = sample_l1._line_shift
        self._l1_set_mask = sample_l1._set_mask
        self._l1_tag_shift = sample_l1._tag_shift
        # Shared result tuple for the overwhelmingly common plain L1 hit
        # (immutable, so safe to return repeatedly), plus one reusable
        # result list for every other access_fast outcome — callers consume
        # the latency/flags immediately (see access_fast's contract), so no
        # per-access result tuple is allocated.
        self._plain_hit = (self._hit_latency, True, False, False, 0.0)
        self._ret = [0.0, False, False, False, 0.0]
        # Per-core gating lists of the classic (single L1-attached
        # prefetcher) path: on_fill is a chaining hook no stock prefetcher
        # implements, on_eviction only feeds IMP's granularity predictor,
        # _notify_enabled skips the whole AccessContext path for the
        # "none" baseline, and _notify_hits lets miss-stream-only
        # prefetchers (``observes_hits`` False, e.g. the classic GHB) keep
        # cache hits entirely core-local.  Extended hierarchies carry the
        # same gates per attachment (_Attach); the classic-named lists
        # then alias the primary attachment's for the issue_prefetch /
        # software_prefetch compatibility surface.
        if not self._extended:
            self._has_on_fill = [type(p).on_fill is not PrefetcherBase.on_fill
                                 for p in self.prefetchers]
            self._has_on_eviction = [
                type(p).on_eviction is not PrefetcherBase.on_eviction
                and getattr(p, "observes_evictions", True)
                for p in self.prefetchers]
            self._notify_enabled = [not _prefetcher_is_inert(p)
                                    for p in self.prefetchers]
            self._notify_hits = [
                enabled and getattr(p, "observes_hits", True)
                for enabled, p in zip(self._notify_enabled, self.prefetchers)]
        else:
            primary = (self._attaches[0] if self._attaches
                       else (self._shared_attaches[0]
                             if self._shared_attaches else None))
            if primary is not None:
                self._has_on_fill = primary.has_on_fill
                self._has_on_eviction = primary.has_on_eviction
                self._notify_enabled = primary.notify_enabled
                self._notify_hits = primary.notify_hits
            else:
                disabled = [False] * n
                self._has_on_fill = disabled
                self._has_on_eviction = disabled
                self._notify_enabled = disabled
                self._notify_hits = disabled
        # One reusable AccessContext: fields are rebound per access instead
        # of allocating a context (plus a read_value closure) per reference.
        self._ctx = AccessContext(core_id=0, pc=0, addr=0, size=0,
                                  is_write=False, hit=False, now=0.0)
        read_value = self.mem_image.read_value
        ctx = self._ctx
        self._ctx.read_value = lambda: read_value(ctx.addr)

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------
    def line_addr(self, addr: int) -> int:
        if self._line_shift is not None:
            return addr & self._line_mask
        return addr - (addr % self.line_size)

    def home_tile(self, addr: int) -> int:
        """L2 slice (and directory) holding this line: line interleaving."""
        if self._line_shift is not None:
            line_no = addr >> self._line_shift
        else:
            line_no = addr // self.line_size
        if self._cores_pow2_mask is not None:
            return line_no & self._cores_pow2_mask
        return line_no % self.config.n_cores

    def memory_controller(self, addr: int) -> tuple:
        """Return ``(controller_index, controller_tile)`` for an address."""
        if self._line_shift is not None:
            index = (addr >> self._line_shift) % self._num_mcs
        else:
            index = (addr // self.line_size) % self._num_mcs
        return index, self._mc_tiles[index]

    # ------------------------------------------------------------------
    # Demand access path
    # ------------------------------------------------------------------
    def access(self, core_id: int, ref: MemRef, now: float) -> AccessOutcome:
        """Perform one demand load/store for ``core_id`` at time ``now``.

        Object-based wrapper kept for tests and external callers; core
        models use :meth:`access_fast`.
        """
        latency, l1_hit, l2_hit, covered, late = self.access_fast(
            core_id, ref.pc, ref.addr, ref.size, ref.is_write, now)
        return AccessOutcome(latency=latency, l1_hit=l1_hit, l2_hit=l2_hit,
                             covered_by_prefetch=covered,
                             late_prefetch_cycles=late)

    def access_fast(self, core_id: int, pc: int, addr: int, size: int,
                    is_write: bool, now: float):
        """Scalar demand-access entry point (the hot path).

        Returns ``(latency, l1_hit, l2_hit, covered_by_prefetch,
        late_prefetch_cycles)``; core models read only the first two
        elements, so stand-in memory systems may return any indexable with
        latency at [0] and the L1-hit flag at [1].  The returned indexable
        may be a **reused scratch list** — callers must consume it before
        the next access, never retain it.
        """
        if self._extended:
            return self._access_extended(core_id, pc, addr, size, is_write,
                                         now)
        config = self.config
        if config.ideal_memory:
            if self._notify_hits[core_id]:
                self._notify_prefetcher(core_id, pc, addr, size, is_write,
                                        hit=True, now=now)
            return self._hit_latency, True, False, False, 0.0

        l1 = self.l1[core_id]
        miss = False
        covered = False
        ready = 0.0
        if self._l1_inline:
            # Cache.access_fast, inlined for the shared power-of-two
            # non-sectored L1 geometry (the hottest lines in the simulator);
            # scalar locals instead of the (ready, was_prefetched) tuple.
            l1.accesses += 1
            way = l1._index[(addr >> self._l1_line_shift)
                            & self._l1_set_mask].get(
                                addr >> self._l1_tag_shift)
            if way is None:
                l1.misses += 1
                miss = True
            else:
                l1.hits += 1
                l1._last_use[way] = now
                # (sector_touched is only consumed by the granularity
                # predictor, which requires a sectored L1 — not this path.)
                flags = l1._flags[way]
                if is_write:
                    flags |= 1          # FLAG_DIRTY
                if flags & 2:           # FLAG_FROM_PREFETCH
                    covered = not flags & 4  # FLAG_PREFETCH_REFERENCED
                    l1._flags[way] = flags | 4
                else:
                    l1._flags[way] = flags
                ready = l1._ready[way]
        else:
            hit = l1.access_fast(addr, size, is_write, now)
            if hit is None:
                miss = True
            else:
                ready, covered = hit
        hit_latency = self._hit_latency

        if not miss:
            late = ready - now
            if late > 0.0:
                latency = hit_latency + late
            else:
                late = 0.0
                latency = hit_latency
            if covered:
                core_stats = self.stats.cores[core_id]
                core_stats.prefetch_covered_misses += 1
                core_stats.prefetches_useful += 1
                core_stats.prefetch_late_cycles += int(late)
            if self._notify_hits[core_id]:
                # _notify_prefetcher, inlined (hottest call site).
                ctx = self._ctx
                ctx.core_id = core_id
                ctx.pc = pc
                ctx.addr = addr
                ctx.size = size
                ctx.is_write = is_write
                ctx.hit = True
                ctx.now = now
                requests = self.prefetchers[core_id].on_access(ctx)
                if requests:
                    self._issue_requests(core_id, requests, now)
            if covered or late:
                ret = self._ret
                ret[0] = latency
                ret[1] = True
                ret[2] = False
                ret[3] = covered
                ret[4] = late
                return ret
            return self._plain_hit

        # L1 miss: fetch the line through the shared L2 / DRAM.
        issue_time = now
        if config.perfect_prefetch:
            issue_time = now - config.perfect_prefetch_lead
        arrival, l2_hit = self._fetch_line(core_id, addr, issue_time,
                                           is_write=is_write,
                                           fetch_bytes=self.line_size,
                                           sectors=None)
        if l1.fill_fast(addr, now, arrival, False, is_write):
            self._handle_l1_eviction(core_id, l1, now)
        latency = hit_latency + max(0.0, arrival - now)
        if self._notify_enabled[core_id]:
            self._notify_prefetcher(core_id, pc, addr, size, is_write,
                                    hit=False, now=now)
        ret = self._ret
        ret[0] = latency
        ret[1] = False
        ret[2] = l2_hit
        ret[3] = False
        ret[4] = 0.0
        return ret

    # ------------------------------------------------------------------
    # Extended (explicit-hierarchy) demand path
    # ------------------------------------------------------------------
    def _access_extended(self, core_id: int, pc: int, addr: int, size: int,
                         is_write: bool, now: float):
        """Demand access through an explicit hierarchy chain.

        Walks the private levels inside-out, then fetches through the
        shared last level (directory + NoC + DRAM, the same path the
        classic shape uses).  Every attached prefetcher observes the
        access stream reaching its level — an attachment at level *i* sees
        the accesses that missed levels 0..i-1 (all of them at the L1) —
        and its prefetches install at its level.  Attachments are
        notified inner levels first; shared-level attachments observe
        slice-local fetches inside :meth:`_fetch_line`.
        """
        config = self.config
        attaches = self._attaches
        if config.ideal_memory:
            for attach in attaches:
                if attach.level_index != 0:
                    break
                if attach.notify_hits[core_id]:
                    self._notify_attach(attach, core_id, pc, addr, size,
                                        is_write, hit=True, now=now)
            return self._hit_latency, True, False, False, 0.0

        levels = self._private_caches
        latencies = self._private_latencies
        core_stats = self.stats.cores[core_id]
        n_private = len(levels)
        latency = 0.0
        hit = None
        hit_level = -1
        for index in range(n_private):
            latency += latencies[index]
            hit = levels[index][core_id].access_fast(addr, size, is_write,
                                                     now)
            if hit is not None:
                hit_level = index
                break
            if index == 1:
                core_stats.l2_misses += 1
            elif index == 2:
                core_stats.l3_misses += 1
            elif index > 2:
                core_stats.bump_level(index + 1, hit=False)

        if hit is not None:
            ready, covered = hit
            late = ready - now
            if late > 0.0:
                latency += late
            else:
                late = 0.0
            if hit_level == 1:
                core_stats.l2_hits += 1
            elif hit_level == 2:
                core_stats.l3_hits += 1
            elif hit_level > 2:
                core_stats.bump_level(hit_level + 1, hit=True)
            if covered:
                core_stats.prefetch_covered_misses += 1
                core_stats.prefetches_useful += 1
                core_stats.prefetch_late_cycles += int(late)
            arrival = now + latency
            # Pull the line into every inner level (inclusive fill).
            for index in range(hit_level - 1, -1, -1):
                if levels[index][core_id].fill_fast(addr, now, arrival,
                                                    False, is_write):
                    self._handle_private_eviction(core_id, index, now)
            for attach in attaches:
                level = attach.level_index
                if level > hit_level:
                    break     # sorted inner-first: nothing deeper saw it
                if not attach.notify_enabled[core_id]:
                    continue
                # A hit *at* the attachment level is a hit notification,
                # which miss-stream-only prefetchers skip; inner levels'
                # misses are miss notifications for deeper attachments.
                if level == hit_level and not attach.notify_hits[core_id]:
                    continue
                self._notify_attach(attach, core_id, pc, addr, size,
                                    is_write, hit=level == hit_level,
                                    now=now)
            return (latency, hit_level == 0, hit_level > 0, covered, late)

        # Missed every private level: fetch through the shared level.
        issue_time = now
        if config.perfect_prefetch:
            issue_time = now - config.perfect_prefetch_lead
        arrival, shared_hit = self._fetch_line(core_id, addr, issue_time,
                                               is_write=is_write,
                                               fetch_bytes=self.line_size,
                                               sectors=None,
                                               pc=pc, size=size, demand=True)
        for index in range(n_private - 1, -1, -1):
            if levels[index][core_id].fill_fast(addr, now, arrival,
                                                False, is_write):
                self._handle_private_eviction(core_id, index, now)
        latency += max(0.0, arrival - now)
        for attach in attaches:
            if attach.notify_enabled[core_id]:
                self._notify_attach(attach, core_id, pc, addr, size,
                                    is_write, hit=False, now=now)
        return latency, False, shared_hit, False, 0.0

    def _handle_private_eviction(self, core_id: int, level_index: int,
                                 now: float) -> None:
        """Eviction from one private level of an explicit hierarchy.

        The victim is described by the evicting cache's ``victim_*``
        scratch fields (captured into locals first: cascading write-backs
        below may evict again and overwrite deeper levels' scratch).

        Outermost private evictions leave the core's domain: the line is
        back-invalidated from every inner private level (the chain is
        inclusive, and the directory tracks the outermost level — an inner
        copy surviving the directory's ``evict`` would go stale), then the
        directory is told and dirty lines ride the NoC to their home slice
        of the shared level.  Inner evictions stay local: a dirty victim
        is written back into the next private level (which may cascade).
        """
        cache = self._private_caches[level_index][core_id]
        victim_addr = cache.victim_addr
        victim_dirty = cache.victim_dirty
        for attach in self._attaches:
            if (attach.level_index == level_index
                    and attach.has_on_eviction[core_id]):
                attach.prefetchers[core_id].on_eviction(
                    victim_addr, cache.victim_touched, now)
        if level_index == self._outermost_private:
            dirty = victim_dirty
            for inner in range(level_index):
                flags = self._private_caches[inner][core_id].invalidate_fast(
                    victim_addr)
                if flags is not None and flags & 1:   # FLAG_DIRTY
                    dirty = True
            home = self.home_tile(victim_addr)
            self.directories[home].evict(self.line_addr(victim_addr), core_id)
            if dirty:
                self.noc.send_fast(core_id, home, self.line_size, now)
                self.l2[home].fill_fast(victim_addr, now, now, False, True)
            return
        if victim_dirty:
            if self._private_caches[level_index + 1][core_id].fill_fast(
                    victim_addr, now, now, False, True):
                self._handle_private_eviction(core_id, level_index + 1, now)

    # ------------------------------------------------------------------
    # Prefetch path
    # ------------------------------------------------------------------
    def issue_prefetch(self, core_id: int, request: PrefetchRequest,
                       now: float) -> float:
        """Issue one prefetch for ``core_id``; return its completion time.

        The prefetch does not stall the core; its cost is the NoC/DRAM
        traffic it generates and the capacity it occupies at its target
        level (the L1 classically; the primary attachment level of an
        explicit hierarchy — per-attachment issue goes through
        :meth:`_issue_prefetch_level`).
        """
        if self.config.ideal_memory:
            return now
        if self._extended:
            return self._issue_prefetch_level(core_id, request, now,
                                              self._pf_level)
        cache = self.l1[core_id]
        addr = request.addr
        # Inlined cache way lookup (most prefetches find the line already
        # resident).
        if cache._tag_shift is not None:
            way = cache._index[(addr >> cache._line_shift)
                               & cache._set_mask].get(addr >> cache._tag_shift)
        else:
            way = cache._way_of(addr)
        size = request.size
        line_size = self.line_size
        fetch_bytes = size if size < line_size else line_size
        sectors = None
        if cache.sector_size:
            sectors = self._sector_mask_for_prefetch(cache, addr, fetch_bytes)
        if way is not None:
            if not cache.sector_size:
                return now  # already resident, nothing to do
            if (cache._sector_valid[way] & sectors) == sectors:
                return now
        core_stats = self.stats.cores[core_id]
        core_stats.prefetches_issued += 1
        if request.is_indirect:
            core_stats.indirect_prefetches_issued += 1
        else:
            core_stats.stream_prefetches_issued += 1
        noc_bytes = fetch_bytes if self.config.partial_noc else line_size
        dram_bytes = fetch_bytes if self.config.partial_dram else line_size
        arrival, _ = self._fetch_line(core_id, addr, now,
                                      is_write=request.exclusive,
                                      fetch_bytes=noc_bytes,
                                      dram_bytes=dram_bytes,
                                      sectors=sectors)
        if cache.fill_fast(addr, now, arrival, True, False, sectors):
            self._handle_l1_eviction(core_id, cache, now)
        return arrival

    def _issue_prefetch_level(self, core_id: int, request: PrefetchRequest,
                              now: float, pf_level: int) -> float:
        """Issue one prefetch targeting private level ``pf_level`` of an
        explicit hierarchy; return its completion time."""
        if self.config.ideal_memory:
            return now
        cache = self._private_caches[pf_level][core_id]
        addr = request.addr
        if cache._tag_shift is not None:
            way = cache._index[(addr >> cache._line_shift)
                               & cache._set_mask].get(addr >> cache._tag_shift)
        else:
            way = cache._way_of(addr)
        size = request.size
        line_size = self.line_size
        fetch_bytes = size if size < line_size else line_size
        sectors = None
        if cache.sector_size:
            sectors = self._sector_mask_for_prefetch(cache, addr, fetch_bytes)
        if way is not None:
            if not cache.sector_size:
                return now  # already resident, nothing to do
            if (cache._sector_valid[way] & sectors) == sectors:
                return now
        core_stats = self.stats.cores[core_id]
        core_stats.prefetches_issued += 1
        if request.is_indirect:
            core_stats.indirect_prefetches_issued += 1
        else:
            core_stats.stream_prefetches_issued += 1
        noc_bytes = fetch_bytes if self.config.partial_noc else line_size
        dram_bytes = fetch_bytes if self.config.partial_dram else line_size
        arrival, _ = self._fetch_line(core_id, addr, now,
                                      is_write=request.exclusive,
                                      fetch_bytes=noc_bytes,
                                      dram_bytes=dram_bytes,
                                      sectors=sectors)
        # Fill the target level and every private level outside it
        # (outermost first): the chain is inclusive, and a line resident
        # only in an inner level would break the directory bookkeeping,
        # which tracks the outermost private level.
        for level in range(self._outermost_private, pf_level - 1, -1):
            level_sectors = sectors if level == pf_level else None
            if self._private_caches[level][core_id].fill_fast(
                    addr, now, arrival, True, False, level_sectors):
                self._handle_private_eviction(core_id, level, now)
        return arrival

    def _sector_mask_for_prefetch(self, l1: Cache, addr: int,
                                  fetch_bytes: int) -> int:
        """Sectors fetched by a partial prefetch of ``fetch_bytes`` bytes."""
        if fetch_bytes >= self.line_size:
            return full_mask(l1.sectors_per_line)
        return l1.sector_mask(addr, fetch_bytes)

    # ------------------------------------------------------------------
    # Shared fetch path (L1 miss or prefetch): L2 + directory + DRAM
    # ------------------------------------------------------------------
    def _fetch_line(self, core_id: int, addr: int, issue_time: float, *,
                    is_write: bool, fetch_bytes: int,
                    dram_bytes: Optional[int] = None,
                    sectors: Optional[int],
                    pc: int = 0, size: int = 0,
                    demand: bool = False) -> tuple:
        """Fetch a line (or sectors of it) for a core; return
        ``(arrival_time, l2_hit)``.

        ``demand`` marks a demand fetch (not a prefetch): when the shared
        level carries per-slice prefetchers, demand fetches are what they
        observe (``pc``/``size`` feed their access context).  Slice
        prefetchers are notified after the demand's response is scheduled,
        so their requests never shorten the triggering fetch."""
        core_stats = self.stats.cores[core_id]
        # line_addr / home_tile, inlined for power-of-two geometries.
        if self._line_shift is not None:
            line = addr & self._line_mask
            line_no = addr >> self._line_shift
        else:
            line = self.line_addr(addr)
            line_no = addr // self.line_size
        if self._cores_pow2_mask is not None:
            home = line_no & self._cores_pow2_mask
        else:
            home = line_no % self.config.n_cores
        directory = self.directories[home]
        l2 = self.l2[home]
        if dram_bytes is None:
            dram_bytes = fetch_bytes
        noc_send = self.noc.send_fast

        # Request message: core tile -> home tile.
        time = noc_send(core_id, home, CONTROL_MESSAGE_BYTES, issue_time)

        # Directory consultation and coherence actions.
        if is_write:
            extra = directory.write(line, core_id, self.config.n_cores,
                                    self.line_size).extra_hops_messages
        else:
            extra = directory.read_fast(line, core_id, self.config.n_cores,
                                        self.line_size)
        if extra:
            coherence_done = time
            for src, dst, payload in extra:
                sent = noc_send(src, dst, payload, time)
                if sent > coherence_done:
                    coherence_done = sent
            if coherence_done > time:
                time = coherence_done

        # L2 slice lookup at the home tile.
        shared_attaches = self._shared_attaches
        if shared_attaches:
            # Same state transitions and counters as access_hit, plus the
            # first-touch flag that credits a slice prefetcher whose line
            # a fetch found resident.
            hit_state = l2.access_fast(addr,
                                       fetch_bytes if fetch_bytes > 1 else 1,
                                       is_write, time)
            l2_hit = hit_state is not None
            if l2_hit and hit_state[1]:
                self.stats.cores[home].prefetches_useful += 1
        else:
            l2_hit = l2.access_hit(addr,
                                   fetch_bytes if fetch_bytes > 1 else 1,
                                   is_write, time)
        time += self._l2_hit_latency
        lookup_done = time
        shared_pos = self._shared_pos
        if l2_hit:
            if shared_pos == 2:
                core_stats.l2_hits += 1
            elif shared_pos == 3:
                core_stats.l3_hits += 1
            else:
                core_stats.bump_level(shared_pos, hit=True)
        else:
            if shared_pos == 2:
                core_stats.l2_misses += 1
            elif shared_pos == 3:
                core_stats.l3_misses += 1
            else:
                core_stats.bump_level(shared_pos, hit=False)
            # Miss in the shared level: go to the memory controller and DRAM.
            mc_index, mc_tile = self.memory_controller(addr)
            time = noc_send(home, mc_tile, CONTROL_MESSAGE_BYTES, time)
            time = self.dram.access(mc_index, line, dram_bytes, time,
                                    is_write=False)
            time = noc_send(mc_tile, home, dram_bytes, time)
            l2_sectors = None
            if l2.sector_size:
                l2_sectors = (l2.sector_mask(addr, dram_bytes)
                              if dram_bytes < self.line_size
                              else full_mask(l2.sectors_per_line))
            if l2.fill_fast(addr, time, time, False, is_write, l2_sectors):
                self._handle_l2_eviction(home, l2, time)

        # Data response: home tile -> requesting core.
        time = noc_send(home, core_id, fetch_bytes, time)
        if demand and shared_attaches:
            # The slice's prefetchers observe the demand fetch that just
            # consulted it; their requests issue at the slice's lookup
            # time, after the demand's own reservations.
            self._notify_shared(home, pc, addr, size, is_write,
                                hit=l2_hit, now=lookup_done)
        return time, l2_hit

    # ------------------------------------------------------------------
    # Evictions and write-backs
    # ------------------------------------------------------------------
    def _handle_l1_eviction(self, core_id: int, cache, now: float) -> None:
        """Handle the victim described by ``cache``'s scratch fields (read
        into locals first — the write-back below fills the home L2 slice,
        whose own scratch this must not confuse with the L1 victim's)."""
        victim_addr = cache.victim_addr
        victim_dirty = cache.victim_dirty
        if self._has_on_eviction[core_id]:
            self.prefetchers[core_id].on_eviction(victim_addr,
                                                  cache.victim_touched, now)
        # home_tile / line_addr, inlined for power-of-two geometries (this
        # runs once per steady-state miss).
        if self._line_shift is not None:
            line = victim_addr & self._line_mask
            line_no = victim_addr >> self._line_shift
        else:
            line = self.line_addr(victim_addr)
            line_no = victim_addr // self.line_size
        if self._cores_pow2_mask is not None:
            home = line_no & self._cores_pow2_mask
        else:
            home = line_no % self.config.n_cores
        self.directories[home].evict(line, core_id)
        if victim_dirty:
            # Write the dirty line back to its home L2 slice.  (A dirty L2
            # victim of this fill is dropped, as before the flat-column
            # rewrite: the write-back path never charged nested L2
            # evictions.)
            self.noc.send_fast(core_id, home, self.line_size, now)
            self.l2[home].fill_fast(victim_addr, now, now, False, True)

    def _handle_l2_eviction(self, home: int, cache, now: float) -> None:
        for attach in self._shared_attaches:
            if attach.has_on_eviction[home]:
                attach.prefetchers[home].on_eviction(
                    cache.victim_addr, cache.victim_touched, now)
        if not cache.victim_dirty:
            return
        victim_addr = cache.victim_addr
        # memory_controller, inlined (no tuple built).
        if self._line_shift is not None:
            mc_index = (victim_addr >> self._line_shift) % self._num_mcs
        else:
            mc_index = (victim_addr // self.line_size) % self._num_mcs
        self.noc.send_fast(home, self._mc_tiles[mc_index], self.line_size,
                           now)
        self.dram.access(mc_index, victim_addr, self.line_size, now,
                         is_write=True)

    # ------------------------------------------------------------------
    # Prefetcher plumbing
    # ------------------------------------------------------------------
    def _notify_prefetcher(self, core_id: int, pc: int, addr: int, size: int,
                           is_write: bool, hit: bool, now: float) -> None:
        ctx = self._ctx
        ctx.core_id = core_id
        ctx.pc = pc
        ctx.addr = addr
        ctx.size = size
        ctx.is_write = is_write
        ctx.hit = hit
        ctx.now = now
        requests = self.prefetchers[core_id].on_access(ctx)
        if requests:
            self._issue_requests(core_id, requests, now)

    def _issue_requests(self, core_id: int, requests: List[PrefetchRequest],
                        now: float) -> None:
        """Issue the requests of the classic (or primary-attach) prefetcher
        — the compatibility surface core models bind to.  Per-attachment
        issue on the extended walk goes through
        :meth:`_issue_attach_requests`."""
        issue_prefetch = self.issue_prefetch
        if not self._has_on_fill[core_id]:
            # Inline the already-resident early-out of issue_prefetch for
            # the non-sectored target cache: a resident full-line request
            # completes at its issue time with no other effect, and most
            # generated requests are exactly that.
            cache = (self._private_caches[self._pf_level][core_id]
                     if self._extended else self.l1[core_id])
            index = cache._index if not cache.sector_size else None
            tag_shift = cache._tag_shift
            previous_completion = now
            for request in requests:
                issue_at = (previous_completion
                            if request.depends_on_previous else now)
                if index is not None and tag_shift is not None:
                    addr = request.addr
                    if index[(addr >> cache._line_shift)
                             & cache._set_mask].get(
                                 addr >> tag_shift) is not None:
                        previous_completion = issue_at
                        continue
                previous_completion = issue_prefetch(core_id, request,
                                                     issue_at)
            return
        prefetcher = self.prefetchers[core_id]
        previous_completion = now
        for request in requests:
            issue_at = previous_completion if request.depends_on_previous else now
            completion = issue_prefetch(core_id, request, issue_at)
            previous_completion = completion
            follow_on = prefetcher.on_fill(request.addr, completion)
            if follow_on:
                self._issue_requests(core_id, follow_on, completion)

    # ------------------------------------------------------------------
    # Per-attachment plumbing (extended hierarchies)
    # ------------------------------------------------------------------
    def _notify_attach(self, attach: _Attach, core_id: int, pc: int,
                       addr: int, size: int, is_write: bool, hit: bool,
                       now: float) -> None:
        ctx = self._ctx
        ctx.core_id = core_id
        ctx.pc = pc
        ctx.addr = addr
        ctx.size = size
        ctx.is_write = is_write
        ctx.hit = hit
        ctx.now = now
        requests = attach.prefetchers[core_id].on_access(ctx)
        if requests:
            self._issue_attach_requests(attach, core_id, requests, now)

    def _issue_attach_requests(self, attach: _Attach, core_id: int,
                               requests: List[PrefetchRequest],
                               now: float) -> None:
        """:meth:`_issue_requests`, targeted at one private attachment."""
        pf_level = attach.level_index
        self._issue_bank_requests(
            attach, core_id, self._private_caches[pf_level][core_id],
            lambda request, issue_at: self._issue_prefetch_level(
                core_id, request, issue_at, pf_level),
            requests, now)

    def _issue_bank_requests(self, attach: _Attach, owner: int, cache,
                             issue, requests: List[PrefetchRequest],
                             now: float) -> None:
        """Shared issue loop of the attach/slice banks: resident-skip
        early-out, ``depends_on_previous`` chaining, and ``on_fill``
        follow-on requests, against ``cache`` via ``issue(request,
        issue_at) -> completion``.  (The classic single-prefetcher path
        keeps its own inlined copy in :meth:`_issue_requests` — it is the
        hot one.)"""
        if not attach.has_on_fill[owner]:
            index = cache._index if not cache.sector_size else None
            tag_shift = cache._tag_shift
            previous_completion = now
            for request in requests:
                issue_at = (previous_completion
                            if request.depends_on_previous else now)
                if index is not None and tag_shift is not None:
                    addr = request.addr
                    if index[(addr >> cache._line_shift)
                             & cache._set_mask].get(
                                 addr >> tag_shift) is not None:
                        previous_completion = issue_at
                        continue
                previous_completion = issue(request, issue_at)
            return
        prefetcher = attach.prefetchers[owner]
        previous_completion = now
        for request in requests:
            issue_at = (previous_completion
                        if request.depends_on_previous else now)
            completion = issue(request, issue_at)
            previous_completion = completion
            follow_on = prefetcher.on_fill(request.addr, completion)
            if follow_on:
                self._issue_bank_requests(attach, owner, cache, issue,
                                          follow_on, completion)

    # ------------------------------------------------------------------
    # Shared-level (per-slice) prefetcher plumbing
    # ------------------------------------------------------------------
    def _notify_shared(self, home: int, pc: int, addr: int, size: int,
                       is_write: bool, hit: bool, now: float) -> None:
        """Notify the home slice's prefetchers of a demand fetch."""
        ctx = self._ctx
        for attach in self._shared_attaches:
            if not attach.notify_enabled[home]:
                continue
            if hit and not attach.notify_hits[home]:
                continue
            ctx.core_id = home
            ctx.pc = pc
            ctx.addr = addr
            ctx.size = size
            ctx.is_write = is_write
            ctx.hit = hit
            ctx.now = now
            requests = attach.prefetchers[home].on_access(ctx)
            if requests:
                self._issue_shared_requests(attach, home, requests, now)

    def _issue_shared_requests(self, attach: _Attach, home: int,
                               requests: List[PrefetchRequest],
                               now: float) -> None:
        self._issue_bank_requests(
            attach, home, self.l2[home],
            lambda request, issue_at: self._issue_shared_prefetch(
                home, request, issue_at),
            requests, now)

    def _issue_shared_prefetch(self, home: int, request: PrefetchRequest,
                               now: float) -> float:
        """Issue one slice-local prefetch: fetch from DRAM into the home
        slice of the shared level.  The slice is the line's coherence home,
        so no directory interaction is needed (private copies are
        unaffected); the cost is MC/DRAM traffic and slice capacity.
        Issue/usefulness statistics account to the slice's tile."""
        if self.config.ideal_memory:
            return now
        l2 = self.l2[home]
        addr = request.addr
        if l2._tag_shift is not None:
            way = l2._index[(addr >> l2._line_shift)
                            & l2._set_mask].get(addr >> l2._tag_shift)
        else:
            way = l2._way_of(addr)
        size = request.size
        line_size = self.line_size
        fetch_bytes = size if size < line_size else line_size
        sectors = None
        if l2.sector_size:
            sectors = self._sector_mask_for_prefetch(l2, addr, fetch_bytes)
        if way is not None:
            if not l2.sector_size:
                return now  # already resident in the slice
            if (l2._sector_valid[way] & sectors) == sectors:
                return now
        slice_stats = self.stats.cores[home]
        slice_stats.prefetches_issued += 1
        if request.is_indirect:
            slice_stats.indirect_prefetches_issued += 1
        else:
            slice_stats.stream_prefetches_issued += 1
        noc_bytes = fetch_bytes if self.config.partial_noc else line_size
        dram_bytes = fetch_bytes if self.config.partial_dram else line_size
        if self._line_shift is not None:
            line = addr & self._line_mask
            mc_index = (addr >> self._line_shift) % self._num_mcs
        else:
            line = self.line_addr(addr)
            mc_index = (addr // self.line_size) % self._num_mcs
        mc_tile = self._mc_tiles[mc_index]
        noc_send = self.noc.send_fast
        time = noc_send(home, mc_tile, CONTROL_MESSAGE_BYTES, now)
        time = self.dram.access(mc_index, line, dram_bytes, time,
                                is_write=False)
        time = noc_send(mc_tile, home, noc_bytes, time)
        if l2.fill_fast(addr, now, time, True, False, sectors):
            self._handle_l2_eviction(home, l2, time)
        return time

    def software_prefetch(self, core_id: int, addr: int, now: float) -> float:
        """Issue a software prefetch (non-binding, full line)."""
        self.stats.cores[core_id].sw_prefetches_issued += 1
        request = PrefetchRequest(addr=addr, size=self.line_size)
        return self.issue_prefetch(core_id, request, now)
