"""The full memory system: per-core L1s, distributed shared L2, directory
coherence, mesh NoC and DRAM, plus per-L1 prefetchers.

This is the component the cores talk to.  For every demand reference it
returns the access latency, performing along the way all the side effects a
real hierarchy would have: cache fills and evictions, directory updates,
NoC messages (with contention) and DRAM requests (with bandwidth limits).
Prefetch requests walk the same path but do not stall the core.

Idealised configurations of Section 5.4 are supported directly:

* ``ideal_memory`` — every access costs one L1 hit and moves no traffic,
* ``perfect_prefetch`` — every miss behaves as if a magic prefetcher issued
  the fill ``perfect_prefetch_lead`` cycles earlier; latency is hidden unless
  the NoC/DRAM are so congested that even that lead time is not enough,
  which is exactly what makes *PerfPref* fall behind *Ideal* at high core
  counts in the paper (Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.mem_image import MemoryImage
from repro.memory.cache import Cache, full_mask
from repro.memory.coherence import Directory
from repro.memory.dram import make_dram
from repro.noc.mesh import MeshNoC, Message
from repro.prefetchers.base import AccessContext, PrefetcherBase, PrefetchRequest
from repro.sim.config import SystemConfig
from repro.sim.stats import CoreStats, SystemStats, TrafficStats
from repro.sim.trace import MemRef


#: Size in bytes of a coherence/request header message on the NoC.
CONTROL_MESSAGE_BYTES = 8


@dataclass
class AccessOutcome:
    """What happened for one demand access."""

    latency: float
    l1_hit: bool
    l2_hit: bool = False
    covered_by_prefetch: bool = False
    late_prefetch_cycles: float = 0.0


PrefetcherFactory = Callable[[int], PrefetcherBase]


class MemorySystem:
    """Cache hierarchy + interconnect + DRAM for the whole chip."""

    def __init__(self, config: SystemConfig, mem_image: Optional[MemoryImage] = None,
                 prefetcher_factory: Optional[PrefetcherFactory] = None,
                 stats: Optional[SystemStats] = None) -> None:
        self.config = config
        self.mem_image = mem_image or MemoryImage()
        n = config.n_cores
        self.stats = stats or SystemStats(
            cores=[CoreStats(core_id=i) for i in range(n)])
        if len(self.stats.cores) != n:
            raise ValueError("stats must have one CoreStats per core")
        self.traffic: TrafficStats = self.stats.traffic
        self.noc = MeshNoC(n, config.noc, traffic=self.traffic)
        self.dram = make_dram(config.dram, config.num_memory_controllers,
                              traffic=self.traffic)
        self._mc_tiles = config.memory_controller_tiles()
        l1_cfg = config.l1d_effective
        l2_cfg = config.l2_slice
        self.l1 = [Cache(l1_cfg) for _ in range(n)]
        self.l2 = [Cache(l2_cfg) for _ in range(n)]
        self.directories = [Directory(tile, config.ackwise_pointers, self.traffic)
                            for tile in range(n)]
        factory = prefetcher_factory or (lambda core_id: PrefetcherBase())
        self.prefetchers: List[PrefetcherBase] = [factory(i) for i in range(n)]
        self.line_size = l1_cfg.line_size

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------
    def line_addr(self, addr: int) -> int:
        return addr - (addr % self.line_size)

    def home_tile(self, addr: int) -> int:
        """L2 slice (and directory) holding this line: line interleaving."""
        return (addr // self.line_size) % self.config.n_cores

    def memory_controller(self, addr: int) -> tuple:
        """Return ``(controller_index, controller_tile)`` for an address."""
        index = (addr // self.line_size) % len(self._mc_tiles)
        return index, self._mc_tiles[index]

    # ------------------------------------------------------------------
    # Demand access path
    # ------------------------------------------------------------------
    def access(self, core_id: int, ref: MemRef, now: float) -> AccessOutcome:
        """Perform one demand load/store for ``core_id`` at time ``now``."""
        core_stats = self.stats.cores[core_id]
        if self.config.ideal_memory:
            latency = self.config.l1d.hit_latency
            outcome = AccessOutcome(latency=latency, l1_hit=True)
            self._notify_prefetcher(core_id, ref, hit=True, now=now)
            return outcome

        l1 = self.l1[core_id]
        result = l1.access(ref.addr, ref.size, ref.is_write, now)
        hit_latency = self.config.l1d.hit_latency

        if result.hit:
            late = max(0.0, result.ready_time - now)
            latency = hit_latency + late
            outcome = AccessOutcome(latency=latency, l1_hit=True,
                                    covered_by_prefetch=result.was_prefetched,
                                    late_prefetch_cycles=late)
            if result.was_prefetched:
                core_stats.prefetch_covered_misses += 1
                core_stats.prefetches_useful += 1
                core_stats.prefetch_late_cycles += int(late)
            self._notify_prefetcher(core_id, ref, hit=True, now=now)
            return outcome

        # L1 miss: fetch the line through the shared L2 / DRAM.
        issue_time = now
        if self.config.perfect_prefetch:
            issue_time = now - self.config.perfect_prefetch_lead
        arrival, l2_hit = self._fetch_line(core_id, ref.addr, issue_time,
                                           is_write=ref.is_write,
                                           fetch_bytes=self.line_size,
                                           sectors=None)
        fill = l1.fill(ref.addr, now, arrival, is_prefetch=False,
                       is_write=ref.is_write)
        self._handle_l1_eviction(core_id, fill.evicted, now)
        latency = hit_latency + max(0.0, arrival - now)
        outcome = AccessOutcome(latency=latency, l1_hit=False, l2_hit=l2_hit)
        self._notify_prefetcher(core_id, ref, hit=False, now=now)
        return outcome

    # ------------------------------------------------------------------
    # Prefetch path
    # ------------------------------------------------------------------
    def issue_prefetch(self, core_id: int, request: PrefetchRequest,
                       now: float) -> float:
        """Issue one prefetch for ``core_id``; return its completion time.

        The prefetch does not stall the core; its cost is the NoC/DRAM
        traffic it generates and the L1 capacity it occupies.
        """
        core_stats = self.stats.cores[core_id]
        if self.config.ideal_memory:
            return now
        l1 = self.l1[core_id]
        line = l1.probe(request.addr)
        fetch_bytes = min(request.size, self.line_size)
        sectors = None
        if l1.sector_size:
            sectors = self._sector_mask_for_prefetch(l1, request.addr, fetch_bytes)
        if line is not None:
            if not l1.sector_size:
                return now  # already resident, nothing to do
            if (line.sector_valid & sectors) == sectors:
                return now
        core_stats.prefetches_issued += 1
        if request.is_indirect:
            core_stats.indirect_prefetches_issued += 1
        else:
            core_stats.stream_prefetches_issued += 1
        noc_bytes = fetch_bytes if self.config.partial_noc else self.line_size
        dram_bytes = fetch_bytes if self.config.partial_dram else self.line_size
        arrival, _ = self._fetch_line(core_id, request.addr, now,
                                      is_write=request.exclusive,
                                      fetch_bytes=noc_bytes,
                                      dram_bytes=dram_bytes,
                                      sectors=sectors)
        fill = l1.fill(request.addr, now, arrival, is_prefetch=True,
                       sectors=sectors)
        self._handle_l1_eviction(core_id, fill.evicted, now)
        return arrival

    def _sector_mask_for_prefetch(self, l1: Cache, addr: int,
                                  fetch_bytes: int) -> int:
        """Sectors fetched by a partial prefetch of ``fetch_bytes`` bytes."""
        if fetch_bytes >= self.line_size:
            return full_mask(l1.sectors_per_line)
        return l1.sector_mask(addr, fetch_bytes)

    # ------------------------------------------------------------------
    # Shared fetch path (L1 miss or prefetch): L2 + directory + DRAM
    # ------------------------------------------------------------------
    def _fetch_line(self, core_id: int, addr: int, issue_time: float, *,
                    is_write: bool, fetch_bytes: int,
                    dram_bytes: Optional[int] = None,
                    sectors: Optional[int]) -> tuple:
        """Fetch a line (or sectors of it) for a core; return
        ``(arrival_time, l2_hit)``."""
        core_stats = self.stats.cores[core_id]
        line = self.line_addr(addr)
        home = self.home_tile(addr)
        directory = self.directories[home]
        l2 = self.l2[home]
        if dram_bytes is None:
            dram_bytes = fetch_bytes

        # Request message: core tile -> home tile.
        time = self.noc.send(Message(core_id, home, CONTROL_MESSAGE_BYTES),
                             issue_time)

        # Directory consultation and coherence actions.
        if is_write:
            action = directory.write(line, core_id, self.config.n_cores,
                                     self.line_size)
        else:
            action = directory.read(line, core_id, self.config.n_cores,
                                    self.line_size)
        coherence_done = time
        for src, dst, payload in action.extra_hops_messages:
            coherence_done = max(coherence_done,
                                 self.noc.send(Message(src, dst, payload), time))
        time = max(time, coherence_done)

        # L2 slice lookup at the home tile.
        l2_result = l2.access(addr, max(1, fetch_bytes), is_write, time)
        time += self.config.l2_slice.hit_latency
        l2_hit = l2_result.hit
        if l2_hit:
            core_stats.l2_hits += 1
        else:
            core_stats.l2_misses += 1
            # Miss in the shared L2: go to the memory controller and DRAM.
            mc_index, mc_tile = self.memory_controller(addr)
            time = self.noc.send(Message(home, mc_tile, CONTROL_MESSAGE_BYTES), time)
            time = self.dram.access(mc_index, line, dram_bytes, time,
                                    is_write=False)
            time = self.noc.send(Message(mc_tile, home, dram_bytes), time)
            l2_sectors = None
            if l2.sector_size:
                l2_sectors = (l2.sector_mask(addr, dram_bytes)
                              if dram_bytes < self.line_size
                              else full_mask(l2.sectors_per_line))
            l2_fill = l2.fill(addr, time, time, is_write=is_write,
                              sectors=l2_sectors)
            self._handle_l2_eviction(home, l2_fill.evicted, time)

        # Data response: home tile -> requesting core.
        time = self.noc.send(Message(home, core_id, fetch_bytes), time)
        return time, l2_hit

    # ------------------------------------------------------------------
    # Evictions and write-backs
    # ------------------------------------------------------------------
    def _handle_l1_eviction(self, core_id: int, victim, now: float) -> None:
        if victim is None:
            return
        self.prefetchers[core_id].on_eviction(victim.addr, victim.sector_touched, now)
        home = self.home_tile(victim.addr)
        self.directories[home].evict(self.line_addr(victim.addr), core_id)
        if victim.dirty:
            # Write the dirty line back to its home L2 slice.
            self.noc.send(Message(core_id, home, self.line_size), now)
            self.l2[home].fill(victim.addr, now, now, is_write=True)

    def _handle_l2_eviction(self, home: int, victim, now: float) -> None:
        if victim is None or not victim.dirty:
            return
        mc_index, mc_tile = self.memory_controller(victim.addr)
        self.noc.send(Message(home, mc_tile, self.line_size), now)
        self.dram.access(mc_index, victim.addr, self.line_size, now, is_write=True)

    # ------------------------------------------------------------------
    # Prefetcher plumbing
    # ------------------------------------------------------------------
    def _notify_prefetcher(self, core_id: int, ref: MemRef, hit: bool,
                           now: float) -> None:
        prefetcher = self.prefetchers[core_id]
        ctx = AccessContext(
            core_id=core_id, pc=ref.pc, addr=ref.addr, size=ref.size,
            is_write=ref.is_write, hit=hit, now=now,
            read_value=lambda addr=ref.addr: self.mem_image.read_value(addr))
        requests = prefetcher.on_access(ctx)
        self._issue_requests(core_id, requests, now)

    def _issue_requests(self, core_id: int, requests: List[PrefetchRequest],
                        now: float) -> None:
        previous_completion = now
        for request in requests:
            issue_at = previous_completion if request.depends_on_previous else now
            completion = self.issue_prefetch(core_id, request, issue_at)
            previous_completion = completion
            follow_on = self.prefetchers[core_id].on_fill(request.addr, completion)
            if follow_on:
                self._issue_requests(core_id, follow_on, completion)

    def software_prefetch(self, core_id: int, addr: int, now: float) -> float:
        """Issue a software prefetch (non-binding, full line)."""
        self.stats.cores[core_id].sw_prefetches_issued += 1
        request = PrefetchRequest(addr=addr, size=self.line_size)
        return self.issue_prefetch(core_id, request, now)
