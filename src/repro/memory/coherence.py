"""ACKwise-style limited-pointer directory coherence.

The paper's platform uses the ACKwise_k protocol (Kurian et al.): the
directory tracks up to ``k`` sharers exactly; once more than ``k`` cores
share a line it only keeps a count and must broadcast invalidations.  The
directory is co-located with the home L2 slice of each line.

For the trace-driven simulator the directory's job is to produce, for every
L2 access, the *extra* latency and NoC traffic caused by coherence actions
(owner write-backs on read misses to modified lines, invalidations on
writes), which is all the evaluated experiments depend on: the workloads are
read-dominated, but stores to shared output arrays still generate
invalidation traffic that loads the mesh.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.sim.stats import TrafficStats


class LineState(enum.Enum):
    """Directory-visible state of a cache line."""

    INVALID = "I"
    SHARED = "S"
    MODIFIED = "M"


@dataclass(slots=True)
class DirectoryEntry:
    """Directory state for one cache line."""

    state: LineState = LineState.INVALID
    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None
    sharer_count: int = 0          # used when the pointer set overflows
    overflowed: bool = False


@dataclass(slots=True)
class CoherenceAction:
    """What the directory asked the system to do for one request."""

    extra_hops_messages: List[tuple] = field(default_factory=list)
    #: each tuple is (src_tile, dst_tile, payload_bytes)
    invalidations: int = 0
    broadcast: bool = False
    writeback: bool = False


class Directory:
    """Limited-pointer (ACKwise_k) directory for one home tile."""

    __slots__ = ("home_tile", "max_pointers", "traffic", "_entries")

    def __init__(self, home_tile: int, max_pointers: int = 4,
                 traffic: TrafficStats = None) -> None:
        self.home_tile = home_tile
        self.max_pointers = max_pointers
        self.traffic = traffic if traffic is not None else TrafficStats()
        self._entries: Dict[int, DirectoryEntry] = {}

    def entry(self, line_addr: int) -> DirectoryEntry:
        """Return (creating if needed) the directory entry for a line."""
        entry = self._entries.get(line_addr)
        if entry is None:
            entry = DirectoryEntry()
            self._entries[line_addr] = entry
        return entry

    def lookup(self, line_addr: int) -> Optional[DirectoryEntry]:
        """Return the entry for a line if the directory is tracking it."""
        return self._entries.get(line_addr)

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def read_fast(self, line_addr: int, requester: int, n_cores: int,
                  line_size: int):
        """Hot-path :meth:`read`: returns the extra-hop message list, or
        ``None`` when the read required no coherence traffic (the common
        case — no :class:`CoherenceAction` is allocated for it)."""
        entry = self._entries.get(line_addr)
        if entry is None:
            entry = DirectoryEntry()
            self._entries[line_addr] = entry
        elif (entry.state is LineState.MODIFIED and entry.owner is not None
                and entry.owner != requester):
            return self.read(line_addr, requester, n_cores,
                             line_size).extra_hops_messages
        entry.state = LineState.SHARED
        self._add_sharer(entry, requester)
        return None

    def read(self, line_addr: int, requester: int, n_cores: int,
             line_size: int) -> CoherenceAction:
        """Handle a read miss arriving at the home tile."""
        entry = self.entry(line_addr)
        action = CoherenceAction()
        if entry.state is LineState.MODIFIED and entry.owner is not None \
                and entry.owner != requester:
            # Fetch the dirty copy from the current owner: home -> owner
            # (control) and owner -> home (data write-back).
            action.extra_hops_messages.append((self.home_tile, entry.owner, 8))
            action.extra_hops_messages.append((entry.owner, self.home_tile, line_size))
            action.writeback = True
            entry.sharers = {entry.owner}
            entry.owner = None
        entry.state = LineState.SHARED
        self._add_sharer(entry, requester)
        return action

    def write(self, line_addr: int, requester: int, n_cores: int,
              line_size: int) -> CoherenceAction:
        """Handle a write (miss or upgrade) arriving at the home tile."""
        entry = self.entry(line_addr)
        action = CoherenceAction()
        if entry.state is LineState.MODIFIED and entry.owner is not None \
                and entry.owner != requester:
            action.extra_hops_messages.append((self.home_tile, entry.owner, 8))
            action.extra_hops_messages.append((entry.owner, self.home_tile, line_size))
            action.writeback = True
        elif entry.state is LineState.SHARED:
            targets = self._invalidation_targets(entry, requester, n_cores)
            action.invalidations = len(targets)
            action.broadcast = entry.overflowed
            for target in targets:
                # Invalidation plus acknowledgement.
                action.extra_hops_messages.append((self.home_tile, target, 8))
                action.extra_hops_messages.append((target, self.home_tile, 8))
            self.traffic.invalidations += len(targets)
            if entry.overflowed:
                self.traffic.broadcasts += 1
        entry.state = LineState.MODIFIED
        entry.owner = requester
        entry.sharers = {requester}
        entry.sharer_count = 1
        entry.overflowed = False
        return action

    def evict(self, line_addr: int, core: int) -> None:
        """A private cache silently dropped its copy of a line."""
        entry = self._entries.get(line_addr)
        if entry is None:
            return
        entry.sharers.discard(core)
        if entry.owner == core:
            entry.owner = None
            entry.state = LineState.SHARED if entry.sharers else LineState.INVALID
        if not entry.sharers and not entry.overflowed:
            entry.sharer_count = 0
            if entry.state is not LineState.MODIFIED:
                entry.state = LineState.INVALID

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _add_sharer(self, entry: DirectoryEntry, core: int) -> None:
        if entry.overflowed:
            entry.sharer_count += 1
            return
        entry.sharers.add(core)
        entry.sharer_count = len(entry.sharers)
        if len(entry.sharers) > self.max_pointers:
            # ACKwise: stop tracking exact sharers, keep only the count.
            entry.overflowed = True

    def _invalidation_targets(self, entry: DirectoryEntry, requester: int,
                              n_cores: int) -> List[int]:
        if entry.overflowed:
            # Broadcast invalidation to every core but the requester.
            return [core for core in range(n_cores) if core != requester]
        return [core for core in entry.sharers if core != requester]

    def tracked_lines(self) -> int:
        """Number of lines with a directory entry (for tests)."""
        return len(self._entries)
