"""ACKwise-style limited-pointer directory coherence.

The paper's platform uses the ACKwise_k protocol (Kurian et al.): the
directory tracks up to ``k`` sharers exactly; once more than ``k`` cores
share a line it only keeps a count and must broadcast invalidations.  The
directory is co-located with the home L2 slice of each line.

For the trace-driven simulator the directory's job is to produce, for every
L2 access, the *extra* latency and NoC traffic caused by coherence actions
(owner write-backs on read misses to modified lines, invalidations on
writes), which is all the evaluated experiments depend on: the workloads are
read-dominated, but stores to shared output arrays still generate
invalidation traffic that loads the mesh.

Steady-state storage is flat: each tracked line maps to a five-slot list
``[state, owner, sharer_bitmap, sharer_count, overflowed]`` where the
sharer set is a packed int bitmap (bit ``i`` set means core ``i`` holds the
line) and ``owner`` is ``-1`` when there is none.  The hot path
(:meth:`Directory.read_fast` / :meth:`Directory.evict`) works on these
integers directly and allocates nothing after a line's first touch;
:class:`DirectoryEntry` objects (enum state + sharer ``set``) survive only
as snapshots materialised by :meth:`Directory.lookup` / :meth:`Directory.
entry` for tests and external callers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.sim.stats import TrafficStats

# Flat-entry slots (see module docstring).
_STATE = 0
_OWNER = 1
_SHARERS = 2
_COUNT = 3
_OVERFLOWED = 4

# Integer line states of the flat representation.
_INVALID = 0
_SHARED = 1
_MODIFIED = 2


class LineState(enum.Enum):
    """Directory-visible state of a cache line."""

    INVALID = "I"
    SHARED = "S"
    MODIFIED = "M"


_STATE_BY_CODE = (LineState.INVALID, LineState.SHARED, LineState.MODIFIED)


@dataclass(slots=True)
class DirectoryEntry:
    """Snapshot of the directory state for one cache line (API boundary
    only; the steady state lives in the packed flat entries)."""

    state: LineState = LineState.INVALID
    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None
    sharer_count: int = 0          # used when the pointer set overflows
    overflowed: bool = False


@dataclass(slots=True)
class CoherenceAction:
    """What the directory asked the system to do for one request."""

    extra_hops_messages: List[tuple] = field(default_factory=list)
    #: each tuple is (src_tile, dst_tile, payload_bytes)
    invalidations: int = 0
    broadcast: bool = False
    writeback: bool = False


def _sharer_set(bitmap: int) -> Set[int]:
    """Expand a sharer bitmap into the equivalent set of core ids."""
    sharers: Set[int] = set()
    while bitmap:
        low = bitmap & -bitmap
        sharers.add(low.bit_length() - 1)
        bitmap ^= low
    return sharers


class Directory:
    """Limited-pointer (ACKwise_k) directory for one home tile."""

    __slots__ = ("home_tile", "max_pointers", "traffic", "_entries")

    def __init__(self, home_tile: int, max_pointers: int = 4,
                 traffic: TrafficStats = None) -> None:
        self.home_tile = home_tile
        self.max_pointers = max_pointers
        self.traffic = traffic if traffic is not None else TrafficStats()
        # line_addr -> [state, owner, sharer_bitmap, count, overflowed]
        self._entries: Dict[int, list] = {}

    def _raw_entry(self, line_addr: int) -> list:
        """Return (creating if needed) the flat entry for a line."""
        entry = self._entries.get(line_addr)
        if entry is None:
            entry = [_INVALID, -1, 0, 0, 0]
            self._entries[line_addr] = entry
        return entry

    def entry(self, line_addr: int) -> DirectoryEntry:
        """Snapshot of the entry for a line, creating the line if needed."""
        return self._view(self._raw_entry(line_addr))

    def lookup(self, line_addr: int) -> Optional[DirectoryEntry]:
        """Snapshot of the entry for a line the directory is tracking."""
        entry = self._entries.get(line_addr)
        return None if entry is None else self._view(entry)

    @staticmethod
    def _view(entry: list) -> DirectoryEntry:
        owner = entry[_OWNER]
        return DirectoryEntry(state=_STATE_BY_CODE[entry[_STATE]],
                              sharers=_sharer_set(entry[_SHARERS]),
                              owner=None if owner < 0 else owner,
                              sharer_count=entry[_COUNT],
                              overflowed=bool(entry[_OVERFLOWED]))

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def read_fast(self, line_addr: int, requester: int, n_cores: int,
                  line_size: int):
        """Hot-path :meth:`read`: returns the extra-hop message list, or
        ``None`` when the read required no coherence traffic (the common
        case — no :class:`CoherenceAction` is allocated for it)."""
        entry = self._entries.get(line_addr)
        if entry is None:
            # First touch: shared, one sharer, no traffic.
            self._entries[line_addr] = [_SHARED, -1, 1 << requester, 1, 0]
            return None
        owner = entry[_OWNER]
        if entry[_STATE] == _MODIFIED and owner >= 0 and owner != requester:
            return self.read(line_addr, requester, n_cores,
                             line_size).extra_hops_messages
        entry[_STATE] = _SHARED
        self._add_sharer(entry, requester)
        return None

    def read(self, line_addr: int, requester: int, n_cores: int,
             line_size: int) -> CoherenceAction:
        """Handle a read miss arriving at the home tile."""
        entry = self._raw_entry(line_addr)
        action = CoherenceAction()
        owner = entry[_OWNER]
        if entry[_STATE] == _MODIFIED and owner >= 0 and owner != requester:
            # Fetch the dirty copy from the current owner: home -> owner
            # (control) and owner -> home (data write-back).
            action.extra_hops_messages.append((self.home_tile, owner, 8))
            action.extra_hops_messages.append((owner, self.home_tile, line_size))
            action.writeback = True
            entry[_SHARERS] = 1 << owner
            entry[_OWNER] = -1
        entry[_STATE] = _SHARED
        self._add_sharer(entry, requester)
        return action

    def write(self, line_addr: int, requester: int, n_cores: int,
              line_size: int) -> CoherenceAction:
        """Handle a write (miss or upgrade) arriving at the home tile."""
        entry = self._raw_entry(line_addr)
        action = CoherenceAction()
        state = entry[_STATE]
        owner = entry[_OWNER]
        if state == _MODIFIED and owner >= 0 and owner != requester:
            action.extra_hops_messages.append((self.home_tile, owner, 8))
            action.extra_hops_messages.append((owner, self.home_tile, line_size))
            action.writeback = True
        elif state == _SHARED:
            home = self.home_tile
            messages = action.extra_hops_messages
            invalidations = 0
            if entry[_OVERFLOWED]:
                # ACKwise broadcast: every core but the requester.
                action.broadcast = True
                for target in range(n_cores):
                    if target != requester:
                        # Invalidation plus acknowledgement.
                        messages.append((home, target, 8))
                        messages.append((target, home, 8))
                        invalidations += 1
                self.traffic.broadcasts += 1
            else:
                bitmap = entry[_SHARERS] & ~(1 << requester)
                while bitmap:
                    low = bitmap & -bitmap
                    target = low.bit_length() - 1
                    messages.append((home, target, 8))
                    messages.append((target, home, 8))
                    invalidations += 1
                    bitmap ^= low
            action.invalidations = invalidations
            self.traffic.invalidations += invalidations
        entry[_STATE] = _MODIFIED
        entry[_OWNER] = requester
        entry[_SHARERS] = 1 << requester
        entry[_COUNT] = 1
        entry[_OVERFLOWED] = 0
        return action

    def evict(self, line_addr: int, core: int) -> None:
        """A private cache silently dropped its copy of a line."""
        entry = self._entries.get(line_addr)
        if entry is None:
            return
        bitmap = entry[_SHARERS]
        bit = 1 << core
        if bitmap & bit:
            bitmap ^= bit
            entry[_SHARERS] = bitmap
        if entry[_OWNER] == core:
            entry[_OWNER] = -1
            entry[_STATE] = _SHARED if bitmap else _INVALID
        if not bitmap and not entry[_OVERFLOWED]:
            entry[_COUNT] = 0
            if entry[_STATE] != _MODIFIED:
                entry[_STATE] = _INVALID

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _add_sharer(self, entry: list, core: int) -> None:
        if entry[_OVERFLOWED]:
            entry[_COUNT] += 1
            return
        bitmap = entry[_SHARERS] | (1 << core)
        entry[_SHARERS] = bitmap
        count = bitmap.bit_count()
        entry[_COUNT] = count
        if count > self.max_pointers:
            # ACKwise: stop tracking exact sharers, keep only the count.
            entry[_OVERFLOWED] = 1

    def tracked_lines(self) -> int:
        """Number of lines with a directory entry (for tests)."""
        return len(self._entries)
