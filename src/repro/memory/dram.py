"""DRAM models.

Two models are provided, mirroring Table 1 of the paper:

* :class:`SimpleDram` — fixed access latency (100 ns) plus a per-memory-
  controller bandwidth limit (10 GB/s).  The paper uses this model for the
  partial-cacheline experiments and reports it is within 5% of DRAMSim.
* :class:`BankedDram` — a DDR3-10-10-10-24-style model with per-bank row
  buffers (8 banks per rank, one rank per controller), standing in for
  DRAMSim in the non-partial experiments.

Both models account traffic in bytes so Figure 12 can be reproduced, and
both respect the 32-byte minimum access granularity of Section 4.1.
"""

from __future__ import annotations

from typing import List

from repro.registry import DRAM_MODELS
from repro.sim.config import DramConfig
from repro.sim.queueing import ResourceSchedule
from repro.sim.stats import TrafficStats


class DramModel:
    """Interface shared by the DRAM models."""

    __slots__ = ("config", "n_controllers", "traffic")

    def __init__(self, config: DramConfig, n_controllers: int,
                 traffic: TrafficStats = None) -> None:
        self.config = config
        self.n_controllers = n_controllers
        self.traffic = traffic if traffic is not None else TrafficStats()

    def effective_bytes(self, requested_bytes: int) -> int:
        """Round a request up to the DRAM access granularity."""
        granule = self.config.access_granularity
        if requested_bytes <= 0:
            return granule
        return ((requested_bytes + granule - 1) // granule) * granule

    def access(self, controller: int, addr: int, nbytes: int, now: float,
               is_write: bool = False) -> float:
        """Issue a request; return its completion time."""
        raise NotImplementedError

    def reset_contention(self) -> None:
        """Clear queueing state between independent runs."""
        raise NotImplementedError


class SimpleDram(DramModel):
    """Fixed latency + per-controller bandwidth limit."""

    __slots__ = ("_channels",)

    def __init__(self, config: DramConfig, n_controllers: int,
                 traffic: TrafficStats = None) -> None:
        super().__init__(config, n_controllers, traffic)
        self._channels: List[ResourceSchedule] = [
            ResourceSchedule() for _ in range(n_controllers)]

    def access(self, controller: int, addr: int, nbytes: int, now: float,
               is_write: bool = False) -> float:
        if controller < 0 or controller >= self.n_controllers:
            raise ValueError(f"controller {controller} out of range")
        # effective_bytes, inlined (hot path).
        granule = self.config.access_granularity
        if nbytes <= 0:
            nbytes = granule
        else:
            nbytes = ((nbytes + granule - 1) // granule) * granule
        service = nbytes / self.config.bandwidth_bytes_per_cycle
        # ResourceSchedule.reserve with its append-at-end fast path inlined
        # (mostly time-ordered traffic keeps the channel list tail-only).
        channel = self._channels[controller]
        ends = channel._ends
        if ends and now >= ends[-1] and ends[0] >= now - 8192.0:
            channel.total_busy += service
            if now > ends[-1]:
                channel._starts.append(now)
                ends.append(now + service)
            else:
                ends[-1] = now + service
            start = now
        else:
            start = channel.reserve(now, service)
        traffic = self.traffic
        traffic.dram_bytes += nbytes
        traffic.dram_requests += 1
        return start + self.config.latency_cycles + service

    def channel_utilization(self, now: float) -> float:
        """Utilisation of the busiest controller up to ``now``."""
        if now <= 0:
            return 0.0
        return max(channel.busy_time() for channel in self._channels) / now

    def reset_contention(self) -> None:
        for channel in self._channels:
            channel.reset()


class BankedDram(DramModel):
    """DDR3-style model with per-bank row buffers.

    A row hit costs tCAS; a row miss costs tRP + tRCD + tCAS (precharge the
    open row, activate the new one, then read).  Data transfer time is the
    burst length over the channel bandwidth.  Requests to the same bank
    serialize; requests to different banks of the same controller overlap but
    share the data bus.

    Bank state lives in flat parallel lists indexed by
    ``controller * banks_per_rank + bank`` (an open-row column and a
    schedule column) rather than per-bank objects, so the per-request walk
    touches two list slots and allocates nothing.
    """

    __slots__ = ("_open_rows", "_bank_schedules", "_buses")

    def __init__(self, config: DramConfig, n_controllers: int,
                 traffic: TrafficStats = None) -> None:
        super().__init__(config, n_controllers, traffic)
        slots = n_controllers * config.banks_per_rank
        self._open_rows: List[int] = [-1] * slots
        self._bank_schedules: List[ResourceSchedule] = [
            ResourceSchedule() for _ in range(slots)]
        self._buses: List[ResourceSchedule] = [
            ResourceSchedule() for _ in range(n_controllers)]

    def _bank_and_row(self, addr: int) -> tuple:
        row_size = self.config.row_size
        row = addr // row_size
        bank = row % self.config.banks_per_rank
        return bank, row

    def access(self, controller: int, addr: int, nbytes: int, now: float,
               is_write: bool = False) -> float:
        if controller < 0 or controller >= self.n_controllers:
            raise ValueError(f"controller {controller} out of range")
        cfg = self.config
        nbytes = self.effective_bytes(nbytes)
        # _bank_and_row, inlined (hot path — no tuple built).
        banks_per_rank = cfg.banks_per_rank
        row = addr // cfg.row_size
        slot = controller * banks_per_rank + row % banks_per_rank
        if self._open_rows[slot] == row:
            access_latency = cfg.t_cas
        else:
            access_latency = cfg.t_rp + cfg.t_rcd + cfg.t_cas
            self._open_rows[slot] = row
        transfer = nbytes / cfg.bandwidth_bytes_per_cycle
        # The bank is occupied for the activate/read, then the shared data
        # bus of this controller carries the burst.
        start = self._bank_schedules[slot].reserve(now,
                                                   access_latency + transfer)
        bus_start = self._buses[controller].reserve(start + access_latency,
                                                    transfer)
        done = bus_start + transfer
        self.traffic.dram_bytes += nbytes
        self.traffic.dram_requests += 1
        return done

    def channel_utilization(self, now: float) -> float:
        """Utilisation of the busiest data bus up to ``now``."""
        if now <= 0:
            return 0.0
        return max(bus.busy_time() for bus in self._buses) / now

    def reset_contention(self) -> None:
        for slot in range(len(self._open_rows)):
            self._open_rows[slot] = -1
            self._bank_schedules[slot].reset()
        for bus in self._buses:
            bus.reset()


DRAM_MODELS.register(
    "simple", SimpleDram,
    description="fixed 100 ns latency + 10 GB/s per-controller bandwidth "
                "(within 5% of DRAMSim per the paper)",
    config_cls=DramConfig)

DRAM_MODELS.register(
    "banked", BankedDram,
    description="DDR3-10-10-10-24-style model with per-bank row buffers",
    config_cls=DramConfig)


def make_dram(config: DramConfig, n_controllers: int,
              traffic: TrafficStats = None) -> DramModel:
    """Instantiate the DRAM model selected by ``config.model``.

    Unknown model names are normally rejected earlier, when the
    :class:`~repro.sim.config.DramConfig` is constructed; the registry
    lookup here raises the same name-listing error for config objects
    built without ``__init__`` (e.g. mutated via ``object.__setattr__``
    or unpickled from a stale cache).
    """
    return DRAM_MODELS.get(config.model).factory(config, n_controllers,
                                                 traffic)
