"""Memory hierarchy substrate: caches, coherence directory, DRAM."""

from repro.memory.cache import Cache, CacheLine, AccessResult
from repro.memory.coherence import Directory, DirectoryEntry
from repro.memory.dram import SimpleDram, BankedDram, make_dram

__all__ = [
    "AccessResult",
    "BankedDram",
    "Cache",
    "CacheLine",
    "Directory",
    "DirectoryEntry",
    "SimpleDram",
    "make_dram",
]
