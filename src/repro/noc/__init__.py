"""2-D mesh network-on-chip with XY routing.

Geometry and route caching live in :mod:`repro.noc.mesh`; the per-link
reservation hot loop lives behind the swappable kernel boundary of
:mod:`repro.noc.kernel` (registry :data:`repro.registry.NOC_KERNELS`).
"""

from repro.noc.kernel import NOC_KERNELS, FusedKernel, ReferenceKernel
from repro.noc.mesh import MeshNoC, Message, resolve_kernel_name

__all__ = ["FusedKernel", "MeshNoC", "Message", "NOC_KERNELS",
           "ReferenceKernel", "resolve_kernel_name"]
