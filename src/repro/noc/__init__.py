"""2-D mesh network-on-chip with XY routing."""

from repro.noc.mesh import MeshNoC, Message

__all__ = ["MeshNoC", "Message"]
