"""Whole-route NoC link-reservation kernels.

The per-link reservation loop is the hottest code in the simulator once the
memory hierarchy is allocation-free: every NoC message must place itself
into the earliest idle gap of every directed link along its XY route, and
the paper's scalability argument (bisection bandwidth grows with ``sqrt(N)``
while traffic grows with ``N``, Section 6.2) makes exactly this loop the
bottleneck at scale.  This module carves that loop behind a narrow,
registry-driven backend boundary so the algorithm can be swapped without
touching :class:`repro.noc.mesh.MeshNoC` (geometry, route caching, traffic
accounting) or any fidelity golden.

Kernel API contract
-------------------

A backend is registered in :data:`repro.registry.NOC_KERNELS` under a name
selectable via ``NoCConfig(kernel=...)``, scenario JSON
(``"system": {"noc": {"kernel": ...}}``) or the ``$REPRO_NOC_KERNEL``
environment override.  Its factory is called as ``factory(hop_latency=...)``
and must return an object implementing:

``route_reserver(links, serialization)``
    Compile a route — a tuple of directed ``(src_tile, dst_tile)`` links —
    and a fixed per-link serialization delay into a single callable
    ``reserve(time) -> float``.  Called once per distinct
    (src, dst, payload) send on the cold cache-build path; the mesh caches
    the callable and replays it millions of times, so THE hot path is one
    plain function call per message.  ``reserve`` walks the route's links
    in order: at each link it reserves ``serialization`` time units at the
    earliest idle instant at or after the message's arrival, then advances
    the message to the reservation start plus ``hop_latency``; after the
    last link it adds one more ``serialization`` (the pipeline drain of
    the message body) and returns the delivery time.  Placement decisions
    and per-link busy accumulation must be bit-identical to
    :meth:`repro.sim.queueing.ResourceSchedule.reserve` at every link.

``links()`` / ``busy_time(link)`` / ``intervals(link)``
    Introspection: the directed links ever compiled into a reserver, the
    total time ever reserved on one link, and the retained
    ``(starts, ends)`` reservation intervals.  Backends may retain
    already-dead intervals for different lengths of time — pruning
    *timing* is an implementation detail that provably never changes
    placements — so state comparisons must window intervals to a common
    live horizon (see :func:`live_intervals`).

``reset()``
    Drop all reservation state (between independent runs).  Reservers
    compiled before a reset are invalid; the mesh drops its send cache.

Every backend (like :class:`ResourceSchedule` itself) relies on the
simulator's bounded-disorder invariant: arrival times at one resource
never regress by more than ``PRUNE_SLACK`` from the newest arrival seen,
so reservations ending more than the slack in the past can never influence
a placement and may be discarded at any convenient moment.  (The global
event heap dispatches cores in time order, which bounds injection
disorder by the in-flight lookahead — far below the slack.)

The ``reference`` backend is the previous per-link implementation —
:class:`~repro.sim.queueing.ResourceSchedule` objects, one ``reserve`` call
per link — and is the single home of those semantics (``MeshNoC`` no longer
carries a hand-inlined copy).  The default ``fused`` backend keeps every
link's reservation slab in one flat record (parallel start/end arrays plus
watermark/busy/head/frontier scalars) baked directly into the compiled
reserver, places mostly-time-ordered traffic in O(1) via the last-end
watermark, resumes out-of-order searches from the frontier index instead
of re-bisecting from the head, and batches all pruning into a periodic
whole-kernel sweep so the append fast path carries zero prune bookkeeping.
The ``compiled`` backend is the same algorithm compiled to C
(:mod:`repro._nockernel`, built optionally by ``setup.py``): the slabs
become C double arrays and the per-message call a single built-in, removing
the interpreter from the hot loop entirely; hosts without the extension
(or with ``$REPRO_NO_CEXT=1``) fall back to ``fused`` at resolution time.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Tuple

from repro.registry import NOC_KERNELS
from repro.sim.queueing import ResourceSchedule

Link = Tuple[int, int]

#: Reservations ending this many cycles before the newest arrival can never
#: influence a placement (the simulator's bounded-disorder invariant —
#: see :class:`ResourceSchedule`); shared by every backend so live-state
#: windows line up.
PRUNE_SLACK = ResourceSchedule.PRUNE_SLACK

#: The fused backend prunes in one batched sweep over every link each time
#: this many route reservations have been made, amortising the prune cost
#: across whole routes instead of paying a check per link per message.
SWEEP_PERIOD = 4096

#: Dead-prefix length at which a sweep physically compacts a link's slab
#: (shorter prefixes are pruned logically by advancing the head index).
#: Kept small: a sweep runs once per SWEEP_PERIOD route reservations, so
#: the compaction memmove is negligible there, while an uncompacted slab
#: retains dead floats that crowd everything else out of cache.
COMPACT_THRESHOLD = 64

# Field indices of one fused per-link state record (a plain list: the
# record is baked into compiled reservers and must cost one subscript, not
# an attribute lookup, in the hot loop).
_WM = 0        # watermark: end of the last retained interval (-inf if none)
_BUSY = 1      # total busy time ever reserved
_STARTS = 2    # interval start slab (sorted, disjoint, non-touching)
_ENDS = 3      # interval end slab (strictly increasing)
_HEAD = 4      # index of the first live interval (logical prune point)
_FRONTIER = 5  # index of the last out-of-order placement (search resume)


def _flat_reserver(hop_latency: float, n_links: int,
                   serialization: float) -> Callable[[float], float]:
    """Reserver for a zero-width (``serialization <= 0``) route: such
    messages never occupy a link or accrue busy time, so the route reduces
    to pure latency.  The hops are added sequentially (not pre-summed)
    to stay bit-identical with the reference backend's per-link walk.
    """
    hops = (hop_latency,) * n_links

    def reserve_flat(time: float, _hops=hops, _s=serialization) -> float:
        for hop in _hops:
            time += hop
        return time + _s

    return reserve_flat


def live_intervals(starts: List[float], ends: List[float],
                   horizon: float) -> List[Tuple[float, float]]:
    """The busy coverage at or after ``horizon``, as fused intervals.

    Two backends' retained state is only comparable above a horizon
    neither has pruned past (e.g. the later of their first retained
    interval ends, which can exceed ``newest_arrival - PRUNE_SLACK`` on
    saturated links where per-link arrival times outrun injection times).
    Above such a horizon the busy *coverage* is bit-identical, but the
    interval *structure* need not be: an arrival landing exactly on a
    pruned tail's end is coalesced into it by a backend that still
    retains the tail and opens a fresh interval in one that does not.
    This helper therefore clips intervals to ``[horizon, inf)`` and fuses
    exact-touch neighbours, normalising away both sanctioned differences.
    """
    position = bisect_left(ends, horizon)
    coverage: List[Tuple[float, float]] = []
    for start, end in zip(starts[position:], ends[position:]):
        if end <= horizon:
            continue
        if start < horizon:
            start = horizon
        if coverage and coverage[-1][1] == start:
            coverage[-1] = (coverage[-1][0], end)
        else:
            coverage.append((start, end))
    return coverage


class ReferenceKernel:
    """Previous semantics: one :class:`ResourceSchedule` per directed link.

    This backend is the executable specification the randomized
    equivalence suite holds every other backend to, and the single home of
    the earliest-gap placement algorithm (``ResourceSchedule.reserve``).
    """

    __slots__ = ("_hop_latency", "_links")

    def __init__(self, hop_latency: float) -> None:
        self._hop_latency = hop_latency
        self._links: Dict[Link, ResourceSchedule] = {}

    def _schedule(self, link: Link) -> ResourceSchedule:
        schedule = self._links.get(link)
        if schedule is None:
            schedule = self._links[link] = ResourceSchedule()
        return schedule

    # -- route compilation ---------------------------------------------
    def route_reserver(self, links: Tuple[Link, ...],
                       serialization: float) -> Callable[[float], float]:
        schedules = tuple(self._schedule(link) for link in links)

        def reserve(time: float, _schedules=schedules,
                    _s=serialization, _hop=self._hop_latency) -> float:
            for schedule in _schedules:
                time = schedule.reserve(time, _s) + _hop
            return time + _s       # pipeline drain of the message body

        return reserve

    # -- introspection -------------------------------------------------
    def links(self) -> List[Link]:
        return list(self._links)

    def busy_time(self, link: Link) -> float:
        schedule = self._links.get(link)
        return schedule.total_busy if schedule is not None else 0.0

    def intervals(self, link: Link) -> Tuple[List[float], List[float]]:
        schedule = self._links.get(link)
        if schedule is None:
            return [], []
        return list(schedule._starts), list(schedule._ends)

    def reset(self) -> None:
        self._links.clear()


class FusedKernel:
    """Fused whole-route reservation over flat per-link slabs.

    Each directed link's entire state is one flat record (watermark, busy
    total, start/end slabs, head and frontier indices).
    :meth:`route_reserver` compiles a route into a closure with the
    records, serialization and hop latency pre-bound as locals, so the hot
    loop touches no dict, no per-link object and no attribute:

    * **Watermark fast path** — mostly time-ordered traffic arrives at or
      after the link's last interval end and appends (or exact-touch
      coalesces) at the tail in O(1): one comparison, no bisect, no
      length probe.
    * **Frontier resume** — ends are strictly increasing, so one
      comparison (``ends[frontier - 1] < time``) proves every interval
      before the last placement's index is dead for a new out-of-order
      search, which then resumes there instead of re-bisecting from the
      head.
    * **Batched sweep pruning** — nothing is pruned per reservation.
      Every :data:`SWEEP_PERIOD` route reservations, one sweep advances
      every link's head index past intervals that can no longer influence
      any placement (end below ``arrival - PRUNE_SLACK``) and physically
      compacts only slabs whose dead prefix has grown long.

    Placements, coalescing decisions and per-link busy totals are
    bit-identical to :class:`ReferenceKernel`; retained-state differences
    are confined to pruning timing (see :func:`live_intervals`).
    """

    __slots__ = ("_hop_latency", "_ids", "_states", "_handles", "_countdown")

    def __init__(self, hop_latency: float) -> None:
        self._hop_latency = hop_latency
        self._ids: Dict[Link, int] = {}
        self._states: List[list] = []
        self._handles: List[tuple] = []
        # Shared mutable sweep countdown cell: compiled reservers decrement
        # it without touching kernel attributes.
        self._countdown = [SWEEP_PERIOD]

    def _state(self, link: Link) -> list:
        return self._states[self._id(link)]

    def _id(self, link: Link) -> int:
        lid = self._ids.get(link)
        if lid is None:
            lid = self._ids[link] = len(self._states)
            state = [float("-inf"), 0.0, [], [], 0, 0]
            self._states.append(state)
            # One handle per link, shared by every reserver whose route
            # crosses it: thousands of compiled routes then cost a tuple
            # of pointers each instead of fresh bound methods per link per
            # route (which the cyclic GC would rescan forever after).
            self._handles.append(
                (state, state[_STARTS], state[_ENDS],
                 state[_STARTS].append, state[_ENDS].append))
        return lid

    # -- route compilation ---------------------------------------------
    def route_reserver(self, links: Tuple[Link, ...],
                       serialization: float) -> Callable[[float], float]:
        """Compile ``links`` + ``serialization`` into the hot callable.

        The closure binds the per-link handles (mutated in place by
        reservations and sweeps, so the binding survives slab compaction),
        the serialization and the hop latency as default-argument locals;
        per message it costs one plain function call.  Each handle carries
        the record, its slab lists and their bound ``append`` methods:
        every mutation anywhere in the kernel is in-place (``del
        slab[:head]`` compaction included), so the list objects are stable
        for the record's lifetime and the watermark fast path pays no
        subscript or attribute lookup to reach them.  Handles live on the
        kernel (one per link) and routes share them, so a compiled
        reserver's own footprint is one tuple of pointers.
        """
        handle = tuple(self._handles[self._id(link)] for link in links)
        if serialization <= 0.0:
            return _flat_reserver(self._hop_latency, len(links),
                                  serialization)

        def reserve(time: float, _handle=handle, _s=serialization,
                    _hop=self._hop_latency, _countdown=self._countdown,
                    _kernel=self, _bisect=bisect_left) -> float:
            countdown = _countdown[0] - 1
            if countdown <= 0:
                _kernel._sweep(time)
                countdown = SWEEP_PERIOD
            _countdown[0] = countdown
            for state, starts, ends, append_start, append_end in _handle:
                last = state[0]                  # _WM
                if time > last:
                    # Idle at (and after) the arrival: append at the tail.
                    state[0] = end = time + _s
                    state[1] += _s               # _BUSY
                    append_start(time)           # _STARTS
                    append_end(end)              # _ENDS
                elif time == last:
                    # Exact touch with the tail interval: serialize behind
                    # it by extending the interval (a zero-width gap can
                    # never hold a future reservation).
                    state[0] = end = last + _s
                    state[1] += _s
                    ends[-1] = end
                else:
                    # Out-of-order: earliest idle gap at or after the
                    # arrival.  Mirrors ResourceSchedule.reserve's general
                    # path exactly (same gap walk, same exact-touch
                    # coalescing), searching only the live suffix and
                    # resuming from the frontier when provably safe.
                    state[1] += _s
                    head = state[4]
                    n = len(ends)
                    lo = state[5]                # _FRONTIER
                    if not (head < lo < n and ends[lo - 1] < time):
                        # The frontier hint cannot be proven dead-prefix-
                        # only for this arrival; search the live suffix.
                        lo = head
                    position = _bisect(ends, time, lo, n)
                    start = time
                    if position < n and starts[position] - start < _s:
                        # Walk over the intervals the message cannot
                        # squeeze in front of.  After the first step
                        # ``start`` sits on an interval end, so every
                        # later interval provably ends past it.
                        end_here = ends[position]
                        if end_here > start:
                            start = end_here
                        position += 1
                        while position < n:
                            if starts[position] - start >= _s:
                                break  # fits in the gap before this one
                            start = ends[position]
                            position += 1
                    end = start + _s
                    touches_prev = (position > head
                                    and ends[position - 1] == start)
                    if position < n and starts[position] == end:
                        if touches_prev:
                            # Bridges both neighbours: merge all three.
                            ends[position - 1] = ends[position]
                            del starts[position]
                            del ends[position]
                            position -= 1
                        else:
                            starts[position] = start
                    elif touches_prev:
                        position -= 1
                        ends[position] = end
                        if position == n - 1:
                            state[0] = end   # extended the tail
                    else:
                        starts.insert(position, start)
                        ends.insert(position, end)
                        if position == n:
                            state[0] = end   # inserted a new tail
                    # ``position`` indexes the interval containing this
                    # reservation; later searches resume here when the
                    # one-comparison validity check holds.
                    state[5] = position
                    time = start
                time += _hop
            return time + _s       # pipeline drain of the message body

        return reserve

    # -- pruning -------------------------------------------------------
    def _sweep(self, arrival: float) -> None:
        """Advance every link's head past reservations that can no longer
        influence any placement; compact slabs whose dead prefix has grown
        long.  ``arrival`` is the triggering message's time — by the
        bounded-disorder invariant no future arrival can undercut
        ``arrival - PRUNE_SLACK``."""
        cutoff = arrival - PRUNE_SLACK
        for state in self._states:
            ends = state[3]
            head = bisect_left(ends, cutoff, state[4], len(ends))
            if head >= COMPACT_THRESHOLD:
                del state[2][:head]
                del ends[:head]
                frontier = state[5] - head
                state[5] = frontier if frontier > 0 else 0
                head = 0
            state[4] = head

    # -- introspection -------------------------------------------------
    def links(self) -> List[Link]:
        return list(self._ids)

    def busy_time(self, link: Link) -> float:
        lid = self._ids.get(link)
        return self._states[lid][1] if lid is not None else 0.0

    def intervals(self, link: Link) -> Tuple[List[float], List[float]]:
        lid = self._ids.get(link)
        if lid is None:
            return [], []
        state = self._states[lid]
        head = state[4]
        return list(state[2][head:]), list(state[3][head:])

    def reset(self) -> None:
        self._ids.clear()
        self._states.clear()
        self._handles.clear()
        self._countdown[0] = SWEEP_PERIOD


def _load_extension():
    """The :mod:`repro._nockernel` extension module, or ``None``.

    Checked per call (not cached at import) so ``$REPRO_NO_CEXT=1`` can be
    flipped by tests and CI legs without reloading the package; the import
    itself is cached by ``sys.modules`` so the steady-state cost is one
    environment lookup.
    """
    if os.environ.get("REPRO_NO_CEXT", "") == "1":
        return None
    try:
        from repro import _nockernel
    except ImportError:
        return None
    return _nockernel


def compiled_kernel_available() -> bool:
    """Whether the compiled backend works on this host (extension built
    and not disabled via ``$REPRO_NO_CEXT=1``)."""
    return _load_extension() is not None


class CompiledKernel:
    """The fused algorithm compiled to C (:mod:`repro._nockernel`).

    The extension owns what the hot loop touches — flat per-link interval
    slabs as C double arrays (starts/ends plus the watermark, logical-prune
    head and frontier cursor that :class:`FusedKernel` keeps per record),
    the batched sweep and the whole-route reservation walk — while this
    wrapper keeps everything reviewable in Python: route compilation
    policy, the zero-serialization flat path, and the ``Link`` → slab-id
    mapping.  The tuning constants (:data:`PRUNE_SLACK`,
    :data:`SWEEP_PERIOD`, :data:`COMPACT_THRESHOLD`) are passed into the
    extension at construction so this module stays their single source of
    truth.

    The compiled reserver returned by :meth:`route_reserver` is the
    extension Route's bound ``reserve`` built-in — one C call per message,
    no Python frame.  Being a genuine ``PyCFunction`` (not an opaque
    ``tp_call`` object) it shows up in cProfile as a C_CALL event, which is
    what lets ``repro profile`` attribute compiled-kernel time to the
    ``noc.kernel`` bucket instead of silently folding it into callers.

    Placements, coalescing decisions and per-link busy totals are
    bit-identical to both pure-Python backends — every operation is IEEE
    double arithmetic, exactly what CPython floats are — and the
    randomized equivalence suite holds all three to that.  Pruning timing
    matches :class:`FusedKernel` sweep-for-sweep.
    """

    __slots__ = ("_hop_latency", "_ids", "_kernel")

    def __init__(self, hop_latency: float) -> None:
        extension = _load_extension()
        if extension is None:
            raise RuntimeError(
                "the repro._nockernel extension is not importable on this "
                "host (not built, or disabled via $REPRO_NO_CEXT=1); "
                "resolve_kernel_name falls back to 'fused' automatically")
        self._hop_latency = hop_latency
        self._ids: Dict[Link, int] = {}
        self._kernel = extension.Kernel(
            float(hop_latency), PRUNE_SLACK,
            SWEEP_PERIOD, COMPACT_THRESHOLD)

    def _id(self, link: Link) -> int:
        lid = self._ids.get(link)
        if lid is None:
            lid = self._ids[link] = self._kernel.new_link()
        return lid

    # -- route compilation ---------------------------------------------
    def route_reserver(self, links: Tuple[Link, ...],
                       serialization: float) -> Callable[[float], float]:
        if serialization <= 0.0:
            # Zero-width reservations never occupy a link; same flat
            # closure as FusedKernel (the extension never sees the route).
            return _flat_reserver(self._hop_latency, len(links),
                                  serialization)
        ids = tuple(self._id(link) for link in links)
        route = self._kernel.compile_route(ids, float(serialization))
        return route.reserve

    # -- pruning -------------------------------------------------------
    def _sweep(self, arrival: float) -> None:
        """Immediate batched prune (test parity hook, mirrors
        :meth:`FusedKernel._sweep`; production pruning is the extension's
        own periodic sweep)."""
        self._kernel.sweep(arrival)

    # -- introspection -------------------------------------------------
    def links(self) -> List[Link]:
        return list(self._ids)

    def busy_time(self, link: Link) -> float:
        lid = self._ids.get(link)
        return self._kernel.busy_time(lid) if lid is not None else 0.0

    def intervals(self, link: Link) -> Tuple[List[float], List[float]]:
        lid = self._ids.get(link)
        if lid is None:
            return [], []
        starts, ends = self._kernel.intervals(lid)
        return starts, ends

    def reset(self) -> None:
        self._ids.clear()
        self._kernel.reset()


NOC_KERNELS.register(
    "reference", ReferenceKernel,
    description="per-link ResourceSchedule walk (executable specification)")
NOC_KERNELS.register(
    "fused", FusedKernel,
    description="fused whole-route reservation over flat per-link slabs "
                "(compiled route reservers, watermark fast path, frontier "
                "resume, batched sweep pruning)")
NOC_KERNELS.register(
    "compiled", CompiledKernel,
    description="the fused algorithm compiled to C (repro._nockernel "
                "extension: per-link double slabs, one built-in call per "
                "message); requires the optional extension build",
    available=compiled_kernel_available)


__all__ = [
    "COMPACT_THRESHOLD",
    "CompiledKernel",
    "FusedKernel",
    "NOC_KERNELS",
    "PRUNE_SLACK",
    "SWEEP_PERIOD",
    "ReferenceKernel",
    "compiled_kernel_available",
    "live_intervals",
]
