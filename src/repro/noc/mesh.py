"""2-D mesh network-on-chip model with XY routing and link contention.

The model matches the paper's NoC (Table 1): a square mesh with dimension-
ordered XY routing, a 2-cycle hop latency (one router cycle plus one link
cycle) and 64-bit flits.  Contention is modelled per directed link with a
simple queueing approximation: each link keeps a reservation schedule, a
message arriving earlier waits, and serialization of the message's flits
occupies the link.  Because the paper's scalability assumption makes
bisection bandwidth grow only with ``sqrt(N)`` while traffic grows with
``N``, this contention is what turns the NoC into a bottleneck at high core
counts (Section 6.2).

This module owns the *geometry*: coordinates, XY routes, flit counts, and
the per-(src, dst, payload) send cache.  The per-link reservation work —
the hottest loop in the simulator — lives behind the swappable kernel
boundary of :mod:`repro.noc.kernel` (:data:`repro.registry.NOC_KERNELS`);
:meth:`MeshNoC.send_fast` makes exactly one kernel call per message.

Traffic is accounted in bytes and flits so Figure 12 can be reproduced.
"""

from __future__ import annotations

import math
import os
import sys
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.registry import NOC_KERNELS
from repro.sim.config import NoCConfig
from repro.sim.stats import TrafficStats

#: Payloads below this fit the packed send-cache key
#: (``pair << 20 | payload``); larger payloads use an unpacked tuple key so
#: they can never alias another (src, dst, payload) combination.
_PACKED_PAYLOAD_LIMIT = 1 << 20


def resolve_kernel_name(config: NoCConfig) -> str:
    """The reservation-kernel backend a mesh built from ``config`` uses.

    The ``$REPRO_NOC_KERNEL`` environment variable (when set and
    non-empty) overrides ``config.kernel``; both spellings are validated
    against :data:`repro.registry.NOC_KERNELS`, so a typo fails with the
    full list of registered backends.

    A *registered but unavailable* backend (the ``compiled`` kernel on a
    host without the extension build, or with ``$REPRO_NO_CEXT=1``)
    resolves to ``fused`` instead, with a one-line warning the first time.
    Every backend is bit-identical, and the kernel name is excluded from
    RunSpec digests, so the substitution never changes a result or splits
    a cache; failing hard would make specs and scenario files
    host-dependent for no fidelity gain.
    """
    name = os.environ.get("REPRO_NOC_KERNEL") or config.kernel
    entry = NOC_KERNELS.get(name)
    if not entry.is_available():
        if name not in _FALLBACK_WARNED:
            _FALLBACK_WARNED.add(name)
            print(f"repro: NoC kernel {name!r} is unavailable on this host "
                  f"(extension not built, or $REPRO_NO_CEXT=1); "
                  f"falling back to 'fused' (bit-identical)",
                  file=sys.stderr)
        name = "fused"
        NOC_KERNELS.get(name)
    return name


#: Unavailable-backend names already warned about (once per process).
_FALLBACK_WARNED: set = set()


@dataclass(frozen=True)
class Message:
    """One NoC message (request, response, invalidation, data fill...)."""

    src: int
    dst: int
    payload_bytes: int


class MeshNoC:
    """Square 2-D mesh with XY routing and per-link queueing."""

    __slots__ = ("n_tiles", "dim", "config", "traffic", "kernel",
                 "kernel_name", "_send_cache", "_hop_latency")

    def __init__(self, n_tiles: int, config: NoCConfig = NoCConfig(),
                 traffic: TrafficStats = None) -> None:
        dim = int(round(math.sqrt(n_tiles)))
        if dim * dim != n_tiles:
            raise ValueError("n_tiles must be a perfect square")
        self.n_tiles = n_tiles
        self.dim = dim
        self.config = config
        self.traffic = traffic if traffic is not None else TrafficStats()
        #: The link-reservation kernel backend (see repro.noc.kernel).
        self.kernel_name = resolve_kernel_name(config)
        self.kernel = NOC_KERNELS.get(self.kernel_name).factory(
            hop_latency=config.hop_latency)
        # Hot-path cache: everything about one (src, dst, payload) send
        # that does not depend on time — the kernel's compiled reserver
        # for the XY route and payload serialization, plus the precomputed
        # per-hop traffic totals — fused into a single dict lookup keyed
        # by one packed integer.  All of it is recomputed millions of
        # times per run without this.
        self._send_cache: Dict[object, tuple] = {}
        self._hop_latency = config.hop_latency

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def coords(self, tile: int) -> Tuple[int, int]:
        """Return the (x, y) coordinates of a tile."""
        if tile < 0 or tile >= self.n_tiles:
            raise ValueError(f"tile {tile} out of range")
        return tile % self.dim, tile // self.dim

    def tile(self, x: int, y: int) -> int:
        """Return the tile id at coordinates (x, y)."""
        return y * self.dim + x

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance between two tiles."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Return the list of directed links of the XY route src -> dst."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        links: List[Tuple[int, int]] = []
        x, y = sx, sy
        while x != dx:
            nx = x + (1 if dx > x else -1)
            links.append((self.tile(x, y), self.tile(nx, y)))
            x = nx
        while y != dy:
            ny = y + (1 if dy > y else -1)
            links.append((self.tile(x, y), self.tile(x, ny)))
            y = ny
        return links

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def _flits(self, payload_bytes: int) -> int:
        cfg = self.config
        data_flits = int(math.ceil(payload_bytes / cfg.flit_bytes)) if payload_bytes else 0
        return cfg.header_flits + data_flits

    def zero_load_latency(self, src: int, dst: int, payload_bytes: int = 0) -> int:
        """Latency of a message on an empty network."""
        flits = self._flits(payload_bytes)
        return self.hops(src, dst) * self.config.hop_latency + flits

    def send(self, message: Message, now: float) -> float:
        """Send a message at time ``now``; return its arrival time."""
        return self.send_fast(message.src, message.dst, message.payload_bytes,
                              now)

    def send_fast(self, src: int, dst: int, payload_bytes: int,
                  now: float) -> float:
        """Scalar variant of :meth:`send` (the hot path — no Message object).

        Contention: at every link of the route the message waits until the
        link is free, then occupies it for the serialization time of its
        flits, with hop latency added per link and the pipeline drain of
        the message body added at the end.  All of that is one call of the
        kernel-compiled route reserver; this method owns only the cache
        lookup and the traffic accounting.
        """
        traffic = self.traffic
        time = now + 0.0   # cheapest int -> float coercion (no call)
        if src == dst:
            # Local access: no network traversal, a single router pass.
            traffic.noc_messages += 1
            return time + self._hop_latency
        pair = src * self.n_tiles + dst
        key = (pair << 20 | payload_bytes
               if payload_bytes < _PACKED_PAYLOAD_LIMIT
               else (pair, payload_bytes))
        cache = self._send_cache
        try:
            reserve, flits_hops, bytes_hops = cache[key]
        except KeyError:
            cache[key] = cached = self._resolve_send(src, dst, payload_bytes)
            reserve, flits_hops, bytes_hops = cached
        time = reserve(time)
        traffic.noc_messages += 1
        traffic.noc_flits += flits_hops
        traffic.noc_bytes += bytes_hops
        return time

    def _resolve_send(self, src: int, dst: int, payload_bytes: int) -> tuple:
        """Build the time-independent part of a (src, dst, payload) send."""
        flits = self._flits(payload_bytes)
        hops = self.hops(src, dst)
        reserve = self.kernel.route_reserver(
            tuple(self.route(src, dst)),
            flits / self.config.link_bandwidth_flits)
        return (reserve, flits * hops, payload_bytes * hops)

    def round_trip(self, src: int, dst: int, request_bytes: int,
                   response_bytes: int, now: float,
                   remote_latency: float = 0.0) -> float:
        """Send a request and its response; return the response arrival time."""
        arrive = self.send(Message(src, dst, request_bytes), now)
        arrive += remote_latency
        return self.send(Message(dst, src, response_bytes), arrive)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def link_utilization(self, now: float) -> float:
        """Average fraction of time links have been busy up to ``now``."""
        kernel = self.kernel
        links = kernel.links()
        if now <= 0 or not links:
            return 0.0
        total_links = 2 * 2 * self.dim * (self.dim - 1)  # directed, both axes
        busy = sum(kernel.busy_time(link) for link in links)
        return busy / (total_links * now) if total_links else 0.0

    def max_link_utilization(self, now: float) -> float:
        """Utilisation of the busiest link up to ``now`` (bottleneck metric)."""
        kernel = self.kernel
        links = kernel.links()
        if now <= 0 or not links:
            return 0.0
        return max(kernel.busy_time(link) for link in links) / now

    def reset_contention(self) -> None:
        """Clear all link occupancy (used between independent runs)."""
        self.kernel.reset()
        # Cached reservers are compiled against the kernel's dropped
        # state; rebuild them lazily against the fresh kernel.
        self._send_cache.clear()
