"""2-D mesh network-on-chip model with XY routing and link contention.

The model matches the paper's NoC (Table 1): a square mesh with dimension-
ordered XY routing, a 2-cycle hop latency (one router cycle plus one link
cycle) and 64-bit flits.  Contention is modelled per directed link with a
simple queueing approximation: each link keeps the time at which it becomes
free, a message arriving earlier waits, and serialization of the message's
flits occupies the link.  Because the paper's scalability assumption makes
bisection bandwidth grow only with ``sqrt(N)`` while traffic grows with
``N``, this contention is what turns the NoC into a bottleneck at high core
counts (Section 6.2).

Traffic is accounted in bytes and flits so Figure 12 can be reproduced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sim.config import NoCConfig
from repro.sim.queueing import ResourceSchedule
from repro.sim.stats import TrafficStats


@dataclass(frozen=True)
class Message:
    """One NoC message (request, response, invalidation, data fill...)."""

    src: int
    dst: int
    payload_bytes: int


class MeshNoC:
    """Square 2-D mesh with XY routing and per-link queueing."""

    __slots__ = ("n_tiles", "dim", "config", "traffic", "_links",
                 "_route_cache", "_hops_cache", "_payload_cache",
                 "_hop_latency")

    def __init__(self, n_tiles: int, config: NoCConfig = NoCConfig(),
                 traffic: TrafficStats = None) -> None:
        dim = int(round(math.sqrt(n_tiles)))
        if dim * dim != n_tiles:
            raise ValueError("n_tiles must be a perfect square")
        self.n_tiles = n_tiles
        self.dim = dim
        self.config = config
        self.traffic = traffic if traffic is not None else TrafficStats()
        # Reservation schedule per directed link, keyed by (src, dst) tile.
        self._links: Dict[Tuple[int, int], ResourceSchedule] = {}
        # Hot-path caches: the (resolved) link schedules of each XY route and
        # hop counts are pure functions of the (src, dst) pair, flit counts /
        # serialization of the payload size.  All are recomputed millions of
        # times per run without these.
        self._route_cache: Dict[int, Tuple[ResourceSchedule, ...]] = {}
        self._hops_cache: Dict[int, int] = {}
        self._payload_cache: Dict[int, Tuple[int, float]] = {}
        self._hop_latency = config.hop_latency

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def coords(self, tile: int) -> Tuple[int, int]:
        """Return the (x, y) coordinates of a tile."""
        if tile < 0 or tile >= self.n_tiles:
            raise ValueError(f"tile {tile} out of range")
        return tile % self.dim, tile // self.dim

    def tile(self, x: int, y: int) -> int:
        """Return the tile id at coordinates (x, y)."""
        return y * self.dim + x

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance between two tiles."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Return the list of directed links of the XY route src -> dst."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        links: List[Tuple[int, int]] = []
        x, y = sx, sy
        while x != dx:
            nx = x + (1 if dx > x else -1)
            links.append((self.tile(x, y), self.tile(nx, y)))
            x = nx
        while y != dy:
            ny = y + (1 if dy > y else -1)
            links.append((self.tile(x, y), self.tile(x, ny)))
            y = ny
        return links

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def _flits(self, payload_bytes: int) -> int:
        cfg = self.config
        data_flits = int(math.ceil(payload_bytes / cfg.flit_bytes)) if payload_bytes else 0
        return cfg.header_flits + data_flits

    def zero_load_latency(self, src: int, dst: int, payload_bytes: int = 0) -> int:
        """Latency of a message on an empty network."""
        flits = self._flits(payload_bytes)
        return self.hops(src, dst) * self.config.hop_latency + flits

    def send(self, message: Message, now: float) -> float:
        """Send a message at time ``now``; return its arrival time."""
        return self.send_fast(message.src, message.dst, message.payload_bytes,
                              now)

    def send_fast(self, src: int, dst: int, payload_bytes: int,
                  now: float) -> float:
        """Scalar variant of :meth:`send` (the hot path — no Message object).

        Contention: at every link of the route the message waits until the
        link is free, then occupies it for the serialization time of its
        flits.  Hop latency is added per link.
        """
        traffic = self.traffic
        cached = self._payload_cache.get(payload_bytes)
        if cached is None:
            flits = self._flits(payload_bytes)
            cached = (flits, flits / self.config.link_bandwidth_flits)
            self._payload_cache[payload_bytes] = cached
        flits, serialization = cached
        time = float(now)
        if src == dst:
            # Local access: no network traversal, a single router pass.
            traffic.noc_messages += 1
            return time + self._hop_latency
        pair = src * self.n_tiles + dst
        schedules = self._route_cache.get(pair)
        if schedules is None:
            links = self._links
            resolved = []
            for link in self.route(src, dst):
                schedule = links.get(link)
                if schedule is None:
                    schedule = links[link] = ResourceSchedule()
                resolved.append(schedule)
            schedules = tuple(resolved)
            self._route_cache[pair] = schedules
            self._hops_cache[pair] = self.hops(src, dst)
        hop_latency = self._hop_latency
        for schedule in schedules:
            time = schedule.reserve(time, serialization) + hop_latency
        time += serialization  # pipeline drain of the message body
        hops = self._hops_cache[pair]
        traffic.noc_messages += 1
        traffic.noc_flits += flits * hops
        traffic.noc_bytes += payload_bytes * hops
        return time

    def round_trip(self, src: int, dst: int, request_bytes: int,
                   response_bytes: int, now: float,
                   remote_latency: float = 0.0) -> float:
        """Send a request and its response; return the response arrival time."""
        arrive = self.send(Message(src, dst, request_bytes), now)
        arrive += remote_latency
        return self.send(Message(dst, src, response_bytes), arrive)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def link_utilization(self, now: float) -> float:
        """Average fraction of time links have been busy up to ``now``."""
        if now <= 0 or not self._links:
            return 0.0
        total_links = 2 * 2 * self.dim * (self.dim - 1)  # directed, both axes
        busy = sum(schedule.busy_time() for schedule in self._links.values())
        return busy / (total_links * now) if total_links else 0.0

    def max_link_utilization(self, now: float) -> float:
        """Utilisation of the busiest link up to ``now`` (bottleneck metric)."""
        if now <= 0 or not self._links:
            return 0.0
        return max(schedule.busy_time() for schedule in self._links.values()) / now

    def reset_contention(self) -> None:
        """Clear all link occupancy (used between independent runs)."""
        self._links.clear()
        # Cached routes hold resolved ResourceSchedule objects; drop them so
        # future sends see the cleared link state.
        self._route_cache.clear()
