"""2-D mesh network-on-chip model with XY routing and link contention.

The model matches the paper's NoC (Table 1): a square mesh with dimension-
ordered XY routing, a 2-cycle hop latency (one router cycle plus one link
cycle) and 64-bit flits.  Contention is modelled per directed link with a
simple queueing approximation: each link keeps the time at which it becomes
free, a message arriving earlier waits, and serialization of the message's
flits occupies the link.  Because the paper's scalability assumption makes
bisection bandwidth grow only with ``sqrt(N)`` while traffic grows with
``N``, this contention is what turns the NoC into a bottleneck at high core
counts (Section 6.2).

Traffic is accounted in bytes and flits so Figure 12 can be reproduced.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sim.config import NoCConfig
from repro.sim.queueing import ResourceSchedule
from repro.sim.stats import TrafficStats


@dataclass(frozen=True)
class Message:
    """One NoC message (request, response, invalidation, data fill...)."""

    src: int
    dst: int
    payload_bytes: int


class MeshNoC:
    """Square 2-D mesh with XY routing and per-link queueing."""

    __slots__ = ("n_tiles", "dim", "config", "traffic", "_links",
                 "_send_cache", "_hop_latency")

    def __init__(self, n_tiles: int, config: NoCConfig = NoCConfig(),
                 traffic: TrafficStats = None) -> None:
        dim = int(round(math.sqrt(n_tiles)))
        if dim * dim != n_tiles:
            raise ValueError("n_tiles must be a perfect square")
        self.n_tiles = n_tiles
        self.dim = dim
        self.config = config
        self.traffic = traffic if traffic is not None else TrafficStats()
        # Reservation schedule per directed link, keyed by (src, dst) tile.
        self._links: Dict[Tuple[int, int], ResourceSchedule] = {}
        # Hot-path cache: everything about one (src, dst, payload) send that
        # does not depend on time — the resolved link schedules of the XY
        # route, the serialization delay of the payload's flits, and the
        # precomputed per-hop traffic totals — fused into a single dict
        # lookup keyed by one packed integer.  All of it is recomputed
        # millions of times per run without this.
        self._send_cache: Dict[int, tuple] = {}
        self._hop_latency = config.hop_latency

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def coords(self, tile: int) -> Tuple[int, int]:
        """Return the (x, y) coordinates of a tile."""
        if tile < 0 or tile >= self.n_tiles:
            raise ValueError(f"tile {tile} out of range")
        return tile % self.dim, tile // self.dim

    def tile(self, x: int, y: int) -> int:
        """Return the tile id at coordinates (x, y)."""
        return y * self.dim + x

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance between two tiles."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Return the list of directed links of the XY route src -> dst."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        links: List[Tuple[int, int]] = []
        x, y = sx, sy
        while x != dx:
            nx = x + (1 if dx > x else -1)
            links.append((self.tile(x, y), self.tile(nx, y)))
            x = nx
        while y != dy:
            ny = y + (1 if dy > y else -1)
            links.append((self.tile(x, y), self.tile(x, ny)))
            y = ny
        return links

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def _flits(self, payload_bytes: int) -> int:
        cfg = self.config
        data_flits = int(math.ceil(payload_bytes / cfg.flit_bytes)) if payload_bytes else 0
        return cfg.header_flits + data_flits

    def zero_load_latency(self, src: int, dst: int, payload_bytes: int = 0) -> int:
        """Latency of a message on an empty network."""
        flits = self._flits(payload_bytes)
        return self.hops(src, dst) * self.config.hop_latency + flits

    def send(self, message: Message, now: float) -> float:
        """Send a message at time ``now``; return its arrival time."""
        return self.send_fast(message.src, message.dst, message.payload_bytes,
                              now)

    def send_fast(self, src: int, dst: int, payload_bytes: int,
                  now: float) -> float:
        """Scalar variant of :meth:`send` (the hot path — no Message object).

        Contention: at every link of the route the message waits until the
        link is free, then occupies it for the serialization time of its
        flits.  Hop latency is added per link.  The per-link reservation
        inlines :meth:`ResourceSchedule.reserve`'s append-at-end fast path
        (mostly time-ordered traffic lands at the tail of each link's
        schedule); out-of-order or prune-due placements fall back to the
        general method, so schedule state stays bit-identical.
        """
        traffic = self.traffic
        time = float(now)
        if src == dst:
            # Local access: no network traversal, a single router pass.
            traffic.noc_messages += 1
            return time + self._hop_latency
        key = (src * self.n_tiles + dst) << 20 | payload_bytes
        cached = self._send_cache.get(key)
        if cached is None:
            cached = self._resolve_send(src, dst, payload_bytes)
            self._send_cache[key] = cached
        schedules, serialization, flits_hops, bytes_hops = cached
        hop_latency = self._hop_latency
        # Per-link reservation: ResourceSchedule.reserve, fully inlined
        # (the single hottest loop in the simulator — the call, argument
        # and attribute traffic of ~2.5 method calls per message measurably
        # dominates the placement work itself).  Identical placement,
        # coalescing and pruning decisions; keep in sync with reserve().
        for schedule in schedules:
            ends = schedule._ends
            schedule.total_busy += serialization
            n = len(ends)
            if n == 0 or time >= ends[-1]:
                # Idle at (and after) the arrival time: append at the tail,
                # coalescing an exact touch with the last interval.  Old
                # reservations are only pruned once the list is provably
                # longer than the prune window can hold (coalescing bounds
                # a window's worth of intervals below 4096), keeping the
                # per-append bookkeeping to this one length check.
                if n and time == ends[-1]:
                    ends[-1] = time + serialization
                else:
                    schedule._starts.append(time)
                    ends.append(time + serialization)
                    if n >= 8192:
                        schedule._prune(time)
                time += hop_latency
                continue
            starts = schedule._starts
            if ends[0] < time - 16384.0:             # PRUNE_TRIGGER
                schedule._prune(time)
                n = len(ends)
            start = time
            position = bisect_left(ends, start)
            if position < n and starts[position] - start < serialization:
                # Walk over the intervals the message cannot squeeze in
                # front of.  After the first step ``start`` sits on an
                # interval end, so every later interval provably ends past
                # it and the inner loop needs no max().
                end_here = ends[position]
                if end_here > start:
                    start = end_here
                position += 1
                while position < n:
                    if starts[position] - start >= serialization:
                        break              # fits in the gap before this one
                    start = ends[position]
                    position += 1
            end = start + serialization
            touches_prev = position > 0 and ends[position - 1] == start
            if position < n and starts[position] == end:
                if touches_prev:
                    # Bridges the two neighbouring intervals: merge all.
                    ends[position - 1] = ends[position]
                    del starts[position]
                    del ends[position]
                else:
                    starts[position] = start
            elif touches_prev:
                ends[position - 1] = end
            else:
                starts.insert(position, start)
                ends.insert(position, end)
            time = start + hop_latency
        time += serialization  # pipeline drain of the message body
        traffic.noc_messages += 1
        traffic.noc_flits += flits_hops
        traffic.noc_bytes += bytes_hops
        return time

    def _resolve_send(self, src: int, dst: int, payload_bytes: int) -> tuple:
        """Build the time-independent part of a (src, dst, payload) send."""
        links = self._links
        resolved = []
        for link in self.route(src, dst):
            schedule = links.get(link)
            if schedule is None:
                schedule = links[link] = ResourceSchedule()
            resolved.append(schedule)
        flits = self._flits(payload_bytes)
        hops = self.hops(src, dst)
        return (tuple(resolved), flits / self.config.link_bandwidth_flits,
                flits * hops, payload_bytes * hops)

    def round_trip(self, src: int, dst: int, request_bytes: int,
                   response_bytes: int, now: float,
                   remote_latency: float = 0.0) -> float:
        """Send a request and its response; return the response arrival time."""
        arrive = self.send(Message(src, dst, request_bytes), now)
        arrive += remote_latency
        return self.send(Message(dst, src, response_bytes), arrive)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def link_utilization(self, now: float) -> float:
        """Average fraction of time links have been busy up to ``now``."""
        if now <= 0 or not self._links:
            return 0.0
        total_links = 2 * 2 * self.dim * (self.dim - 1)  # directed, both axes
        busy = sum(schedule.busy_time() for schedule in self._links.values())
        return busy / (total_links * now) if total_links else 0.0

    def max_link_utilization(self, now: float) -> float:
        """Utilisation of the busiest link up to ``now`` (bottleneck metric)."""
        if now <= 0 or not self._links:
            return 0.0
        return max(schedule.busy_time() for schedule in self._links.values()) / now

    def reset_contention(self) -> None:
        """Clear all link occupancy (used between independent runs)."""
        self._links.clear()
        # Cached sends hold resolved ResourceSchedule objects; drop them so
        # future sends see the cleared link state.
        self._send_cache.clear()
