"""Global History Buffer (GHB) correlation prefetcher.

The paper compares against a correlation prefetcher based on the GHB of
Nesbit & Smith (Section 5.4) and finds it provides no benefit on these
workloads: indirect access streams are far too long and too irregular to
repeat within a reasonably sized history buffer.  We implement the classic
G/AC (global, address-correlating) organisation:

* a circular *history buffer* of recent miss addresses, each entry linked to
  the previous entry with the same key,
* an *index table* mapping a key (the miss address) to the most recent
  history-buffer entry for that key,
* on a miss, the prefetcher follows the chain to the previous occurrence of
  the same address and prefetches the addresses that followed it last time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.prefetchers.base import AccessContext, PrefetcherBase, PrefetchRequest


@dataclass
class GHBConfig:
    """GHB geometry."""

    buffer_size: int = 256
    index_table_size: int = 256
    degree: int = 2                # addresses prefetched per correlation hit
    line_size: int = 64
    train_on_hits: bool = False    # classic GHB trains on the miss stream only


@dataclass(slots=True)
class _HistoryEntry:
    addr: int
    prev: int = -1                 # index of previous entry with the same key


class GHBPrefetcher(PrefetcherBase):
    """Global History Buffer, address-correlating organisation."""

    __slots__ = ("config", "_buffer", "_head", "_index", "_order",
                 "correlation_hits")

    name = "ghb"

    def __init__(self, config: Optional[GHBConfig] = None) -> None:
        self.config = config or GHBConfig()
        self._buffer: List[Optional[_HistoryEntry]] = [None] * self.config.buffer_size
        self._head = 0             # next write position (monotonic counter)
        self._index: Dict[int, int] = {}
        #: (position, key) pairs in insertion order; used to find the
        #: least-recently-recorded key in amortised O(1) instead of scanning
        #: the whole index table on every recorded miss.
        self._order: Deque[Tuple[int, int]] = deque()
        self.correlation_hits = 0

    # ------------------------------------------------------------------
    def _key(self, addr: int) -> int:
        return (addr // self.config.line_size)

    def _slot(self, position: int) -> int:
        return position % self.config.buffer_size

    def _entry_at(self, position: int) -> Optional[_HistoryEntry]:
        if position < 0 or position < self._head - self.config.buffer_size:
            return None            # overwritten
        return self._buffer[self._slot(position)]

    def _record(self, addr: int) -> None:
        key = self._key(addr)
        index = self._index
        head = self._head
        prev = index.get(key, -1)
        entry = _HistoryEntry(addr=addr, prev=prev)
        self._buffer[head % self.config.buffer_size] = entry
        index[key] = head
        order = self._order
        order.append((head, key))
        self._head = head + 1
        if len(order) > 4 * self.config.index_table_size + 64:
            # Compact: drop stale pairs (keys since re-recorded at a newer
            # position).  The live pairs, kept in position order, are
            # exactly what victim selection consults, so this is a pure
            # space bound — without it the deque grows by one pair per
            # recorded miss whenever the index table never overflows.
            self._order = order = deque(
                sorted((position, k) for k, position in index.items()))
        if len(index) > self.config.index_table_size:
            # Evict the key whose last record is oldest.  Stale deque pairs
            # (whose key has since been re-recorded at a newer position) are
            # skipped; the first live pair holds the minimal position, i.e.
            # exactly the victim a full min-scan of the index would find.
            while True:
                position, stale = order.popleft()
                if index.get(stale) == position:
                    del index[stale]
                    break

    # ------------------------------------------------------------------
    def on_access(self, ctx: AccessContext) -> List[PrefetchRequest]:
        if ctx.hit and not self.config.train_on_hits:
            return []
        key = self._key(ctx.addr)
        position = self._index.get(key, -1)
        requests: List[PrefetchRequest] = []
        entry = self._entry_at(position)
        if entry is not None:
            # Found a previous occurrence of this miss address: prefetch the
            # addresses that followed it last time.
            self.correlation_hits += 1
            for offset in range(1, self.config.degree + 1):
                successor = self._entry_at(position + offset)
                if successor is None:
                    break
                line = self._key(successor.addr) * self.config.line_size
                requests.append(PrefetchRequest(addr=line, size=self.config.line_size))
        self._record(ctx.addr)
        return requests

    def reset(self) -> None:
        self._buffer = [None] * self.config.buffer_size
        self._head = 0
        self._index.clear()
        self._order.clear()
        self.correlation_hits = 0
