"""Global History Buffer (GHB) correlation prefetcher.

The paper compares against a correlation prefetcher based on the GHB of
Nesbit & Smith (Section 5.4) and finds it provides no benefit on these
workloads: indirect access streams are far too long and too irregular to
repeat within a reasonably sized history buffer.  We implement the classic
G/AC (global, address-correlating) organisation:

* a circular *history buffer* of recent miss addresses, each entry linked to
  the previous entry with the same key,
* an *index table* mapping a key (the miss address) to the most recent
  history-buffer entry for that key,
* on a miss, the prefetcher follows the chain to the previous occurrence of
  the same address and prefetches the addresses that followed it last time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.prefetchers.base import AccessContext, PrefetcherBase, PrefetchRequest


@dataclass
class GHBConfig:
    """GHB geometry."""

    buffer_size: int = 256
    index_table_size: int = 256
    degree: int = 2                # addresses prefetched per correlation hit
    line_size: int = 64
    train_on_hits: bool = False    # classic GHB trains on the miss stream only


#: Shared empty result for the no-prefetch case (never mutated; callers
#: treat the return value of ``on_access`` as read-only).
_NO_REQUESTS: List[PrefetchRequest] = []


class GHBPrefetcher(PrefetcherBase):
    """Global History Buffer, address-correlating organisation.

    The history buffer is stored as two flat preallocated columns (miss
    address and same-key predecessor link, indexed by ``position %
    buffer_size``) rather than per-entry objects, and the recency order of
    index-table keys as a pair of lockstep deques — recording a miss, the
    per-access steady-state operation, allocates nothing.
    """

    __slots__ = ("config", "_buf_addr", "_buf_prev", "_head", "_index",
                 "_order_pos", "_order_key", "correlation_hits",
                 "observes_hits", "_buffer_size", "_index_size", "_degree",
                 "_line_size", "_order_bound")

    name = "ghb"

    def __init__(self, config: Optional[GHBConfig] = None) -> None:
        self.config = config or GHBConfig()
        # The classic GHB trains on the miss stream only: on_access with a
        # hit is a no-op, so the memory system may skip notifying it.
        self.observes_hits = self.config.train_on_hits
        # Geometry scalars, hoisted out of the per-miss path.
        self._buffer_size = self.config.buffer_size
        self._index_size = self.config.index_table_size
        self._degree = self.config.degree
        self._line_size = self.config.line_size
        self._order_bound = 4 * self._index_size + 64
        self._buf_addr: List[int] = [-1] * self._buffer_size
        self._buf_prev: List[int] = [-1] * self._buffer_size
        self._head = 0             # next write position (monotonic counter)
        self._index: Dict[int, int] = {}
        #: (position, key) pairs in insertion order, split across two
        #: lockstep deques; used to find the least-recently-recorded key in
        #: amortised O(1) instead of scanning the whole index table on
        #: every recorded miss.
        self._order_pos: Deque[int] = deque()
        self._order_key: Deque[int] = deque()
        self.correlation_hits = 0

    # ------------------------------------------------------------------
    def _key(self, addr: int) -> int:
        return (addr // self.config.line_size)

    def _slot(self, position: int) -> int:
        return position % self.config.buffer_size

    def _addr_at(self, position: int) -> int:
        """Recorded miss address at a history position; -1 if overwritten."""
        if position < 0 or position < self._head - self._buffer_size:
            return -1
        return self._buf_addr[position % self._buffer_size]

    def _record(self, addr: int) -> None:
        key = addr // self._line_size
        index = self._index
        head = self._head
        slot = head % self._buffer_size
        self._buf_addr[slot] = addr
        self._buf_prev[slot] = index.get(key, -1)
        index[key] = head
        order_pos = self._order_pos
        order_key = self._order_key
        order_pos.append(head)
        order_key.append(key)
        self._head = head + 1
        if len(order_pos) > self._order_bound:
            # Compact: drop stale pairs (keys since re-recorded at a newer
            # position).  The live pairs, kept in position order, are
            # exactly what victim selection consults, so this is a pure
            # space bound — without it the deques grow by one pair per
            # recorded miss whenever the index table never overflows.
            live = sorted((position, k) for k, position in index.items())
            self._order_pos = order_pos = deque(p for p, _ in live)
            self._order_key = order_key = deque(k for _, k in live)
        if len(index) > self._index_size:
            # Evict the key whose last record is oldest.  Stale deque pairs
            # (whose key has since been re-recorded at a newer position) are
            # skipped; the first live pair holds the minimal position, i.e.
            # exactly the victim a full min-scan of the index would find.
            while True:
                position = order_pos.popleft()
                stale = order_key.popleft()
                if index.get(stale) == position:
                    del index[stale]
                    break

    # ------------------------------------------------------------------
    def on_access(self, ctx: AccessContext) -> List[PrefetchRequest]:
        if ctx.hit and not self.config.train_on_hits:
            return _NO_REQUESTS
        addr = ctx.addr
        line_size = self._line_size
        position = self._index.get(addr // line_size, -1)
        requests = _NO_REQUESTS
        if position >= self._head - self._buffer_size and position >= 0:
            # Found a previous occurrence of this miss address: prefetch the
            # addresses that followed it last time.
            self.correlation_hits += 1
            requests = []
            for offset in range(1, self._degree + 1):
                successor = self._addr_at(position + offset)
                if successor < 0:
                    break
                line = successor // line_size * line_size
                requests.append(PrefetchRequest(addr=line, size=line_size))
        self._record(addr)
        return requests

    def reset(self) -> None:
        self._buf_addr = [-1] * self._buffer_size
        self._buf_prev = [-1] * self._buffer_size
        self._head = 0
        self._index.clear()
        self._order_pos.clear()
        self._order_key.clear()
        self.correlation_hits = 0
