"""Hardware prefetchers: the baselines IMP is compared against.

The Indirect Memory Prefetcher itself lives in :mod:`repro.core`; this
package holds the prefetcher interface and the paper's baselines (stream
prefetcher, GHB correlation prefetcher, and a null prefetcher).
"""

from repro.prefetchers.base import AccessContext, PrefetcherBase, PrefetchRequest
from repro.prefetchers.null import NullPrefetcher
from repro.prefetchers.stream import StreamPrefetcher, StreamPrefetcherConfig
from repro.prefetchers.ghb import GHBPrefetcher, GHBConfig
from repro.registry import PREFETCHERS

# ----------------------------------------------------------------------
# Registry entries (see repro.registry for the factory contract).  The
# ``imp`` prefetcher registers itself in repro.core.imp, next to its
# implementation.
# ----------------------------------------------------------------------
PREFETCHERS.register(
    "none", lambda core_id, **_: NullPrefetcher(),
    description="no prefetching (the paper's NoPref baseline)")

PREFETCHERS.register(
    "stream",
    lambda core_id, stream_config=None, **_:
        StreamPrefetcher(stream_config or StreamPrefetcherConfig()),
    description="stride/stream prefetcher (the paper's Base configuration)",
    config_cls=StreamPrefetcherConfig)

PREFETCHERS.register(
    "ghb",
    lambda core_id, ghb_config=None, **_:
        GHBPrefetcher(ghb_config or GHBConfig()),
    description="Global History Buffer G/DC correlation prefetcher",
    config_cls=GHBConfig)

__all__ = [
    "AccessContext",
    "GHBConfig",
    "GHBPrefetcher",
    "NullPrefetcher",
    "PrefetchRequest",
    "PrefetcherBase",
    "StreamPrefetcher",
    "StreamPrefetcherConfig",
]
