"""Hardware prefetchers: the baselines IMP is compared against.

The Indirect Memory Prefetcher itself lives in :mod:`repro.core`; this
package holds the prefetcher interface and the paper's baselines (stream
prefetcher, GHB correlation prefetcher, and a null prefetcher).
"""

from repro.prefetchers.base import AccessContext, PrefetcherBase, PrefetchRequest
from repro.prefetchers.null import NullPrefetcher
from repro.prefetchers.stream import StreamPrefetcher, StreamPrefetcherConfig
from repro.prefetchers.ghb import GHBPrefetcher, GHBConfig

__all__ = [
    "AccessContext",
    "GHBConfig",
    "GHBPrefetcher",
    "NullPrefetcher",
    "PrefetchRequest",
    "PrefetcherBase",
    "StreamPrefetcher",
    "StreamPrefetcherConfig",
]
