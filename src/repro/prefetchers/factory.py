"""Prefetcher factory resolution.

Turns a prefetcher *spec* — a :data:`repro.registry.PREFETCHERS` name or a
``core_id -> PrefetcherBase`` callable — into a per-instance factory.  This
lives next to the prefetcher interface (rather than in
:mod:`repro.sim.system`, its historical home, from which it is still
re-exported) so the memory hierarchy can resolve the explicitly named
prefetchers of a multi-attach :class:`~repro.sim.config.HierarchyConfig`
without importing the system builder.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.prefetchers.base import PrefetcherBase
from repro.registry import PREFETCHERS

PrefetcherSpec = Union[str, Callable[[int], PrefetcherBase]]


def make_prefetcher_factory(spec: PrefetcherSpec,
                            mem_image=None,
                            imp_config=None,
                            stream_config=None,
                            ghb_config=None,
                            ) -> Callable[[int], PrefetcherBase]:
    """Build a per-core prefetcher factory from a registry name or callable.

    Names are resolved through :data:`repro.registry.PREFETCHERS` (stock:
    ``"none"``, ``"stream"``, ``"ghb"``, ``"imp"``); an unknown name raises
    a :class:`repro.registry.RegistryError` listing the registered choices.
    """
    if callable(spec):
        return spec
    entry = PREFETCHERS.get(spec.lower())
    factory = entry.factory
    return lambda core_id: factory(core_id, mem_image=mem_image,
                                   imp_config=imp_config,
                                   stream_config=stream_config,
                                   ghb_config=ghb_config)


__all__ = ["PrefetcherSpec", "make_prefetcher_factory"]
