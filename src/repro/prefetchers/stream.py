"""PC-associated stream/stride prefetcher (the paper's baseline).

Each L1 in the baseline system has "a traditional stream prefetcher working
at word granularity" (Section 3.2).  The implementation here follows the
classic reference-prediction-table design of Chen & Baer:

* a small table of entries indexed by the PC of the load,
* each entry tracks the last address, the detected stride and a confidence
  counter (``hit_cnt``),
* once confidence reaches a threshold the prefetcher issues prefetches a
  growing distance ahead of the demand stream, one cache line at a time,
* the prefetch distance ramps up linearly with further stream hits.

This same component is embedded inside IMP as the *Stream Table* half of the
Prefetch Table (Figure 5); IMP composes it rather than re-implementing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.prefetchers.base import AccessContext, PrefetcherBase, PrefetchRequest


@dataclass
class StreamPrefetcherConfig:
    """Tuning knobs for the stream prefetcher."""

    table_size: int = 16
    train_threshold: int = 2       # stream hits before prefetching starts
    initial_distance: int = 1      # lines ahead when prefetching starts
    max_distance: int = 4          # maximum lines ahead
    degree: int = 1                # lines issued per trigger
    line_size: int = 64
    max_hit_cnt: int = 15          # saturating counter ceiling


@dataclass(slots=True)
class StreamEntry:
    """One entry of the stream table (Figure 5, left half)."""

    pc: int
    addr: int                      # most recently accessed address
    stride: int = 0
    hit_cnt: int = 0
    distance: int = 1              # current prefetch distance in lines
    last_prefetched_line: int = -1
    last_use: float = 0.0

    def is_trained(self, threshold: int) -> bool:
        return self.stride != 0 and self.hit_cnt >= threshold


class StreamPrefetcher(PrefetcherBase):
    """Stride/stream prefetcher with PC-indexed entries."""

    __slots__ = ("config", "_table", "streams_detected")

    name = "stream"

    def __init__(self, config: Optional[StreamPrefetcherConfig] = None) -> None:
        self.config = config or StreamPrefetcherConfig()
        self._table: Dict[int, StreamEntry] = {}
        self.streams_detected = 0

    # ------------------------------------------------------------------
    # Table management
    # ------------------------------------------------------------------
    def lookup(self, pc: int) -> Optional[StreamEntry]:
        """Return the stream entry for a PC, if present."""
        return self._table.get(pc)

    def entries(self) -> List[StreamEntry]:
        return list(self._table.values())

    def _allocate(self, pc: int, addr: int, now: float) -> StreamEntry:
        if len(self._table) >= self.config.table_size:
            victim_pc = min(self._table, key=lambda p: self._table[p].last_use)
            del self._table[victim_pc]
        entry = StreamEntry(pc=pc, addr=addr, last_use=now,
                            distance=self.config.initial_distance)
        self._table[pc] = entry
        return entry

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def observe(self, pc: int, addr: int, now: float) -> Optional[StreamEntry]:
        """Update the table with one access; return the entry when it is a
        *stream hit* (i.e. the access continues a known stream), else None.
        """
        entry = self._table.get(pc)
        if entry is None:
            self._allocate(pc, addr, now)
            return None
        entry.last_use = now
        delta = addr - entry.addr
        if delta == 0:
            return None
        if entry.stride == delta:
            # is_trained(), inlined: stride is known non-zero here.
            threshold = self.config.train_threshold
            hit_cnt = entry.hit_cnt
            if hit_cnt < self.config.max_hit_cnt:
                entry.hit_cnt = hit_cnt + 1
                if hit_cnt + 1 == threshold:
                    self.streams_detected += 1
            entry.addr = addr
            return entry
        # Stride changed: lose some confidence, adopt the new stride only
        # after confidence has drained (hysteresis against noise).
        if entry.hit_cnt > 0:
            entry.hit_cnt -= 1
        else:
            entry.stride = delta
        entry.addr = addr
        return None

    def reposition(self, pc: int, addr: int, now: float) -> None:
        """Restart a known stream at a new position without re-learning.

        Used for the nested-loop optimisation (Section 3.3.1): when an outer
        loop begins a new inner loop, the stream from the same PC simply
        continues from a new base address.
        """
        entry = self._table.get(pc)
        if entry is None:
            self._allocate(pc, addr, now)
        else:
            entry.addr = addr
            entry.last_use = now

    # ------------------------------------------------------------------
    # Prefetch generation
    # ------------------------------------------------------------------
    def prefetches_for(self, entry: StreamEntry, addr: int) -> List[PrefetchRequest]:
        """Prefetch requests triggered by a stream hit of ``entry`` at ``addr``."""
        cfg = self.config
        stride = entry.stride
        if stride == 0 or entry.hit_cnt < cfg.train_threshold:
            return []
        if entry.distance < cfg.max_distance:
            entry.distance += 1
        line_size = cfg.line_size
        if cfg.degree == 1:
            # Common case, kept allocation-free when the dedup filter hits.
            scale = line_size // abs(stride)
            target = addr + stride * entry.distance * (scale if scale else 1)
            target_line = target // line_size
            if target_line == entry.last_prefetched_line:
                return []
            entry.last_prefetched_line = target_line
            return [PrefetchRequest(addr=target_line * line_size,
                                    size=line_size)]
        requests: List[PrefetchRequest] = []
        for step in range(cfg.degree):
            target = addr + stride * (entry.distance + step) * \
                max(1, line_size // max(1, abs(stride)))
            target_line = target // line_size
            if target_line == entry.last_prefetched_line:
                continue
            entry.last_prefetched_line = target_line
            requests.append(PrefetchRequest(addr=target_line * line_size,
                                            size=line_size))
        return requests

    def on_access(self, ctx: AccessContext) -> List[PrefetchRequest]:
        entry = self.observe(ctx.pc, ctx.addr, ctx.now)
        if entry is None:
            return []
        return self.prefetches_for(entry, ctx.addr)

    def reset(self) -> None:
        self._table.clear()
        self.streams_detected = 0
