"""A prefetcher that never issues prefetches (no-prefetching baseline)."""

from __future__ import annotations

from typing import List

from repro.prefetchers.base import AccessContext, PrefetcherBase, PrefetchRequest


class NullPrefetcher(PrefetcherBase):
    """Disable hardware prefetching entirely."""

    __slots__ = ()

    name = "none"

    def on_access(self, ctx: AccessContext) -> List[PrefetchRequest]:
        return []
