"""Prefetcher interface.

A prefetcher is attached to one L1 data cache.  The memory hierarchy calls
:meth:`PrefetcherBase.on_access` for every demand access the L1 sees (both
hits and misses, as in the paper: IMP "snoops the access and miss stream of
the cache"), and the prefetcher returns a list of :class:`PrefetchRequest`
that the hierarchy then issues asynchronously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass
class AccessContext:
    """Everything a hardware prefetcher can observe about one L1 access."""

    core_id: int
    pc: int
    addr: int
    size: int
    is_write: bool
    hit: bool
    now: float
    #: Callback returning the integer value the load returned (``None`` when
    #: the location is not backed by data).  Hardware sees load return values
    #: on the cache fill/response path; this models that visibility without
    #: storing data in the cache model.
    read_value: Callable[[], Optional[int]] = field(default=lambda: None)


@dataclass
class PrefetchRequest:
    """A prefetch the hierarchy should issue on behalf of a prefetcher."""

    addr: int
    size: int = 64                 # bytes to fetch (partial accessing uses < 64)
    is_indirect: bool = False      # an A[B[i]] prefetch (vs. a stream prefetch)
    depends_on_previous: bool = False
    #: Second-level indirection: the prefetch address can only be computed
    #: after the previous request in this list has returned (Section 3.3.2).
    exclusive: bool = False        # request the line in Exclusive state


class PrefetcherBase:
    """Base class: a prefetcher that never prefetches."""

    name = "base"

    def on_access(self, ctx: AccessContext) -> List[PrefetchRequest]:
        """Observe one demand access; return prefetches to issue."""
        return []

    def on_fill(self, addr: int, now: float) -> List[PrefetchRequest]:
        """Observe a fill completing (used for prefetch chaining)."""
        return []

    def on_eviction(self, addr: int, touched_sectors: int, now: float) -> None:
        """Observe an L1 eviction (used by the granularity predictor)."""

    def reset(self) -> None:
        """Clear all learned state."""
