"""Prefetcher interface.

A prefetcher is attached to one L1 data cache.  The memory hierarchy calls
:meth:`PrefetcherBase.on_access` for every demand access the L1 sees (both
hits and misses, as in the paper: IMP "snoops the access and miss stream of
the cache"), and the prefetcher returns a list of :class:`PrefetchRequest`
that the hierarchy then issues asynchronously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass(slots=True)
class AccessContext:
    """Everything a hardware prefetcher can observe about one L1 access.

    .. warning:: The memory hierarchy reuses **one mutable instance** across
       all accesses (and all cores) and rebinds its fields per access.  A
       prefetcher must consume the context inside ``on_access`` — never
       retain the object, and never call ``read_value`` after returning —
       or it will observe fields from a later, unrelated access.
    """

    core_id: int
    pc: int
    addr: int
    size: int
    is_write: bool
    hit: bool
    now: float
    #: Callback returning the integer value the load returned (``None`` when
    #: the location is not backed by data).  Hardware sees load return values
    #: on the cache fill/response path; this models that visibility without
    #: storing data in the cache model.
    read_value: Callable[[], Optional[int]] = field(default=lambda: None)


class PrefetchRequest:
    """A prefetch the hierarchy should issue on behalf of a prefetcher.

    A plain ``__slots__`` class rather than a dataclass: prefetch-heavy runs
    construct one of these per generated prefetch, which makes allocation
    cost measurable.
    """

    __slots__ = ("addr", "size", "is_indirect", "depends_on_previous",
                 "exclusive")

    def __init__(self, addr: int, size: int = 64, is_indirect: bool = False,
                 depends_on_previous: bool = False,
                 exclusive: bool = False) -> None:
        self.addr = addr
        self.size = size               # bytes to fetch (partial uses < 64)
        self.is_indirect = is_indirect  # an A[B[i]] prefetch (vs. stream)
        #: Second-level indirection: the prefetch address can only be
        #: computed after the previous request in this list has returned
        #: (Section 3.3.2).
        self.depends_on_previous = depends_on_previous
        self.exclusive = exclusive     # request the line in Exclusive state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PrefetchRequest(addr={self.addr:#x}, size={self.size}, "
                f"is_indirect={self.is_indirect}, "
                f"depends_on_previous={self.depends_on_previous}, "
                f"exclusive={self.exclusive})")

    def __eq__(self, other) -> bool:
        if not isinstance(other, PrefetchRequest):
            return NotImplemented
        return (self.addr == other.addr and self.size == other.size
                and self.is_indirect == other.is_indirect
                and self.depends_on_previous == other.depends_on_previous
                and self.exclusive == other.exclusive)


class PrefetcherBase:
    """Base class: a prefetcher that never prefetches.

    Declares empty ``__slots__`` so that slot-using subclasses (the stock
    prefetchers are all on per-access hot paths) actually get dict-free
    instances; subclasses that don't declare ``__slots__`` still work and
    simply fall back to a dict.
    """

    __slots__ = ()

    name = "base"

    #: True when ``on_access`` observes (or could react to) cache *hits*.
    #: Prefetchers that train on the miss stream only (the classic GHB)
    #: override this with False, which lets the memory system skip the
    #: whole notification path — context rebinding, the ``on_access`` call
    #: and its empty result — on the overwhelmingly common L1 hit, and
    #: lets core models keep hits entirely core-local.  Only set it to
    #: False when ``on_access`` with ``ctx.hit`` is a provable no-op.
    observes_hits = True

    def on_access(self, ctx: AccessContext) -> List[PrefetchRequest]:
        """Observe one demand access; return prefetches to issue."""
        return []

    def on_fill(self, addr: int, now: float) -> List[PrefetchRequest]:
        """Observe a fill completing (used for prefetch chaining)."""
        return []

    def on_eviction(self, addr: int, touched_sectors: int, now: float) -> None:
        """Observe an L1 eviction (used by the granularity predictor)."""

    def reset(self) -> None:
        """Clear all learned state."""
