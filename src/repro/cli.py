"""Command-line interface.

Installed as the ``repro`` console script (also runnable as
``python -m repro.cli``).  Sub-commands:

* ``list``           — enumerate every registered component (prefetchers,
  DRAM models, workloads, experiment modes) with one-line descriptions.
* ``list-workloads`` — show the available paper and synthetic workloads.
* ``run``            — simulate one workload under one configuration and
  print runtime, coverage, accuracy and traffic.  ``--scenario file.json``
  runs a declarative scenario instead (see
  :mod:`repro.experiments.scenario`): workload, mode, core count and
  config overrides — including explicit cache hierarchies — all come from
  the file, and ``--expect-fingerprint`` turns the run into a
  reproducibility check.
* ``compare``        — run the paper's named configurations side by side for
  one workload (a one-workload slice of Figure 9 / 11).
* ``figure``         — regenerate one of the paper's figures/tables.
  ``--scenario file.json`` takes the *platform* from a scenario file
  (system config including an explicit hierarchy and prefetcher attach
  points, core count, IMP overrides) while the figure's own
  workload/mode grid still applies.
* ``table``          — the table-shaped subset of ``figure`` (same
  options, including ``--scenario``).
* ``sweep``          — regenerate many figures in one batched sweep:
  every required simulation is declared up front, deduplicated, executed
  across ``--jobs`` worker processes, and memoised in the persistent
  on-disk result cache (``--cache-dir``, default ``results/cache``), so
  re-running only simulates what changed.  The executor is
  fault-tolerant: ``--timeout`` bounds each run's wall clock,
  ``--retries``/``--backoff`` govern recovery from worker death and
  transient exceptions, ``--keep-going``/``--fail-fast`` pick the exit
  strategy (permanent failures land in ``results/failures.json`` and
  exit code 3), progress is journalled under the cache directory, and
  ``--resume`` restarts a killed sweep from where it died.  Ctrl-C /
  SIGTERM shut the pool down cleanly, flush the journal and exit with
  code 130 / 143.
* ``serve``          — run the sweep service: a long-running versioned
  REST API (``POST /v1/jobs`` submits scenario JSON, ``GET /v1/jobs/<id>``
  polls, ``GET /v1/results/<digest>`` fetches cached results, plus
  ``/v1/registries`` and ``/healthz``/``/readyz`` probes) over a
  crash-safe durable job queue: every state transition is fsynced to a
  journal under the cache directory, a killed server replays it on
  restart, re-enqueues interrupted jobs and never re-executes completed
  ones.  The admission queue is bounded (429 + ``Retry-After`` when
  full); SIGTERM stops admissions, drains up to ``--drain-timeout``
  seconds, journals the rest as interrupted and exits 143.
* ``cache``          — cache maintenance; ``repro cache doctor`` lists
  (and with ``--purge`` deletes) records the self-healing cache has
  quarantined as corrupt.
* ``cost``           — print the Section 6.4 storage/energy cost report.
* ``bench``          — run the wall-clock performance harness
  (``benchmarks/perf/bench_sim.py``) and optionally write/check a
  ``BENCH_<n>.json`` trajectory file; ``--sweep`` benchmarks the parallel
  sweep engine itself, ``--ab-kernels`` times two or more NoC kernel
  backends interleaved in the same session (the drift-immune way to make
  kernel speed claims), and ``--sweep-scaling`` measures multi-worker
  sweep scaling (recorded as a documented skip on single-CPU hosts).
* ``profile``        — run one workload/prefetcher under cProfile and
  attribute self-time to simulator subsystems (cache, directory, DRAM,
  NoC, prefetcher, core/scheduler); the tool that drives the hot-path
  perf PRs.
"""

from __future__ import annotations

import argparse
import contextlib
import signal
import sys
from typing import List, Optional, Sequence

from repro.core.config import IMPConfig
from repro.experiments import ExperimentRunner, figures, scaled_config
from repro.experiments.configs import CONFIG_MODES, experiment_config
from repro.experiments.scenario import ScenarioError, load_scenario
from repro.registry import ALL_REGISTRIES, PREFETCHERS, SWEEP_BACKENDS
from repro.sim.system import run_workload
from repro.workloads import PAPER_WORKLOADS, REGULAR_WORKLOADS, make_workload
from repro.workloads.synthetic import IndirectStreamWorkload, StreamingWorkload

#: Figure names accepted by ``repro figure``.
FIGURES = {
    "fig1": lambda runner, cores: figures.fig01_miss_breakdown(runner, cores),
    "fig2": lambda runner, cores: figures.fig02_motivation(runner, cores),
    "fig9": lambda runner, cores: figures.fig09_performance(
        runner, core_counts=(cores,))[cores],
    "table3": lambda runner, cores: figures.table3_effectiveness(runner, cores),
    "fig10": lambda runner, cores: figures.fig10_sw_overhead(runner, cores),
    "fig11": lambda runner, cores: figures.fig11_partial(
        runner, core_counts=(cores,))[cores],
    "fig12": lambda runner, cores: figures.fig12_traffic(runner, cores),
    "fig14": lambda runner, cores: figures.fig14_pt_size(runner, cores),
    "fig15": lambda runner, cores: figures.fig15_ipd_size(runner, cores),
    "fig16": lambda runner, cores: figures.fig16_prefetch_distance(runner, cores),
}


#: Exit codes of the ``sweep`` command's failure-semantics contract (see
#: README "Operations & failure semantics"): 0 success, 1 fingerprint
#: mismatch, 2 usage error, 3 runs permanently failed, 130/143 when
#: interrupted by SIGINT/SIGTERM (journal flushed, pool shut down).
EXIT_RUN_FAILURES = 3
EXIT_INTERRUPTED = 130
EXIT_TERMINATED = 143


class _Terminated(Exception):
    """SIGTERM arrived; unwind like Ctrl-C but exit with its own code."""


@contextlib.contextmanager
def _sigterm_raises():
    """Turn SIGTERM into an exception so sweeps can flush the journal and
    shut the pool down instead of dying mid-write."""

    def _handler(signum, frame):
        raise _Terminated()

    try:
        previous = signal.signal(signal.SIGTERM, _handler)
    except ValueError:      # not the main thread (embedded use): no-op
        previous = None
    try:
        yield
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)


def _warn_quarantined(cache_dir, out) -> None:
    """One-line heads-up (never a crash) when the cache holds quarantined
    records; ``repro cache doctor`` has the details."""
    from repro.experiments.sweep import list_quarantined

    try:
        entries = list_quarantined(cache_dir)
    except OSError:
        return
    if entries:
        print(f"[cache] warning: {len(entries)} quarantined record(s) "
              f"under {cache_dir}/quarantine — inspect or purge with "
              f"'repro cache doctor --cache-dir {cache_dir}'", file=out)


def _jobs_arg(value: str) -> int:
    """``--jobs`` values under the one documented rule: a non-negative
    integer, where ``0`` means auto (one worker per CPU).  Anything else
    is a usage error (exit 2), not a traceback."""
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid jobs value {value!r}: expected a non-negative "
            f"integer (0 = auto: one worker per CPU)") from None
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"invalid jobs value {jobs}: expected a non-negative "
            f"integer (0 = auto: one worker per CPU)")
    return jobs


def _all_workload_names() -> List[str]:
    return (sorted(PAPER_WORKLOADS) + sorted(REGULAR_WORKLOADS)
            + ["indirect_stream", "streaming"])


def _make_named_workload(name: str, seed: int):
    if name in PAPER_WORKLOADS:
        return make_workload(name, seed=seed)
    if name in REGULAR_WORKLOADS:
        return REGULAR_WORKLOADS[name](seed=seed)
    if name == "indirect_stream":
        return IndirectStreamWorkload(seed=seed)
    if name == "streaming":
        return StreamingWorkload(seed=seed)
    raise SystemExit(f"unknown workload {name!r}; "
                     f"try: {', '.join(_all_workload_names())}")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IMP (Indirect Memory Prefetcher, MICRO 2015) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-workloads", help="list available workloads")

    list_parser = sub.add_parser(
        "list", help="list registered components (prefetchers, DRAM models, "
                     "workloads, experiment modes)")
    list_parser.add_argument("registry", nargs="?", default=None,
                             choices=sorted(ALL_REGISTRIES),
                             help="show one registry only (default: all)")

    run_parser = sub.add_parser(
        "run", help="simulate one workload (or a --scenario file)")
    run_parser.add_argument("workload", nargs="?", default=None,
                            help="workload name (see list-workloads); "
                                 "omit when using --scenario")
    run_parser.add_argument("--scenario", default=None, metavar="FILE",
                            help="run a declarative JSON scenario instead "
                                 "of a named workload")
    run_parser.add_argument("--expect-fingerprint", default=None,
                            metavar="FILE",
                            help="with --scenario: compare the run's stat "
                                 "fingerprint against this JSON file and "
                                 "exit non-zero on mismatch")
    run_parser.add_argument("--write-fingerprint", default=None,
                            metavar="FILE",
                            help="with --scenario: write the run's stat "
                                 "fingerprint to this JSON file")
    run_parser.add_argument("--jobs", type=_jobs_arg, default=None,
                            help="sweep worker processes for --scenario "
                                 "(default: $REPRO_JOBS, else 1; "
                                 "0 = auto)")
    run_parser.add_argument("--cache-dir", default=None,
                            help="persistent result cache for --scenario "
                                 "(default: off)")
    # Defaults resolved in _command_run (None = not given) so that flags a
    # --scenario file would override can be rejected instead of silently
    # ignored.
    run_parser.add_argument("--prefetcher", default=None,
                            choices=PREFETCHERS.names(),
                            help="prefetcher for a named workload "
                                 "(default: imp)")
    run_parser.add_argument("--cores", type=int, default=None,
                            help="core count for a named workload "
                                 "(default: 16)")
    run_parser.add_argument("--seed", type=int, default=None,
                            help="workload seed for a named workload "
                                 "(default: 1)")
    run_parser.add_argument("--partial", action="store_true",
                            help="enable partial cacheline accessing (NoC+DRAM)")
    run_parser.add_argument("--software-prefetch", action="store_true")
    run_parser.add_argument("--ooo", action="store_true",
                            help="use the out-of-order core model")

    compare_parser = sub.add_parser(
        "compare", help="run the paper's named configurations for one workload")
    compare_parser.add_argument("workload")
    compare_parser.add_argument("--cores", type=int, default=16)
    compare_parser.add_argument("--seed", type=int, default=1)
    compare_parser.add_argument("--modes", nargs="+",
                                default=["ideal", "perfpref", "base", "swpref",
                                         "imp", "imp_partial_noc_dram"],
                                choices=list(CONFIG_MODES))

    figure_parser = sub.add_parser("figure", help="regenerate a paper figure")
    figure_parser.add_argument("name", choices=sorted(FIGURES))
    _add_figure_options(figure_parser)

    table_parser = sub.add_parser(
        "table", help="regenerate a paper table (the table-shaped subset "
                      "of `figure`)")
    table_parser.add_argument("name",
                              choices=sorted(name for name in FIGURES
                                             if name.startswith("table")))
    _add_figure_options(table_parser)

    sweep_parser = sub.add_parser(
        "sweep", help="regenerate many figures in one batched parallel "
                      "sweep, or run a directory of scenario files")
    sweep_parser.add_argument("--figures", nargs="+", default=None,
                              choices=sorted(FIGURES),
                              help="figures to build (default: all)")
    sweep_parser.add_argument("--scenario-dir", default=None, metavar="DIR",
                              help="instead of figures: run every *.json "
                                   "scenario in DIR through the sweep "
                                   "engine/cache, checking any sibling "
                                   "*.fingerprint.json expectations")
    sweep_parser.add_argument("--cores", type=int, nargs="+", default=[16],
                              help="core counts (fig9/fig11 sweep them all; "
                                   "other figures use the first)")
    sweep_parser.add_argument("--scale", type=float, default=0.35)
    sweep_parser.add_argument("--seed", type=int, default=1)
    _add_sweep_options(sweep_parser)
    sweep_parser.add_argument("--timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="per-run wall-clock timeout in seconds "
                                   "(enforced on the worker pool; a batch "
                                   "of N runs gets N× the budget; "
                                   "default: none)")
    sweep_parser.add_argument("--retries", type=int, default=2,
                              help="additional attempts for a run that "
                                   "times out, dies with its worker, or "
                                   "raises (default: 2)")
    sweep_parser.add_argument("--backoff", type=float, default=0.5,
                              metavar="SECONDS",
                              help="base retry backoff; doubles per "
                                   "attempt (default: 0.5)")
    sweep_parser.add_argument("--resume", action="store_true",
                              help="resume an interrupted sweep: reuse "
                                   "its journal under --cache-dir and "
                                   "skip work the result cache already "
                                   "holds (requires the cache)")
    exit_policy = sweep_parser.add_mutually_exclusive_group()
    exit_policy.add_argument("--keep-going", dest="fail_fast",
                             action="store_false", default=False,
                             help="run everything despite permanent "
                                  "failures, then exit 3 (default)")
    exit_policy.add_argument("--fail-fast", dest="fail_fast",
                             action="store_true",
                             help="abandon outstanding work at the first "
                                  "permanent failure")
    sweep_parser.add_argument("--failures-out", default="results/failures.json",
                              metavar="FILE",
                              help="structured failure report destination "
                                   "(default: results/failures.json)")

    serve_parser = sub.add_parser(
        "serve", help="run the crash-safe sweep service (versioned REST "
                      "API over a durable job queue)")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default: 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8378,
                              help="TCP port; 0 picks a free port and the "
                                   "bound port is printed as port=N for "
                                   "scripting (default: 8378)")
    serve_parser.add_argument("--cache-dir", default="results/cache",
                              help="persistent result cache + job journal "
                                   "directory (default: results/cache)")
    serve_parser.add_argument("--queue-depth", type=int, default=64,
                              help="bounded admission queue depth; beyond "
                                   "it POSTs get 429 + Retry-After "
                                   "(default: 64)")
    serve_parser.add_argument("--jobs", type=_jobs_arg, default=None,
                              help="sweep worker processes per job "
                                   "(default: $REPRO_JOBS, else "
                                   "in-process; 0 = auto)")
    serve_parser.add_argument("--timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="per-run wall-clock timeout "
                                   "(default: none)")
    serve_parser.add_argument("--retries", type=int, default=2,
                              help="additional attempts per failing run "
                                   "(default: 2)")
    serve_parser.add_argument("--backoff", type=float, default=0.5,
                              metavar="SECONDS",
                              help="base retry backoff; doubles per "
                                   "attempt (default: 0.5)")
    serve_parser.add_argument("--drain-timeout", type=float, default=30.0,
                              metavar="SECONDS",
                              help="graceful-shutdown drain deadline; jobs "
                                   "still pending afterwards are journalled "
                                   "interrupted and recovered on the next "
                                   "boot (default: 30)")

    cache_parser = sub.add_parser(
        "cache", help="result-cache maintenance")
    cache_sub = cache_parser.add_subparsers(dest="cache_command",
                                            required=True)
    doctor_parser = cache_sub.add_parser(
        "doctor", help="inspect (and optionally purge) records the "
                       "self-healing cache quarantined as corrupt")
    doctor_parser.add_argument("--cache-dir", default="results/cache")
    doctor_parser.add_argument("--purge", action="store_true",
                               help="delete the quarantined records")

    sub.add_parser("cost", help="print the Section 6.4 hardware cost report")

    bench_parser = sub.add_parser(
        "bench", help="run the wall-clock performance harness")
    bench_parser.add_argument("--cores", type=int, default=16)
    bench_parser.add_argument("--seed", type=int, default=1)
    bench_parser.add_argument("--repeat", type=int, default=1)
    bench_parser.add_argument("--quick", action="store_true",
                              help="smaller inputs (CI smoke run)")
    bench_parser.add_argument("--out", default=None,
                              help="write the result JSON to this path")
    bench_parser.add_argument("--check", action="store_true",
                              help="compare against --baseline; exit non-zero "
                                   "on fingerprint mismatch or regression")
    bench_parser.add_argument("--baseline", default=None)
    bench_parser.add_argument("--budget", type=float, default=1.25,
                              help="allowed wall-clock ratio vs baseline")
    bench_parser.add_argument("--workloads", nargs="+", default=None,
                              metavar="WORKLOAD",
                              help="restrict the harness to these bench "
                                   "workloads")
    bench_parser.add_argument("--ab-kernels", nargs="+", default=None,
                              metavar="KERNEL",
                              help="two or more NoC reservation-kernel "
                                   "backends to A/B (N-way) in the same "
                                   "session (first = comparison baseline); "
                                   "embeds a kernel_ab section in the "
                                   "result document")
    bench_parser.add_argument("--sweep-scaling", action="store_true",
                              help="additionally measure multi-worker sweep "
                                   "scaling (--jobs 1 vs --jobs N) and embed "
                                   "a sweep_scaling section; records a "
                                   "documented skip on single-CPU hosts")
    bench_parser.add_argument("--sweep", action="store_true",
                              help="benchmark the multi-figure sweep engine "
                                   "(serial vs --jobs vs warm cache) instead "
                                   "of the per-scenario harness")
    bench_parser.add_argument("--scale", type=float, default=0.15,
                              help="workload scale for --sweep")
    bench_parser.add_argument("--jobs", type=_jobs_arg, default=None,
                              help="worker processes for --sweep (default: "
                                   "$REPRO_JOBS, else 4; 0 = auto)")

    profile_parser = sub.add_parser(
        "profile", help="profile one simulation run and attribute time to "
                        "simulator subsystems")
    profile_parser.add_argument("workload", nargs="?",
                                default="indirect_stream",
                                help="bench workload name (default: "
                                     "indirect_stream, the miss-heavy "
                                     "kernel)")
    profile_parser.add_argument("--prefetcher", default="imp",
                                choices=PREFETCHERS.names())
    profile_parser.add_argument("--cores", type=int, default=16)
    profile_parser.add_argument("--seed", type=int, default=1)
    profile_parser.add_argument("--quick", action="store_true",
                                help="smaller inputs (smoke run)")
    profile_parser.add_argument("--top", type=int, default=12,
                                help="number of individual functions to "
                                     "list (default: 12)")
    profile_parser.add_argument("--out", default=None,
                                help="write the attribution document as "
                                     "JSON to this path")
    return parser


def _add_figure_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by ``figure`` and ``table``."""
    parser.add_argument("--cores", type=int, default=None,
                        help="core count (default: 16; a --scenario file "
                             "sets it instead)")
    parser.add_argument("--scale", type=float, default=0.35)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--scenario", default=None, metavar="FILE",
                        help="take the platform from a scenario file — "
                             "system config (including an explicit cache "
                             "hierarchy and prefetcher attach points), "
                             "core count and IMP overrides; the figure's "
                             "own workload/mode grid still applies")
    _add_sweep_options(parser)


def _add_sweep_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=_jobs_arg, default=None,
                        help="worker processes for the sweep "
                             "(default: $REPRO_JOBS, else 1; "
                             "0 = auto: one worker per CPU)")
    parser.add_argument("--cache-dir", default="results/cache",
                        help="persistent result cache directory "
                             "(default: results/cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")
    parser.add_argument("--backend", default=None,
                        choices=SWEEP_BACKENDS.names(),
                        help="sweep execution backend (default: process; "
                             "'service' shards runs across repro serve "
                             "endpoints given with --shard)")
    parser.add_argument("--shard", action="append", default=None,
                        metavar="URL", dest="shards",
                        help="a repro serve base URL for --backend "
                             "service (repeatable; results are ingested "
                             "into the local cache)")


def _command_list(out) -> int:
    print("paper workloads   :", ", ".join(sorted(PAPER_WORKLOADS)), file=out)
    print("regular workloads :", ", ".join(sorted(REGULAR_WORKLOADS)), file=out)
    print("synthetic         : indirect_stream, streaming", file=out)
    return 0


def _command_registry_list(args, out) -> int:
    names = [args.registry] if args.registry else list(ALL_REGISTRIES)
    for index, registry_name in enumerate(names):
        registry = ALL_REGISTRIES[registry_name]
        if index:
            print(file=out)
        print(f"{registry_name} ({registry.kind}s):", file=out)
        # Entries whose implementation is absent on this host (e.g. the
        # compiled NoC kernel without its extension build) are hidden:
        # the listing shows what this host can actually run.
        entries = [entry for entry in registry.entries()
                   if entry.is_available()]
        width = max((len(entry.name) for entry in entries), default=0)
        for entry in entries:
            tags = f"  [{', '.join(entry.tags)}]" if entry.tags else ""
            print(f"  {entry.name:{width}s}  {entry.description}{tags}",
                  file=out)
    _warn_quarantined("results/cache", out)
    return 0


def _command_cache_doctor(args, out) -> int:
    from repro.experiments.sweep import list_quarantined, purge_quarantined

    entries = list_quarantined(args.cache_dir)
    if not entries:
        print(f"cache {args.cache_dir}: no quarantined records", file=out)
        return 0
    print(f"cache {args.cache_dir}: {len(entries)} quarantined record(s)",
          file=out)
    for entry in entries:
        try:
            size = entry.path.stat().st_size
        except OSError:
            size = 0
        print(f"  {entry.digest[:16]:16s}  {entry.reason:13s}  "
              f"{size:8d} bytes  {entry.path.name}", file=out)
    if args.purge:
        removed = purge_quarantined(args.cache_dir)
        print(f"purged {removed} quarantined record(s); the next sweep "
              f"recomputes them", file=out)
    else:
        print("re-run with --purge to delete them (the affected runs are "
              "recomputed on the next sweep either way)", file=out)
    return 0


def _command_run_scenario(args, out) -> int:
    import json

    conflicting = [flag for flag, given in (
        ("--prefetcher", args.prefetcher is not None),
        ("--cores", args.cores is not None),
        ("--seed", args.seed is not None),
        ("--partial", args.partial),
        ("--software-prefetch", args.software_prefetch),
        ("--ooo", args.ooo),
    ) if given]
    if conflicting:
        print(f"error: {', '.join(conflicting)} cannot be combined with "
              f"--scenario; the scenario file defines the configuration",
              file=out)
        return 2
    try:
        scenario = load_scenario(args.scenario)
    except ValueError as exc:
        # ScenarioError and RegistryError both subclass ValueError; either
        # way the message already lists the valid choices.
        print(f"error: {exc}", file=out)
        return 2
    expected = None
    if args.expect_fingerprint:
        # Read (and validate) the expectation before paying for the
        # simulation, so a bad path fails fast and cleanly.
        try:
            with open(args.expect_fingerprint) as handle:
                expected = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read expected fingerprint "
                  f"{args.expect_fingerprint}: {exc}", file=out)
            return 2
        if not isinstance(expected, dict):
            print(f"error: expected fingerprint "
                  f"{args.expect_fingerprint} must be a JSON object",
                  file=out)
            return 2
        expected = expected.get("fingerprint", expected)
    result = scenario.run(jobs=args.jobs, cache_dir=args.cache_dir,
                          use_cache=args.cache_dir is not None)
    stats = result.stats
    fingerprint = stats.fingerprint()
    label = scenario.name or scenario.workload
    hierarchy = result.config.resolved_hierarchy()
    shape = " -> ".join(
        f"{lvl.name}({lvl.scope})" for lvl in hierarchy.levels) + " -> dram"
    attach = ", ".join(
        f"{entry.prefetcher or result.prefetcher}@{entry.level}"
        for entry in hierarchy.attach) or "none"
    print(f"scenario          : {label}", file=out)
    if scenario.description:
        print(f"description       : {scenario.description}", file=out)
    print(f"workload          : {result.workload}", file=out)
    print(f"mode              : {scenario.mode}", file=out)
    print(f"cores             : {scenario.n_cores}", file=out)
    print(f"hierarchy         : {shape} "
          f"(prefetch: {attach})", file=out)
    print(f"runtime (cycles)  : {result.runtime_cycles}", file=out)
    print(f"throughput (IPC)  : {result.throughput:.3f}", file=out)
    print(f"prefetch coverage : {stats.coverage:.3f}", file=out)
    print(f"cache digest      : {scenario.digest()}", file=out)
    print(f"fingerprint       : {json.dumps(fingerprint, sort_keys=True)}",
          file=out)
    if args.write_fingerprint:
        with open(args.write_fingerprint, "w") as handle:
            json.dump({"scenario": label, "fingerprint": fingerprint},
                      handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote fingerprint : {args.write_fingerprint}", file=out)
    if expected is not None:
        if expected != fingerprint:
            print("FINGERPRINT MISMATCH", file=out)
            print(f"  expected: {json.dumps(expected, sort_keys=True)}",
                  file=out)
            print(f"  actual  : {json.dumps(fingerprint, sort_keys=True)}",
                  file=out)
            return 1
        print("fingerprint check : ok", file=out)
    return 0


def _command_run(args, out) -> int:
    if args.scenario is not None:
        if args.workload is not None:
            print("error: give either a workload name or --scenario, "
                  "not both", file=out)
            return 2
        return _command_run_scenario(args, out)
    if args.workload is None:
        print("error: a workload name (or --scenario FILE) is required; "
              "see 'repro list'", file=out)
        return 2
    scenario_only = [flag for flag, given in (
        ("--expect-fingerprint", args.expect_fingerprint is not None),
        ("--write-fingerprint", args.write_fingerprint is not None),
        ("--jobs", args.jobs is not None),
        ("--cache-dir", args.cache_dir is not None),
    ) if given]
    if scenario_only:
        print(f"error: {', '.join(scenario_only)} require(s) --scenario",
              file=out)
        return 2
    prefetcher = args.prefetcher if args.prefetcher is not None else "imp"
    cores = args.cores if args.cores is not None else 16
    seed = args.seed if args.seed is not None else 1
    workload = _make_named_workload(args.workload, seed)
    config = scaled_config(cores)
    if args.partial:
        config = config.with_partial(noc=True, dram=True)
    if args.ooo:
        config = config.with_ooo()
    imp_config = IMPConfig(partial_enabled=args.partial)
    result = run_workload(workload, config, prefetcher=prefetcher,
                          imp_config=imp_config,
                          software_prefetch=args.software_prefetch)
    stats = result.stats
    print(f"workload          : {result.workload}", file=out)
    print(f"prefetcher        : {result.prefetcher}", file=out)
    print(f"cores             : {cores}", file=out)
    print(f"runtime (cycles)  : {result.runtime_cycles}", file=out)
    print(f"throughput (IPC)  : {result.throughput:.3f}", file=out)
    print(f"L1 miss rate      : "
          f"{stats.total_l1_misses / max(1, stats.total_mem_accesses):.3f}",
          file=out)
    print(f"prefetch coverage : {stats.coverage:.3f}", file=out)
    print(f"prefetch accuracy : {stats.accuracy:.3f}", file=out)
    print(f"NoC traffic (KiB) : {stats.traffic.noc_bytes / 1024:.0f}", file=out)
    print(f"DRAM traffic (KiB): {stats.traffic.dram_bytes / 1024:.0f}", file=out)
    return 0


def _command_compare(args, out) -> int:
    workload = _make_named_workload(args.workload, args.seed)
    rows = []
    reference = None
    for mode in args.modes:
        config, prefetcher, imp_config, software = experiment_config(
            mode, args.cores, base_config=scaled_config(args.cores))
        result = run_workload(workload, config, prefetcher=prefetcher,
                              imp_config=imp_config,
                              software_prefetch=software)
        if mode == "perfpref":
            reference = result
        rows.append((mode, result))
    print(f"{args.workload} at {args.cores} cores", file=out)
    print(f"{'mode':22s} {'cycles':>10s} {'vs perfpref':>12s} {'coverage':>9s}",
          file=out)
    for mode, result in rows:
        normalised = (result.normalized_throughput(reference)
                      if reference is not None else float("nan"))
        print(f"{mode:22s} {result.runtime_cycles:10d} {normalised:12.3f} "
              f"{result.stats.coverage:9.2f}", file=out)
    return 0


def _backend_args(args, out) -> Optional[tuple]:
    """Validate the --backend/--shard pairing; returns ``(backend,
    shards)`` or ``None`` after printing a usage error (exit 2)."""
    backend = getattr(args, "backend", None)
    shards = getattr(args, "shards", None) or []
    if shards and backend != "service":
        print("error: --shard requires --backend service", file=out)
        return None
    if backend == "service" and not shards:
        print("error: --backend service needs at least one "
              "--shard URL (a repro serve endpoint)", file=out)
        return None
    return backend, shards


def _sweep_runner(args, n_cores: int, policy=None,
                  journal=None) -> ExperimentRunner:
    return ExperimentRunner(scale=args.scale, seed=args.seed,
                            base_config=scaled_config(n_cores),
                            jobs=args.jobs, cache_dir=args.cache_dir,
                            use_cache=not args.no_cache,
                            policy=policy, journal=journal,
                            backend=getattr(args, "backend", None),
                            shards=getattr(args, "shards", None) or ())


def _sweep_journal(args, label_doc, out, sweep_id=None):
    """The durable journal for one ``repro sweep`` invocation, keyed by a
    stable identity of what is being swept so ``--resume`` finds it."""
    import hashlib
    import json
    from pathlib import Path

    from repro.experiments.sweep import SweepJournal

    if args.no_cache or not args.cache_dir:
        return None
    label = json.dumps(label_doc, sort_keys=True)
    key = hashlib.sha256(label.encode()).hexdigest()[:16]
    path = Path(args.cache_dir) / f"journal-{key}.jsonl"
    journal = SweepJournal(path, resume=args.resume, label=label,
                           sweep_id=sweep_id)
    if journal.mismatched:
        print(f"[sweep] warning: journal {path.name} was written for a "
              f"different spec set (sweep_id "
              f"{journal.header_sweep_id[:12]}… != {sweep_id[:12]}…); "
              f"ignoring it and starting a fresh journal", file=out)
    elif args.resume and journal.resumed:
        print(f"[sweep] resuming from {path.name}: {journal.resumed} "
              f"run(s) previously completed", file=out)
    return journal


def _command_figure(args, out) -> int:
    if _backend_args(args, out) is None:
        return 2
    if args.scenario is not None:
        if args.cores is not None:
            print("error: --cores cannot be combined with --scenario "
                  "(the scenario file sets the core count)", file=out)
            return 2
        try:
            scenario = load_scenario(args.scenario)
        except ValueError as exc:
            # ScenarioError / RegistryError: the message lists the choices.
            print(f"error: {exc}", file=out)
            return 2
        _, config, imp_cfg = scenario.resolve()
        cores = scenario.n_cores
        runner = ExperimentRunner(scale=args.scale, seed=args.seed,
                                  base_config=config, jobs=args.jobs,
                                  cache_dir=args.cache_dir,
                                  use_cache=not args.no_cache,
                                  imp_config=imp_cfg,
                                  backend=getattr(args, "backend", None),
                                  shards=getattr(args, "shards", None)
                                  or ())
        label = scenario.name or args.scenario
        print(f"platform from scenario: {label} "
              f"({cores} cores)", file=out)
    else:
        cores = args.cores if args.cores is not None else 16
        runner = _sweep_runner(args, cores)
    rows = FIGURES[args.name](runner, cores)
    print(figures.format_table(rows), file=out)
    return 0


def _command_sweep_scenario_dir(args, out, policy=None) -> int:
    import json
    from pathlib import Path

    from repro.experiments.sweep import ResultCache, SweepEngine, sweep_id

    directory = Path(args.scenario_dir)
    if not directory.is_dir():
        print(f"error: {directory} is not a directory", file=out)
        return 2
    files = sorted(path for path in directory.glob("*.json")
                   if not path.name.endswith(".fingerprint.json"))
    if not files:
        print(f"error: no scenario files (*.json) in {directory}", file=out)
        return 2
    scenarios = []
    for path in files:
        try:
            scenarios.append((path, load_scenario(path)))
        except ValueError as exc:
            # ScenarioError / RegistryError: the message lists the choices.
            print(f"error: {path.name}: {exc}", file=out)
            return 2
    # One batched engine run: duplicate scenarios (same canonical RunSpec)
    # simulate once, and the persistent cache memoises across invocations.
    workloads = {}
    specs = []
    for path, scenario in scenarios:
        spec = scenario.to_runspec()
        if spec not in workloads:
            workloads[spec] = scenario.resolve()[0]
            specs.append(spec)
    cache = (ResultCache(args.cache_dir)
             if (args.cache_dir and not args.no_cache) else None)
    journal = _sweep_journal(
        args, {"scenario_dir": str(directory.resolve())}, out,
        sweep_id=sweep_id(specs))
    engine = SweepEngine(jobs=args.jobs, cache=cache, policy=policy,
                         journal=journal,
                         backend=getattr(args, "backend", None),
                         shards=getattr(args, "shards", None) or ())
    results = engine.run(specs, workload_lookup=workloads.get)
    failures = 0
    width = max(len(path.name) for path, _ in scenarios)
    for path, scenario in scenarios:
        result = results[scenario.to_runspec()]
        fingerprint = result.stats.fingerprint()
        expect_path = path.with_suffix(".fingerprint.json")
        if expect_path.exists():
            try:
                with open(expect_path) as handle:
                    expected = json.load(handle)
            except (OSError, json.JSONDecodeError) as exc:
                print(f"{path.name:{width}s}  ERROR reading "
                      f"{expect_path.name}: {exc}", file=out)
                failures += 1
                continue
            if isinstance(expected, dict):
                expected = expected.get("fingerprint", expected)
            if expected == fingerprint:
                status = "fingerprint ok"
            else:
                status = "FINGERPRINT MISMATCH"
                failures += 1
        else:
            status = "no expectation"
        print(f"{path.name:{width}s}  {result.runtime_cycles:10d} cycles  "
              f"{status}", file=out)
    cache_note = (f"cache hits {cache.hits}, stores {cache.stores}"
                  if cache else "cache disabled")
    print(f"[sweep] {len(scenarios)} scenarios, {len(specs)} unique runs, "
          f"{engine.simulations_run} simulated "
          f"({engine.backend.name} backend, {engine.jobs} jobs, "
          f"{cache_note})", file=out)
    if cache is not None:
        _warn_quarantined(args.cache_dir, out)
    return 1 if failures else 0


def _command_sweep(args, out) -> int:
    from repro.experiments.sweep import RunPolicy, SweepError, \
        write_failure_report

    if args.scenario_dir is not None and args.figures is not None:
        print("error: give either --figures or --scenario-dir, "
              "not both", file=out)
        return 2
    if _backend_args(args, out) is None:
        return 2
    if args.resume and (args.no_cache or not args.cache_dir):
        print("error: --resume needs the persistent cache (it cannot be "
              "combined with --no-cache)", file=out)
        return 2
    policy = RunPolicy(timeout=args.timeout, retries=args.retries,
                       backoff=args.backoff,
                       keep_going=not args.fail_fast)
    try:
        with _sigterm_raises():
            if args.scenario_dir is not None:
                return _command_sweep_scenario_dir(args, out, policy)
            return _command_sweep_figures(args, out, policy)
    except KeyboardInterrupt:
        print("[sweep] interrupted — pool shut down, journal flushed; "
              "rerun with --resume to pick up where it stopped", file=out)
        return EXIT_INTERRUPTED
    except _Terminated:
        print("[sweep] terminated (SIGTERM) — pool shut down, journal "
              "flushed; rerun with --resume to pick up where it stopped",
              file=out)
        return EXIT_TERMINATED
    except SweepError as exc:
        completed = len(exc.results)
        report = write_failure_report(
            args.failures_out, exc.failures, total=completed
            + len(exc.failures), completed=completed, policy=policy,
            sweep_label=args.scenario_dir or "figures")
        print(f"[sweep] {len(exc.failures)} run(s) permanently failed "
              f"after retries; {completed} completed "
              f"({'abandoned outstanding work' if args.fail_fast else 'kept going'})",
              file=out)
        for failure in exc.failures[:10]:
            print(f"  {failure.kind:12s} {failure.workload}/{failure.mode}"
                  f"@{failure.n_cores}c  after {failure.attempts} "
                  f"attempt(s): {failure.error}", file=out)
        if len(exc.failures) > 10:
            print(f"  ... and {len(exc.failures) - 10} more", file=out)
        print(f"[sweep] failure report: {args.failures_out} "
              f"({report['schema']})", file=out)
        return EXIT_RUN_FAILURES


def _command_serve(args, out) -> int:
    """Run the crash-safe sweep service until SIGTERM/SIGINT, then drain
    gracefully and exit with the sweep contract's signal codes."""
    import threading

    from repro.experiments.sweep import RunPolicy
    from repro.service import ServiceApp

    if args.queue_depth < 1:
        print("error: --queue-depth must be at least 1", file=out)
        return 2
    if not args.cache_dir:
        print("error: serve needs a persistent --cache-dir (the durable "
              "job journal lives there)", file=out)
        return 2
    policy = RunPolicy(timeout=args.timeout, retries=args.retries,
                       backoff=args.backoff)
    try:
        app = ServiceApp(args.cache_dir, host=args.host, port=args.port,
                         queue_depth=args.queue_depth, jobs=args.jobs,
                         policy=policy)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=out)
        return 2
    stop = threading.Event()
    exit_code = [0]

    def _on_signal(signum, frame):
        exit_code[0] = (EXIT_INTERRUPTED if signum == signal.SIGINT
                        else EXIT_TERMINATED)
        stop.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _on_signal)
        except ValueError:      # not the main thread (embedded use)
            pass
    try:
        app.start()
        if app.recovered:
            print(f"[serve] recovered {app.recovered} interrupted job(s) "
                  f"from the journal; re-enqueued", file=out)
        if app.store.corrupt_lines:
            print(f"[serve] journal replay skipped "
                  f"{app.store.corrupt_lines} corrupt line(s) (torn "
                  f"writes); affected jobs resume from their last durable "
                  f"state", file=out)
        # ``port=N`` is a stable, parse-friendly token: scripts that pass
        # --port 0 scrape it to learn the kernel-assigned port.
        print(f"[serve] listening on {app.url} port={app.port} "
              f"(cache {app.cache_dir}, queue depth "
              f"{args.queue_depth})", file=out, flush=True)
        print(f"[serve] POST /v1/jobs to submit scenarios; SIGTERM "
              f"drains gracefully (deadline {args.drain_timeout:g}s)",
              file=out, flush=True)
        while not stop.wait(timeout=1.0):
            pass
        label = ("SIGINT" if exit_code[0] == EXIT_INTERRUPTED
                 else "SIGTERM")
        print(f"[serve] {label} received — admissions stopped, draining "
              f"up to {args.drain_timeout:g}s", file=out, flush=True)
        drained = app.stop(drain_timeout=args.drain_timeout)
        if drained:
            print("[serve] drained cleanly: all accepted jobs completed; "
                  "journal closed", file=out, flush=True)
        else:
            print("[serve] drain deadline passed: remaining jobs "
                  "journalled interrupted (recovered on next boot)",
                  file=out, flush=True)
        return exit_code[0]
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def _command_sweep_figures(args, out, policy=None) -> int:
    names = args.figures or sorted(FIGURES)
    journal = _sweep_journal(
        args, {"figures": names, "cores": args.cores, "scale": args.scale,
               "seed": args.seed}, out)
    runner = _sweep_runner(args, args.cores[0], policy=policy,
                           journal=journal)
    # Declare the whole cross-product up front so runs shared between
    # figures are simulated exactly once, then render from cache.
    requested = figures.prefetch_figures(runner, names, args.cores)
    for name in names:
        if name == "fig9":  # multi-core-count figures sweep all of --cores
            result = figures.fig09_performance(runner,
                                               core_counts=args.cores)
        elif name == "fig11":
            result = figures.fig11_partial(runner, core_counts=args.cores)
        else:
            result = FIGURES[name](runner, args.cores[0])
        if isinstance(result, dict):
            for n_cores, rows in sorted(result.items()):
                print(f"== {name} ({n_cores} cores) ==", file=out)
                print(figures.format_table(rows), file=out)
        else:
            print(f"== {name} ==", file=out)
            print(figures.format_table(result), file=out)
    engine = runner.engine
    cache = engine.cache
    cache_note = (f"cache hits {cache.hits}, stores {cache.stores}"
                  if cache else "cache disabled")
    print(f"[sweep] {requested} requested runs, "
          f"{engine.simulations_run} simulated "
          f"({engine.backend.name} backend, {engine.jobs} jobs, "
          f"{cache_note})", file=out)
    if cache is not None:
        _warn_quarantined(args.cache_dir, out)
    return 0


def _command_bench(args, out) -> int:
    from repro.experiments.bench import (WORKLOADS, run_benchmark,
                                         run_sweep_benchmark, write_and_check)

    unknown = sorted(set(args.workloads or ()) - set(WORKLOADS))
    if unknown:
        print(f"error: unknown bench workloads: {', '.join(unknown)}; "
              f"try: {', '.join(WORKLOADS)}", file=out)
        return 2
    if args.sweep:
        document = run_sweep_benchmark(cores=args.cores, seed=args.seed,
                                       scale=args.scale, jobs=args.jobs,
                                       quick=args.quick, out=out)
    else:
        document = run_benchmark(cores=args.cores, seed=args.seed,
                                 repeat=args.repeat, quick=args.quick,
                                 workloads=args.workloads,
                                 ab_kernels=args.ab_kernels, out=out)
        if args.sweep_scaling:
            from repro.experiments.bench import sweep_scaling_section
            document["sweep_scaling"] = sweep_scaling_section(
                cores=args.cores, seed=args.seed, scale=args.scale,
                jobs=args.jobs, quick=args.quick, out=out)
    return write_and_check(document, out_path=args.out, check=args.check,
                           baseline_path=args.baseline, budget=args.budget,
                           out=out)


def _command_profile(args, out) -> int:
    import json

    from repro.experiments.bench import WORKLOADS
    from repro.experiments.profile import format_report, profile_run

    if args.workload not in WORKLOADS:
        print(f"error: unknown bench workload {args.workload!r}; "
              f"try: {', '.join(WORKLOADS)}", file=out)
        return 2
    document = profile_run(args.workload, prefetcher=args.prefetcher,
                           cores=args.cores, seed=args.seed,
                           quick=args.quick)
    format_report(document, top=args.top, out=out)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {args.out}", file=out)
    return 0


def _command_cost(out) -> int:
    cost = figures.sec64_hardware_cost()
    width = max(len(key) for key in cost)
    for key, value in cost.items():
        print(f"{key:{width}s} : {value:.3f}", file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    if args.command == "list-workloads":
        return _command_list(out)
    if args.command == "list":
        return _command_registry_list(args, out)
    if args.command == "run":
        return _command_run(args, out)
    if args.command == "compare":
        return _command_compare(args, out)
    if args.command in ("figure", "table"):
        return _command_figure(args, out)
    if args.command == "sweep":
        return _command_sweep(args, out)
    if args.command == "serve":
        return _command_serve(args, out)
    if args.command == "cache":
        return _command_cache_doctor(args, out)
    if args.command == "cost":
        return _command_cost(out)
    if args.command == "bench":
        return _command_bench(args, out)
    if args.command == "profile":
        return _command_profile(args, out)
    raise SystemExit(f"unknown command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
