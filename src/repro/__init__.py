"""repro — a reproduction of "IMP: Indirect Memory Prefetcher" (MICRO 2015).

The package is organised as:

* :mod:`repro.core` — the Indirect Memory Prefetcher itself (stream table,
  Indirect Pattern Detector, Prefetch Table, Granularity Predictor, cost
  model).
* :mod:`repro.prefetchers` — the prefetcher interface and baselines (stream,
  GHB, none).
* :mod:`repro.memory`, :mod:`repro.noc` — the memory-hierarchy substrate:
  sector-capable caches, ACKwise directory, DRAM models, 2-D mesh NoC.
* :mod:`repro.sim` — trace format, core models, system builder, statistics.
* :mod:`repro.workloads` — the seven applications of the paper's evaluation
  plus synthetic micro-kernels.
* :mod:`repro.experiments` — per-figure/table experiment runners.

Quickstart::

    from repro import IMPConfig, SystemConfig, run_workload
    from repro.workloads import SpMVWorkload

    config = SystemConfig(n_cores=16)
    base = run_workload(SpMVWorkload(), config, prefetcher="stream")
    imp = run_workload(SpMVWorkload(), config, prefetcher="imp")
    print(imp.speedup_over(base))
"""

from repro.core import IMP, IMPConfig
from repro.mem_image import MemoryImage
from repro.sim import (
    AccessKind,
    SimulationResult,
    SystemConfig,
    SystemStats,
    Trace,
    build_system,
    run_workload,
)

__version__ = "1.0.0"

__all__ = [
    "AccessKind",
    "IMP",
    "IMPConfig",
    "MemoryImage",
    "SimulationResult",
    "SystemConfig",
    "SystemStats",
    "Trace",
    "__version__",
    "build_system",
    "run_workload",
]
