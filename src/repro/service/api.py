"""Versioned REST surface of the sweep service.

Routes are versioned under ``/v1/`` (unversioned ``/healthz`` and
``/readyz`` probes excepted) and every response body is a uniform JSON
envelope::

    {"ok": true,  "data": { ... }}                       # success
    {"ok": false, "error": {"code": "...", "message": "...", ...}}

A permanently failed job carries its structured
:class:`~repro.experiments.sweep.FailureRecord` under
``data.failure`` — the same document ``results/failures.json`` uses — so
API clients and CLI users read one failure shape.

Endpoints:

=========================  ====================================================
``POST /v1/jobs``          Submit a scenario JSON document, or a runspec
                           document ``{"runspec": RunSpec.to_dict(),
                           "name": ...}`` (what the ``service`` sweep
                           backend sends).  Idempotent: the job id is the
                           RunSpec digest; resubmission joins the existing
                           job or returns the cached result.  ``202``
                           queued, ``200`` joined/complete, ``400`` invalid
                           document, ``413`` oversized body, ``429`` queue
                           full (with ``Retry-After``), ``503`` draining
                           (``Retry-After`` clamped to the remaining drain
                           window).
``GET /v1/jobs``           List all jobs plus queue/backpressure counters.
``GET /v1/jobs/<id>``      One job: ``queued`` / ``running`` / ``done`` (with
                           fingerprint) / ``failed`` (with FailureRecord).
``GET /v1/results/<id>``   The full cached result record for a digest.
``GET /v1/registries``     Every component registry (prefetchers, DRAM
                           models, workloads, modes) with descriptions.
``GET /healthz``           Liveness: 200 while the process serves.
``GET /readyz``            Readiness: 200 accepting, 503 while draining.
=========================  ====================================================

The router is a plain method — ``(method, path, body) -> (status, doc,
headers)`` — so the whole surface unit-tests without sockets; the
:mod:`repro.service.app` HTTP layer is a thin adapter over it.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Optional, Tuple

from repro.registry import ALL_REGISTRIES
from repro.service import store as job_states
from repro.service.jobs import Draining, JobManager, QueueFull

#: The API version segment new routes are added under.
API_VERSION = "v1"

#: Largest accepted request body (a scenario document), in bytes.
MAX_BODY_BYTES = 1 << 20

#: ``Retry-After`` seconds suggested on 429/503 responses.
RETRY_AFTER_SECONDS = 2

_DIGEST_RE = re.compile(r"^[0-9a-f]{64}$")

Response = Tuple[int, Dict, Dict]


def ok(data: Dict) -> Dict:
    return {"ok": True, "data": data}


def error(code: str, message: str, **extra) -> Dict:
    body = {"code": code, "message": message}
    body.update(extra)
    return {"ok": False, "error": body}


class ServiceAPI:
    """Routes requests onto a :class:`JobManager`."""

    def __init__(self, manager: JobManager) -> None:
        self.manager = manager

    # ------------------------------------------------------------------
    def handle(self, method: str, path: str,
               body: Optional[bytes] = None) -> Response:
        """Dispatch one request; returns ``(status, envelope, headers)``."""
        path = path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if method == "GET":
                return self._get(path)
            if method == "POST":
                return self._post(path, body or b"")
        except Exception as exc:  # noqa: BLE001 — a request, not the server
            return 500, error("internal",
                              f"{type(exc).__name__}: {exc}"), {}
        return 405, error("method-not-allowed",
                          f"{method} is not supported"), {}

    # ------------------------------------------------------------------
    def _get(self, path: str) -> Response:
        if path == "/healthz":
            return 200, ok({"status": "alive", "api": API_VERSION}), {}
        if path == "/readyz":
            manager = self.manager
            doc = {"ready": not manager.draining,
                   "draining": manager.draining,
                   "pending": manager.pending_count(),
                   "queue_depth": manager.queue_depth}
            if manager.draining:
                return 503, error("draining", "server is draining",
                                  **doc), \
                    {"Retry-After": str(manager.retry_after_hint(
                        RETRY_AFTER_SECONDS))}
            return 200, ok(doc), {}
        if path == f"/{API_VERSION}/registries":
            # Host-availability filtered (e.g. the compiled NoC kernel is
            # listed only where its extension imports): the endpoint tells
            # operators what *this* server can actually run.
            registries = {
                name: [{"name": entry.name,
                        "description": entry.description,
                        "tags": list(entry.tags)}
                       for entry in registry.entries()
                       if entry.is_available()]
                for name, registry in ALL_REGISTRIES.items()}
            return 200, ok({"registries": registries}), {}
        if path == f"/{API_VERSION}/jobs":
            return 200, ok(self.manager.snapshot()), {}
        job_match = re.match(f"^/{API_VERSION}/jobs/([0-9a-f]+)$", path)
        if job_match:
            return self._get_job(job_match.group(1))
        result_match = re.match(f"^/{API_VERSION}/results/([0-9a-f]+)$", path)
        if result_match:
            return self._get_result(result_match.group(1))
        return 404, error("not-found", f"no route for GET {path}"), {}

    def _get_job(self, job_id: str) -> Response:
        job = self.manager.get(job_id)
        if job is None:
            return 404, error("job-not-found",
                              f"no job with id {job_id}"), {}
        return 200, ok(job.to_doc()), {}

    def _get_result(self, digest: str) -> Response:
        if not _DIGEST_RE.match(digest):
            return 400, error("bad-digest",
                              "result ids are 64-char hex sha256 digests"), {}
        path = self.manager.cache.directory / f"{digest}.json"
        try:
            with open(path) as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return 404, error("result-not-found",
                              f"no cached result for digest {digest}"), {}
        except (OSError, json.JSONDecodeError) as exc:
            return 500, error("corrupt-record",
                              f"cached record for {digest} is unreadable "
                              f"({exc}); 'repro cache doctor' can "
                              f"quarantine it"), {}
        return 200, ok({"digest": digest, "record": record}), {}

    # ------------------------------------------------------------------
    def _post(self, path: str, body: bytes) -> Response:
        if path != f"/{API_VERSION}/jobs":
            return 404, error("not-found", f"no route for POST {path}"), {}
        if len(body) > MAX_BODY_BYTES:
            return 413, error("body-too-large",
                              f"scenario documents are capped at "
                              f"{MAX_BODY_BYTES} bytes"), {}
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, error("invalid-json",
                              f"request body is not valid JSON: {exc}"), {}
        if not isinstance(doc, dict):
            return 400, error("invalid-scenario",
                              "the request body must be a JSON object "
                              "(a scenario or runspec document)"), {}
        try:
            job, created = self.manager.submit(doc)
        except QueueFull as exc:
            return 429, error("queue-full", str(exc)), \
                {"Retry-After": str(RETRY_AFTER_SECONDS)}
        except Draining as exc:
            # Clamped to the remaining drain window: a fixed hint could
            # tell clients to retry a server that will already be gone.
            return 503, error("draining", str(exc)), \
                {"Retry-After": str(self.manager.retry_after_hint(
                    RETRY_AFTER_SECONDS))}
        except ValueError as exc:
            # ScenarioError / RegistryError: the message lists the valid
            # choices, exactly like the CLI's error path.
            return 400, error("invalid-scenario", str(exc)), {}
        doc = job.to_doc()
        doc["created"] = created
        if job.status == job_states.DONE:
            return 200, ok(doc), {}
        return (202 if created else 200), ok(doc), {}
