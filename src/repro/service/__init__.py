"""Sweep-as-a-service: a crash-safe simulation API in front of the cache.

The :mod:`repro.service` subpackage turns the sweep engine into a
long-running, stdlib-only HTTP service (``repro serve``):

* :mod:`repro.service.store` — the durable job store.  Every job state
  transition is an appended, fsynced, torn-line-tolerant JSONL record,
  so a server killed at any instant can replay the journal on restart,
  re-enqueue interrupted work, and serve completed jobs from the result
  cache: no accepted job is lost, no completed run is executed twice.
* :mod:`repro.service.jobs` — the bounded admission queue and the drain
  worker.  Submissions are idempotent (the job id *is* the RunSpec
  digest: resubmitting joins the existing job or returns the cached
  result), the queue applies backpressure when full, and per-job
  execution reuses the PR 6 :class:`~repro.experiments.sweep.RunPolicy`
  machinery (timeouts, retries, pool rebuild, serial degradation).
* :mod:`repro.service.api` — the versioned REST surface (``/v1/...``)
  with uniform JSON envelopes; failures surface as structured
  :class:`~repro.experiments.sweep.FailureRecord` error bodies.
* :mod:`repro.service.app` — the ``ThreadingHTTPServer`` wiring plus
  graceful shutdown: SIGTERM stops admissions, drains in-flight jobs up
  to a deadline, journals the rest as interrupted and exits under the
  PR 6 exit-code contract.
"""

from repro.service.api import API_VERSION, ServiceAPI
from repro.service.app import ServiceApp
from repro.service.client import (ServiceClient, ShardProtocolError,
                                  ShardUnavailable)
from repro.service.jobs import Draining, JobManager, QueueFull
from repro.service.store import JOB_STORE_SCHEMA, JobStore

__all__ = [
    "API_VERSION",
    "Draining",
    "JOB_STORE_SCHEMA",
    "JobManager",
    "JobStore",
    "QueueFull",
    "ServiceAPI",
    "ServiceApp",
    "ServiceClient",
    "ShardProtocolError",
    "ShardUnavailable",
]
