"""HTTP wiring and lifecycle of the sweep service (``repro serve``).

:class:`ServiceApp` assembles the durable :class:`~repro.service.store.
JobStore`, the :class:`~repro.service.jobs.JobManager` and the
:class:`~repro.service.api.ServiceAPI` behind a stdlib
``ThreadingHTTPServer``:

* Requests are handled on threads, so a slow client (or an injected
  ``serve_stall`` fault) never blocks admissions or health probes.
* On start the store is replayed: completed jobs are served from the
  result cache, interrupted ones re-enqueue — a SIGKILLed server loses
  no accepted work and re-executes no completed run.
* :meth:`stop` implements the graceful half: admissions stop (``/readyz``
  turns 503, ``POST /v1/jobs`` returns 503), in-flight and queued jobs
  drain up to a deadline, whatever remains is journalled ``interrupted``
  (recovered on the next boot), and the HTTP listener shuts down.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional

from repro.experiments.faults import FaultPlan
from repro.experiments.sweep import ResultCache, RunPolicy
from repro.service.api import MAX_BODY_BYTES, ServiceAPI
from repro.service.jobs import JobManager
from repro.service.store import JobStore

#: File name of the durable job journal inside the cache directory.
JOB_STORE_FILENAME = "service-jobs.jsonl"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def _respond(self, method: str) -> None:
        api: ServiceAPI = self.server.api            # type: ignore[attr-defined]
        plan: Optional[FaultPlan] = self.server.faults  # type: ignore[attr-defined]
        if plan is not None and plan.should_serve_stall(self.path):
            # Chaos: pin THIS handler thread; the threaded server must
            # keep answering other requests (health probes included).
            import time
            time.sleep(plan.stall_seconds)
        body = None
        if method == "POST":
            try:
                length = int(self.headers.get("Content-Length", 0))
            except ValueError:
                length = 0
            body = self.rfile.read(min(max(length, 0), MAX_BODY_BYTES + 1))
            if length > len(body):
                # Oversized body left unread: close rather than let the
                # remainder corrupt the next keep-alive request.
                self.close_connection = True
        status, doc, headers = api.handle(method, self.path, body)
        payload = json.dumps(doc, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:   # noqa: N802 — http.server API
        self._respond("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._respond("POST")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # Quiet by default; the CLI decides what to narrate.
        pass


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, api: ServiceAPI,
                 faults: Optional[FaultPlan]) -> None:
        super().__init__(address, _Handler)
        self.api = api
        self.faults = faults


class ServiceApp:
    """One assembled service instance (store + queue + HTTP listener)."""

    def __init__(self, cache_dir, *, host: str = "127.0.0.1", port: int = 0,
                 queue_depth: int = 64, jobs: Optional[int] = None,
                 policy: Optional[RunPolicy] = None,
                 faults: Optional[FaultPlan] = None,
                 store_path=None) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache = ResultCache(self.cache_dir)
        self.store = JobStore(store_path or self.cache_dir
                              / JOB_STORE_FILENAME)
        resolved_faults = (faults if faults is not None
                           else FaultPlan.from_env())
        self.manager = JobManager(self.store, self.cache,
                                  queue_depth=queue_depth, jobs=jobs,
                                  policy=policy, faults=resolved_faults)
        self.recovered = self.manager.recover()
        self.api = ServiceAPI(self.manager)
        self._httpd = _Server((host, port), self.api, resolved_faults)
        self.host = self._httpd.server_address[0]
        self.port = self._httpd.server_address[1]
        self._serve_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the drain worker and the HTTP listener (non-blocking)."""
        self.manager.start()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-serve-http", daemon=True)
        self._serve_thread.start()

    def stop(self, drain_timeout: float = 30.0) -> bool:
        """Graceful shutdown; returns ``True`` when every job drained
        before the deadline (the rest are journalled ``interrupted``)."""
        drained = self.manager.drain(drain_timeout)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=2.0)
        self.store.close()
        return drained

    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"
