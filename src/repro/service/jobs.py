"""Admission queue and drain worker for the sweep service.

The :class:`JobManager` owns the runtime job table.  Its contract:

* **Idempotent admission.**  The job id *is* the scenario's
  content-addressed :class:`~repro.experiments.sweep.RunSpec` digest.
  Submitting a digest that is already queued/running/done joins the
  existing job; a digest whose result is already in the persistent cache
  completes instantly (``cached``) without simulating.  N concurrent
  clients posting the same scenario therefore share exactly one
  simulation — the admission path holds one lock, so there is no window
  in which two jobs for one digest can both be created.
* **Bounded queue with backpressure.**  At most ``queue_depth`` jobs may
  be pending; beyond that :class:`QueueFull` is raised (HTTP 429 with
  ``Retry-After``).  During a graceful drain :class:`Draining` is raised
  instead (HTTP 503).
* **Durability before acknowledgement.**  Every transition goes through
  the fsynced :class:`~repro.service.store.JobStore` *before* it is
  visible to clients, in the order the store's crash-safety contract
  requires (``queued`` → ``running`` → cache publish → ``done``).
* **PR 6 execution semantics.**  Each job runs through a
  :class:`~repro.experiments.sweep.SweepEngine` under the configured
  :class:`~repro.experiments.sweep.RunPolicy` — per-run timeouts,
  bounded retries with backoff, pool rebuild and serial degradation all
  apply; a permanent failure lands as a structured
  :class:`~repro.experiments.sweep.FailureRecord` on the job.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional

from repro.core.config import IMPConfig
from repro.experiments.faults import FaultPlan
from repro.experiments.scenario import ScenarioError, ScenarioSpec
from repro.experiments.sweep import (FailureRecord, ResultCache, RunPolicy,
                                     RunSpec, SweepEngine, SweepError, _thaw)
from repro.registry import MODES, WORKLOADS
from repro.service import store as job_states
from repro.service.store import JobStore
from repro.sim.config import SystemConfig


class QueueFull(RuntimeError):
    """The bounded admission queue is at capacity (backpressure)."""


class Draining(RuntimeError):
    """The server is draining for shutdown and accepts no new work."""


@dataclass(frozen=True)
class JobSource:
    """One validated job document, whichever form it arrived in."""

    runspec: RunSpec
    name: str
    #: Set for scenario-form documents only; resolves the workload (and
    #: its memoised trace build) in-process at execution time.
    scenario: Optional[ScenarioSpec] = None


def parse_job_document(doc: Mapping) -> JobSource:
    """Validate one ``POST /v1/jobs`` document into a :class:`JobSource`.

    Two forms are accepted:

    * a **scenario** document — the declarative JSON ``repro run
      --scenario`` consumes, validated by :class:`ScenarioSpec`;
    * a **runspec** document — ``{"runspec": RunSpec.to_dict(), "name":
      ...}``, the exact spec a sweep engine holds, submitted by the
      ``service`` sweep backend.  The registry names and both config
      payloads are validated at admission (listing the valid choices,
      like the scenario path) so a bad document is a 400, not a failed
      job.

    Raises :class:`ScenarioError` (a ``ValueError``) for anything
    invalid, exactly like the scenario path always has.
    """
    if "runspec" in doc:
        unknown = sorted(set(doc) - {"runspec", "name"})
        if unknown:
            raise ScenarioError(
                f"unknown runspec-document key(s): {', '.join(unknown)} "
                f"(allowed: runspec, name)")
        body = doc.get("runspec")
        if not isinstance(body, Mapping):
            raise ScenarioError(
                "'runspec' must be an object in RunSpec.to_dict() form")
        try:
            runspec = RunSpec.from_dict(dict(body))
        except (KeyError, TypeError, ValueError) as exc:
            raise ScenarioError(
                f"invalid runspec document "
                f"({type(exc).__name__}: {exc})") from None
        WORKLOADS.get(runspec.workload)   # raise, listing valid choices
        MODES.get(runspec.mode)
        try:
            IMPConfig.from_dict(_thaw(runspec.imp_config))
            SystemConfig.from_dict(_thaw(runspec.base_config))
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ScenarioError(
                f"invalid runspec configuration payload "
                f"({type(exc).__name__}: {exc})") from None
        name = doc.get("name") or runspec.workload
        if not isinstance(name, str):
            raise ScenarioError("'name' must be a string")
        return JobSource(runspec=runspec, name=name)
    spec = ScenarioSpec.from_dict(doc)
    return JobSource(runspec=spec.to_runspec(),
                     name=spec.name or spec.workload, scenario=spec)


@dataclass
class Job:
    """Runtime view of one job (the store holds the durable state)."""

    id: str
    scenario: Dict
    name: str = ""
    workload: str = ""
    mode: str = ""
    n_cores: int = 0
    status: str = job_states.QUEUED
    attempts: int = 0
    cached: bool = False
    simulated: bool = False
    fingerprint: Optional[Dict] = None
    failure: Optional[Dict] = None
    submitted_at: float = field(default_factory=time.monotonic)

    def to_doc(self) -> Dict:
        doc = {
            "id": self.id,
            "status": self.status,
            "scenario": self.name,
            "workload": self.workload,
            "mode": self.mode,
            "n_cores": self.n_cores,
            "attempts": self.attempts,
            "links": {"self": f"/v1/jobs/{self.id}",
                      "result": f"/v1/results/{self.id}"},
        }
        if self.status == job_states.DONE:
            doc["cached"] = self.cached
            doc["simulated"] = self.simulated
            doc["fingerprint"] = self.fingerprint
        if self.status == job_states.FAILED:
            doc["failure"] = self.failure
        return doc


class JobManager:
    """Owns the job table, the bounded queue and the drain worker."""

    def __init__(self, store: JobStore, cache: ResultCache, *,
                 queue_depth: int = 64, jobs: Optional[int] = None,
                 policy: Optional[RunPolicy] = None,
                 faults: Optional[FaultPlan] = None) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.store = store
        self.cache = cache
        self.queue_depth = queue_depth
        self.jobs_arg = jobs
        self.policy = policy or RunPolicy()
        self.faults = faults if faults is not None else FaultPlan.from_env()
        self.simulations_run = 0
        self.recovered = 0
        self._jobs: Dict[str, Job] = {}
        self._pending: Deque[str] = deque()
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._draining = False
        self._drain_deadline: Optional[float] = None
        self._stopped = False
        self._running_id: Optional[str] = None
        self._worker = threading.Thread(target=self._drain_loop,
                                        name="repro-serve-drain", daemon=True)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._worker.start()

    def recover(self) -> int:
        """Replay the store: re-enqueue every job whose last durable state
        was queued/running/interrupted, and restore completed ones.  Call
        before :meth:`start`.  Returns how many jobs were re-enqueued."""
        for stored in self.store.jobs.values():
            job = Job(id=stored["id"], scenario=stored.get("scenario") or {},
                      name=stored.get("name", ""),
                      status=stored["status"],
                      attempts=stored.get("attempts", 0),
                      cached=stored.get("cached", False),
                      simulated=stored.get("simulated", False),
                      fingerprint=stored.get("fingerprint"),
                      failure=stored.get("failure"))
            try:
                source = parse_job_document(job.scenario)
            except ValueError as exc:
                # The journalled document no longer validates (e.g. a
                # registry entry was removed between versions): surface a
                # structured failure instead of dropping the job.
                if job.status in job_states.RECOVERABLE_STATES:
                    job.status = job_states.FAILED
                    job.failure = {"digest": job.id, "kind": "error",
                                   "attempts": job.attempts,
                                   "workload": "", "mode": "", "n_cores": 0,
                                   "error": f"recovered job document no "
                                            f"longer valid: {exc}"}
                    self.store.record_failed(job.id, job.failure)
                self._jobs[job.id] = job
                continue
            job.name = job.name or source.name
            job.workload = source.runspec.workload
            job.mode = source.runspec.mode
            job.n_cores = source.runspec.n_cores
            self._jobs[job.id] = job
            if job.status in job_states.RECOVERABLE_STATES:
                job.status = job_states.QUEUED
                self._pending.append(job.id)
                self.recovered += 1
        return self.recovered

    # ------------------------------------------------------------------
    # Admission (called from HTTP handler threads)
    # ------------------------------------------------------------------
    def submit(self, doc: Dict) -> tuple:
        """Admit one scenario or runspec document; returns ``(job,
        created)``.

        Raises :class:`~repro.experiments.scenario.ScenarioError` (or a
        registry error) for invalid documents, :class:`Draining` during
        shutdown and :class:`QueueFull` under backpressure.  Never blocks
        on simulation work.
        """
        source = parse_job_document(doc)   # raises listing valid choices
        runspec = source.runspec
        digest = runspec.digest()
        with self._lock:
            if self._draining:
                raise Draining("server is draining; not accepting jobs")
            existing = self._jobs.get(digest)
            if existing is not None and existing.status != job_states.FAILED:
                return existing, False
            resubmit = existing is not None
            job = Job(id=digest, scenario=dict(doc),
                      name=source.name,
                      workload=runspec.workload, mode=runspec.mode,
                      n_cores=runspec.n_cores,
                      attempts=existing.attempts if resubmit else 0)
            # Idempotency fast path: a digest the persistent cache already
            # holds completes without queue admission or simulation.
            cached = self.cache.get(runspec)
            if cached is not None:
                fingerprint = cached.stats.fingerprint()
                self.store.record_queued(digest, job.scenario, job.name)
                self.store.record_done(digest, cached=True, simulated=False,
                                       fingerprint=fingerprint)
                job.status = job_states.DONE
                job.cached = True
                job.fingerprint = fingerprint
                self._jobs[digest] = job
                return job, not resubmit
            if len(self._pending) >= self.queue_depth:
                raise QueueFull(
                    f"job queue is full ({self.queue_depth} pending)")
            self.store.record_queued(digest, job.scenario, job.name)
            self._jobs[digest] = job
            self._pending.append(digest)
            self._work.notify()
            return job, True

    # ------------------------------------------------------------------
    # Views (handler threads)
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def snapshot(self) -> Dict:
        with self._lock:
            by_status: Dict[str, int] = {}
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
            return {
                "jobs": [job.to_doc() for job in self._jobs.values()],
                "queue": {"depth": self.queue_depth,
                          "pending": len(self._pending),
                          "draining": self._draining,
                          "by_status": by_status},
            }

    @property
    def draining(self) -> bool:
        return self._draining

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending) + (1 if self._running_id else 0)

    # ------------------------------------------------------------------
    # Drain worker
    # ------------------------------------------------------------------
    def _drain_loop(self) -> None:
        while True:
            with self._lock:
                while not self._pending and not self._stopped:
                    self._idle.notify_all()
                    self._work.wait(timeout=0.2)
                if self._stopped:
                    self._idle.notify_all()
                    return
                job_id = self._pending.popleft()
                job = self._jobs[job_id]
                self._running_id = job_id
            try:
                self._execute(job)
            finally:
                with self._lock:
                    self._running_id = None
                    self._idle.notify_all()

    def _execute(self, job: Job) -> None:
        """Run one job under the crash-safety ordering: ``running`` is
        journalled before execution, the cache publish (inside the
        engine) precedes the ``done`` append."""
        source = parse_job_document(job.scenario)
        runspec = source.runspec
        attempt = self.store.record_running(job.id)
        job.status = job_states.RUNNING
        job.attempts = attempt
        plan = self.faults
        if plan is not None:
            # Chaos window 1: the server dies between the fsynced
            # ``running`` append and the cache publish — the run never
            # completed, so the restarted server must execute it once.
            plan.apply_serve_kill(job.id, attempt - 1, "pre")
        # A restarted (or racing) server may have published this digest
        # already: complete from the cache without re-executing.
        cached = self.cache.get(runspec)
        if cached is not None:
            self._finish(job, cached.stats.fingerprint(), cached=True,
                         simulated=False)
            return
        engine = SweepEngine(jobs=self.jobs_arg, cache=self.cache,
                             policy=self.policy)
        # Scenario-form jobs resolve their workload in-process (reusing
        # the memoised trace build); runspec-form jobs let the engine
        # rebuild the workload from the spec, exactly like a pool worker.
        workload_lookup = ((lambda _: source.scenario.resolve()[0])
                           if source.scenario is not None else None)
        try:
            results = engine.run([runspec], workload_lookup=workload_lookup)
        except SweepError as exc:
            failure = exc.failures[0] if exc.failures else \
                FailureRecord.for_spec(runspec, "error", job.attempts,
                                       str(exc))
            self.simulations_run += engine.simulations_run
            job.failure = failure.to_dict()
            job.status = job_states.FAILED
            self.store.record_failed(job.id, job.failure)
            self._maybe_corrupt(job.id)
            return
        except Exception as exc:  # noqa: BLE001 — a job, not the server
            job.failure = FailureRecord.for_spec(
                runspec, "error", job.attempts,
                f"{type(exc).__name__}: {exc}").to_dict()
            job.status = job_states.FAILED
            self.store.record_failed(job.id, job.failure)
            return
        self.simulations_run += engine.simulations_run
        result = results[runspec]
        if plan is not None:
            # Chaos window 2: the server dies after the atomic cache
            # publish but before the ``done`` append.  The restarted
            # server re-enqueues the job and completes it from the cache
            # — provably without a duplicate simulation.
            plan.apply_serve_kill(job.id, attempt - 1, "post")
        self._finish(job, result.stats.fingerprint(), cached=False,
                     simulated=True)

    def _finish(self, job: Job, fingerprint: Dict, *, cached: bool,
                simulated: bool) -> None:
        self.store.record_done(job.id, cached=cached, simulated=simulated,
                               fingerprint=fingerprint)
        job.fingerprint = fingerprint
        job.cached = cached
        job.simulated = simulated
        job.status = job_states.DONE
        self._maybe_corrupt(job.id)

    def _maybe_corrupt(self, job_id: str) -> None:
        plan = self.faults
        if plan is not None and plan.should_serve_corrupt(job_id):
            self.store.corrupt_tail()

    # ------------------------------------------------------------------
    # Graceful shutdown
    # ------------------------------------------------------------------
    def begin_drain(self, timeout: Optional[float] = None) -> None:
        """Stop admissions; queued and in-flight work keeps draining.

        ``timeout`` (when known) records the drain deadline so 503
        responses can clamp their ``Retry-After`` to the time the server
        actually has left (see :meth:`retry_after_hint`)."""
        with self._lock:
            self._draining = True
            if timeout is not None:
                deadline = time.monotonic() + max(0.0, timeout)
                if (self._drain_deadline is None
                        or deadline < self._drain_deadline):
                    self._drain_deadline = deadline

    def retry_after_hint(self, default: int) -> int:
        """Seconds a 429/503 should advertise as ``Retry-After``.

        While draining with a known deadline the hint is clamped to the
        remaining drain window (floored to whole seconds, never below
        0): a client told to retry *after* the server is gone would just
        turn one clean 503 into a connection error."""
        with self._lock:
            deadline = self._drain_deadline if self._draining else None
        if deadline is None:
            return default
        remaining = max(0.0, deadline - time.monotonic())
        return max(0, min(default, math.floor(remaining)))

    def drain(self, timeout: float) -> bool:
        """Wait up to ``timeout`` seconds for the queue to empty, then
        stop the worker and journal whatever remains as ``interrupted``
        (it is re-enqueued on the next boot).  Returns ``True`` when
        everything drained inside the deadline."""
        self.begin_drain(timeout)
        with self._lock:
            deadline = self._drain_deadline
            while (self._pending or self._running_id) and \
                    time.monotonic() < deadline:
                self._idle.wait(timeout=min(
                    0.2, max(0.01, deadline - time.monotonic())))
            drained = not self._pending and self._running_id is None
            self._stopped = True
            self._work.notify_all()
            leftovers: List[str] = list(self._pending)
            if self._running_id is not None:
                leftovers.insert(0, self._running_id)
            self._pending.clear()
        for job_id in leftovers:
            self.store.record_interrupted(job_id)
            job = self._jobs.get(job_id)
            if job is not None and job.status in (job_states.QUEUED,
                                                  job_states.RUNNING):
                job.status = job_states.INTERRUPTED
        self._worker.join(timeout=1.0)
        return drained
