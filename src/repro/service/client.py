"""Minimal stdlib HTTP client for one ``repro serve`` shard.

The ``service`` sweep backend talks to each shard through a
:class:`ServiceClient`.  The client is deliberately thin: it speaks the
versioned envelope protocol (``{"ok": ..., "data"/"error": ...}``),
surfaces the HTTP status and response headers untouched (the backend
honors ``Retry-After`` itself), and collapses every transport-level
problem — connection refused, reset, timeout, a half-closed socket —
into one exception, :class:`ShardUnavailable`, which the backend treats
as "this shard is dead; requeue its work elsewhere".

Protocol errors (a non-envelope body, an unexpected schema) raise
:class:`ShardProtocolError` instead: the shard is *reachable* but not
speaking our API, which is a configuration mistake rather than a crash,
and should not be silently retried forever.
"""

from __future__ import annotations

import json
import socket
from http.client import HTTPException
from typing import Dict, Optional, Tuple
from urllib import error as urllib_error
from urllib import request as urllib_request

#: Default per-request socket timeout, seconds.  Requests are all small
#: control-plane messages (submit / poll / fetch-record); the simulation
#: wall-clock lives server-side, never inside one HTTP exchange.
REQUEST_TIMEOUT = 30.0

Response = Tuple[int, Dict, Dict]


class ShardUnavailable(RuntimeError):
    """The shard cannot be reached (dead, draining away, or gone)."""

    def __init__(self, url: str, detail: str) -> None:
        super().__init__(f"shard {url} is unreachable: {detail}")
        self.url = url
        self.detail = detail


class ShardProtocolError(RuntimeError):
    """The shard answered, but not with the service's JSON envelope."""


def retry_after(headers: Dict, default: float) -> float:
    """The shard's ``Retry-After`` hint in seconds, else ``default``."""
    value = headers.get("Retry-After")
    if value is None:
        return default
    try:
        return max(0.0, float(value))
    except (TypeError, ValueError):
        return default


class ServiceClient:
    """Envelope-level access to one shard's ``/v1`` API."""

    def __init__(self, base_url: str,
                 timeout: float = REQUEST_TIMEOUT) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def request(self, method: str, path: str,
                doc: Optional[Dict] = None) -> Response:
        """One exchange; returns ``(status, envelope, headers)``."""
        url = f"{self.base_url}{path}"
        data = None
        headers = {}
        if doc is not None:
            data = json.dumps(doc, sort_keys=True).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib_request.Request(url, data=data, headers=headers,
                                     method=method)
        try:
            with urllib_request.urlopen(req, timeout=self.timeout) as resp:
                return (resp.status, self._decode(resp.read()),
                        dict(resp.headers))
        except urllib_error.HTTPError as exc:
            # 4xx/5xx still carry the JSON envelope; that is an answer,
            # not an outage.
            with exc:
                return exc.code, self._decode(exc.read()), dict(exc.headers)
        except (urllib_error.URLError, ConnectionError, socket.timeout,
                HTTPException, OSError) as exc:
            raise ShardUnavailable(self.base_url,
                                   f"{type(exc).__name__}: {exc}") from exc

    def _decode(self, body: bytes) -> Dict:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ShardProtocolError(
                f"shard {self.base_url} returned a non-JSON body "
                f"({exc})") from exc
        if not isinstance(doc, dict) or "ok" not in doc:
            raise ShardProtocolError(
                f"shard {self.base_url} returned JSON that is not the "
                f"service envelope")
        return doc

    # ------------------------------------------------------------------
    # Convenience verbs (all return the raw (status, envelope, headers))
    # ------------------------------------------------------------------
    def submit(self, doc: Dict) -> Response:
        """``POST /v1/jobs`` with a scenario or runspec document."""
        return self.request("POST", "/v1/jobs", doc)

    def job(self, job_id: str) -> Response:
        return self.request("GET", f"/v1/jobs/{job_id}")

    def result(self, digest: str) -> Response:
        return self.request("GET", f"/v1/results/{digest}")

    def ready(self) -> Response:
        return self.request("GET", "/readyz")
