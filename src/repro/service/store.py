"""Durable, crash-safe job state for the sweep service.

The :class:`JobStore` is the service's write-ahead log, built on the
fsynced :class:`~repro.experiments.sweep.SweepJournal` pattern: one JSONL
line per job state transition, flushed and fsynced before the transition
is acknowledged anywhere else.  The file is append-only across server
lifetimes — every boot appends a header line and replays everything that
came before it, so the complete history of a job (queued → running →
done/failed, possibly interleaved with crashes) is inspectable in one
place.

Crash-safety contract (the ordering the job manager must respect):

1. ``queued`` is appended (with the full scenario document) before the
   submission is acknowledged to the client — an accepted job can always
   be reconstructed.
2. ``running`` is appended before the simulation starts.
3. The result is published to the result cache (atomic ``os.replace``)
   *before* ``done`` is appended.

A crash in any window then recovers losslessly on replay:

* before 1 — the client never got an id; nothing was promised.
* between 1 and 2 (job ``queued``) — re-enqueued, executed once.
* between 2 and 3 (job ``running``) — re-enqueued; the cache has no
  record, so the run executes exactly once.
* between 3 and ``done`` (the torn window) — re-enqueued; the cache
  *hit* completes the job without re-executing the simulation.
* after ``done`` — replayed as complete; served straight from the store
  and the cache.

Corruption tolerance: any unparseable line — the torn final line of a
killed server, or a line damaged mid-file — is counted and skipped; the
affected job simply replays at its previous durable state and is
re-enqueued, which the deterministic chaos suite exercises via the
``serve_corrupt`` fault point.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional

#: Schema tag of the append-only service job journal.
JOB_STORE_SCHEMA = "repro-service-jobs-v1"

#: Job lifecycle states as journalled.  ``interrupted`` is appended by a
#: graceful shutdown for jobs it could not drain; ``queued``/``running``
#: jobs found at replay time were interrupted *ungracefully* and are
#: treated identically (re-enqueued).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
INTERRUPTED = "interrupted"

#: States a replayed job recovers from (re-enqueue on boot).
RECOVERABLE_STATES = (QUEUED, RUNNING, INTERRUPTED)


class JobStore:
    """Append-only fsynced JSONL store of job state transitions.

    Thread-safe: the HTTP handler threads append ``queued`` records while
    the drain worker appends ``running``/``done``/``failed``; a lock
    serialises appends so records never interleave mid-line.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.jobs: Dict[str, Dict] = {}
        self.corrupt_lines = 0
        self.boots = 0
        self._lock = threading.Lock()
        if self.path.exists():
            self._replay()
            self._terminate_torn_tail()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a")
        self.boots += 1
        self._append({"service": JOB_STORE_SCHEMA, "boot": self.boots})

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _replay(self) -> None:
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    # A torn final line (killed server) or a damaged
                    # middle line; the affected job replays at its last
                    # durable state.
                    self.corrupt_lines += 1
                    continue
                if not isinstance(entry, dict):
                    self.corrupt_lines += 1
                    continue
                if "service" in entry:
                    self.boots = max(self.boots, int(entry.get("boot", 0)))
                    continue
                self._apply(entry)

    def _terminate_torn_tail(self) -> None:
        """A file killed mid-append ends without a newline; terminate it
        so this boot's records start on a fresh line instead of merging
        into (and being swallowed by) the torn one."""
        try:
            with open(self.path, "rb+") as raw:
                raw.seek(0, os.SEEK_END)
                if raw.tell() == 0:
                    return
                raw.seek(-1, os.SEEK_END)
                if raw.read(1) != b"\n":
                    raw.write(b"\n")
        except OSError:
            pass

    def _apply(self, entry: Dict) -> None:
        job_id = entry.get("id")
        status = entry.get("status")
        if not job_id or status not in (QUEUED, RUNNING, DONE, FAILED,
                                        INTERRUPTED):
            self.corrupt_lines += 1
            return
        job = self.jobs.get(job_id)
        if job is None:
            job = {"id": job_id, "status": status, "attempts": 0}
            self.jobs[job_id] = job
        job["status"] = status
        if status == QUEUED:
            # Carries the scenario document (and resets the outcome on a
            # resubmission of a previously failed job).
            job["scenario"] = entry.get("scenario")
            job["name"] = entry.get("name", "")
            job.pop("failure", None)
            job.pop("fingerprint", None)
        elif status == RUNNING:
            job["attempts"] = job.get("attempts", 0) + 1
        elif status == DONE:
            job["cached"] = bool(entry.get("cached", False))
            job["simulated"] = bool(entry.get("simulated", False))
            job["fingerprint"] = entry.get("fingerprint")
            job.pop("failure", None)
        elif status == FAILED:
            job["failure"] = entry.get("failure")

    # ------------------------------------------------------------------
    # Appends (each one durable before it returns)
    # ------------------------------------------------------------------
    def _append(self, entry: Dict) -> None:
        with self._lock:
            self._handle.write(json.dumps(entry, sort_keys=True,
                                          separators=(",", ":")) + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def record_queued(self, job_id: str, scenario: Dict,
                      name: str = "") -> None:
        self._apply(entry := {"id": job_id, "status": QUEUED,
                              "scenario": scenario, "name": name})
        self._append(entry)

    def record_running(self, job_id: str) -> int:
        """Append a ``running`` transition; returns the attempt number
        (1-based, counted across server lifetimes)."""
        entry = {"id": job_id, "status": RUNNING,
                 "attempt": self.jobs.get(job_id, {}).get("attempts", 0) + 1}
        self._apply(entry)
        self._append(entry)
        return self.jobs[job_id]["attempts"]

    def record_done(self, job_id: str, *, cached: bool, simulated: bool,
                    fingerprint: Optional[Dict] = None) -> None:
        self._apply(entry := {"id": job_id, "status": DONE, "cached": cached,
                              "simulated": simulated,
                              "fingerprint": fingerprint})
        self._append(entry)

    def record_failed(self, job_id: str, failure: Dict) -> None:
        self._apply(entry := {"id": job_id, "status": FAILED,
                              "failure": failure})
        self._append(entry)

    def record_interrupted(self, job_id: str) -> None:
        self._apply(entry := {"id": job_id, "status": INTERRUPTED})
        self._append(entry)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[Dict]:
        return self.jobs.get(job_id)

    def recoverable(self) -> List[Dict]:
        """Jobs whose last durable state needs re-enqueueing on boot, in
        journal order (FIFO fairness across restarts)."""
        return [job for job in self.jobs.values()
                if job["status"] in RECOVERABLE_STATES]

    def simulated_done_count(self, job_id: str) -> int:
        """How many ``done`` records for this job mark a real simulation
        (``simulated: true``) across the *entire* journal history — the
        chaos suite's zero-duplicate-work evidence.  Reads the file, not
        the replayed state, so repeated transitions are all counted."""
        count = 0
        try:
            with open(self.path) as handle:
                for line in handle:
                    try:
                        entry = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if (isinstance(entry, dict)
                            and entry.get("id") == job_id
                            and entry.get("status") == DONE
                            and entry.get("simulated")):
                        count += 1
        except OSError:
            pass
        return count

    # ------------------------------------------------------------------
    def corrupt_tail(self) -> None:
        """Chaos hook (``serve_corrupt``): tear the last appended line the
        way a crashed non-atomic writer would, leaving a mid-journal
        corrupt line.  The tear is newline-terminated (as a post-crash
        boot would repair it) so only the torn record is lost."""
        with self._lock:
            self._handle.flush()
            size = os.fstat(self._handle.fileno()).st_size
            with open(self.path, "rb+") as raw:
                raw.truncate(max(0, size - 2))
                raw.seek(0, os.SEEK_END)
                raw.write(b"\n")

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass
