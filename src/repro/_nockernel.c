/* Compiled NoC route-reservation kernel (repro._nockernel).
 *
 * C implementation of the fused whole-route reservation algorithm defined
 * by repro.noc.kernel.FusedKernel — the same flat per-link interval slabs
 * (parallel start/end arrays of IEEE doubles plus the in-order watermark,
 * logical-prune head and frontier-resume cursor), the same watermark /
 * exact-touch / earliest-gap placement decisions, and the same batched
 * sweep pruning.  Every arithmetic operation is on doubles, which CPython
 * floats are, so placements, busy totals and delivery times are
 * bit-identical to the pure-Python backends by construction; the
 * randomized equivalence suite holds the module to that contract.
 *
 * The Python side (repro.noc.kernel.CompiledKernel) keeps route
 * compilation policy, the Link -> slab-id mapping and serialization
 * choice; this module is pure interval arithmetic:
 *
 *   Kernel(hop_latency, prune_slack, sweep_period, compact_threshold)
 *       .new_link() -> id                  allocate one per-link slab
 *       .compile_route(ids, serialization) -> Route
 *       .sweep(arrival)                    batched prune of every slab
 *       .busy_time(id) / .intervals(id)    introspection (live suffix)
 *       .reset()                           drop all slabs, bump generation
 *   Route.reserve(time) -> depart          THE hot path: one builtin call
 *                                          per message, whole route
 *
 * Route.reserve is a bound built-in method (METH_O), not an opaque
 * tp_call object, deliberately: cProfile records C_CALL events for
 * PyCFunctions, so profiled kernel time stays attributable to the
 * noc.kernel bucket instead of silently landing in the caller's frame.
 *
 * The tuning constants are passed in from repro.noc.kernel at
 * construction time so the single source of truth stays in Python and
 * the two implementations can never drift apart.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include "structmember.h"
#include <math.h>
#include <stddef.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* Per-link slab state                                                 */
/* ------------------------------------------------------------------ */

typedef struct {
    double wm;          /* watermark: end of last retained interval */
    double busy;        /* total busy time ever reserved */
    double *starts;     /* interval start slab (sorted, disjoint) */
    double *ends;       /* interval end slab (strictly increasing) */
    Py_ssize_t n;       /* intervals stored (dead prefix included) */
    Py_ssize_t cap;     /* slab capacity */
    Py_ssize_t head;    /* first live interval (logical prune point) */
    Py_ssize_t frontier;/* last out-of-order placement (search resume) */
} LinkState;

typedef struct {
    PyObject_HEAD
    double hop_latency;
    double prune_slack;
    long sweep_period;
    long compact_threshold;
    long countdown;      /* route reservations until the next sweep */
    unsigned long generation;  /* bumped by reset(); stale routes fail */
    LinkState *links;
    Py_ssize_t n_links;
    Py_ssize_t cap_links;
} KernelObject;

typedef struct {
    PyObject_HEAD
    KernelObject *kernel;      /* strong reference */
    unsigned long generation;  /* kernel generation at compile time */
    double serialization;
    Py_ssize_t n_links;
    Py_ssize_t *link_ids;
} RouteObject;

static PyTypeObject Kernel_Type;
static PyTypeObject Route_Type;

/* Mirrors bisect.bisect_left on a C double array. */
static inline Py_ssize_t
bisect_left_d(const double *a, double x, Py_ssize_t lo, Py_ssize_t hi)
{
    while (lo < hi) {
        Py_ssize_t mid = (lo + hi) >> 1;
        if (a[mid] < x)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

static int
link_ensure_capacity(LinkState *link, Py_ssize_t need)
{
    Py_ssize_t cap;
    double *starts, *ends;
    if (need <= link->cap)
        return 0;
    cap = link->cap ? link->cap : 16;
    while (cap < need)
        cap += cap >> 1 ? cap >> 1 : 8;
    starts = (double *)PyMem_Realloc(link->starts, cap * sizeof(double));
    if (starts == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    link->starts = starts;
    ends = (double *)PyMem_Realloc(link->ends, cap * sizeof(double));
    if (ends == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    link->ends = ends;
    link->cap = cap;
    return 0;
}

/* ------------------------------------------------------------------ */
/* Kernel type                                                         */
/* ------------------------------------------------------------------ */

static PyObject *
Kernel_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"hop_latency", "prune_slack", "sweep_period",
                             "compact_threshold", NULL};
    double hop_latency, prune_slack;
    long sweep_period, compact_threshold;
    KernelObject *self;

    if (!PyArg_ParseTupleAndKeywords(args, kwds, "ddll", kwlist,
                                     &hop_latency, &prune_slack,
                                     &sweep_period, &compact_threshold))
        return NULL;
    if (sweep_period < 1 || compact_threshold < 1) {
        PyErr_SetString(PyExc_ValueError,
                        "sweep_period and compact_threshold must be >= 1");
        return NULL;
    }
    self = (KernelObject *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->hop_latency = hop_latency;
    self->prune_slack = prune_slack;
    self->sweep_period = sweep_period;
    self->compact_threshold = compact_threshold;
    self->countdown = sweep_period;
    self->generation = 0;
    self->links = NULL;
    self->n_links = 0;
    self->cap_links = 0;
    return (PyObject *)self;
}

static void
kernel_free_links(KernelObject *self)
{
    Py_ssize_t i;
    for (i = 0; i < self->n_links; i++) {
        PyMem_Free(self->links[i].starts);
        PyMem_Free(self->links[i].ends);
    }
    PyMem_Free(self->links);
    self->links = NULL;
    self->n_links = 0;
    self->cap_links = 0;
}

static void
Kernel_dealloc(KernelObject *self)
{
    kernel_free_links(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
Kernel_new_link(KernelObject *self, PyObject *Py_UNUSED(ignored))
{
    LinkState *link;
    if (self->n_links == self->cap_links) {
        Py_ssize_t cap = self->cap_links ? self->cap_links * 2 : 16;
        LinkState *links = (LinkState *)PyMem_Realloc(
            self->links, cap * sizeof(LinkState));
        if (links == NULL)
            return PyErr_NoMemory();
        self->links = links;
        self->cap_links = cap;
    }
    link = &self->links[self->n_links];
    link->wm = -Py_HUGE_VAL;
    link->busy = 0.0;
    link->starts = NULL;
    link->ends = NULL;
    link->n = 0;
    link->cap = 0;
    link->head = 0;
    link->frontier = 0;
    return PyLong_FromSsize_t(self->n_links++);
}

/* Batched prune: advance every link's head past intervals that can no
 * longer influence any placement; physically compact long dead prefixes.
 * Mirrors FusedKernel._sweep exactly. */
static void
kernel_sweep(KernelObject *self, double arrival)
{
    double cutoff = arrival - self->prune_slack;
    Py_ssize_t i;
    for (i = 0; i < self->n_links; i++) {
        LinkState *link = &self->links[i];
        Py_ssize_t head = bisect_left_d(link->ends, cutoff,
                                        link->head, link->n);
        if (head >= self->compact_threshold) {
            Py_ssize_t live = link->n - head;
            memmove(link->starts, link->starts + head,
                    live * sizeof(double));
            memmove(link->ends, link->ends + head,
                    live * sizeof(double));
            link->n = live;
            link->frontier = link->frontier - head > 0
                                 ? link->frontier - head : 0;
            head = 0;
        }
        link->head = head;
    }
}

static PyObject *
Kernel_sweep(KernelObject *self, PyObject *arg)
{
    double arrival = PyFloat_AsDouble(arg);
    if (arrival == -1.0 && PyErr_Occurred())
        return NULL;
    kernel_sweep(self, arrival);
    Py_RETURN_NONE;
}

static LinkState *
kernel_link(KernelObject *self, PyObject *arg)
{
    Py_ssize_t lid = PyLong_AsSsize_t(arg);
    if (lid == -1 && PyErr_Occurred())
        return NULL;
    if (lid < 0 || lid >= self->n_links) {
        PyErr_Format(PyExc_IndexError, "no link slab %zd", lid);
        return NULL;
    }
    return &self->links[lid];
}

static PyObject *
Kernel_busy_time(KernelObject *self, PyObject *arg)
{
    LinkState *link = kernel_link(self, arg);
    if (link == NULL)
        return NULL;
    return PyFloat_FromDouble(link->busy);
}

/* The live interval suffix (from the head cursor), as two float lists —
 * the same shape FusedKernel.intervals returns. */
static PyObject *
Kernel_intervals(KernelObject *self, PyObject *arg)
{
    LinkState *link = kernel_link(self, arg);
    PyObject *starts, *ends, *result;
    Py_ssize_t i, live;
    if (link == NULL)
        return NULL;
    live = link->n - link->head;
    starts = PyList_New(live);
    if (starts == NULL)
        return NULL;
    ends = PyList_New(live);
    if (ends == NULL) {
        Py_DECREF(starts);
        return NULL;
    }
    for (i = 0; i < live; i++) {
        PyObject *value = PyFloat_FromDouble(link->starts[link->head + i]);
        if (value == NULL)
            goto fail;
        PyList_SET_ITEM(starts, i, value);
        value = PyFloat_FromDouble(link->ends[link->head + i]);
        if (value == NULL)
            goto fail;
        PyList_SET_ITEM(ends, i, value);
    }
    result = PyTuple_Pack(2, starts, ends);
    Py_DECREF(starts);
    Py_DECREF(ends);
    return result;
fail:
    Py_DECREF(starts);
    Py_DECREF(ends);
    return NULL;
}

static PyObject *
Kernel_reset(KernelObject *self, PyObject *Py_UNUSED(ignored))
{
    kernel_free_links(self);
    self->countdown = self->sweep_period;
    self->generation++;
    Py_RETURN_NONE;
}

static PyObject *
Kernel_compile_route(KernelObject *self, PyObject *args)
{
    PyObject *ids;
    double serialization;
    RouteObject *route;
    Py_ssize_t i, n;

    if (!PyArg_ParseTuple(args, "O!d", &PyTuple_Type, &ids, &serialization))
        return NULL;
    if (serialization <= 0.0) {
        /* Zero-width reservations never occupy a link; the Python
         * wrapper handles them with a flat closure and never gets here. */
        PyErr_SetString(PyExc_ValueError,
                        "compile_route requires serialization > 0");
        return NULL;
    }
    n = PyTuple_GET_SIZE(ids);
    route = (RouteObject *)Route_Type.tp_alloc(&Route_Type, 0);
    if (route == NULL)
        return NULL;
    Py_INCREF(self);
    route->kernel = self;
    route->generation = self->generation;
    route->serialization = serialization;
    route->n_links = n;
    route->link_ids = (Py_ssize_t *)PyMem_Malloc(
        (n ? n : 1) * sizeof(Py_ssize_t));
    if (route->link_ids == NULL) {
        Py_DECREF(route);
        return PyErr_NoMemory();
    }
    for (i = 0; i < n; i++) {
        Py_ssize_t lid = PyLong_AsSsize_t(PyTuple_GET_ITEM(ids, i));
        if (lid == -1 && PyErr_Occurred()) {
            Py_DECREF(route);
            return NULL;
        }
        if (lid < 0 || lid >= self->n_links) {
            Py_DECREF(route);
            PyErr_Format(PyExc_IndexError, "no link slab %zd", lid);
            return NULL;
        }
        route->link_ids[i] = lid;
    }
    return (PyObject *)route;
}

static PyMethodDef Kernel_methods[] = {
    {"new_link", (PyCFunction)Kernel_new_link, METH_NOARGS,
     "Allocate one per-link interval slab; returns its id."},
    {"compile_route", (PyCFunction)Kernel_compile_route, METH_VARARGS,
     "compile_route(link_ids, serialization) -> Route"},
    {"sweep", (PyCFunction)Kernel_sweep, METH_O,
     "Batched prune of every link slab at the given arrival time."},
    {"busy_time", (PyCFunction)Kernel_busy_time, METH_O,
     "Total time ever reserved on one link slab."},
    {"intervals", (PyCFunction)Kernel_intervals, METH_O,
     "The live (starts, ends) interval suffix of one link slab."},
    {"reset", (PyCFunction)Kernel_reset, METH_NOARGS,
     "Drop all slabs; routes compiled before the reset become invalid."},
    {NULL, NULL, 0, NULL}
};

static PyTypeObject Kernel_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._nockernel.Kernel",
    .tp_basicsize = sizeof(KernelObject),
    .tp_dealloc = (destructor)Kernel_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Flat per-link reservation slabs shared by compiled routes.",
    .tp_methods = Kernel_methods,
    .tp_new = Kernel_new,
};

/* ------------------------------------------------------------------ */
/* Route type                                                          */
/* ------------------------------------------------------------------ */

static void
Route_dealloc(RouteObject *self)
{
    PyMem_Free(self->link_ids);
    Py_XDECREF(self->kernel);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* THE hot path.  One call per message: walk the route's links in order,
 * placing the serialization at the earliest idle instant at or after the
 * message's arrival on each link (bit-identical to
 * ResourceSchedule.reserve / FusedKernel), advance by the hop latency,
 * and return the delivery time including the pipeline drain. */
static PyObject *
Route_reserve(RouteObject *self, PyObject *arg)
{
    KernelObject *kernel = self->kernel;
    double time, s, hop;
    Py_ssize_t i;

    time = PyFloat_AsDouble(arg);
    if (time == -1.0 && PyErr_Occurred())
        return NULL;
    if (self->generation != kernel->generation) {
        PyErr_SetString(PyExc_RuntimeError,
                        "route was compiled before the kernel was reset; "
                        "recompile it (the mesh drops its send cache on "
                        "reset_contention)");
        return NULL;
    }
    if (--kernel->countdown <= 0) {
        kernel_sweep(kernel, time);
        kernel->countdown = kernel->sweep_period;
    }
    s = self->serialization;
    hop = kernel->hop_latency;
    for (i = 0; i < self->n_links; i++) {
        LinkState *link = &kernel->links[self->link_ids[i]];
        double last = link->wm;
        if (time > last) {
            /* Idle at (and after) the arrival: append at the tail. */
            double end = time + s;
            if (link_ensure_capacity(link, link->n + 1) < 0)
                return NULL;
            link->wm = end;
            link->busy += s;
            link->starts[link->n] = time;
            link->ends[link->n] = end;
            link->n++;
        }
        else if (time == last) {
            /* Exact touch with the tail interval: serialize behind it by
             * extending the interval. */
            double end = last + s;
            link->wm = end;
            link->busy += s;
            link->ends[link->n - 1] = end;
        }
        else {
            /* Out-of-order: earliest idle gap at or after the arrival.
             * Mirrors FusedKernel's general path exactly (same gap walk,
             * same exact-touch coalescing, same frontier resume). */
            double *starts = link->starts;
            double *ends = link->ends;
            Py_ssize_t head = link->head;
            Py_ssize_t n = link->n;
            Py_ssize_t lo = link->frontier;
            Py_ssize_t pos;
            double start, end;
            int touches_prev;

            link->busy += s;
            if (!(head < lo && lo < n && ends[lo - 1] < time))
                lo = head;
            pos = bisect_left_d(ends, time, lo, n);
            start = time;
            if (pos < n && starts[pos] - start < s) {
                double end_here = ends[pos];
                if (end_here > start)
                    start = end_here;
                pos++;
                while (pos < n) {
                    if (starts[pos] - start >= s)
                        break;
                    start = ends[pos];
                    pos++;
                }
            }
            end = start + s;
            touches_prev = (pos > head && ends[pos - 1] == start);
            if (pos < n && starts[pos] == end) {
                if (touches_prev) {
                    /* Bridges both neighbours: merge all three. */
                    ends[pos - 1] = ends[pos];
                    memmove(starts + pos, starts + pos + 1,
                            (n - pos - 1) * sizeof(double));
                    memmove(ends + pos, ends + pos + 1,
                            (n - pos - 1) * sizeof(double));
                    link->n = n - 1;
                    pos--;
                }
                else {
                    starts[pos] = start;
                }
            }
            else if (touches_prev) {
                pos--;
                ends[pos] = end;
                if (pos == n - 1)
                    link->wm = end;   /* extended the tail */
            }
            else {
                if (link_ensure_capacity(link, n + 1) < 0)
                    return NULL;
                starts = link->starts;
                ends = link->ends;
                memmove(starts + pos + 1, starts + pos,
                        (n - pos) * sizeof(double));
                memmove(ends + pos + 1, ends + pos,
                        (n - pos) * sizeof(double));
                starts[pos] = start;
                ends[pos] = end;
                link->n = n + 1;
                if (pos == n)
                    link->wm = end;   /* inserted a new tail */
            }
            link->frontier = pos;
            time = start;
        }
        time += hop;
    }
    return PyFloat_FromDouble(time + s);
}

static PyMethodDef Route_methods[] = {
    {"reserve", (PyCFunction)Route_reserve, METH_O,
     "reserve(time) -> delivery time of a message injected at ``time``."},
    {NULL, NULL, 0, NULL}
};

static PyMemberDef Route_members[] = {
    {"serialization", T_DOUBLE, offsetof(RouteObject, serialization),
     READONLY, "per-link serialization time compiled into the route"},
    {NULL}
};

static PyTypeObject Route_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._nockernel.Route",
    .tp_basicsize = sizeof(RouteObject),
    .tp_dealloc = (destructor)Route_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "One compiled route: link slab ids + serialization.",
    .tp_methods = Route_methods,
    .tp_members = Route_members,
};

/* ------------------------------------------------------------------ */
/* Module                                                              */
/* ------------------------------------------------------------------ */

static struct PyModuleDef nockernel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._nockernel",
    .m_doc = "Compiled NoC route-reservation kernel (flat per-link "
             "interval slabs; bit-identical to the pure-Python backends).",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__nockernel(void)
{
    PyObject *module;
    if (PyType_Ready(&Kernel_Type) < 0)
        return NULL;
    if (PyType_Ready(&Route_Type) < 0)
        return NULL;
    module = PyModule_Create(&nockernel_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&Kernel_Type);
    if (PyModule_AddObject(module, "Kernel",
                           (PyObject *)&Kernel_Type) < 0) {
        Py_DECREF(&Kernel_Type);
        Py_DECREF(module);
        return NULL;
    }
    Py_INCREF(&Route_Type);
    if (PyModule_AddObject(module, "Route",
                           (PyObject *)&Route_Type) < 0) {
        Py_DECREF(&Route_Type);
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
