"""Virtual-memory image of a workload's data structures.

The simulator is trace driven, but the Indirect Memory Prefetcher needs to
*read the contents* of the index array (``B[i + delta]``) in order to compute
the address of the indirect prefetch (``A[B[i + delta]]``).  A
:class:`MemoryImage` provides exactly that: workloads register their arrays
(index arrays, data arrays, bit vectors, ...) at virtual base addresses, and
the prefetcher can later read integer values back from any address that falls
inside a registered array.

The image never stores per-byte data; it keeps a reference to the numpy array
that backs each registered region and translates ``(address) -> (array,
element index)`` on demand.  This keeps even large workloads cheap to build.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

#: Default page size used to align array base addresses.
PAGE_SIZE = 4096

#: Base of the region in which arrays are laid out by default.
DEFAULT_REGION_BASE = 0x1000_0000


class AddressError(ValueError):
    """Raised when an address does not fall inside any registered array."""


@dataclass(frozen=True)
class ArraySpec:
    """Description of one array registered in the memory image.

    Attributes:
        name: Unique name of the array (e.g. ``"col_idx"``).
        base: Virtual address of element 0.
        elem_size: Size of one element in bytes.  A value below 1 (e.g.
            ``1/8``) models bit vectors, matching the paper's ``Coeff = 1/8``.
        length: Number of elements.
        writable: Whether stores to this array are expected.
    """

    name: str
    base: int
    elem_size: float
    length: int
    writable: bool = False

    @property
    def size_bytes(self) -> int:
        """Total footprint of the array in bytes (at least one byte)."""
        return max(1, int(np.ceil(self.elem_size * self.length)))

    @property
    def end(self) -> int:
        """One past the last byte of the array."""
        return self.base + self.size_bytes

    def addr_of(self, index: int) -> int:
        """Return the byte address of ``array[index]``.

        For sub-byte elements (bit vectors) the address is the address of the
        byte containing the bit, which is what a load instruction would use.
        """
        if index < 0 or index >= self.length:
            raise IndexError(f"index {index} out of range for array {self.name!r}")
        return self.base + int(index * self.elem_size)

    def index_of(self, addr: int) -> int:
        """Return the element index containing byte address ``addr``."""
        if addr < self.base or addr >= self.end:
            raise AddressError(f"address {addr:#x} outside array {self.name!r}")
        return int((addr - self.base) // self.elem_size) if self.elem_size >= 1 else int(
            (addr - self.base) * (1.0 / self.elem_size)
        )

    def contains(self, addr: int) -> bool:
        """Return True when ``addr`` falls inside this array."""
        return self.base <= addr < self.end


@dataclass
class _Region:
    spec: ArraySpec
    data: Optional[np.ndarray]


class MemoryImage:
    """Registry of arrays laid out in a simulated virtual address space.

    Arrays are placed sequentially from ``region_base``, page aligned, with a
    guard page between consecutive arrays so that streams never run from one
    array into the next.
    """

    def __init__(self, region_base: int = DEFAULT_REGION_BASE) -> None:
        self._next_base = region_base
        self._regions: Dict[str, _Region] = {}
        self._bases: List[int] = []
        self._by_base: List[_Region] = []
        # Hot-path lookup table parallel to _bases/_by_base: one
        # (base, end, shift_or_None, elem_size, item_fn_or_None, length,
        # is_int) tuple per region, so read_value avoids recomputing np.ceil
        # footprints and dtype checks on every call (it runs once per index
        # load under IMP).
        self._read_index: List[tuple] = []
        # Move-to-front memo of the _read_index entries that recently
        # served read_value hits (only entries with backing data are
        # cached, so the hit path can skip the backing check).
        self._read_memo: List[tuple] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_array(
        self,
        name: str,
        data: Optional[np.ndarray] = None,
        *,
        length: Optional[int] = None,
        elem_size: Optional[float] = None,
        base: Optional[int] = None,
        writable: bool = False,
    ) -> ArraySpec:
        """Register an array and return its :class:`ArraySpec`.

        Either ``data`` (a numpy array whose dtype determines the element
        size) or both ``length`` and ``elem_size`` must be provided.
        """
        if name in self._regions:
            raise ValueError(f"array {name!r} already registered")
        if data is not None:
            data = np.asarray(data)
            if length is None:
                length = int(data.size)
            if elem_size is None:
                elem_size = float(data.dtype.itemsize)
        if length is None or elem_size is None:
            raise ValueError("either data or (length and elem_size) must be given")
        if base is None:
            base = self._next_base
        spec = ArraySpec(name=name, base=base, elem_size=float(elem_size),
                         length=int(length), writable=writable)
        region = _Region(spec=spec, data=data)
        self._regions[name] = region
        insert_at = bisect.bisect_left(self._bases, base)
        self._bases.insert(insert_at, base)
        self._by_base.insert(insert_at, region)
        if data is not None:
            flat = data.reshape(-1)
            size = float(elem_size)
            # Power-of-two integer element sizes (the usual case) index with
            # a shift instead of float division.
            shift = None
            if size >= 1 and size.is_integer() and (int(size) & (int(size) - 1)) == 0:
                shift = int(size).bit_length() - 1
            # Snapshot the values as a plain list: ndarray.item() re-boxes
            # a numpy scalar on every call, several times the cost of a
            # list subscript on the per-index-load read_value path.  The
            # image is immutable after registration, so the snapshot
            # cannot go stale.
            entry = (spec.base, spec.end, shift, size, flat.tolist(),
                     flat.size, bool(np.issubdtype(data.dtype, np.integer)))
        else:
            entry = (spec.base, spec.end, None, float(elem_size), None, 0,
                     False)
        self._read_index.insert(insert_at, entry)
        # Advance the allocation cursor past this array plus one guard page.
        end = spec.end
        self._next_base = max(self._next_base,
                              ((end + PAGE_SIZE) // PAGE_SIZE + 1) * PAGE_SIZE)
        return spec

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def array(self, name: str) -> ArraySpec:
        """Return the spec of a registered array."""
        return self._regions[name].spec

    def arrays(self) -> List[ArraySpec]:
        """Return all registered array specs in address order."""
        return [region.spec for region in self._by_base]

    def data(self, name: str) -> np.ndarray:
        """Return the numpy array backing a registered array.

        Treat the returned array as **read-only**: ``read_value`` serves
        from a snapshot taken at registration (a plain-list copy, which is
        what keeps the per-index-load hot path off ``ndarray.item``), so
        in-place mutation after registration would silently diverge from
        what prefetchers observe.  Build the data first, register once.
        """
        backing = self._regions[name].data
        if backing is None:
            raise ValueError(f"array {name!r} has no backing data")
        return backing

    def addr_of(self, name: str, index: int) -> int:
        """Return the address of ``name[index]``."""
        return self._regions[name].spec.addr_of(index)

    def addr_fn(self, name: str):
        """Return a fast ``index -> address`` mapper for a registered array.

        Produces the same addresses as :meth:`addr_of` but skips the
        per-call registry lookup and bounds check; intended for the trace
        generators, whose inner loops index within bounds by construction
        and call this mapping once per emitted access.
        """
        spec = self._regions[name].spec
        base = spec.base
        elem_size = spec.elem_size
        if elem_size >= 1 and float(elem_size).is_integer():
            elem_int = int(elem_size)
            return lambda index: base + index * elem_int
        return lambda index: base + int(index * elem_size)

    def find(self, addr: int) -> Optional[ArraySpec]:
        """Return the spec of the array containing ``addr``, if any."""
        pos = bisect.bisect_right(self._bases, addr) - 1
        if pos < 0:
            return None
        spec = self._by_base[pos].spec
        return spec if spec.contains(addr) else None

    def read_value(self, addr: int, default: Optional[int] = None) -> Optional[int]:
        """Read the integer value stored at ``addr``.

        Returns ``default`` when the address is not backed by data (e.g. a
        guard page or a data-only array registered without contents).  Float
        arrays return the truncated integer value, matching what a prefetcher
        snooping raw bits would *not* be able to use — callers that need the
        semantic value should read through :meth:`data` instead.
        """
        # Consecutive reads overwhelmingly cycle between a handful of
        # arrays (the index streams and the target arrays they point
        # into); a small move-to-front memo of recent hits skips the
        # bisect for all of them.
        memo = self._read_memo
        entry = None
        for slot, candidate in enumerate(memo):
            if candidate[0] <= addr < candidate[1]:
                entry = candidate
                if slot:
                    del memo[slot]
                    memo.insert(0, candidate)
                break
        if entry is None:
            pos = bisect.bisect_right(self._bases, addr) - 1
            if pos < 0:
                return default
            entry = self._read_index[pos]
            if addr >= entry[1] or entry[4] is None:
                return default
            memo.insert(0, entry)
            del memo[4:]
        base, end, shift, elem_size, items, length, is_int = entry
        if shift is not None:
            index = (addr - base) >> shift
        elif elem_size >= 1:
            index = int((addr - base) // elem_size)
        else:
            index = int((addr - base) * (1.0 / elem_size))
        if index >= length:
            return default
        if is_int:
            return items[index]
        return int(items[index])

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def __len__(self) -> int:
        return len(self._regions)
