"""Regular (SPLASH-2-style) workloads with no indirect accesses.

Section 6.1 of the paper notes that IMP was also run on SPLASH-2 benchmarks
that exhibit no indirect access patterns and that it "does not hurt
performance on these benchmarks" because indirect prefetching is never
triggered.  These kernels stand in for that suite: they stress streaming,
strided and blocked access patterns that a conventional stream prefetcher
already handles, and they are used by the no-harm ablation benchmark and by
tests of the false-positive behaviour of the IPD.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.mem_image import MemoryImage
from repro.sim.trace import AccessKind, Trace, TraceBuilder
from repro.workloads.base import Workload, WorkloadBuild, pc_of


class DenseStencilWorkload(Workload):
    """A 5-point Jacobi sweep over a dense 2-D grid (Ocean-like).

    Every access is an affine function of the loop indices: rows above and
    below the current row are strided streams, and the output is written
    sequentially.  There is no indirection anywhere.
    """

    name = "dense_stencil"

    PC_CENTER = pc_of(110)
    PC_NORTH = pc_of(111)
    PC_SOUTH = pc_of(112)
    PC_WEST = pc_of(113)
    PC_EAST = pc_of(114)
    PC_STORE = pc_of(115)

    def __init__(self, rows: int = 128, cols: int = 128, seed: int = 1) -> None:
        super().__init__(seed=seed)
        self.rows = rows
        self.cols = cols

    def build(self, n_cores: int, *, software_prefetch: bool = False,
              sw_prefetch_distance: int = 8) -> WorkloadBuild:
        image = MemoryImage()
        image.add_array("grid", np.zeros(self.rows * self.cols,
                                         dtype=np.float64))
        image.add_array("out", np.zeros(self.rows * self.cols,
                                        dtype=np.float64), writable=True)
        traces: List[Trace] = []
        interior = range(1, self.rows - 1)
        chunks = self.partition(len(interior), n_cores)
        grid_addr = image.addr_fn("grid")
        out_addr = image.addr_fn("out")
        for core_id, chunk in enumerate(chunks):
            builder = TraceBuilder(core_id)
            load = builder.load
            for offset in chunk:
                row = 1 + offset
                for col in range(1, self.cols - 1):
                    index = row * self.cols + col
                    load(self.PC_CENTER, grid_addr(index),
                         kind=AccessKind.STREAM)
                    load(self.PC_NORTH, grid_addr(index - self.cols),
                         kind=AccessKind.STREAM)
                    load(self.PC_SOUTH, grid_addr(index + self.cols),
                         kind=AccessKind.STREAM)
                    load(self.PC_WEST, grid_addr(index - 1),
                         kind=AccessKind.STREAM)
                    load(self.PC_EAST, grid_addr(index + 1),
                         kind=AccessKind.STREAM)
                    builder.compute(5)
                    builder.store(self.PC_STORE, out_addr(index),
                                  kind=AccessKind.STREAM)
            traces.append(builder.build())
        return WorkloadBuild(name=self.name, mem_image=image, traces=traces,
                             metadata={"rows": self.rows, "cols": self.cols})


class BlockedMatMulWorkload(Workload):
    """Blocked dense matrix multiplication (LU/FFT-like blocked traversal).

    Accesses walk fixed-size blocks of three dense matrices; strides within a
    block are constant, so the stream prefetcher captures everything and IMP
    must stay silent.
    """

    name = "blocked_matmul"

    PC_A = pc_of(120)
    PC_B = pc_of(121)
    PC_C_LOAD = pc_of(122)
    PC_C_STORE = pc_of(123)

    def __init__(self, size: int = 64, block: int = 8, seed: int = 1) -> None:
        super().__init__(seed=seed)
        if size % block:
            raise ValueError("matrix size must be a multiple of the block size")
        self.size = size
        self.block = block

    def build(self, n_cores: int, *, software_prefetch: bool = False,
              sw_prefetch_distance: int = 8) -> WorkloadBuild:
        image = MemoryImage()
        for name in ("mat_a", "mat_b"):
            image.add_array(name, np.zeros(self.size * self.size,
                                           dtype=np.float64))
        image.add_array("mat_c", np.zeros(self.size * self.size,
                                          dtype=np.float64), writable=True)
        blocks_per_dim = self.size // self.block
        block_rows = range(blocks_per_dim)
        traces: List[Trace] = []
        for core_id, chunk in enumerate(self.partition(blocks_per_dim, n_cores)):
            builder = TraceBuilder(core_id)
            for bi in chunk:
                for bj in range(blocks_per_dim):
                    for bk in range(blocks_per_dim):
                        self._emit_block(builder, image, bi, bj, bk)
            traces.append(builder.build())
        return WorkloadBuild(name=self.name, mem_image=image, traces=traces,
                             metadata={"size": self.size, "block": self.block})

    def _emit_block(self, builder: TraceBuilder, image: MemoryImage,
                    bi: int, bj: int, bk: int) -> None:
        base_i, base_j, base_k = (bi * self.block, bj * self.block,
                                  bk * self.block)
        a_addr = image.addr_fn("mat_a")
        b_addr = image.addr_fn("mat_b")
        c_addr = image.addr_fn("mat_c")
        load = builder.load
        for i in range(base_i, base_i + self.block):
            for j in range(base_j, base_j + self.block):
                c_index = i * self.size + j
                load(self.PC_C_LOAD, c_addr(c_index), kind=AccessKind.STREAM)
                for k in range(base_k, base_k + self.block, 2):
                    load(self.PC_A, a_addr(i * self.size + k),
                         kind=AccessKind.STREAM)
                    load(self.PC_B, b_addr(k * self.size + j),
                         kind=AccessKind.STREAM)
                    builder.compute(4)
                builder.store(self.PC_C_STORE, c_addr(c_index),
                              kind=AccessKind.STREAM)


class StridedCopyWorkload(Workload):
    """A strided copy kernel (radix-sort/FFT-permutation flavoured).

    Reads with a large constant stride and writes sequentially.  The stride
    is affine so the stream prefetcher learns it; there is no indirection.
    """

    name = "strided_copy"

    PC_LOAD = pc_of(130)
    PC_STORE = pc_of(131)

    def __init__(self, n_elements: int = 32768, stride: int = 16,
                 seed: int = 1) -> None:
        super().__init__(seed=seed)
        self.n_elements = n_elements
        self.stride = stride

    def build(self, n_cores: int, *, software_prefetch: bool = False,
              sw_prefetch_distance: int = 8) -> WorkloadBuild:
        image = MemoryImage()
        image.add_array("src", np.zeros(self.n_elements, dtype=np.float64))
        image.add_array("dst", np.zeros(self.n_elements, dtype=np.float64),
                        writable=True)
        traces: List[Trace] = []
        per_core = self.n_elements // max(1, n_cores)
        src_addr = image.addr_fn("src")
        dst_addr = image.addr_fn("dst")
        for core_id, chunk in enumerate(self.partition(self.n_elements, n_cores)):
            builder = TraceBuilder(core_id)
            positions = list(chunk)
            for destination, position in enumerate(positions):
                source = (position * self.stride) % self.n_elements
                builder.load(self.PC_LOAD, src_addr(source),
                             kind=AccessKind.STREAM)
                builder.store(self.PC_STORE,
                              dst_addr(chunk.start + destination),
                              kind=AccessKind.STREAM)
                builder.compute(1)
            traces.append(builder.build())
        return WorkloadBuild(name=self.name, mem_image=image, traces=traces,
                             metadata={"stride": self.stride})


#: The regular kernels used by the no-harm ablation.
REGULAR_WORKLOADS = {
    "dense_stencil": DenseStencilWorkload,
    "blocked_matmul": BlockedMatMulWorkload,
    "strided_copy": StridedCopyWorkload,
}
