"""Stochastic Gradient Descent for collaborative filtering (Section 5.3).

Matrix factorisation by SGD: the ratings are a stream of (user, item, value)
triples; for each triple the kernel gathers the user's and the item's
feature rows, computes a prediction error, and scatters updated rows back::

    u   = rating_user[k]        # INDEX   (sequential scan)
    i   = rating_item[k]        # INDEX   (sequential scan, second stream)
    pu  = user_feat[u]          # INDIRECT, 16-byte rows (shift = 4)
    qi  = item_feat[i]          # INDIRECT, 16-byte rows (shift = 4)
    ... dot product, error ...
    user_feat[u] = ...          # INDIRECT store
    item_feat[i] = ...          # INDIRECT store

Feature rows are 16 bytes (two doubles), matching the paper's "coefficient
16 for small structures" shift value.  Unlike pagerank's multi-way pattern,
the two indirections here come from *different* index arrays and therefore
train two separate PT entries.  SGD is the most compute-heavy workload of
the suite (it is the compute-bound example of Figure 13).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.mem_image import MemoryImage
from repro.sim.trace import AccessKind, Trace, TraceBuilder
from repro.workloads.base import Workload, WorkloadBuild, pc_of
from repro.workloads.sparse import ratings_matrix


class SGDWorkload(Workload):
    """SGD matrix factorisation over a sparse ratings matrix."""

    name = "sgd"

    PC_RATING_USER = pc_of(70)
    PC_RATING_ITEM = pc_of(71)
    PC_RATING_VALUE = pc_of(72)
    PC_USER_FEAT = pc_of(73)
    PC_ITEM_FEAT = pc_of(74)
    PC_USER_STORE = pc_of(75)
    PC_ITEM_STORE = pc_of(76)
    PC_SW_PREFETCH_U = pc_of(77)
    PC_SW_PREFETCH_I = pc_of(78)

    #: Feature-row size in doubles; 2 doubles = 16 bytes = shift 4.
    FEATURES = 2

    def __init__(self, n_users: int = 4096, n_items: int = 4096,
                 n_ratings: int = 24576, seed: int = 1) -> None:
        super().__init__(seed=seed)
        self.n_users = n_users
        self.n_items = n_items
        self.n_ratings = n_ratings

    # ------------------------------------------------------------------
    def build(self, n_cores: int, *, software_prefetch: bool = False,
              sw_prefetch_distance: int = 8) -> WorkloadBuild:
        users, items, values = ratings_matrix(self.n_users, self.n_items,
                                              self.n_ratings, seed=self.seed)
        image = MemoryImage()
        image.add_array("rating_user", users)
        image.add_array("rating_item", items)
        image.add_array("rating_value", values)
        image.add_array("user_feat",
                        np.zeros(self.n_users * self.FEATURES, dtype=np.float64),
                        elem_size=8 * self.FEATURES, length=self.n_users,
                        writable=True)
        image.add_array("item_feat",
                        np.zeros(self.n_items * self.FEATURES, dtype=np.float64),
                        elem_size=8 * self.FEATURES, length=self.n_items,
                        writable=True)
        traces: List[Trace] = []
        for core_id, ratings in enumerate(self.partition(self.n_ratings, n_cores)):
            traces.append(self._core_trace(core_id, ratings, users, items, image,
                                           software_prefetch,
                                           sw_prefetch_distance))
        return WorkloadBuild(name=self.name, mem_image=image, traces=traces,
                             metadata={"users": self.n_users,
                                       "items": self.n_items,
                                       "ratings": self.n_ratings})

    # ------------------------------------------------------------------
    def _core_trace(self, core_id: int, ratings: range, users: np.ndarray,
                    items: np.ndarray, image: MemoryImage,
                    software_prefetch: bool, distance: int) -> Trace:
        builder = TraceBuilder(core_id)
        end = ratings.stop
        # Hoisted address mappers and builder methods (hot generator loop).
        rating_user_addr = image.addr_fn("rating_user")
        rating_item_addr = image.addr_fn("rating_item")
        rating_value_addr = image.addr_fn("rating_value")
        user_feat_addr = image.addr_fn("user_feat")
        item_feat_addr = image.addr_fn("item_feat")
        load = builder.load
        store = builder.store
        for k in ratings:
            user = int(users[k])
            item = int(items[k])
            if software_prefetch and k + distance < end:
                builder.sw_prefetch(self.PC_SW_PREFETCH_U,
                                    user_feat_addr(int(users[k + distance])))
                builder.sw_prefetch(self.PC_SW_PREFETCH_I,
                                    item_feat_addr(int(items[k + distance])))
            load(self.PC_RATING_USER, rating_user_addr(k),
                 size=4, kind=AccessKind.INDEX)
            load(self.PC_RATING_ITEM, rating_item_addr(k),
                 size=4, kind=AccessKind.INDEX)
            load(self.PC_RATING_VALUE, rating_value_addr(k),
                 kind=AccessKind.STREAM)
            load(self.PC_USER_FEAT, user_feat_addr(user),
                 size=16, kind=AccessKind.INDIRECT)
            load(self.PC_ITEM_FEAT, item_feat_addr(item),
                 size=16, kind=AccessKind.INDIRECT)
            # Dot product, error computation and least-squares update: the
            # compute-heavy part that makes SGD compute-bound.
            builder.compute(20)
            store(self.PC_USER_STORE, user_feat_addr(user),
                  size=16, kind=AccessKind.INDIRECT)
            store(self.PC_ITEM_STORE, item_feat_addr(item),
                  size=16, kind=AccessKind.INDIRECT)
            builder.compute(4)
        return builder.build()
