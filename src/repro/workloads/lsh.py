"""Locality Sensitive Hashing (LSH) nearest-neighbour search (Section 5.3).

For each query, LSH looks up one bucket per hash table, concatenates the
candidate lists, and then *filters* the candidates by computing the distance
from each candidate's data row to the query.  Filtering dominates and is an
indirect gather over the dataset with the candidate list as the index
array::

    c    = candidates[k]        # INDEX    (scan of the matching bucket)
    row  = dataset[c]           # INDIRECT, 16-byte rows (shift = 4)
    ... distance computation against the query vector ...

Buckets are short (tens of candidates), so like triangle counting this
workload has many short indirect loops — the paper reports lower accuracy
and more late prefetches for it (Table 3).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.mem_image import MemoryImage
from repro.sim.trace import AccessKind, Trace, TraceBuilder
from repro.workloads.base import Workload, WorkloadBuild, pc_of


class LSHWorkload(Workload):
    """LSH query filtering over a synthetic high-dimensional dataset."""

    name = "lsh"

    PC_BUCKET_PTR = pc_of(80)
    PC_CANDIDATE = pc_of(81)
    PC_DATASET = pc_of(82)
    PC_QUERY = pc_of(83)
    PC_SW_PREFETCH = pc_of(84)

    #: Row size of the (projected) dataset in doubles; 2 doubles = 16 bytes.
    ROW_DOUBLES = 2

    def __init__(self, n_points: int = 8192, n_queries: int = 384,
                 n_tables: int = 4, bucket_size: int = 24, seed: int = 1) -> None:
        super().__init__(seed=seed)
        self.n_points = n_points
        self.n_queries = n_queries
        self.n_tables = n_tables
        self.bucket_size = bucket_size

    # ------------------------------------------------------------------
    def build(self, n_cores: int, *, software_prefetch: bool = False,
              sw_prefetch_distance: int = 8) -> WorkloadBuild:
        rng = self.rng()
        # One candidate list per (query, table), drawn with a popularity skew
        # so hot points appear in many buckets (as in real LSH tables).
        popularity = (np.arange(1, self.n_points + 1) ** -0.5)
        popularity /= popularity.sum()
        total_candidates = self.n_queries * self.n_tables * self.bucket_size
        candidates = rng.choice(self.n_points, size=total_candidates,
                                p=popularity).astype(np.int32)
        bucket_ptr = np.arange(0, total_candidates + 1, self.bucket_size,
                               dtype=np.int64)
        image = MemoryImage()
        image.add_array("bucket_ptr", bucket_ptr)
        image.add_array("candidates", candidates)
        image.add_array("dataset",
                        rng.standard_normal(self.n_points * self.ROW_DOUBLES),
                        elem_size=8 * self.ROW_DOUBLES, length=self.n_points)
        image.add_array("queries",
                        rng.standard_normal(self.n_queries * self.ROW_DOUBLES),
                        elem_size=8 * self.ROW_DOUBLES, length=self.n_queries)
        traces: List[Trace] = []
        for core_id, queries in enumerate(self.partition(self.n_queries, n_cores)):
            traces.append(self._core_trace(core_id, queries, candidates, image,
                                           software_prefetch,
                                           sw_prefetch_distance))
        return WorkloadBuild(name=self.name, mem_image=image, traces=traces,
                             metadata={"points": self.n_points,
                                       "queries": self.n_queries,
                                       "tables": self.n_tables})

    # ------------------------------------------------------------------
    def _core_trace(self, core_id: int, queries: range, candidates: np.ndarray,
                    image: MemoryImage, software_prefetch: bool,
                    distance: int) -> Trace:
        builder = TraceBuilder(core_id)
        # Hoisted address mappers and builder methods (hot generator loop).
        queries_addr = image.addr_fn("queries")
        bucket_ptr_addr = image.addr_fn("bucket_ptr")
        candidates_addr = image.addr_fn("candidates")
        dataset_addr = image.addr_fn("dataset")
        load = builder.load
        compute = builder.compute
        for query in queries:
            load(self.PC_QUERY, queries_addr(query),
                 size=16, kind=AccessKind.STREAM)
            compute(8)                    # hash the query for every table
            for table in range(self.n_tables):
                bucket = query * self.n_tables + table
                start = bucket * self.bucket_size
                end = start + self.bucket_size
                load(self.PC_BUCKET_PTR, bucket_ptr_addr(bucket),
                     kind=AccessKind.STREAM)
                compute(2)
                for k in range(start, end):
                    candidate = int(candidates[k])
                    if software_prefetch and k + distance < end:
                        target = int(candidates[k + distance])
                        builder.sw_prefetch(self.PC_SW_PREFETCH,
                                            dataset_addr(target))
                    load(self.PC_CANDIDATE, candidates_addr(k),
                         size=4, kind=AccessKind.INDEX)
                    load(self.PC_DATASET, dataset_addr(candidate),
                         size=16, kind=AccessKind.INDIRECT)
                    compute(6)            # distance computation
        return builder.build()
