"""Graph generation and CSR storage.

The paper's graph workloads (pagerank, triangle counting, Graph500 BFS) all
operate on graphs stored in Compressed Sparse Row (CSR) format: a row
pointer array and a column index array.  Graph500 specifies a power-law
(Kronecker/RMAT) degree distribution; we generate power-law graphs with a
Zipf-like degree sequence, which preserves the property that matters for
memory behaviour — a skewed, irregular neighbour structure with essentially
random column indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass(frozen=True)
class CSRGraph:
    """A directed graph in CSR form."""

    row_ptr: np.ndarray     # int64, length num_vertices + 1
    col_idx: np.ndarray     # int32, length num_edges

    @property
    def num_vertices(self) -> int:
        return len(self.row_ptr) - 1

    @property
    def num_edges(self) -> int:
        return int(self.row_ptr[-1])

    def degree(self, vertex: int) -> int:
        return int(self.row_ptr[vertex + 1] - self.row_ptr[vertex])

    def neighbors(self, vertex: int) -> np.ndarray:
        return self.col_idx[self.row_ptr[vertex]:self.row_ptr[vertex + 1]]

    def out_degrees(self) -> np.ndarray:
        return np.diff(self.row_ptr).astype(np.int32)


def _degree_sequence(n_vertices: int, avg_degree: float, power: float,
                     rng: np.random.Generator) -> np.ndarray:
    """Zipf-like degree sequence with the requested average degree."""
    ranks = np.arange(1, n_vertices + 1, dtype=np.float64)
    rng.shuffle(ranks)
    weights = ranks ** (-power)
    weights *= (avg_degree * n_vertices) / weights.sum()
    degrees = np.maximum(1, np.round(weights)).astype(np.int64)
    return degrees


def power_law_graph(n_vertices: int, avg_degree: float = 8.0,
                    power: float = 0.6, seed: int = 1,
                    acyclic: bool = False) -> CSRGraph:
    """Generate a directed power-law graph in CSR form.

    ``acyclic=True`` restricts edges to go from lower- to higher-numbered
    vertices (used by triangle counting, which the paper runs on acyclic
    directed graphs).
    """
    rng = np.random.default_rng(seed)
    degrees = _degree_sequence(n_vertices, avg_degree, power, rng)
    row_ptr = np.zeros(n_vertices + 1, dtype=np.int64)
    np.cumsum(degrees, out=row_ptr[1:])
    num_edges = int(row_ptr[-1])
    # Destination choice is itself skewed (popular vertices attract edges),
    # matching the hub structure of RMAT graphs.
    popularity = _degree_sequence(n_vertices, avg_degree, power, rng).astype(np.float64)
    popularity /= popularity.sum()
    col_idx = rng.choice(n_vertices, size=num_edges, p=popularity).astype(np.int32)
    if acyclic:
        sources = np.repeat(np.arange(n_vertices, dtype=np.int64), degrees)
        # Force each edge forward; wrap-around edges collapse to a self-free
        # forward neighbour.
        forward = np.where(col_idx > sources,
                           col_idx,
                           ((sources + 1 + col_idx) % n_vertices)).astype(np.int32)
        forward = np.maximum(forward, np.minimum(sources + 1, n_vertices - 1)).astype(np.int32)
        col_idx = forward
    return CSRGraph(row_ptr=row_ptr, col_idx=col_idx)


def uniform_graph(n_vertices: int, avg_degree: float = 8.0,
                  seed: int = 1) -> CSRGraph:
    """Generate a directed graph with uniform-random edges."""
    rng = np.random.default_rng(seed)
    degrees = np.full(n_vertices, int(round(avg_degree)), dtype=np.int64)
    row_ptr = np.zeros(n_vertices + 1, dtype=np.int64)
    np.cumsum(degrees, out=row_ptr[1:])
    col_idx = rng.integers(0, n_vertices, size=int(row_ptr[-1]), dtype=np.int32)
    return CSRGraph(row_ptr=row_ptr, col_idx=col_idx)


def bfs_levels(graph: CSRGraph, root: int) -> List[np.ndarray]:
    """Frontier of each BFS level starting from ``root`` (used by Graph500)."""
    visited = np.zeros(graph.num_vertices, dtype=bool)
    visited[root] = True
    frontier = np.array([root], dtype=np.int32)
    levels = [frontier]
    while len(frontier):
        next_frontier: List[int] = []
        for vertex in frontier:
            for neighbor in graph.neighbors(int(vertex)):
                if not visited[neighbor]:
                    visited[neighbor] = True
                    next_frontier.append(int(neighbor))
        frontier = np.array(next_frontier, dtype=np.int32)
        if len(frontier):
            levels.append(frontier)
    return levels
