"""Triangle counting workload (Section 5.3).

The paper's triangle-counting code works on acyclic directed graphs and
converts each vertex's neighbour list into a bit vector that is then probed
indirectly while scanning the two-hop neighbourhood::

    u      = col_idx[j]               # INDEX  (scan of v's neighbours)
    start  = row_ptr[u]               # INDIRECT (8-byte elements)
    w      = col_idx[start + k]       # INDEX  (scan of u's neighbours)
    bit    = bitvec[w >> 3]           # INDIRECT, bit vector (shift = -3,
                                      #  coefficient 1/8 — Table 2)

Loops here have small trip counts (a vertex's out-degree), which is what
makes triangle counting the workload with late prefetches and the strongest
sensitivity to the PT size and prefetch distance in the paper (Figures 14
and 16).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.mem_image import MemoryImage
from repro.sim.trace import AccessKind, Trace, TraceBuilder
from repro.workloads.base import Workload, WorkloadBuild, pc_of
from repro.workloads.graphs import CSRGraph, power_law_graph


class TriangleCountWorkload(Workload):
    """Triangle counting by neighbourhood bit-vector intersection."""

    name = "tri_count"

    PC_ROW_PTR_V = pc_of(60)
    PC_COL_IDX_V = pc_of(61)
    PC_ROW_PTR_U = pc_of(62)
    PC_COL_IDX_U = pc_of(63)
    PC_BITVEC_SET = pc_of(64)
    PC_BITVEC_TEST = pc_of(65)
    PC_SW_PREFETCH = pc_of(66)

    def __init__(self, n_vertices: int = 2048, avg_degree: float = 6.0,
                 seed: int = 1, max_two_hop_per_vertex: int = 128) -> None:
        super().__init__(seed=seed)
        self.n_vertices = n_vertices
        self.avg_degree = avg_degree
        self.max_two_hop_per_vertex = max_two_hop_per_vertex

    # ------------------------------------------------------------------
    def build(self, n_cores: int, *, software_prefetch: bool = False,
              sw_prefetch_distance: int = 8) -> WorkloadBuild:
        graph = power_law_graph(self.n_vertices, self.avg_degree,
                                seed=self.seed, acyclic=True)
        image = MemoryImage()
        image.add_array("row_ptr", graph.row_ptr)
        image.add_array("col_idx", graph.col_idx)
        image.add_array("bitvec", np.zeros(self.n_vertices, dtype=np.uint8),
                        elem_size=1 / 8, length=self.n_vertices, writable=True)
        traces: List[Trace] = []
        for core_id, vertices in enumerate(self.partition(self.n_vertices,
                                                          n_cores)):
            traces.append(self._core_trace(core_id, vertices, graph, image,
                                           software_prefetch,
                                           sw_prefetch_distance))
        return WorkloadBuild(name=self.name, mem_image=image, traces=traces,
                             metadata={"vertices": self.n_vertices,
                                       "edges": graph.num_edges})

    # ------------------------------------------------------------------
    def _core_trace(self, core_id: int, vertices: range, graph: CSRGraph,
                    image: MemoryImage, software_prefetch: bool,
                    distance: int) -> Trace:
        builder = TraceBuilder(core_id)
        col_idx = graph.col_idx
        row_ptr = graph.row_ptr
        # Hoisted address mappers and builder methods (hot generator loop).
        row_ptr_addr = image.addr_fn("row_ptr")
        col_idx_addr = image.addr_fn("col_idx")
        bitvec_addr = image.addr_fn("bitvec")
        load = builder.load
        compute = builder.compute
        for vertex in vertices:
            start = int(row_ptr[vertex])
            end = int(row_ptr[vertex + 1])
            load(self.PC_ROW_PTR_V, row_ptr_addr(vertex),
                 kind=AccessKind.STREAM)
            # Build the bit vector of v's neighbourhood (streaming writes).
            for j in range(start, end):
                neighbor = int(col_idx[j])
                load(self.PC_COL_IDX_V, col_idx_addr(j),
                     size=4, kind=AccessKind.INDEX)
                builder.store(self.PC_BITVEC_SET, bitvec_addr(neighbor),
                              size=1, kind=AccessKind.INDIRECT)
                compute(1)
            # Intersect each neighbour's neighbour list with the bit vector.
            two_hop_budget = self.max_two_hop_per_vertex
            for j in range(start, end):
                if two_hop_budget <= 0:
                    break
                u = int(col_idx[j])
                load(self.PC_COL_IDX_V, col_idx_addr(j),
                     size=4, kind=AccessKind.INDEX)
                load(self.PC_ROW_PTR_U, row_ptr_addr(u),
                     kind=AccessKind.INDIRECT)
                compute(1)
                u_start = int(row_ptr[u])
                u_end = int(row_ptr[u + 1])
                for k in range(u_start, u_end):
                    if two_hop_budget <= 0:
                        break
                    two_hop_budget -= 1
                    w = int(col_idx[k])
                    if software_prefetch and k + distance < u_end:
                        target = int(col_idx[k + distance])
                        builder.sw_prefetch(self.PC_SW_PREFETCH,
                                            bitvec_addr(target))
                    load(self.PC_COL_IDX_U, col_idx_addr(k),
                         size=4, kind=AccessKind.INDEX)
                    load(self.PC_BITVEC_TEST, bitvec_addr(w),
                         size=1, kind=AccessKind.INDIRECT)
                    compute(2)           # bit test and triangle count update
        return builder.build()
