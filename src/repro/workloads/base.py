"""Workload interface.

A workload knows how to lay out its data structures in a
:class:`repro.mem_image.MemoryImage` and how to emit, per core, the memory
trace the kernel would generate.  Each workload also knows how to emit its
*software-prefetching* variant (Mowry-style compiler-inserted indirect
prefetches, Section 5.4), which only differs by extra
:class:`repro.sim.trace.SwPrefetch` entries inside inner loops.

All seven applications of the paper's evaluation (Section 5.3) are
implemented as subclasses, plus a synthetic "stream" workload used by tests
to confirm IMP does not misfire on non-indirect codes (the paper's SPLASH-2
sanity check).
"""

from __future__ import annotations

import abc
import gc
import inspect
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.mem_image import MemoryImage
from repro.sim.trace import Trace


class WorkloadSpecError(TypeError):
    """Raised when a workload cannot be described by plain constructor
    parameters (e.g. it was built around a live, pre-constructed matrix
    object).  Such workloads still simulate fine in-process; they just
    cannot be shipped to sweep worker processes or keyed into the
    persistent result cache."""


#: Base address used for the synthetic program counters of each load site.
PC_BASE = 0x0040_0000


def pc_of(site: int) -> int:
    """Program counter of static load/store site number ``site``."""
    return PC_BASE + site * 8


@dataclass
class WorkloadBuild:
    """Everything the simulator needs to run one workload."""

    name: str
    mem_image: MemoryImage
    traces: List[Trace]
    metadata: Dict[str, float] = field(default_factory=dict)

    @property
    def total_instructions(self) -> int:
        return sum(trace.instruction_count for trace in self.traces)

    @property
    def total_memory_references(self) -> int:
        return sum(trace.memory_reference_count for trace in self.traces)


class Workload(abc.ABC):
    """Base class of all workload generators."""

    #: Short name used in result tables (matches the paper's figures).
    name: str = "workload"

    def __init__(self, seed: int = 1) -> None:
        self.seed = seed
        self._build_cache: Dict[tuple, WorkloadBuild] = {}

    def rng(self, salt: int = 0) -> np.random.Generator:
        """A deterministic random generator derived from the workload seed."""
        return np.random.default_rng(self.seed * 0x9E3779B1 + salt)

    @abc.abstractmethod
    def build(self, n_cores: int, *, software_prefetch: bool = False,
              sw_prefetch_distance: int = 8) -> WorkloadBuild:
        """Lay out the data structures and emit one trace per core."""

    def cached_build(self, n_cores: int, *, software_prefetch: bool = False,
                     sw_prefetch_distance: int = 8) -> WorkloadBuild:
        """Memoised :meth:`build`.

        Builds are deterministic in (workload seed, core count, software-
        prefetch knobs), and the simulator never mutates a build (traces are
        read-only columns, the memory image is read-only), so sweeping one
        workload across prefetchers/configurations — what every figure of
        the paper does — can reuse one build instead of regenerating the
        trace per run.  Used by :func:`repro.sim.system.run_workload`.
        """
        key = (n_cores, software_prefetch, sw_prefetch_distance)
        build = self._build_cache.get(key)
        if build is None:
            # Trace generation allocates heavily and creates no reference
            # cycles; keep the generational GC out of it (same rationale as
            # System.run).
            gc_was_enabled = gc.isenabled()
            if gc_was_enabled:
                gc.disable()
            try:
                build = self.build(
                    n_cores, software_prefetch=software_prefetch,
                    sw_prefetch_distance=sw_prefetch_distance)
            finally:
                if gc_was_enabled:
                    gc.enable()
            self._build_cache[key] = build
        return build

    def clear_build_cache(self) -> None:
        """Release memoised builds (they can be tens of MB each for
        full-size inputs across a core-count sweep)."""
        self._build_cache.clear()

    # ------------------------------------------------------------------
    # Spec serialisation (parallel sweeps, persistent result cache)
    # ------------------------------------------------------------------
    def spec_params(self) -> Dict[str, object]:
        """Constructor parameters that recreate this workload exactly.

        Every workload stores its constructor arguments as same-named
        attributes (``matrix``-style object parameters live under a leading
        underscore), so the parameters can be recovered by introspecting
        ``__init__``.  The result must be JSON-serialisable: it becomes part
        of the :class:`repro.experiments.sweep.RunSpec` that worker
        processes use to rebuild the workload, and part of the on-disk
        cache key.  Raises :class:`WorkloadSpecError` when a parameter is a
        live object (a pre-built matrix, say) that has no such
        representation.
        """
        params: Dict[str, object] = {}
        signature = inspect.signature(type(self).__init__)
        for name, parameter in signature.parameters.items():
            if name == "self" or parameter.kind in (
                    inspect.Parameter.VAR_POSITIONAL,
                    inspect.Parameter.VAR_KEYWORD):
                continue
            missing = object()
            value = getattr(self, name, missing)
            if value is missing or inspect.ismethod(value):
                value = getattr(self, "_" + name, missing)
            if value is missing:
                raise WorkloadSpecError(
                    f"{type(self).__name__} does not expose constructor "
                    f"parameter {name!r} as an attribute")
            if value is None and parameter.default is None:
                continue  # omitted optional object parameter
            if not isinstance(value, (bool, int, float, str)):
                raise WorkloadSpecError(
                    f"{type(self).__name__} parameter {name!r} is a "
                    f"{type(value).__name__}, not a plain scalar; this "
                    f"workload cannot be spec-serialised")
            params[name] = value
        return params

    # ------------------------------------------------------------------
    # Helpers shared by the concrete workloads
    # ------------------------------------------------------------------
    @staticmethod
    def partition(count: int, n_cores: int) -> List[range]:
        """Split ``range(count)`` into ``n_cores`` contiguous chunks."""
        base = count // n_cores
        extra = count % n_cores
        chunks: List[range] = []
        start = 0
        for core in range(n_cores):
            size = base + (1 if core < extra else 0)
            chunks.append(range(start, start + size))
            start += size
        return chunks
