"""Pagerank workload (Section 5.3).

Pull-style pagerank over a CSR graph: for every vertex, the new rank is the
weighted sum of its in-neighbours' ranks divided by their out-degrees.  The
memory pattern per edge is::

    j   = col_idx[e]          # INDEX  (sequential scan of the edge array)
    r   = rank[j]             # INDIRECT, 8-byte elements  (shift = 3)
    d   = out_degree[j]       # INDIRECT, 4-byte elements  (shift = 2)

``rank`` and ``out_degree`` are indexed by the *same* index stream, so this
workload exercises IMP's multi-way indirection support (Listing 2 of the
paper).  Row-pointer reads and the rank store are streaming accesses.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.mem_image import MemoryImage
from repro.sim.trace import AccessKind, Trace, TraceBuilder
from repro.workloads.base import Workload, WorkloadBuild, pc_of
from repro.workloads.graphs import CSRGraph, power_law_graph


class PagerankWorkload(Workload):
    """Iterative pagerank on a power-law graph."""

    name = "pagerank"

    PC_ROW_PTR = pc_of(10)
    PC_COL_IDX = pc_of(11)
    PC_RANK = pc_of(12)
    PC_DEGREE = pc_of(13)
    PC_STORE = pc_of(14)
    PC_SW_PREFETCH = pc_of(15)

    def __init__(self, n_vertices: int = 4096, avg_degree: float = 8.0,
                 iterations: int = 1, seed: int = 1) -> None:
        super().__init__(seed=seed)
        self.n_vertices = n_vertices
        self.avg_degree = avg_degree
        self.iterations = iterations

    # ------------------------------------------------------------------
    def _layout(self, graph: CSRGraph) -> MemoryImage:
        image = MemoryImage()
        image.add_array("row_ptr", graph.row_ptr)
        image.add_array("col_idx", graph.col_idx)
        image.add_array("rank", np.ones(self.n_vertices, dtype=np.float64))
        image.add_array("out_degree", graph.out_degrees().astype(np.int32))
        image.add_array("new_rank", np.zeros(self.n_vertices, dtype=np.float64),
                        writable=True)
        return image

    def build(self, n_cores: int, *, software_prefetch: bool = False,
              sw_prefetch_distance: int = 8) -> WorkloadBuild:
        graph = power_law_graph(self.n_vertices, self.avg_degree, seed=self.seed)
        image = self._layout(graph)
        traces: List[Trace] = []
        chunks = self.partition(self.n_vertices, n_cores)
        for core_id, vertices in enumerate(chunks):
            traces.append(self._core_trace(core_id, vertices, graph, image,
                                           software_prefetch,
                                           sw_prefetch_distance))
        return WorkloadBuild(name=self.name, mem_image=image, traces=traces,
                             metadata={"vertices": self.n_vertices,
                                       "edges": graph.num_edges})

    # ------------------------------------------------------------------
    def _core_trace(self, core_id: int, vertices: range, graph: CSRGraph,
                    image: MemoryImage, software_prefetch: bool,
                    distance: int) -> Trace:
        builder = TraceBuilder(core_id)
        col_idx = graph.col_idx
        row_ptr = graph.row_ptr
        # Hoisted address mappers and builder methods (hot generator loop).
        row_ptr_addr = image.addr_fn("row_ptr")
        col_idx_addr = image.addr_fn("col_idx")
        rank_addr = image.addr_fn("rank")
        degree_addr = image.addr_fn("out_degree")
        new_rank_addr = image.addr_fn("new_rank")
        load = builder.load
        compute = builder.compute
        for _ in range(self.iterations):
            for vertex in vertices:
                start = int(row_ptr[vertex])
                end = int(row_ptr[vertex + 1])
                # Row bounds: streaming loads of the row-pointer array.
                load(self.PC_ROW_PTR, row_ptr_addr(vertex),
                     kind=AccessKind.STREAM)
                compute(2)
                for edge in range(start, end):
                    neighbor = int(col_idx[edge])
                    if software_prefetch and edge + distance < end:
                        target = int(col_idx[edge + distance])
                        builder.sw_prefetch(self.PC_SW_PREFETCH,
                                            rank_addr(target))
                    load(self.PC_COL_IDX, col_idx_addr(edge),
                         size=4, kind=AccessKind.INDEX)
                    load(self.PC_RANK, rank_addr(neighbor),
                         kind=AccessKind.INDIRECT)
                    load(self.PC_DEGREE, degree_addr(neighbor),
                         size=4, kind=AccessKind.INDIRECT)
                    compute(3)            # divide and accumulate
                builder.store(self.PC_STORE, new_rank_addr(vertex),
                              kind=AccessKind.STREAM)
                compute(2)
        return builder.build()
