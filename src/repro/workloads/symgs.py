"""Symmetric Gauss-Seidel smoother (SymGS) from HPCG (Section 5.3).

SymGS performs a forward triangular solve followed by a backward one over
the same sparse matrix.  Rows are processed in blocks (the HPCG multicolour
/ level-scheduled variant groups rows for parallelism); within each row the
access pattern is the same gather as SpMV, but the smoothed vector is also
*written* indirectly at the row position, and the backward sweep scans the
index array with a negative stride — exercising IMP's handling of descending
streams and frequent pattern re-detection (the paper notes SymGS is the one
workload that stresses the IPD, Figure 15).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.mem_image import MemoryImage
from repro.sim.trace import AccessKind, Trace, TraceBuilder
from repro.workloads.base import Workload, WorkloadBuild, pc_of
from repro.workloads.sparse import CSRMatrix, stencil_27pt


class SymGSWorkload(Workload):
    """Forward + backward Gauss-Seidel sweeps on a stencil matrix."""

    name = "symgs"

    PC_ROW_PTR_F = pc_of(30)
    PC_COL_IDX_F = pc_of(31)
    PC_VALUES_F = pc_of(32)
    PC_VECTOR_F = pc_of(33)
    PC_STORE_F = pc_of(34)
    PC_ROW_PTR_B = pc_of(35)
    PC_COL_IDX_B = pc_of(36)
    PC_VALUES_B = pc_of(37)
    PC_VECTOR_B = pc_of(38)
    PC_STORE_B = pc_of(39)
    PC_SW_PREFETCH = pc_of(40)

    def __init__(self, nx: int = 12, ny: int = 12, nz: int = 12,
                 seed: int = 1, matrix: Optional[CSRMatrix] = None,
                 permute_columns: bool = True) -> None:
        super().__init__(seed=seed)
        self.nx, self.ny, self.nz = nx, ny, nz
        # User-supplied vs lazily derived matrix kept apart so the lazy
        # build does not poison spec serialisation (see SpMVWorkload).
        self._matrix = matrix
        self._matrix_cache: Optional[CSRMatrix] = None
        # Same column permutation rationale as SpMVWorkload (see DESIGN.md).
        self.permute_columns = permute_columns

    def matrix(self) -> CSRMatrix:
        if self._matrix is not None:
            return self._matrix
        if self._matrix_cache is None:
            matrix = stencil_27pt(self.nx, self.ny, self.nz, seed=self.seed)
            if self.permute_columns:
                permutation = self.rng(1).permutation(matrix.num_rows)
                matrix = CSRMatrix(row_ptr=matrix.row_ptr,
                                   col_idx=permutation[matrix.col_idx].astype(
                                       matrix.col_idx.dtype),
                                   values=matrix.values)
            self._matrix_cache = matrix
        return self._matrix_cache

    def _layout(self, matrix: CSRMatrix) -> MemoryImage:
        image = MemoryImage()
        image.add_array("row_ptr", matrix.row_ptr)
        image.add_array("col_idx", matrix.col_idx)
        image.add_array("values", matrix.values)
        image.add_array("xvec", np.ones(matrix.num_rows, dtype=np.float64),
                        writable=True)
        image.add_array("rhs", np.ones(matrix.num_rows, dtype=np.float64))
        return image

    def build(self, n_cores: int, *, software_prefetch: bool = False,
              sw_prefetch_distance: int = 8) -> WorkloadBuild:
        matrix = self.matrix()
        image = self._layout(matrix)
        traces: List[Trace] = []
        for core_id, rows in enumerate(self.partition(matrix.num_rows, n_cores)):
            traces.append(self._core_trace(core_id, rows, matrix, image,
                                           software_prefetch,
                                           sw_prefetch_distance))
        return WorkloadBuild(name=self.name, mem_image=image, traces=traces,
                             metadata={"rows": matrix.num_rows,
                                       "nonzeros": matrix.num_nonzeros})

    # ------------------------------------------------------------------
    def _sweep(self, builder: TraceBuilder, rows, matrix: CSRMatrix,
               image: MemoryImage, software_prefetch: bool, distance: int,
               *, forward: bool) -> None:
        col_idx = matrix.col_idx
        row_ptr = matrix.row_ptr
        if forward:
            pcs = (self.PC_ROW_PTR_F, self.PC_COL_IDX_F, self.PC_VALUES_F,
                   self.PC_VECTOR_F, self.PC_STORE_F)
        else:
            pcs = (self.PC_ROW_PTR_B, self.PC_COL_IDX_B, self.PC_VALUES_B,
                   self.PC_VECTOR_B, self.PC_STORE_B)
        pc_row, pc_col, pc_val, pc_vec, pc_store = pcs
        row_order = rows if forward else reversed(rows)
        # Hoisted address mappers and builder methods (hot generator loop).
        row_ptr_addr = image.addr_fn("row_ptr")
        rhs_addr = image.addr_fn("rhs")
        col_idx_addr = image.addr_fn("col_idx")
        values_addr = image.addr_fn("values")
        xvec_addr = image.addr_fn("xvec")
        load = builder.load
        compute = builder.compute
        for row in row_order:
            start = int(row_ptr[row])
            end = int(row_ptr[row + 1])
            load(pc_row, row_ptr_addr(row), kind=AccessKind.STREAM)
            load(pc_store, rhs_addr(row), kind=AccessKind.STREAM)
            compute(2)
            inner = range(start, end) if forward else range(end - 1, start - 1, -1)
            for j in inner:
                col = int(col_idx[j])
                if software_prefetch:
                    target_j = j + distance if forward else j - distance
                    if start <= target_j < end:
                        builder.sw_prefetch(self.PC_SW_PREFETCH,
                                            xvec_addr(int(col_idx[target_j])))
                load(pc_col, col_idx_addr(j), size=4, kind=AccessKind.INDEX)
                load(pc_val, values_addr(j), kind=AccessKind.STREAM)
                load(pc_vec, xvec_addr(col), kind=AccessKind.INDIRECT)
                compute(2)
            # The smoothed value is written back to the row's vector entry.
            compute(4)                    # divide by the diagonal, busy-wait check
            builder.store(pc_store, xvec_addr(row), kind=AccessKind.STREAM)

    def _core_trace(self, core_id: int, rows: range, matrix: CSRMatrix,
                    image: MemoryImage, software_prefetch: bool,
                    distance: int) -> Trace:
        builder = TraceBuilder(core_id)
        self._sweep(builder, rows, matrix, image, software_prefetch, distance,
                    forward=True)
        self._sweep(builder, rows, matrix, image, software_prefetch, distance,
                    forward=False)
        return builder.build()
