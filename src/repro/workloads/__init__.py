"""Workloads: the paper's seven applications plus synthetic micro-kernels."""

from typing import Dict, List, Optional, Type

from repro.workloads.base import Workload, WorkloadBuild
from repro.workloads.graph500 import Graph500Workload
from repro.workloads.regular import (
    REGULAR_WORKLOADS,
    BlockedMatMulWorkload,
    DenseStencilWorkload,
    StridedCopyWorkload,
)
from repro.workloads.lsh import LSHWorkload
from repro.workloads.pagerank import PagerankWorkload
from repro.workloads.sgd import SGDWorkload
from repro.workloads.spmv import SpMVWorkload
from repro.workloads.symgs import SymGSWorkload
from repro.workloads.synthetic import IndirectStreamWorkload, StreamingWorkload
from repro.workloads.tri_count import TriangleCountWorkload

from repro.registry import WORKLOADS, RegistryError

# ----------------------------------------------------------------------
# Registry entries.  The factory is the workload class itself (called with
# plain ``spec_params()`` keyword arguments); the ``paper`` tag marks the
# seven applications of the paper's evaluation, in figure order.
# ----------------------------------------------------------------------
for _cls, _desc, _tags in (
    (PagerankWorkload,
     "PageRank over an R-MAT graph in CRS form", ("paper",)),
    (TriangleCountWorkload,
     "triangle counting by sorted adjacency intersection", ("paper",)),
    (Graph500Workload,
     "Graph500 breadth-first search over an R-MAT graph", ("paper",)),
    (SGDWorkload,
     "SGD matrix factorisation over a sparse rating matrix", ("paper",)),
    (LSHWorkload,
     "locality-sensitive hashing nearest-neighbour queries", ("paper",)),
    (SpMVWorkload,
     "HPCG sparse matrix-vector multiply (27-point grid)", ("paper",)),
    (SymGSWorkload,
     "HPCG symmetric Gauss-Seidel smoother", ("paper",)),
    (DenseStencilWorkload,
     "dense 5-point stencil (regular, stream-friendly)", ("regular",)),
    (BlockedMatMulWorkload,
     "cache-blocked dense matrix multiply (regular)", ("regular",)),
    (StridedCopyWorkload,
     "strided array copy (regular)", ("regular",)),
    (IndirectStreamWorkload,
     "synthetic A[B[i]] indirect-stream micro-kernel", ("synthetic",)),
    (StreamingWorkload,
     "synthetic sequential stream, no indirection", ("synthetic",)),
):
    WORKLOADS.register(_cls.name, _cls, description=_desc, tags=_tags)


#: The seven applications of the paper's evaluation, in figure order.
PAPER_WORKLOADS: Dict[str, Type[Workload]] = {
    entry.name: entry.factory
    for entry in WORKLOADS.entries() if "paper" in entry.tags
}


#: Every instantiable workload class, keyed by its ``name`` attribute —
#: a plain-dict view of :data:`repro.registry.WORKLOADS`.  This is the
#: reconstruction table of the sweep engine: a
#: :class:`repro.experiments.sweep.RunSpec` stores ``(registry key,
#: spec_params())`` and worker processes rebuild the workload from those
#: alone, so live workload (or simulator) objects are never pickled.
WORKLOAD_REGISTRY: Dict[str, Type[Workload]] = {
    entry.name: entry.factory for entry in WORKLOADS.entries()
}


def make_workload(name: str, **kwargs) -> Workload:
    """Instantiate a paper workload by name."""
    if name not in PAPER_WORKLOADS:
        raise RegistryError("paper workload", name, sorted(PAPER_WORKLOADS))
    return PAPER_WORKLOADS[name](**kwargs)


def workload_from_spec(name: str, params: Dict[str, object]) -> Workload:
    """Recreate a workload from its registry name and ``spec_params()``."""
    return WORKLOADS.get(name).factory(**params)


def paper_workloads(scale: float = 1.0, seed: int = 1) -> List[Workload]:
    """Instantiate all seven paper workloads.

    ``scale`` shrinks or grows the default problem sizes (a value of 0.5
    halves vertex / row / rating counts); used to keep benchmark runtimes
    reasonable in pure Python while preserving working sets larger than the
    simulated L1 caches.
    """
    def scaled(value: int, minimum: int = 64) -> int:
        return max(minimum, int(value * scale))

    return [
        PagerankWorkload(n_vertices=scaled(4096), seed=seed),
        TriangleCountWorkload(n_vertices=scaled(2048), seed=seed),
        Graph500Workload(n_vertices=scaled(4096), seed=seed),
        SGDWorkload(n_users=scaled(4096), n_items=scaled(4096),
                    n_ratings=scaled(24576), seed=seed),
        LSHWorkload(n_points=scaled(8192), n_queries=scaled(384), seed=seed),
        # The HPCG grids scale with the cube root and keep a floor so the
        # multiplied/smoothed vector stays larger than the simulated L1.
        SpMVWorkload(nx=max(10, int(14 * scale ** (1 / 3))),
                     ny=max(10, int(14 * scale ** (1 / 3))),
                     nz=max(10, int(14 * scale ** (1 / 3))), seed=seed),
        SymGSWorkload(nx=max(9, int(12 * scale ** (1 / 3))),
                      ny=max(9, int(12 * scale ** (1 / 3))),
                      nz=max(9, int(12 * scale ** (1 / 3))), seed=seed),
    ]


__all__ = [
    "BlockedMatMulWorkload",
    "DenseStencilWorkload",
    "Graph500Workload",
    "IndirectStreamWorkload",
    "LSHWorkload",
    "PAPER_WORKLOADS",
    "REGULAR_WORKLOADS",
    "StridedCopyWorkload",
    "PagerankWorkload",
    "SGDWorkload",
    "SpMVWorkload",
    "StreamingWorkload",
    "SymGSWorkload",
    "TriangleCountWorkload",
    "WORKLOAD_REGISTRY",
    "WORKLOADS",
    "Workload",
    "WorkloadBuild",
    "make_workload",
    "paper_workloads",
    "workload_from_spec",
]
