"""Workloads: the paper's seven applications plus synthetic micro-kernels."""

from typing import Dict, List, Optional, Type

from repro.workloads.base import Workload, WorkloadBuild
from repro.workloads.graph500 import Graph500Workload
from repro.workloads.regular import (
    REGULAR_WORKLOADS,
    BlockedMatMulWorkload,
    DenseStencilWorkload,
    StridedCopyWorkload,
)
from repro.workloads.lsh import LSHWorkload
from repro.workloads.pagerank import PagerankWorkload
from repro.workloads.sgd import SGDWorkload
from repro.workloads.spmv import SpMVWorkload
from repro.workloads.symgs import SymGSWorkload
from repro.workloads.synthetic import IndirectStreamWorkload, StreamingWorkload
from repro.workloads.tri_count import TriangleCountWorkload

#: The seven applications of the paper's evaluation, in figure order.
PAPER_WORKLOADS: Dict[str, Type[Workload]] = {
    "pagerank": PagerankWorkload,
    "tri_count": TriangleCountWorkload,
    "graph500": Graph500Workload,
    "sgd": SGDWorkload,
    "lsh": LSHWorkload,
    "spmv": SpMVWorkload,
    "symgs": SymGSWorkload,
}


#: Every instantiable workload class, keyed by its ``name`` attribute.
#: This is the reconstruction table of the sweep engine: a
#: :class:`repro.experiments.sweep.RunSpec` stores ``(registry key,
#: spec_params())`` and worker processes rebuild the workload from those
#: alone, so live workload (or simulator) objects are never pickled.
WORKLOAD_REGISTRY: Dict[str, Type[Workload]] = {
    cls.name: cls
    for cls in (*PAPER_WORKLOADS.values(),
                DenseStencilWorkload, BlockedMatMulWorkload,
                StridedCopyWorkload,
                IndirectStreamWorkload, StreamingWorkload)
}


def make_workload(name: str, **kwargs) -> Workload:
    """Instantiate a paper workload by name."""
    try:
        cls = PAPER_WORKLOADS[name]
    except KeyError:
        raise ValueError(f"unknown workload {name!r}; "
                         f"choose from {sorted(PAPER_WORKLOADS)}") from None
    return cls(**kwargs)


def workload_from_spec(name: str, params: Dict[str, object]) -> Workload:
    """Recreate a workload from its registry name and ``spec_params()``."""
    try:
        cls = WORKLOAD_REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown workload {name!r}; "
                         f"choose from {sorted(WORKLOAD_REGISTRY)}") from None
    return cls(**params)


def paper_workloads(scale: float = 1.0, seed: int = 1) -> List[Workload]:
    """Instantiate all seven paper workloads.

    ``scale`` shrinks or grows the default problem sizes (a value of 0.5
    halves vertex / row / rating counts); used to keep benchmark runtimes
    reasonable in pure Python while preserving working sets larger than the
    simulated L1 caches.
    """
    def scaled(value: int, minimum: int = 64) -> int:
        return max(minimum, int(value * scale))

    return [
        PagerankWorkload(n_vertices=scaled(4096), seed=seed),
        TriangleCountWorkload(n_vertices=scaled(2048), seed=seed),
        Graph500Workload(n_vertices=scaled(4096), seed=seed),
        SGDWorkload(n_users=scaled(4096), n_items=scaled(4096),
                    n_ratings=scaled(24576), seed=seed),
        LSHWorkload(n_points=scaled(8192), n_queries=scaled(384), seed=seed),
        # The HPCG grids scale with the cube root and keep a floor so the
        # multiplied/smoothed vector stays larger than the simulated L1.
        SpMVWorkload(nx=max(10, int(14 * scale ** (1 / 3))),
                     ny=max(10, int(14 * scale ** (1 / 3))),
                     nz=max(10, int(14 * scale ** (1 / 3))), seed=seed),
        SymGSWorkload(nx=max(9, int(12 * scale ** (1 / 3))),
                      ny=max(9, int(12 * scale ** (1 / 3))),
                      nz=max(9, int(12 * scale ** (1 / 3))), seed=seed),
    ]


__all__ = [
    "BlockedMatMulWorkload",
    "DenseStencilWorkload",
    "Graph500Workload",
    "IndirectStreamWorkload",
    "LSHWorkload",
    "PAPER_WORKLOADS",
    "REGULAR_WORKLOADS",
    "StridedCopyWorkload",
    "PagerankWorkload",
    "SGDWorkload",
    "SpMVWorkload",
    "StreamingWorkload",
    "SymGSWorkload",
    "TriangleCountWorkload",
    "WORKLOAD_REGISTRY",
    "Workload",
    "WorkloadBuild",
    "make_workload",
    "paper_workloads",
    "workload_from_spec",
]
