"""Synthetic micro-workloads.

These are not part of the paper's application suite; they exist to exercise
specific IMP mechanisms in isolation (tests, examples, and the SPLASH-2-style
sanity check that IMP does not misfire on purely streaming codes).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.mem_image import MemoryImage
from repro.sim.trace import AccessKind, Trace, TraceBuilder
from repro.workloads.base import Workload, WorkloadBuild, pc_of


class StreamingWorkload(Workload):
    """A purely streaming kernel (dense triad): no indirect accesses.

    Used to reproduce the paper's observation that IMP does not hurt
    performance on SPLASH-2-style regular codes, because it never triggers
    indirect prefetching when no indirection exists.
    """

    name = "streaming"

    PC_LOAD_A = pc_of(90)
    PC_LOAD_B = pc_of(91)
    PC_STORE_C = pc_of(92)

    def __init__(self, n_elements: int = 32768, seed: int = 1) -> None:
        super().__init__(seed=seed)
        self.n_elements = n_elements

    def build(self, n_cores: int, *, software_prefetch: bool = False,
              sw_prefetch_distance: int = 8) -> WorkloadBuild:
        image = MemoryImage()
        image.add_array("a", np.ones(self.n_elements, dtype=np.float64))
        image.add_array("b", np.ones(self.n_elements, dtype=np.float64))
        image.add_array("c", np.zeros(self.n_elements, dtype=np.float64),
                        writable=True)
        traces: List[Trace] = []
        a_addr = image.addr_fn("a")
        b_addr = image.addr_fn("b")
        c_addr = image.addr_fn("c")
        for core_id, elements in enumerate(self.partition(self.n_elements,
                                                          n_cores)):
            builder = TraceBuilder(core_id)
            load = builder.load
            for i in elements:
                load(self.PC_LOAD_A, a_addr(i), kind=AccessKind.STREAM)
                load(self.PC_LOAD_B, b_addr(i), kind=AccessKind.STREAM)
                builder.compute(2)
                builder.store(self.PC_STORE_C, c_addr(i),
                              kind=AccessKind.STREAM)
            traces.append(builder.build())
        return WorkloadBuild(name=self.name, mem_image=image, traces=traces)


class IndirectStreamWorkload(Workload):
    """The canonical ``A[B[i]]`` loop, configurable element size.

    The simplest possible indirect workload; used heavily by unit and
    integration tests and by the quickstart example.
    """

    name = "indirect_stream"

    PC_INDEX = pc_of(95)
    PC_DATA = pc_of(96)
    PC_DATA2 = pc_of(97)

    def __init__(self, n_indices: int = 8192, n_data: int = 16384,
                 elem_size: int = 8, two_way: bool = False,
                 seed: int = 1) -> None:
        super().__init__(seed=seed)
        self.n_indices = n_indices
        self.n_data = n_data
        self.elem_size = elem_size
        self.two_way = two_way

    def build(self, n_cores: int, *, software_prefetch: bool = False,
              sw_prefetch_distance: int = 8) -> WorkloadBuild:
        rng = self.rng()
        indices = rng.integers(0, self.n_data, size=self.n_indices,
                               dtype=np.int32)
        image = MemoryImage()
        image.add_array("B", indices)
        image.add_array("A", np.zeros(self.n_data, dtype=np.float64),
                        elem_size=self.elem_size, length=self.n_data)
        if self.two_way:
            image.add_array("C", np.zeros(self.n_data, dtype=np.float64),
                            elem_size=self.elem_size, length=self.n_data)
        traces: List[Trace] = []
        b_addr = image.addr_fn("B")
        a_addr = image.addr_fn("A")
        c_addr = image.addr_fn("C") if self.two_way else None
        data_size = min(8, self.elem_size)
        for core_id, chunk in enumerate(self.partition(self.n_indices, n_cores)):
            builder = TraceBuilder(core_id)
            load = builder.load
            end = chunk.stop
            for i in chunk:
                target = int(indices[i])
                if software_prefetch and i + sw_prefetch_distance < end:
                    future = int(indices[i + sw_prefetch_distance])
                    builder.sw_prefetch(pc_of(98), a_addr(future))
                load(self.PC_INDEX, b_addr(i), size=4, kind=AccessKind.INDEX)
                load(self.PC_DATA, a_addr(target), size=data_size,
                     kind=AccessKind.INDIRECT)
                if self.two_way:
                    load(self.PC_DATA2, c_addr(target), size=data_size,
                         kind=AccessKind.INDIRECT)
                builder.compute(2)
            traces.append(builder.build())
        return WorkloadBuild(name=self.name, mem_image=image, traces=traces)
