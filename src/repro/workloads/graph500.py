"""Graph500 breadth-first search workload (Section 5.3).

BFS over a power-law graph.  Each level's frontier is an array of vertex
ids; processing a frontier element ``u = frontier[i]`` requires::

    u      = frontier[i]              # INDEX    (sequential frontier scan)
    start  = row_ptr[u]               # INDIRECT, 8-byte elements (shift = 3)
    ...
    w      = col_idx[start + k]       # INDEX    (scan of u's neighbour list)
    seen   = visited[w >> 3]          # INDIRECT, bit vector (shift = -3)
    parent[w] = u                     # INDIRECT store (on discovery)

The ``row_ptr[frontier[i]]`` load whose *value* then positions the
``col_idx`` scan makes this a multi-level indirection (Listing 3), and the
bit-vector visited test exercises the negative shift (-3) of Table 2.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.mem_image import MemoryImage
from repro.sim.trace import AccessKind, Trace, TraceBuilder
from repro.workloads.base import Workload, WorkloadBuild, pc_of
from repro.workloads.graphs import CSRGraph, bfs_levels, power_law_graph


class Graph500Workload(Workload):
    """BFS over a power-law (Graph500-style) graph."""

    name = "graph500"

    PC_FRONTIER = pc_of(50)
    PC_ROW_PTR = pc_of(51)
    PC_COL_IDX = pc_of(52)
    PC_VISITED = pc_of(53)
    PC_PARENT = pc_of(54)
    PC_SW_PREFETCH = pc_of(55)

    def __init__(self, n_vertices: int = 4096, avg_degree: float = 12.0,
                 seed: int = 1) -> None:
        super().__init__(seed=seed)
        self.n_vertices = n_vertices
        self.avg_degree = avg_degree

    # ------------------------------------------------------------------
    def build(self, n_cores: int, *, software_prefetch: bool = False,
              sw_prefetch_distance: int = 8) -> WorkloadBuild:
        graph = power_law_graph(self.n_vertices, self.avg_degree, seed=self.seed)
        levels = bfs_levels(graph, root=0)
        image = MemoryImage()
        image.add_array("row_ptr", graph.row_ptr)
        image.add_array("col_idx", graph.col_idx)
        # One concatenated frontier array; levels are contiguous slices.
        frontier_all = np.concatenate(levels).astype(np.int32)
        image.add_array("frontier", frontier_all)
        image.add_array("visited", np.zeros(self.n_vertices, dtype=np.uint8),
                        elem_size=1 / 8, length=self.n_vertices, writable=True)
        image.add_array("parent", np.full(self.n_vertices, -1, dtype=np.int32),
                        writable=True)
        traces: List[Trace] = []
        builders = [TraceBuilder(core) for core in range(n_cores)]
        visited = np.zeros(self.n_vertices, dtype=bool)
        visited[0] = True
        offset = 0
        for level in levels:
            # Each BFS level is split across the cores (level-synchronous BFS).
            chunks = self.partition(len(level), n_cores)
            for core_id, chunk in enumerate(chunks):
                self._emit_level(builders[core_id], graph, image, level, chunk,
                                 offset, visited, software_prefetch,
                                 sw_prefetch_distance)
            for vertex in level:
                for neighbor in graph.neighbors(int(vertex)):
                    visited[neighbor] = True
            offset += len(level)
        traces = [builder.build() for builder in builders]
        return WorkloadBuild(name=self.name, mem_image=image, traces=traces,
                             metadata={"vertices": self.n_vertices,
                                       "edges": graph.num_edges,
                                       "levels": len(levels)})

    # ------------------------------------------------------------------
    def _emit_level(self, builder: TraceBuilder, graph: CSRGraph,
                    image: MemoryImage, level: np.ndarray, chunk: range,
                    offset: int, visited: np.ndarray, software_prefetch: bool,
                    distance: int) -> None:
        col_idx = graph.col_idx
        row_ptr = graph.row_ptr
        # Hoisted address mappers and builder methods (hot generator loop).
        frontier_addr = image.addr_fn("frontier")
        row_ptr_addr = image.addr_fn("row_ptr")
        col_idx_addr = image.addr_fn("col_idx")
        visited_addr = image.addr_fn("visited")
        parent_addr = image.addr_fn("parent")
        load = builder.load
        compute = builder.compute
        for position in chunk:
            vertex = int(level[position])
            frontier_index = offset + position
            load(self.PC_FRONTIER, frontier_addr(frontier_index),
                 size=4, kind=AccessKind.INDEX)
            # Row pointer is indexed by the frontier *value*: an indirect
            # access whose own value positions the neighbour scan below.
            load(self.PC_ROW_PTR, row_ptr_addr(vertex),
                 kind=AccessKind.INDIRECT)
            compute(2)
            start = int(row_ptr[vertex])
            end = int(row_ptr[vertex + 1])
            for j in range(start, end):
                neighbor = int(col_idx[j])
                if software_prefetch and j + distance < end:
                    target = int(col_idx[j + distance])
                    builder.sw_prefetch(self.PC_SW_PREFETCH,
                                        visited_addr(target))
                load(self.PC_COL_IDX, col_idx_addr(j),
                     size=4, kind=AccessKind.INDEX)
                load(self.PC_VISITED, visited_addr(neighbor),
                     size=1, kind=AccessKind.INDIRECT)
                compute(1)
                if not visited[neighbor]:
                    builder.store(self.PC_PARENT, parent_addr(neighbor),
                                  size=4, kind=AccessKind.INDIRECT)
                    compute(1)
