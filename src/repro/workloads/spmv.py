"""Sparse matrix-vector multiplication (SpMV) from HPCG (Section 5.3).

For every row, the kernel scans the row's non-zeros and indirectly gathers
the corresponding elements of the dense input vector::

    c = col_idx[j]        # INDEX   (sequential scan)
    v = values[j]         # STREAM  (same scan, different array)
    x = vec[c]            # INDIRECT, 8-byte elements (shift = 3)
    y[row] += v * x       # STREAM store

This is the cleanest A[B[i]] pattern of the suite and the workload on which
IMP achieves near-perfect coverage in the paper (Table 3).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.mem_image import MemoryImage
from repro.sim.trace import AccessKind, Trace, TraceBuilder
from repro.workloads.base import Workload, WorkloadBuild, pc_of
from repro.workloads.sparse import CSRMatrix, stencil_27pt


class SpMVWorkload(Workload):
    """HPCG-style SpMV on a 27-point stencil matrix."""

    name = "spmv"

    PC_ROW_PTR = pc_of(20)
    PC_COL_IDX = pc_of(21)
    PC_VALUES = pc_of(22)
    PC_VECTOR = pc_of(23)
    PC_STORE = pc_of(24)
    PC_SW_PREFETCH = pc_of(25)

    def __init__(self, nx: int = 14, ny: int = 14, nz: int = 14,
                 seed: int = 1, matrix: Optional[CSRMatrix] = None,
                 permute_columns: bool = True) -> None:
        super().__init__(seed=seed)
        self.nx, self.ny, self.nz = nx, ny, nz
        # The constructor parameter and the lazily built matrix are kept
        # apart: only a user-*supplied* matrix makes this workload
        # unserialisable (spec_params), while the derived one is always
        # reconstructible from (nx, ny, nz, seed).
        self._matrix = matrix
        self._matrix_cache: Optional[CSRMatrix] = None
        #: HPCG's optimised multicore implementation (Park et al.) reorders
        #: the unknowns, which destroys the natural grid ordering of the
        #: column indices.  At full problem scale the vector accesses are
        #: irregular either way; at our scaled-down sizes the permutation is
        #: what preserves that irregularity (see DESIGN.md).
        self.permute_columns = permute_columns

    def matrix(self) -> CSRMatrix:
        """The sparse matrix used by the kernel (built lazily)."""
        if self._matrix is not None:
            return self._matrix
        if self._matrix_cache is None:
            matrix = stencil_27pt(self.nx, self.ny, self.nz, seed=self.seed)
            if self.permute_columns:
                permutation = self.rng(1).permutation(matrix.num_rows)
                matrix = CSRMatrix(row_ptr=matrix.row_ptr,
                                   col_idx=permutation[matrix.col_idx].astype(
                                       matrix.col_idx.dtype),
                                   values=matrix.values)
            self._matrix_cache = matrix
        return self._matrix_cache

    # ------------------------------------------------------------------
    def _layout(self, matrix: CSRMatrix) -> MemoryImage:
        image = MemoryImage()
        image.add_array("row_ptr", matrix.row_ptr)
        image.add_array("col_idx", matrix.col_idx)
        image.add_array("values", matrix.values)
        image.add_array("vec", np.ones(matrix.num_rows, dtype=np.float64))
        image.add_array("result", np.zeros(matrix.num_rows, dtype=np.float64),
                        writable=True)
        return image

    def build(self, n_cores: int, *, software_prefetch: bool = False,
              sw_prefetch_distance: int = 8) -> WorkloadBuild:
        matrix = self.matrix()
        image = self._layout(matrix)
        traces: List[Trace] = []
        for core_id, rows in enumerate(self.partition(matrix.num_rows, n_cores)):
            traces.append(self._core_trace(core_id, rows, matrix, image,
                                           software_prefetch,
                                           sw_prefetch_distance))
        return WorkloadBuild(name=self.name, mem_image=image, traces=traces,
                             metadata={"rows": matrix.num_rows,
                                       "nonzeros": matrix.num_nonzeros})

    # ------------------------------------------------------------------
    def _core_trace(self, core_id: int, rows: range, matrix: CSRMatrix,
                    image: MemoryImage, software_prefetch: bool,
                    distance: int) -> Trace:
        builder = TraceBuilder(core_id)
        col_idx = matrix.col_idx
        row_ptr = matrix.row_ptr
        # Hoisted address mappers and builder methods (hot generator loop).
        row_ptr_addr = image.addr_fn("row_ptr")
        col_idx_addr = image.addr_fn("col_idx")
        values_addr = image.addr_fn("values")
        vec_addr = image.addr_fn("vec")
        result_addr = image.addr_fn("result")
        load = builder.load
        compute = builder.compute
        for row in rows:
            start = int(row_ptr[row])
            end = int(row_ptr[row + 1])
            load(self.PC_ROW_PTR, row_ptr_addr(row), kind=AccessKind.STREAM)
            compute(1)
            for j in range(start, end):
                col = int(col_idx[j])
                if software_prefetch and j + distance < end:
                    target = int(col_idx[j + distance])
                    builder.sw_prefetch(self.PC_SW_PREFETCH, vec_addr(target))
                load(self.PC_COL_IDX, col_idx_addr(j),
                     size=4, kind=AccessKind.INDEX)
                load(self.PC_VALUES, values_addr(j), kind=AccessKind.STREAM)
                load(self.PC_VECTOR, vec_addr(col), kind=AccessKind.INDIRECT)
                compute(2)                # multiply-accumulate
            builder.store(self.PC_STORE, result_addr(row),
                          kind=AccessKind.STREAM)
        return builder.build()
