"""Sparse matrices for the HPCG-derived workloads (SpMV and SymGS).

HPCG builds a symmetric, banded sparse matrix from a 27-point stencil over a
3-D grid.  The structure that matters for memory behaviour is preserved
here: each row has up to 27 non-zeros whose column indices are the grid
neighbours, stored in CSR; the multiplied vector is dense and indexed
indirectly through the column array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class CSRMatrix:
    """A sparse matrix in CSR form."""

    row_ptr: np.ndarray     # int64, length num_rows + 1
    col_idx: np.ndarray     # int32
    values: np.ndarray      # float64

    @property
    def num_rows(self) -> int:
        return len(self.row_ptr) - 1

    @property
    def num_nonzeros(self) -> int:
        return int(self.row_ptr[-1])

    def row(self, r: int) -> Tuple[np.ndarray, np.ndarray]:
        start, end = int(self.row_ptr[r]), int(self.row_ptr[r + 1])
        return self.col_idx[start:end], self.values[start:end]


def stencil_27pt(nx: int, ny: int, nz: int, seed: int = 1) -> CSRMatrix:
    """HPCG-style 27-point stencil matrix on an ``nx x ny x nz`` grid."""
    rng = np.random.default_rng(seed)
    n = nx * ny * nz
    rows: List[int] = [0]
    cols: List[int] = []
    vals: List[float] = []
    for z in range(nz):
        for y in range(ny):
            for x in range(nx):
                count = 0
                for dz in (-1, 0, 1):
                    for dy in (-1, 0, 1):
                        for dx in (-1, 0, 1):
                            cx, cy, cz = x + dx, y + dy, z + dz
                            if 0 <= cx < nx and 0 <= cy < ny and 0 <= cz < nz:
                                col = cx + cy * nx + cz * nx * ny
                                cols.append(col)
                                row = x + y * nx + z * nx * ny
                                vals.append(26.0 if col == row else -1.0)
                                count += 1
                rows.append(rows[-1] + count)
    return CSRMatrix(row_ptr=np.array(rows, dtype=np.int64),
                     col_idx=np.array(cols, dtype=np.int32),
                     values=np.array(vals, dtype=np.float64))


def random_sparse(num_rows: int, num_cols: int, nnz_per_row: int,
                  seed: int = 1) -> CSRMatrix:
    """A random sparse matrix with a fixed number of non-zeros per row."""
    rng = np.random.default_rng(seed)
    row_ptr = np.arange(0, (num_rows + 1) * nnz_per_row, nnz_per_row,
                        dtype=np.int64)
    col_idx = rng.integers(0, num_cols, size=num_rows * nnz_per_row,
                           dtype=np.int32)
    values = rng.standard_normal(num_rows * nnz_per_row)
    return CSRMatrix(row_ptr=row_ptr, col_idx=col_idx, values=values)


def ratings_matrix(n_users: int, n_items: int, n_ratings: int,
                   seed: int = 1) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sparse (user, item, rating) triples for collaborative filtering (SGD).

    Users and items follow a skewed popularity distribution, as in real
    recommender datasets.
    """
    rng = np.random.default_rng(seed)
    user_pop = (np.arange(1, n_users + 1) ** -0.5).astype(np.float64)
    user_pop /= user_pop.sum()
    item_pop = (np.arange(1, n_items + 1) ** -0.5).astype(np.float64)
    item_pop /= item_pop.sum()
    users = rng.choice(n_users, size=n_ratings, p=user_pop).astype(np.int32)
    items = rng.choice(n_items, size=n_ratings, p=item_pop).astype(np.int32)
    ratings = rng.uniform(1.0, 5.0, size=n_ratings)
    return users, items, ratings
