"""Granularity Predictor (GP) — Section 4.2, Figure 8 and Algorithm 1.

The GP decides, per indirect pattern, how many sectors each indirect
prefetch should fetch.  It samples up to ``N`` prefetched cache lines per
pattern, records which sectors demand accesses touch, and on eviction of a
sampled line updates:

* ``tot_sector`` — total number of touched sectors across sampled lines,
* ``min_granu`` — the smallest run of consecutive touched sectors seen,
* ``evict`` — how many sampled lines have been evicted.

After every ``N`` sampled evictions it runs Algorithm 1: fetch full lines
when the header overhead of partial accesses would outweigh the saved
sectors, otherwise fetch ``min_granu`` sectors at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.config import IMPConfig


def min_consecutive_run(mask: int, num_sectors: int) -> int:
    """Smallest run length of consecutive set bits in ``mask``.

    Returns ``num_sectors`` when no bit is set (nothing was touched, so there
    is no evidence for a smaller granularity).
    """
    runs = []
    run = 0
    for i in range(num_sectors):
        if (mask >> i) & 1:
            run += 1
        elif run:
            runs.append(run)
            run = 0
    if run:
        runs.append(run)
    return min(runs) if runs else num_sectors


def popcount(mask: int) -> int:
    """Number of set bits."""
    return bin(mask).count("1")


@dataclass
class GPEntry:
    """Per-pattern granularity state (one row of Figure 8)."""

    pattern_id: int
    granularity_sectors: int                 # current prediction
    min_granu: int
    tot_sector: int = 0
    evict: int = 0
    #: sampled line address -> touch bit vector
    samples: Dict[int, int] = field(default_factory=dict)


class GranularityPredictor:
    """Predicts the number of sectors to fetch for each indirect pattern."""

    def __init__(self, config: Optional[IMPConfig] = None) -> None:
        self.config = config or IMPConfig()
        self.sector_size = self.config.l1_sector_size
        self.sectors_per_line = self.config.line_size // self.sector_size
        self._entries: Dict[int, GPEntry] = {}
        self._sampled_lines: Dict[int, int] = {}   # line addr -> pattern id
        self.predictions_updated = 0

    # ------------------------------------------------------------------
    # Entry management
    # ------------------------------------------------------------------
    def allocate(self, pattern_id: int) -> GPEntry:
        """Create (or return) the GP entry for a pattern.

        The initial prediction is a full cache line (Section 4.2).
        """
        entry = self._entries.get(pattern_id)
        if entry is None:
            entry = GPEntry(pattern_id=pattern_id,
                            granularity_sectors=self.sectors_per_line,
                            min_granu=self.sectors_per_line)
            self._entries[pattern_id] = entry
        return entry

    def entry(self, pattern_id: int) -> Optional[GPEntry]:
        return self._entries.get(pattern_id)

    def granularity_bytes(self, pattern_id: int) -> int:
        """Bytes each indirect prefetch of this pattern should fetch."""
        entry = self._entries.get(pattern_id)
        if entry is None:
            return self.config.line_size
        return entry.granularity_sectors * self.sector_size

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def line_addr(self, addr: int) -> int:
        return addr - (addr % self.config.line_size)

    def maybe_sample(self, pattern_id: int, addr: int) -> bool:
        """Possibly start tracking a prefetched line; return True if sampled."""
        entry = self.allocate(pattern_id)
        if len(entry.samples) >= self.config.gp_samples:
            return False
        line = self.line_addr(addr)
        if line in self._sampled_lines:
            return False
        entry.samples[line] = 0
        self._sampled_lines[line] = pattern_id
        return True

    def sector_mask(self, addr: int, size: int) -> int:
        """Sectors covered by a demand access."""
        offset = addr % self.config.line_size
        first = offset // self.sector_size
        last = min(self.config.line_size - 1, offset + max(1, size) - 1) // self.sector_size
        mask = 0
        for sector in range(first, last + 1):
            mask |= 1 << sector
        return mask

    def on_demand_access(self, addr: int, size: int) -> None:
        """Record which sectors a demand access touched on sampled lines."""
        line = self.line_addr(addr)
        pattern_id = self._sampled_lines.get(line)
        if pattern_id is None:
            return
        entry = self._entries.get(pattern_id)
        if entry is None or line not in entry.samples:
            return
        entry.samples[line] |= self.sector_mask(addr, size)

    # ------------------------------------------------------------------
    # Eviction and Algorithm 1
    # ------------------------------------------------------------------
    def on_eviction(self, addr: int) -> None:
        """A cache line was evicted; update the pattern's statistics."""
        line = self.line_addr(addr)
        pattern_id = self._sampled_lines.pop(line, None)
        if pattern_id is None:
            return
        entry = self._entries.get(pattern_id)
        if entry is None:
            return
        touched = entry.samples.pop(line, 0)
        entry.evict += 1
        entry.tot_sector += popcount(touched)
        run = min_consecutive_run(touched, self.sectors_per_line)
        entry.min_granu = min(entry.min_granu, run)
        if entry.evict >= self.config.gp_samples:
            self._update_granularity(entry)

    def _update_granularity(self, entry: GPEntry) -> None:
        """Algorithm 1 from the paper."""
        n = self.config.gp_samples
        cost_full = n * (self.sectors_per_line + 1)
        min_granu = max(1, entry.min_granu)
        cost_partial = entry.tot_sector + entry.tot_sector / min_granu
        if cost_full <= cost_partial:
            entry.granularity_sectors = self.sectors_per_line
        else:
            entry.granularity_sectors = min_granu
        self.predictions_updated += 1
        entry.evict = 0
        entry.tot_sector = 0
        entry.min_granu = self.sectors_per_line

    def release(self, pattern_id: int) -> None:
        """Drop all state for a pattern."""
        entry = self._entries.pop(pattern_id, None)
        if entry is None:
            return
        for line in entry.samples:
            self._sampled_lines.pop(line, None)

    def reset(self) -> None:
        self._entries.clear()
        self._sampled_lines.clear()
        self.predictions_updated = 0
