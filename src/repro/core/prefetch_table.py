"""Prefetch Table (PT) — Figures 5 and 6.

The PT holds one entry per tracked pattern.  Each entry has two halves:

* the *Stream Table* half (PC, last address, hit count) — in this
  implementation that half is the embedded
  :class:`repro.prefetchers.stream.StreamPrefetcher` owned by IMP, keyed by
  the same PC, so the PT module only stores the PC linkage;
* the *Indirect Table* half: ``enable``, ``shift``, ``BaseAddr``, the last
  observed index value, and a saturating confidence counter (``hit_cnt``)
  that must reach a threshold before indirect prefetching starts.

To support secondary indirections (Section 3.3.2), entries carry an
``ind_type`` (primary / second-way / second-level) and parent/child links
that form a small tree rooted at the primary entry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import IMPConfig


class IndirectType(enum.Enum):
    """Role of a PT entry in a pattern tree (Figure 6)."""

    PRIMARY = "primary"
    SECOND_WAY = "second_way"
    SECOND_LEVEL = "second_level"


@dataclass(frozen=True)
class IndirectPattern:
    """The learned parameters of one indirect pattern."""

    shift: int
    base_addr: int


@dataclass(slots=True)
class PTEntry:
    """One Prefetch Table entry."""

    entry_id: int
    pc: Optional[int] = None                 # index-stream PC (primary entries)
    ind_type: IndirectType = IndirectType.PRIMARY
    enabled: bool = False
    shift: int = 0
    base_addr: int = 0
    hit_cnt: int = 0                         # saturating confidence counter
    index_value: Optional[int] = None        # last index value awaiting a match
    pending_match: bool = False
    prefetch_distance: int = 1               # ramps up linearly while prefetching
    # Secondary-indirection links (PT entry ids).
    next_ways: List[int] = field(default_factory=list)
    next_level: Optional[int] = None
    prev: Optional[int] = None
    # Read/write predictor state (Section 3.2.3).
    write_cnt: int = 0
    # Adaptive-distance throttling: dynamic cap (0 = use the config maximum),
    # per-window usefulness counters, and a bounded set of recently
    # prefetched lines used to judge whether prefetches are consumed.
    distance_cap: int = 0
    window_issued: int = 0
    window_useful: int = 0
    window_late: int = 0
    recent_prefetch_fifo: List[int] = field(default_factory=list)
    recent_prefetch_set: set = field(default_factory=set)

    def record_prefetched_line(self, line_addr: int, capacity: int = 64) -> None:
        """Remember a recently prefetched line for usefulness tracking."""
        if line_addr in self.recent_prefetch_set:
            return
        self.recent_prefetch_fifo.append(line_addr)
        self.recent_prefetch_set.add(line_addr)
        if len(self.recent_prefetch_fifo) > capacity:
            oldest = self.recent_prefetch_fifo.pop(0)
            self.recent_prefetch_set.discard(oldest)

    def consume_prefetched_line(self, line_addr: int) -> bool:
        """Return True (once) when a demand access touches a recent prefetch."""
        if line_addr not in self.recent_prefetch_set:
            return False
        self.recent_prefetch_set.discard(line_addr)
        try:
            self.recent_prefetch_fifo.remove(line_addr)
        except ValueError:
            pass
        return True
    # Bookkeeping.
    last_use: float = 0.0
    prefetches_issued: int = 0

    @property
    def pattern(self) -> IndirectPattern:
        return IndirectPattern(shift=self.shift, base_addr=self.base_addr)

    def is_prefetching(self, threshold: int) -> bool:
        """True once the confidence counter has reached the threshold."""
        return self.enabled and self.hit_cnt >= threshold


class PrefetchTable:
    """Fixed-size table of :class:`PTEntry` with LRU replacement."""

    __slots__ = ("config", "_entries", "_by_pc", "_next_id",
                 "_enabled_cache")

    def __init__(self, config: Optional[IMPConfig] = None) -> None:
        self.config = config or IMPConfig()
        self._entries: Dict[int, PTEntry] = {}
        self._by_pc: Dict[int, PTEntry] = {}
        self._next_id = 0
        # Cached list of enabled entries; IMP scans it on *every* L1 access
        # for confidence matching, so rebuilding it per access is hot.
        # Invalidated whenever membership or an enable bit can change.
        self._enabled_cache: Optional[List[PTEntry]] = None

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup_by_pc(self, pc: int) -> Optional[PTEntry]:
        """Return the primary entry tracking this index-stream PC."""
        return self._by_pc.get(pc)

    def get(self, entry_id: int) -> Optional[PTEntry]:
        return self._entries.get(entry_id)

    def entries(self) -> List[PTEntry]:
        return list(self._entries.values())

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def enabled_entries(self) -> List[PTEntry]:
        """All entries with a detected indirect pattern.

        Returns a cached list (in table insertion order); callers must not
        mutate it.  The cache is invalidated by activate/release/reset.
        """
        cache = self._enabled_cache
        if cache is None:
            cache = [entry for entry in self._entries.values() if entry.enabled]
            self._enabled_cache = cache
        return cache

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate_primary(self, pc: int, now: float) -> Optional[PTEntry]:
        """Allocate (or return) the primary entry for an index-stream PC."""
        existing = self._by_pc.get(pc)
        if existing is not None:
            existing.last_use = now
            return existing
        entry = self._allocate(now)
        if entry is None:
            return None
        entry.pc = pc
        entry.ind_type = IndirectType.PRIMARY
        self._by_pc[pc] = entry
        return entry

    def allocate_secondary(self, parent_id: int, ind_type: IndirectType,
                           now: float) -> Optional[PTEntry]:
        """Allocate a second-way or second-level child of ``parent_id``."""
        parent = self._entries.get(parent_id)
        if parent is None:
            return None
        if ind_type is IndirectType.SECOND_WAY:
            # The primary itself counts as the first way.
            if len(parent.next_ways) + 1 >= self.config.max_indirect_ways:
                return None
        elif ind_type is IndirectType.SECOND_LEVEL:
            if parent.next_level is not None:
                return None
            if self._depth(parent) + 1 >= self.config.max_indirect_levels:
                return None
        entry = self._allocate(now)
        if entry is None:
            return None
        entry.ind_type = ind_type
        entry.prev = parent_id
        if ind_type is IndirectType.SECOND_WAY:
            parent.next_ways.append(entry.entry_id)
        else:
            parent.next_level = entry.entry_id
        return entry

    def _depth(self, entry: PTEntry) -> int:
        """Levels of indirection from the primary down to this entry."""
        depth = 0
        current: Optional[PTEntry] = entry
        while current is not None and current.prev is not None:
            if current.ind_type is IndirectType.SECOND_LEVEL:
                depth += 1
            current = self._entries.get(current.prev)
        return depth

    def _allocate(self, now: float) -> Optional[PTEntry]:
        if len(self._entries) >= self.config.pt_size:
            victim = self._choose_victim()
            if victim is None:
                return None
            self.release(victim.entry_id)
        entry = PTEntry(entry_id=self._next_id, last_use=now)
        self._next_id += 1
        self._entries[entry.entry_id] = entry
        return entry

    def _choose_victim(self) -> Optional[PTEntry]:
        """Prefer evicting entries that never detected a pattern, then LRU."""
        candidates = [e for e in self._entries.values() if not e.enabled]
        if not candidates:
            candidates = [e for e in self._entries.values()
                          if e.ind_type is IndirectType.PRIMARY]
        if not candidates:
            candidates = list(self._entries.values())
        return min(candidates, key=lambda e: e.last_use) if candidates else None

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------
    def release(self, entry_id: int) -> None:
        """Remove an entry and its whole secondary-indirection subtree."""
        entry = self._entries.pop(entry_id, None)
        if entry is None:
            return
        self._enabled_cache = None
        if entry.pc is not None and self._by_pc.get(entry.pc) is entry:
            del self._by_pc[entry.pc]
        # Unlink from the parent.
        if entry.prev is not None:
            parent = self._entries.get(entry.prev)
            if parent is not None:
                if entry_id in parent.next_ways:
                    parent.next_ways.remove(entry_id)
                if parent.next_level == entry_id:
                    parent.next_level = None
        # Recursively release children.
        for child_id in list(entry.next_ways):
            self.release(child_id)
        if entry.next_level is not None:
            self.release(entry.next_level)

    # ------------------------------------------------------------------
    # Pattern activation and confidence (Section 3.2.3)
    # ------------------------------------------------------------------
    def activate(self, entry_id: int, shift: int, base_addr: int) -> None:
        """The IPD detected a pattern: store it and enable the entry."""
        entry = self._entries[entry_id]
        self._enabled_cache = None
        entry.enabled = True
        entry.shift = shift
        entry.base_addr = base_addr
        entry.hit_cnt = 0
        entry.pending_match = False
        entry.index_value = None
        entry.prefetch_distance = 1

    def observe_index(self, entry: PTEntry, value: int, now: float) -> None:
        """A new index value arrived for a pattern that is building confidence."""
        if not entry.enabled:
            return
        if entry.pending_match:
            # The previous index was overwritten before its indirect access
            # was seen: lose confidence.
            entry.hit_cnt = max(0, entry.hit_cnt - 1)
        entry.index_value = value
        entry.pending_match = True
        entry.last_use = now

    def confirm_match(self, entry: PTEntry) -> None:
        """An access matched the address predicted from the last index."""
        hit_cnt = entry.hit_cnt + 1
        if hit_cnt <= self.config.max_confidence:
            entry.hit_cnt = hit_cnt
        entry.pending_match = False

    def children_of(self, entry: PTEntry) -> List[PTEntry]:
        """Same-way children (second-way entries) of a primary entry."""
        return [self._entries[i] for i in entry.next_ways if i in self._entries]

    def level_child(self, entry: PTEntry) -> Optional[PTEntry]:
        """The second-level child of an entry, if any."""
        if entry.next_level is None:
            return None
        return self._entries.get(entry.next_level)

    def reset(self) -> None:
        self._entries.clear()
        self._by_pc.clear()
        self._next_id = 0
        self._enabled_cache = None
