"""Hardware cost model — Section 6.4 of the paper.

The paper reports analytic storage costs (bits) for the Prefetch Table, the
Indirect Pattern Detector and the Granularity Predictor, plus the valid-bit
overhead of sector caches, and an energy overhead of the PT relative to an
L1 access.  This module reproduces those computations from the configuration
so the numbers in Section 6.4 (≈2 Kbit PT, ≈3.5 Kbit IPD, ≈5.5 Kbit / 0.7 KB
total for IMP; ≈3.4 Kbit / 420 B for the GP; 1.6% / 0.4% sector-valid
overhead for L1 / L2) can be regenerated and checked by tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import IMPConfig


@dataclass(frozen=True)
class CostReport:
    """Storage costs in bits (Section 6.4.1 / 6.4.2)."""

    pt_bits_per_entry: int
    pt_total_bits: int
    ipd_bits_per_entry: int
    ipd_total_bits: int
    imp_total_bits: int
    gp_bits_per_entry: int
    gp_total_bits: int
    l1_sector_overhead: float
    l2_sector_overhead: float

    @property
    def imp_total_bytes(self) -> float:
        return self.imp_total_bits / 8.0

    @property
    def gp_total_bytes(self) -> float:
        return self.gp_total_bits / 8.0


def _pt_entry_bits(config: IMPConfig) -> int:
    """Bits added to each PT entry by the Indirect Table half."""
    addr_bits = config.address_bits
    enable = 1
    shift = max(1, math.ceil(math.log2(len(config.shift_values))))
    base_addr = addr_bits
    index = addr_bits
    hit_cnt = max(1, math.ceil(math.log2(config.max_confidence + 1)))
    distance = max(1, math.ceil(math.log2(config.max_prefetch_distance + 1)))
    # Secondary-indirection link fields (Figure 6).
    entry_ptr = max(1, math.ceil(math.log2(config.pt_size)))
    ind_type = 2
    links = 2 * entry_ptr + entry_ptr + ind_type   # next way x2, prev, type
    return enable + shift + base_addr + index + hit_cnt + distance + links


def _ipd_entry_bits(config: IMPConfig) -> int:
    """Bits per IPD entry (two index values plus the BaseAddr array)."""
    addr_bits = config.address_bits
    idx = 2 * addr_bits
    baseaddr_array = len(config.shift_values) * config.baseaddr_array_len * addr_bits
    counters = 2 * max(1, math.ceil(math.log2(config.baseaddr_array_len + 1)))
    stream_id = max(1, math.ceil(math.log2(config.pt_size)))
    return idx + baseaddr_array + counters + stream_id


def _gp_entry_bits(config: IMPConfig) -> int:
    """Bits per Granularity Predictor entry (Figure 8)."""
    sectors_per_line = config.line_size // config.l1_sector_size
    tag_bits = config.address_bits - int(math.log2(config.line_size))
    sample_bits = config.gp_samples * (tag_bits + sectors_per_line)
    granu_bits = max(1, math.ceil(math.log2(sectors_per_line + 1)))
    tot_sector = max(1, math.ceil(math.log2(
        config.gp_samples * sectors_per_line + 1)))
    evict = max(1, math.ceil(math.log2(config.gp_samples + 1)))
    return sample_bits + 2 * granu_bits + tot_sector + evict


def storage_cost_bits(config: IMPConfig = IMPConfig(),
                      l1_line_bits: int = 64 * 8,
                      l2_sectors_per_line: int = 2) -> CostReport:
    """Compute the storage-cost report of Section 6.4."""
    pt_entry = _pt_entry_bits(config)
    ipd_entry = _ipd_entry_bits(config)
    gp_entry = _gp_entry_bits(config)
    pt_total = pt_entry * config.pt_size
    ipd_total = ipd_entry * config.ipd_size
    gp_total = gp_entry * config.pt_size
    l1_sectors = config.line_size // config.l1_sector_size
    return CostReport(
        pt_bits_per_entry=pt_entry,
        pt_total_bits=pt_total,
        ipd_bits_per_entry=ipd_entry,
        ipd_total_bits=ipd_total,
        imp_total_bits=pt_total + ipd_total,
        gp_bits_per_entry=gp_entry,
        gp_total_bits=gp_total,
        l1_sector_overhead=l1_sectors / l1_line_bits,
        l2_sector_overhead=l2_sectors_per_line / l1_line_bits,
    )


def energy_overhead(config: IMPConfig = IMPConfig(),
                    l1_size_bytes: int = 32 * 1024) -> dict:
    """Relative energy of PT / GP accesses vs. an L1 access (Section 6.4.3).

    A very small fully-associative structure's access energy scales roughly
    with its storage size relative to the L1 data array; the paper reports
    < 3% for the PT (accessed on every L1 access) and < 1% for the GP
    (accessed once per indirect access).
    """
    report = storage_cost_bits(config)
    l1_bits = l1_size_bytes * 8
    tag_bits = 96  # address + PC tag per PT entry, as in the paper
    pt_bits = (report.pt_bits_per_entry + tag_bits) * config.pt_size
    # Fully-associative compare on every access plus data read-out, relative
    # to reading one L1 set (assoc * line) plus its tags.
    l1_access_bits = 4 * (config.line_size * 8 + 48)
    pt_relative = min(0.03, pt_bits / (l1_bits / 16)) if l1_bits else 0.03
    gp_relative = min(0.01, report.gp_total_bits / (l1_bits / 4)) if l1_bits else 0.01
    return {
        "pt_vs_l1_access": pt_relative,
        "gp_vs_l1_access": gp_relative,
        "l1_access_bits": l1_access_bits,
    }
