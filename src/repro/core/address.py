"""Address generation for indirect patterns (Equations 1 and 2).

The paper restricts coefficients to powers of two so that the multiply /
divide of Equation 1 becomes a shift (Equation 2)::

    ADDR(A[B[i]]) = (B[i] << shift) + BaseAddr

Negative shifts model sub-byte coefficients: ``shift = -3`` corresponds to a
coefficient of 1/8 (bit vectors), so the value is shifted right.
"""

from __future__ import annotations

from typing import Optional


def apply_shift(value: int, shift: int) -> int:
    """Compute ``value << shift`` allowing negative (right) shifts."""
    if shift >= 0:
        return value << shift
    return value >> (-shift)


def predict_address(index_value: int, shift: int, base_addr: int) -> int:
    """Equation 2: the predicted address of ``A[B[i]]``."""
    return apply_shift(index_value, shift) + base_addr


def solve_base_addr(index_value: int, miss_addr: int, shift: int) -> int:
    """Solve Equation 2 for ``BaseAddr`` given one (index, address) pair."""
    return miss_addr - apply_shift(index_value, shift)


def coefficient_of(shift: int) -> float:
    """The byte coefficient a shift represents (4, 8, 16, or 1/8)."""
    if shift >= 0:
        return float(1 << shift)
    return 1.0 / (1 << (-shift))


def shift_for_element_size(elem_size: float) -> Optional[int]:
    """Return the shift matching an element size, or None if not a power of 2."""
    if elem_size >= 1:
        size = int(elem_size)
        if size & (size - 1):
            return None
        return size.bit_length() - 1
    inverse = round(1.0 / elem_size)
    if inverse & (inverse - 1):
        return None
    return -(inverse.bit_length() - 1)
