"""The Indirect Memory Prefetcher (IMP) — Section 3 of the paper.

IMP is attached to one L1 data cache and snoops its access and miss stream.
It composes four hardware structures:

* an embedded **stream prefetcher** (the Stream Table half of the Prefetch
  Table) that detects the sequential scan of the index array ``B``,
* the **Indirect Pattern Detector** that learns ``(shift, BaseAddr)``,
* the **Prefetch Table** that stores detected patterns, builds confidence
  with a saturating counter, and links secondary indirections,
* the **Granularity Predictor** used when partial cacheline accessing is
  enabled.

The only thing IMP needs beyond the access stream is the *value* returned by
index loads (hardware sees those on the fill/response path).  In this
reproduction values are read through the workload's
:class:`repro.mem_image.MemoryImage`.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Tuple

from repro.core.address import coefficient_of, predict_address
from repro.core.config import IMPConfig
from repro.core.granularity import GranularityPredictor
from repro.core.ipd import DetectedPattern, IndirectPatternDetector
from repro.core.prefetch_table import IndirectType, PrefetchTable, PTEntry
from repro.mem_image import MemoryImage
from repro.prefetchers.base import AccessContext, PrefetcherBase, PrefetchRequest
from repro.prefetchers.stream import StreamEntry, StreamPrefetcher

#: Shared empty result for the no-prefetch case (never mutated; callers
#: treat the return value of ``on_access`` as read-only).
_NO_REQUESTS: List[PrefetchRequest] = []


# IPD stream keys.  The IPD accepts any hashable key; IMP packs the key kind
# into the low bits of an integer because these keys are built (and hashed)
# on every index access — tuple keys showed up in profiles.
_KEY_PRIMARY = 0
_KEY_WAY = 1
_KEY_LEVEL = 2
_KEY_KIND_MASK = 3


def _primary_key(pc: int) -> Hashable:
    return (pc << 2) | _KEY_PRIMARY


def _way_key(pc: int) -> Hashable:
    return (pc << 2) | _KEY_WAY


def _level_key(entry_id: int) -> Hashable:
    return (entry_id << 2) | _KEY_LEVEL


class IMP(PrefetcherBase):
    """Indirect Memory Prefetcher attached to one L1 data cache."""

    __slots__ = ("config", "mem_image", "stream", "pt", "ipd", "gp",
                 "patterns_detected", "secondary_patterns_detected",
                 "indirect_prefetches_generated",
                 "stream_prefetches_generated", "_partial_enabled",
                 "_adaptive_distance", "_max_ways", "_confidence_threshold",
                 "_two_level", "_rw_predictor", "_rw_write_threshold",
                 "observes_evictions")

    name = "imp"

    def __init__(self, config: Optional[IMPConfig] = None,
                 mem_image: Optional[MemoryImage] = None) -> None:
        self.config = config or IMPConfig()
        self.mem_image = mem_image or MemoryImage()
        self.stream = StreamPrefetcher(self.config.stream)
        self.pt = PrefetchTable(self.config)
        self.ipd = IndirectPatternDetector(self.config)
        self.gp = GranularityPredictor(self.config)
        # IMPConfig is frozen; hoist the flags consulted on every access.
        self._partial_enabled = self.config.partial_enabled
        self._adaptive_distance = self.config.adaptive_distance
        self._max_ways = self.config.max_indirect_ways
        self._confidence_threshold = self.config.confidence_threshold
        self._two_level = self.config.max_indirect_levels >= 2
        self._rw_predictor = self.config.rw_predictor
        self._rw_write_threshold = self.config.rw_write_threshold
        # The granularity predictor (and with it on_eviction) only runs in
        # partial-cacheline mode; let the memory system skip the call.
        self.observes_evictions = self.config.partial_enabled
        # Statistics about the prefetcher itself.
        self.patterns_detected = 0
        self.secondary_patterns_detected = 0
        self.indirect_prefetches_generated = 0
        self.stream_prefetches_generated = 0

    # ------------------------------------------------------------------
    # Main entry point: one L1 access
    # ------------------------------------------------------------------
    def on_access(self, ctx: AccessContext) -> List[PrefetchRequest]:
        if self._partial_enabled:
            self.gp.on_demand_access(ctx.addr, ctx.size)
        if self._adaptive_distance:
            self._track_prefetch_usefulness(ctx)

        # 1. Check this access against outstanding indirect predictions
        #    (confidence building, Section 3.2.3), and feed second-level
        #    detection with the values loaded by recognised indirect
        #    accesses.  The _check_confidence loop is inlined: it runs on
        #    every single access once a pattern is enabled.
        pt = self.pt
        entries = pt._enabled_cache
        if entries is None:
            entries = pt.enabled_entries()
        if entries:
            addr = ctx.addr
            for entry in entries:
                if not entry.pending_match:
                    continue
                value = entry.index_value
                if value is None:
                    continue
                shift = entry.shift
                if shift >= 0:
                    offset = addr - ((value << shift) + entry.base_addr)
                    tolerance = 1 << shift
                else:
                    offset = addr - ((value >> -shift) + entry.base_addr)
                    tolerance = 1
                if 0 <= offset < tolerance:
                    # PrefetchTable.confirm_match and _update_rw_predictor,
                    # inlined (they run once per recognised indirect
                    # access).
                    hit_cnt = entry.hit_cnt + 1
                    if hit_cnt <= pt.config.max_confidence:
                        entry.hit_cnt = hit_cnt
                    entry.pending_match = False
                    if self._rw_predictor:
                        if ctx.is_write:
                            if entry.write_cnt < self.config.rw_max_count:
                                entry.write_cnt += 1
                        elif entry.write_cnt > 0:
                            entry.write_cnt -= 1
                    self._feed_second_level(entry, ctx)

        # 2. Cache misses train the IPD (they are candidate indirect
        #    addresses for whatever index values were recently recorded).
        if not ctx.hit:
            for pattern in self.ipd.on_miss(ctx.addr, ctx.now):
                self._install_pattern(pattern, ctx.now)

        # 3. Stream detection: is this access part of a (word-granularity)
        #    sequential scan?  If so it is a candidate index access.  The
        #    request list is only materialised once there is something to
        #    issue — the overwhelmingly common outcome of an access is no
        #    prefetch at all.
        stream_entry = self.stream.observe(ctx.pc, ctx.addr, ctx.now)
        if stream_entry is None:
            return _NO_REQUESTS
        requests = self.stream.prefetches_for(stream_entry, ctx.addr)
        self.stream_prefetches_generated += len(requests)
        if not ctx.is_write:
            indirect = self._handle_index_access(ctx, stream_entry)
            if indirect:
                if requests:
                    requests.extend(indirect)
                else:
                    requests = indirect
        return requests

    # ------------------------------------------------------------------
    # Index-access handling
    # ------------------------------------------------------------------
    def _handle_index_access(self, ctx: AccessContext,
                             stream_entry: StreamEntry) -> List[PrefetchRequest]:
        # Read through the prefetcher's own memory image (the same image
        # the context's read_value closure wraps) — skips a lambda hop on
        # a per-index-access call.
        value = self.mem_image.read_value(ctx.addr)
        pc = ctx.pc
        # allocate_primary's existing-entry fast path, inlined (one lookup
        # per recognised index access).
        pt_entry = self.pt._by_pc.get(pc)
        if pt_entry is None:
            pt_entry = self.pt.allocate_primary(pc, ctx.now)
            if pt_entry is None:
                return _NO_REQUESTS
        pt_entry.last_use = ctx.now
        if not pt_entry.enabled:
            # No indirect pattern yet: keep feeding the IPD.
            self.ipd.on_index_access((pc << 2) | _KEY_PRIMARY, value, ctx.now)
            return _NO_REQUESTS
        if value is None:
            return _NO_REQUESTS
        # Known pattern: record the index value for confidence tracking
        # (PrefetchTable.observe_index inlined; the enabled guard is already
        # established above).
        if pt_entry.pending_match:
            # The previous index was overwritten before its indirect access
            # was seen: lose confidence.
            if pt_entry.hit_cnt:
                pt_entry.hit_cnt -= 1
        pt_entry.index_value = value
        pt_entry.pending_match = True
        pt_entry.last_use = ctx.now
        # Try to discover a second way sharing this index array (with the
        # IPD backoff short-circuit — see _feed_second_level).
        if len(pt_entry.next_ways) + 1 < self._max_ways:
            ipd = self.ipd
            key = (pc << 2) | _KEY_WAY
            if key in ipd._entries:
                ipd.on_index_access(key, value, ctx.now)
            else:
                backoff = ipd._backoff.get(key)
                if backoff is None or ctx.now >= backoff.blocked_until:
                    ipd.on_index_access(key, value, ctx.now)
        if not (pt_entry.enabled
                and pt_entry.hit_cnt >= self._confidence_threshold):
            return _NO_REQUESTS
        return self._generate_prefetches(pt_entry, stream_entry, ctx)

    # ------------------------------------------------------------------
    # Confidence building and second-level index extraction
    # ------------------------------------------------------------------
    def _match_tolerance(self, shift: int) -> int:
        """Allowed byte offset between prediction and access (struct fields)."""
        return max(1, int(coefficient_of(shift)))

    def _update_rw_predictor(self, entry: PTEntry, ctx: AccessContext) -> None:
        """Track whether this pattern's demand accesses are writes, so later
        prefetches can request the line in Exclusive state (Section 3.2.3)."""
        if not self.config.rw_predictor:
            return
        if ctx.is_write:
            entry.write_cnt = min(self.config.rw_max_count, entry.write_cnt + 1)
        elif entry.write_cnt > 0:
            entry.write_cnt -= 1

    def _wants_exclusive(self, entry: PTEntry) -> bool:
        return (self.config.rw_predictor
                and entry.write_cnt >= self.config.rw_write_threshold)

    # ------------------------------------------------------------------
    # Adaptive prefetch-distance throttling (Section 6.3.2 future work)
    # ------------------------------------------------------------------
    def _track_prefetch_usefulness(self, ctx: AccessContext) -> None:
        """Credit a demand access against the recently prefetched lines of
        whichever pattern brought them in."""
        line = ctx.addr - (ctx.addr % self.config.line_size)
        for entry in self.pt.enabled_entries():
            if entry.consume_prefetched_line(line):
                entry.window_useful += 1
                if not ctx.hit:
                    entry.window_late += 1
                break

    def _maybe_throttle(self, entry: PTEntry) -> None:
        """After every throttle window of issued prefetches, shrink the
        distance cap when most of them were never referenced (loop
        overshoot), or raise it again when the consumed ones keep arriving
        late (the stream is long and needs more lead time)."""
        cfg = self.config
        if not cfg.adaptive_distance or entry.window_issued < cfg.throttle_window:
            return
        cap = entry.distance_cap or cfg.max_prefetch_distance
        useful_ratio = entry.window_useful / max(1, entry.window_issued)
        if useful_ratio < cfg.throttle_low_ratio:
            cap = max(1, cap // 2)
        elif entry.window_late > entry.window_useful // 2:
            cap = min(cfg.max_prefetch_distance, cap + 2)
        entry.distance_cap = cap
        if entry.prefetch_distance > cap:
            entry.prefetch_distance = cap
        entry.window_issued = 0
        entry.window_useful = 0
        entry.window_late = 0

    def _feed_second_level(self, entry: PTEntry, ctx: AccessContext) -> None:
        """The access was recognised as an indirect access of ``entry``;
        its loaded value may be the index of a second-level pattern."""
        if not self._two_level or ctx.is_write:
            return
        if entry.next_level is not None:
            return
        if entry.ind_type is IndirectType.SECOND_LEVEL:
            return                        # bounded at two levels (Table 2)
        # IPD backoff short-circuit: when the second-level stream key has
        # no in-flight detection and is inside its backoff window, feeding
        # it is a provable no-op — skip the value read and the call.
        ipd = self.ipd
        key = (entry.entry_id << 2) | _KEY_LEVEL
        if key not in ipd._entries:
            backoff = ipd._backoff.get(key)
            if backoff is not None and ctx.now < backoff.blocked_until:
                return
        value = self.mem_image.read_value(ctx.addr)
        if value is None:
            return
        ipd.on_index_access(key, value, ctx.now)

    # ------------------------------------------------------------------
    # Pattern installation (IPD -> PT)
    # ------------------------------------------------------------------
    def _install_pattern(self, pattern: DetectedPattern, now: float) -> None:
        key = pattern.stream_key
        if not isinstance(key, int):
            return
        kind = key & _KEY_KIND_MASK
        ident = key >> 2
        if kind == _KEY_PRIMARY:
            self._install_primary(ident, pattern, now)
        elif kind == _KEY_WAY:
            self._install_second_way(ident, pattern, now)
        elif kind == _KEY_LEVEL:
            self._install_second_level(ident, pattern, now)

    def _install_primary(self, pc: int, pattern: DetectedPattern,
                         now: float) -> None:
        entry = self.pt.allocate_primary(pc, now)
        if entry is None:
            return
        self.pt.activate(entry.entry_id, pattern.shift, pattern.base_addr)
        self.patterns_detected += 1
        # The primary pattern must not be re-detected as a "second way".
        self.ipd.add_known_pattern(_way_key(pc), pattern.shift, pattern.base_addr)
        if self.config.partial_enabled:
            self.gp.allocate(entry.entry_id)

    def _install_second_way(self, pc: int, pattern: DetectedPattern,
                            now: float) -> None:
        parent = self.pt.lookup_by_pc(pc)
        if parent is None or not parent.enabled:
            return
        child = self.pt.allocate_secondary(parent.entry_id,
                                           IndirectType.SECOND_WAY, now)
        if child is None:
            return
        self.pt.activate(child.entry_id, pattern.shift, pattern.base_addr)
        # Secondary patterns piggyback on the parent's confidence.
        child.hit_cnt = self.config.confidence_threshold
        self.secondary_patterns_detected += 1
        self.ipd.add_known_pattern(_way_key(pc), pattern.shift, pattern.base_addr)
        if self.config.partial_enabled:
            self.gp.allocate(child.entry_id)

    def _install_second_level(self, parent_id: int, pattern: DetectedPattern,
                              now: float) -> None:
        parent = self.pt.get(parent_id)
        if parent is None or not parent.enabled:
            return
        child = self.pt.allocate_secondary(parent_id, IndirectType.SECOND_LEVEL,
                                           now)
        if child is None:
            return
        self.pt.activate(child.entry_id, pattern.shift, pattern.base_addr)
        child.hit_cnt = self.config.confidence_threshold
        self.secondary_patterns_detected += 1
        if self.config.partial_enabled:
            self.gp.allocate(child.entry_id)

    # ------------------------------------------------------------------
    # Prefetch generation (Section 3.2.3 and 3.3.2)
    # ------------------------------------------------------------------
    def _generate_prefetches(self, entry: PTEntry, stream_entry: StreamEntry,
                             ctx: AccessContext) -> List[PrefetchRequest]:
        cfg = self.config
        # The prefetch distance starts small and grows linearly with hits,
        # bounded by the (possibly throttled) distance cap.
        cap = cfg.max_prefetch_distance
        if cfg.adaptive_distance and entry.distance_cap:
            cap = min(cap, entry.distance_cap)
        if entry.prefetch_distance < cap:
            entry.prefetch_distance += 1
        elif entry.prefetch_distance > cap:
            entry.prefetch_distance = cap
        stride = stream_entry.stride
        if stride == 0:
            return []
        future_index_addr = ctx.addr + entry.prefetch_distance * stride
        future_value = self.mem_image.read_value(future_index_addr)
        if future_value is None:
            return []
        requests = self._pattern_requests(entry, future_value)
        # Second-way children share the same index value (Section 3.3.2).
        if entry.next_ways:
            for child in self.pt.children_of(entry):
                if child.enabled:
                    requests.extend(self._pattern_requests(child, future_value))
        return requests

    def _pattern_requests(self, entry: PTEntry,
                          index_value: int) -> List[PrefetchRequest]:
        cfg = self.config
        shift = entry.shift
        if shift >= 0:
            addr = (index_value << shift) + entry.base_addr
        else:
            addr = (index_value >> -shift) + entry.base_addr
        if addr < 0:
            return []
        size = cfg.line_size
        if self._partial_enabled:
            size = self.gp.granularity_bytes(entry.entry_id)
            self.gp.maybe_sample(entry.entry_id, addr)
        entry.prefetches_issued += 1
        if self._adaptive_distance:
            entry.window_issued += 1
            entry.record_prefetched_line(addr - (addr % cfg.line_size))
            self._maybe_throttle(entry)
        self.indirect_prefetches_generated += 1
        # _wants_exclusive, inlined (per generated request).
        exclusive = (self._rw_predictor
                     and entry.write_cnt >= self._rw_write_threshold)
        requests = [PrefetchRequest(addr=addr, size=size, is_indirect=True,
                                    exclusive=exclusive)]
        # Second-level indirection: the child prefetch needs the value the
        # parent prefetch returns, so it is issued dependent on the parent.
        if entry.next_level is None:
            return requests
        child = self.pt.level_child(entry)
        if child is not None and child.enabled:
            parent_value = self.mem_image.read_value(addr)
            if parent_value is not None:
                child_addr = predict_address(parent_value, child.shift,
                                             child.base_addr)
                if child_addr >= 0:
                    child_size = cfg.line_size
                    if cfg.partial_enabled:
                        child_size = self.gp.granularity_bytes(child.entry_id)
                        self.gp.maybe_sample(child.entry_id, child_addr)
                    child.prefetches_issued += 1
                    self.indirect_prefetches_generated += 1
                    requests.append(PrefetchRequest(addr=child_addr,
                                                    size=child_size,
                                                    is_indirect=True,
                                                    depends_on_previous=True))
        return requests

    # ------------------------------------------------------------------
    # Eviction hook (Granularity Predictor)
    # ------------------------------------------------------------------
    def on_eviction(self, addr: int, touched_sectors: int, now: float) -> None:
        if self.config.partial_enabled:
            self.gp.on_eviction(addr)

    def reset(self) -> None:
        self.stream.reset()
        self.pt.reset()
        self.ipd.reset()
        self.gp.reset()
        self.patterns_detected = 0
        self.secondary_patterns_detected = 0
        self.indirect_prefetches_generated = 0
        self.stream_prefetches_generated = 0


# ----------------------------------------------------------------------
# Registry entry (kept here, next to the implementation, so that adding a
# prefetcher stays a one-file change — see repro.registry).
# ----------------------------------------------------------------------
def _make_imp(core_id, mem_image=None, imp_config=None, **_):
    return IMP(imp_config or IMPConfig(), mem_image)


from repro.registry import PREFETCHERS  # noqa: E402

PREFETCHERS.register(
    "imp", _make_imp,
    description="Indirect Memory Prefetcher (the paper's contribution)",
    config_cls=IMPConfig)
