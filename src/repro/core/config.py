"""IMP configuration (Table 2 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.prefetchers.stream import StreamPrefetcherConfig


@dataclass(frozen=True)
class IMPConfig:
    """Default parameters from Table 2.

    * 16-entry Prefetch Table, up to 2 indirect ways and 2 indirect levels,
      maximum indirect prefetch distance 16.
    * 4-entry Indirect Pattern Detector, shift values {2, 3, 4, -3}
      (coefficients 4, 8, 16 and 1/8 bytes), BaseAddr array of length 4.
    * Granularity Predictor with 8-byte L1 sectors, 32-byte L2 sectors and
      4 sampled cachelines per pattern.
    """

    # Prefetch Table.
    pt_size: int = 16
    max_indirect_ways: int = 2
    max_indirect_levels: int = 2
    max_prefetch_distance: int = 16
    confidence_threshold: int = 2      # saturating-counter value to start prefetching
    max_confidence: int = 7            # saturating-counter ceiling

    # Indirect Pattern Detector.
    ipd_size: int = 4
    shift_values: Tuple[int, ...] = (2, 3, 4, -3)
    baseaddr_array_len: int = 4
    backoff_base: int = 64             # cycles of back-off after a failed detection
    max_backoff: int = 4096

    # Partial cacheline accessing / Granularity Predictor.
    l1_sector_size: int = 8
    l2_sector_size: int = 32
    gp_samples: int = 4
    partial_enabled: bool = False

    # Read/write predictor (Section 3.2.3): prefetch in Exclusive state once
    # a pattern's demand accesses are observed to be writes.
    rw_predictor: bool = True
    rw_write_threshold: int = 2        # saturating-counter value for Exclusive
    rw_max_count: int = 3

    # Adaptive prefetch-distance throttling.  The paper's Figure 16 notes
    # that short-loop workloads lose performance when the distance overshoots
    # loop ends and suggests, as future work, "a scheme to detect this
    # situation and dynamically decrease prefetch distance".  This implements
    # that scheme; it is off by default to match the evaluated design.
    adaptive_distance: bool = False
    throttle_window: int = 32          # prefetches per throttling decision
    throttle_low_ratio: float = 0.5    # useful ratio below which we back off

    # Embedded stream prefetcher (the Stream Table half of the PT).
    stream: StreamPrefetcherConfig = field(default_factory=StreamPrefetcherConfig)

    # Platform constants used by the address generator and cost model.
    line_size: int = 64
    address_bits: int = 48

    def with_partial(self, enabled: bool = True) -> "IMPConfig":
        """Return a copy with partial cacheline accessing toggled."""
        return replace(self, partial_enabled=enabled)

    def with_pt_size(self, pt_size: int) -> "IMPConfig":
        """Return a copy with a different Prefetch Table size (Figure 14)."""
        return replace(self, pt_size=pt_size,
                       stream=replace(self.stream, table_size=pt_size))

    def with_ipd_size(self, ipd_size: int) -> "IMPConfig":
        """Return a copy with a different IPD size (Figure 15)."""
        return replace(self, ipd_size=ipd_size)

    def with_max_distance(self, distance: int) -> "IMPConfig":
        """Return a copy with a different max prefetch distance (Figure 16)."""
        return replace(self, max_prefetch_distance=distance)

    def with_adaptive_distance(self, enabled: bool = True) -> "IMPConfig":
        """Return a copy with adaptive distance throttling toggled."""
        return replace(self, adaptive_distance=enabled)

    # ------------------------------------------------------------------
    # Serialisation (sweep specs, persistent result cache)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        from dataclasses import asdict
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "IMPConfig":
        doc = dict(doc)
        doc["shift_values"] = tuple(doc["shift_values"])
        doc["stream"] = StreamPrefetcherConfig(**doc["stream"])
        return cls(**doc)
