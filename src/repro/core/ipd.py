"""Indirect Pattern Detector (IPD) — Section 3.2.2 and Figure 4.

The IPD learns the ``(shift, BaseAddr)`` parameters of an indirect pattern by
pairing two consecutive index values with the cache misses that follow them:

1. On a candidate index access (anything detected as a streaming access) that
   is not yet associated with an indirect pattern, the IPD allocates an entry
   and records the index value in ``idx1``.
2. For each of the first few cache misses after that access, it computes, for
   every candidate shift, ``BaseAddr = miss_addr - (idx1 << shift)`` and
   stores them in the entry's BaseAddr array.
3. When the next index in that stream (``idx2``) is seen, later misses are
   paired with ``idx2`` the same way, and each resulting BaseAddr is compared
   against the stored ones with the same shift.  A match means both misses
   satisfy Equation 2 with the same parameters — a detected pattern.
4. If the third index arrives with no detection, the entry is released and
   the stream backs off exponentially before trying again (to avoid
   thrashing the small IPD).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.address import solve_base_addr
from repro.core.config import IMPConfig


@dataclass(frozen=True)
class DetectedPattern:
    """The result of a successful detection."""

    stream_key: int          # identifier of the index stream (PC or pattern id)
    shift: int
    base_addr: int


@dataclass(slots=True)
class IPDEntry:
    """One in-flight detection (one row of Figure 4)."""

    stream_key: int
    idx1: int
    idx2: Optional[int] = None
    #: Candidate BaseAddrs computed from idx1, one list per shift value.
    baseaddrs: Dict[int, List[int]] = field(default_factory=dict)
    misses_after_idx1: int = 0
    misses_after_idx2: int = 0
    allocated_at: float = 0.0


@dataclass(slots=True)
class _BackoffState:
    failures: int = 0
    blocked_until: float = 0.0


class IndirectPatternDetector:
    """Fixed-size table of in-flight indirect pattern detections."""

    __slots__ = ("config", "_entries", "_backoff", "_known", "detections",
                 "failed_detections")

    def __init__(self, config: Optional[IMPConfig] = None) -> None:
        self.config = config or IMPConfig()
        self._entries: Dict[int, IPDEntry] = {}
        self._backoff: Dict[int, _BackoffState] = {}
        # Patterns already known for a stream, so re-detection can be skipped
        # and second-way detection does not re-find the primary pattern.
        self._known: Dict[int, List[Tuple[int, int]]] = {}
        self.detections = 0
        self.failed_detections = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def entry_for(self, stream_key: int) -> Optional[IPDEntry]:
        """Return the in-flight entry for a stream, if any."""
        return self._entries.get(stream_key)

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def known_patterns(self, stream_key: int) -> List[Tuple[int, int]]:
        """(shift, base_addr) pairs already detected for this stream."""
        return list(self._known.get(stream_key, []))

    def add_known_pattern(self, stream_key: int, shift: int, base_addr: int) -> None:
        """Record an externally known pattern so it is not re-detected."""
        self._known.setdefault(stream_key, []).append((shift, base_addr))

    def forget_stream(self, stream_key: int) -> None:
        """Drop all state for a stream (entry, back-off, known patterns)."""
        self._entries.pop(stream_key, None)
        self._backoff.pop(stream_key, None)
        self._known.pop(stream_key, None)

    # ------------------------------------------------------------------
    # Index-access handling
    # ------------------------------------------------------------------
    def on_index_access(self, stream_key: int, value: Optional[int],
                        now: float) -> None:
        """Observe a candidate index access with the loaded ``value``."""
        if value is None:
            return
        entry = self._entries.get(stream_key)
        if entry is None:
            self._maybe_allocate(stream_key, value, now)
            return
        if entry.idx2 is None:
            if value != entry.idx1:
                entry.idx2 = value
                entry.misses_after_idx2 = 0
            return
        # Third index access without a detection: give up on this attempt.
        self._release(stream_key, failed=True, now=now)

    def _maybe_allocate(self, stream_key: int, value: int, now: float) -> None:
        backoff = self._backoff.get(stream_key)
        if backoff is not None and now < backoff.blocked_until:
            return
        if len(self._entries) >= self.config.ipd_size:
            return
        self._entries[stream_key] = IPDEntry(stream_key=stream_key, idx1=value,
                                             allocated_at=now)

    # ------------------------------------------------------------------
    # Miss handling
    # ------------------------------------------------------------------
    def on_miss(self, addr: int, now: float) -> List[DetectedPattern]:
        """Observe a cache miss; return any patterns detected by it."""
        if not self._entries:
            return []
        detected: List[DetectedPattern] = []
        for stream_key in list(self._entries):
            entry = self._entries[stream_key]
            if entry.idx2 is None:
                self._record_phase1(entry, addr)
            else:
                pattern = self._match_phase2(entry, addr)
                if pattern is not None:
                    detected.append(pattern)
                    self._known.setdefault(stream_key, []).append(
                        (pattern.shift, pattern.base_addr))
                    self._release(stream_key, failed=False, now=now)
        return detected

    def _record_phase1(self, entry: IPDEntry, addr: int) -> None:
        if entry.misses_after_idx1 >= self.config.baseaddr_array_len:
            return
        entry.misses_after_idx1 += 1
        for shift in self.config.shift_values:
            base = solve_base_addr(entry.idx1, addr, shift)
            entry.baseaddrs.setdefault(shift, []).append(base)

    def _match_phase2(self, entry: IPDEntry, addr: int) -> Optional[DetectedPattern]:
        if entry.misses_after_idx2 >= self.config.baseaddr_array_len:
            return None
        entry.misses_after_idx2 += 1
        known = self._known.get(entry.stream_key, [])
        for shift in self.config.shift_values:
            base = solve_base_addr(entry.idx2, addr, shift)
            if (shift, base) in known:
                continue           # already-detected pattern (e.g. the primary)
            if base in entry.baseaddrs.get(shift, []):
                self.detections += 1
                return DetectedPattern(stream_key=entry.stream_key,
                                       shift=shift, base_addr=base)
        return None

    # ------------------------------------------------------------------
    # Release / back-off
    # ------------------------------------------------------------------
    def _release(self, stream_key: int, failed: bool, now: float) -> None:
        self._entries.pop(stream_key, None)
        if not failed:
            self._backoff.pop(stream_key, None)
            return
        self.failed_detections += 1
        state = self._backoff.setdefault(stream_key, _BackoffState())
        delay = min(self.config.max_backoff,
                    self.config.backoff_base * (2 ** state.failures))
        state.failures += 1
        state.blocked_until = now + delay

    def reset(self) -> None:
        self._entries.clear()
        self._backoff.clear()
        self._known.clear()
        self.detections = 0
        self.failed_detections = 0
