"""The Indirect Memory Prefetcher (IMP) — the paper's contribution.

Public API::

    from repro.core import IMP, IMPConfig

    imp = IMP(IMPConfig(), mem_image=image)
    requests = imp.on_access(ctx)          # as a PrefetcherBase

The package also exposes the individual hardware structures (stream table,
Indirect Pattern Detector, Prefetch Table, Granularity Predictor) and the
storage/energy cost model of Section 6.4.
"""

from repro.core.config import IMPConfig
from repro.core.address import apply_shift, solve_base_addr, predict_address
from repro.core.ipd import IndirectPatternDetector, DetectedPattern
from repro.core.prefetch_table import PrefetchTable, PTEntry, IndirectPattern
from repro.core.granularity import GranularityPredictor
from repro.core.imp import IMP
from repro.core.cost import storage_cost_bits, CostReport, energy_overhead

__all__ = [
    "IMP",
    "IMPConfig",
    "CostReport",
    "DetectedPattern",
    "GranularityPredictor",
    "IndirectPattern",
    "IndirectPatternDetector",
    "PTEntry",
    "PrefetchTable",
    "apply_shift",
    "energy_overhead",
    "predict_address",
    "solve_base_addr",
    "storage_cost_bits",
]
