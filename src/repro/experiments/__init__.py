"""Experiment runners that regenerate every table and figure of the paper."""

from repro.experiments.configs import (
    CONFIG_MODES,
    experiment_config,
    scaled_config,
)
from repro.experiments.runner import ExperimentRunner, RunRecord, RunRequest
from repro.experiments.scenario import ScenarioError, ScenarioSpec, load_scenario
from repro.experiments.sweep import (
    ResultCache,
    RunSpec,
    SweepEngine,
    run_specs,
)
from repro.experiments import figures

__all__ = [
    "CONFIG_MODES",
    "ExperimentRunner",
    "ResultCache",
    "RunRecord",
    "RunRequest",
    "RunSpec",
    "ScenarioError",
    "ScenarioSpec",
    "SweepEngine",
    "experiment_config",
    "figures",
    "load_scenario",
    "run_specs",
    "scaled_config",
]
