"""Experiment runners that regenerate every table and figure of the paper."""

from repro.experiments.configs import (
    CONFIG_MODES,
    experiment_config,
    scaled_config,
)
from repro.experiments.runner import ExperimentRunner, RunRecord
from repro.experiments import figures

__all__ = [
    "CONFIG_MODES",
    "ExperimentRunner",
    "RunRecord",
    "experiment_config",
    "figures",
    "scaled_config",
]
