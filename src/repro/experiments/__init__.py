"""Experiment runners that regenerate every table and figure of the paper."""

from repro.experiments.configs import (
    CONFIG_MODES,
    experiment_config,
    scaled_config,
)
from repro.experiments.runner import ExperimentRunner, RunRecord, RunRequest
from repro.experiments.scenario import ScenarioError, ScenarioSpec, load_scenario
from repro.experiments.faults import FaultPlan, TransientFault
from repro.experiments.sweep import (
    FailureRecord,
    ResultCache,
    RunPolicy,
    RunSpec,
    SweepEngine,
    SweepError,
    SweepJournal,
    run_specs,
    write_failure_report,
)
from repro.experiments import figures

__all__ = [
    "CONFIG_MODES",
    "ExperimentRunner",
    "FailureRecord",
    "FaultPlan",
    "ResultCache",
    "RunPolicy",
    "RunRecord",
    "RunRequest",
    "RunSpec",
    "ScenarioError",
    "ScenarioSpec",
    "SweepEngine",
    "SweepError",
    "SweepJournal",
    "TransientFault",
    "experiment_config",
    "figures",
    "load_scenario",
    "run_specs",
    "scaled_config",
    "write_failure_report",
]
