"""Experiment-mode registry entries (the paper's Section 5.4 configurations).

A *mode* names a complete platform variant: which idealisation knobs are
set, which prefetcher runs, and whether the software-prefetch trace variant
is used.  Each mode is one registry entry whose factory resolves
``(base SystemConfig, IMPConfig)`` into the concrete
``(system_config, prefetcher, imp_config, software_prefetch)`` tuple the
simulator consumes — the single place that mode's meaning is defined.

Adding a mode is a one-file change::

    from repro.registry import MODES

    @MODES.register("imp_adaptive", description="IMP with adaptive distance")
    def _imp_adaptive(config, imp_cfg):
        return (config, "imp",
                imp_cfg.with_partial(False).with_adaptive_distance(), False)

The new name immediately works in ``repro run/compare``, scenario files,
``RunSpec`` digests and the on-disk result cache.
"""

from __future__ import annotations

from dataclasses import replace

from repro.registry import MODES
from repro.sim.config import PrefetcherAttach


@MODES.register("ideal",
                description="every access hits in the L1 (upper bound)")
def _ideal(config, imp_cfg):
    return config.as_ideal(), "none", None, False


@MODES.register("perfpref",
                description="magic prefetcher with finite NoC/DRAM bandwidth")
def _perfpref(config, imp_cfg):
    return config.as_perfect_prefetch(), "none", None, False


@MODES.register("base",
                description="hardware stream prefetcher (the paper's baseline)")
def _base(config, imp_cfg):
    return config, "stream", None, False


@MODES.register("swpref",
                description="stream prefetcher + Mowry-style software "
                            "indirect prefetches")
def _swpref(config, imp_cfg):
    return config, "stream", None, True


@MODES.register("ghb",
                description="Global History Buffer G/DC prefetcher")
def _ghb(config, imp_cfg):
    return config, "ghb", None, False


@MODES.register("imp",
                description="Indirect Memory Prefetcher, full-line fetches")
def _imp(config, imp_cfg):
    return config, "imp", imp_cfg.with_partial(False), False


@MODES.register("imp_partial_noc",
                description="IMP + partial cacheline transfer on the NoC")
def _imp_partial_noc(config, imp_cfg):
    return (config.with_partial(noc=True, dram=False), "imp",
            imp_cfg.with_partial(True), False)


@MODES.register("imp_partial_noc_dram",
                description="IMP + partial cacheline transfer on NoC and DRAM")
def _imp_partial_noc_dram(config, imp_cfg):
    return (config.with_partial(noc=True, dram=True), "imp",
            imp_cfg.with_partial(True), False)


@MODES.register("hybrid",
                description="hybrid prefetching: stream at the innermost "
                            "level + IMP one level out (per-slice at the "
                            "shared L2 on the classic shape)")
def _hybrid(config, imp_cfg):
    """Multi-attach mode: a stream prefetcher observes every access at the
    innermost level while IMP trains on the miss stream one level out.

    On the classic two-level platform that puts IMP at the shared L2 — one
    instance per slice, observing slice-local fetches.  With an explicit
    hierarchy (e.g. a private L2 under a shared L3) IMP lands at the
    second level of *that* chain; any attach list the hierarchy already
    carries is replaced by the mode's stream+IMP pair.
    """
    hierarchy = config.resolved_hierarchy()
    attach = (PrefetcherAttach(level=hierarchy.levels[0].name,
                               prefetcher="stream"),
              PrefetcherAttach(level=hierarchy.levels[1].name,
                               prefetcher="imp"))
    hierarchy = replace(hierarchy, attach=attach, prefetch_level=None)
    return (config.with_hierarchy(hierarchy), "none",
            imp_cfg.with_partial(False), False)
