"""Declarative scenario specifications.

A *scenario* is a plain dict (usually a JSON file) that names a complete
simulation point: workload + parameters, experiment mode, core count, and
optional system/IMP configuration overrides — including an explicit cache
:class:`~repro.sim.config.HierarchyConfig`.  Scenarios are validated
against the component registries up front (unknown workloads, modes, DRAM
models or config fields fail with the full list of valid choices), resolve
deterministically into a :class:`repro.experiments.sweep.RunSpec`, and
therefore flow through the sweep engine, the worker pool and the
persistent on-disk result cache exactly like the built-in figures.

Example (``repro run --scenario my.json``) — a hybrid multi-attach
hierarchy: a stream prefetcher at every L1 plus IMP at the private L2s::

    {
      "name": "hybrid-stream-l1-imp-l2",
      "workload": "indirect_stream",
      "workload_params": {"n_indices": 2048, "n_data": 8192, "seed": 3},
      "mode": "imp",
      "n_cores": 4,
      "system": {
        "hierarchy": {
          "attach": [
            {"level": "l1", "prefetcher": "stream"},
            {"level": "l2", "prefetcher": "imp"}
          ],
          "levels": [
            {"name": "l1", "size_bytes": 16384, "associativity": 4},
            {"name": "l2", "size_bytes": 65536, "associativity": 8,
             "hit_latency": 4},
            {"name": "l3", "size_bytes": 131072, "associativity": 8,
             "scope": "shared", "hit_latency": 8}
          ]
        }
      }
    }

Each ``attach`` entry names a level and (optionally) a registered
prefetcher — omit ``"prefetcher"`` (or set it ``null``) to attach the
experiment mode's choice; name the shared last level to put a per-slice
prefetcher on it.  The legacy single-attach form ``"prefetch_level":
"l2"`` is still accepted and means ``"attach": [{"level": "l2"}]``.

``system`` keys override fields of the scaled experiment platform
(:func:`repro.experiments.configs.scaled_config`); ``imp`` keys override
:class:`repro.core.config.IMPConfig` fields.  Two scenario files that
spell the same configuration — whatever their key order — produce the
same canonical form, the same :class:`RunSpec` and the same cache digest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

from repro.core.config import IMPConfig
from repro.experiments.configs import scaled_config
from repro.experiments.sweep import ResultCache, RunSpec, SweepEngine
from repro.prefetchers.stream import StreamPrefetcherConfig
from repro.registry import MODES, WORKLOADS
from repro.sim.config import (CacheConfig, DramConfig, HierarchyConfig,
                              NoCConfig, SystemConfig)
from repro.sim.system import SimulationResult
from repro.workloads.base import Workload


class ScenarioError(ValueError):
    """A scenario document is malformed (unknown keys, bad values)."""


#: Top-level keys a scenario document may carry.
_SCENARIO_KEYS = ("name", "description", "workload", "workload_params",
                  "mode", "n_cores", "system", "imp",
                  "sw_prefetch_distance")

#: ``system`` override keys that take nested dictionaries, with their
#: target config class.
_NESTED_SYSTEM_KEYS = {
    "l1d": CacheConfig,
    "noc": NoCConfig,
    "dram": DramConfig,
}


def _check_keys(doc: Mapping, allowed, what: str) -> None:
    unknown = sorted(set(doc) - set(allowed))
    if unknown:
        raise ScenarioError(
            f"unknown {what} key(s) {', '.join(map(repr, unknown))}; "
            f"valid keys: {', '.join(allowed)}")


@dataclass(frozen=True)
class ScenarioSpec:
    """One validated scenario, ready to resolve into a :class:`RunSpec`."""

    workload: str
    mode: str = "base"
    n_cores: int = 16
    name: str = ""
    description: str = ""
    workload_params: Mapping = field(default_factory=dict)
    system: Mapping = field(default_factory=dict)
    imp: Mapping = field(default_factory=dict)
    sw_prefetch_distance: int = 8

    def __post_init__(self) -> None:
        WORKLOADS.get(self.workload)   # raises listing valid workloads
        MODES.get(self.mode)           # raises listing valid modes
        if not isinstance(self.workload_params, Mapping):
            raise ScenarioError("workload_params must be a mapping")
        _check_keys(self.system,
                    tuple(f.name for f in fields(SystemConfig)), "system")
        if "n_cores" in self.system:
            raise ScenarioError(
                "set the core count with the top-level 'n_cores' key, "
                "not inside 'system'")
        _check_keys(self.imp,
                    tuple(f.name for f in fields(IMPConfig)), "imp")
        # Resolve once so bad nested values (cache geometry, DRAM model,
        # hierarchy shape, workload parameters) fail here, at validation
        # time, not deep inside system construction.
        self.resolve()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, doc: Mapping) -> "ScenarioSpec":
        _check_keys(doc, _SCENARIO_KEYS, "scenario")
        if "workload" not in doc:
            raise ScenarioError("scenario must name a 'workload'")
        return cls(**{key: doc[key] for key in _SCENARIO_KEYS if key in doc})

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"scenario is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise ScenarioError("scenario JSON must be an object")
        return cls.from_dict(doc)

    @classmethod
    def from_file(cls, path) -> "ScenarioSpec":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ScenarioError(f"cannot read scenario file {path}: "
                                f"{exc}") from exc
        return cls.from_json(text)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(self) -> Tuple[Workload, SystemConfig, IMPConfig]:
        """Instantiate the workload and the fully resolved configurations.

        Memoised on the (frozen) spec: validation, digest computation and
        execution all need the resolution, and workload construction is
        the expensive part (paper workloads build graphs/matrices).
        """
        cached = getattr(self, "_resolved", None)
        if cached is None:
            cached = self._resolve()
            object.__setattr__(self, "_resolved", cached)
        return cached

    def _resolve(self) -> Tuple[Workload, SystemConfig, IMPConfig]:
        entry = WORKLOADS.get(self.workload)
        try:
            workload = entry.factory(**dict(self.workload_params))
        except TypeError as exc:
            raise ScenarioError(
                f"bad workload_params for {self.workload!r}: {exc}") from exc
        base = scaled_config(self.n_cores)
        overrides: Dict = {}
        for key, value in self.system.items():
            if key in _NESTED_SYSTEM_KEYS and isinstance(value, Mapping):
                try:
                    value = _NESTED_SYSTEM_KEYS[key](**value)
                except (TypeError, ValueError) as exc:
                    raise ScenarioError(
                        f"bad system.{key}: {exc}") from exc
            elif key == "hierarchy" and isinstance(value, Mapping):
                try:
                    value = HierarchyConfig.from_dict(value)
                except (TypeError, ValueError, KeyError) as exc:
                    raise ScenarioError(
                        f"bad system.hierarchy: {exc}") from exc
            overrides[key] = value
        try:
            config = replace(base, **overrides) if overrides else base
        except (TypeError, ValueError) as exc:
            raise ScenarioError(f"bad system overrides: {exc}") from exc
        imp_overrides: Dict = dict(self.imp)
        if isinstance(imp_overrides.get("stream"), Mapping):
            try:
                imp_overrides["stream"] = StreamPrefetcherConfig(
                    **imp_overrides["stream"])
            except TypeError as exc:
                raise ScenarioError(f"bad imp.stream: {exc}") from exc
        try:
            imp_config = (replace(IMPConfig(), **imp_overrides)
                          if imp_overrides else IMPConfig())
        except (TypeError, ValueError) as exc:
            raise ScenarioError(f"bad imp overrides: {exc}") from exc
        return workload, config, imp_config

    def to_runspec(self) -> RunSpec:
        """The :class:`RunSpec` (and therefore cache identity) of this
        scenario.  Equal scenarios yield equal specs and digests whatever
        the key order of the source document.  Memoised: the spec is
        immutable, and one CLI run asks for it several times (validation,
        digest display, execution)."""
        spec = getattr(self, "_runspec", None)
        if spec is None:
            workload, config, imp_config = self.resolve()
            spec = RunSpec.for_run(
                workload, self.mode, self.n_cores, imp_config=imp_config,
                base_config=config,
                sw_prefetch_distance=self.sw_prefetch_distance)
            object.__setattr__(self, "_runspec", spec)
        return spec

    def digest(self) -> str:
        """Cache digest of the resolved run (sha256, see ``RunSpec``)."""
        return self.to_runspec().digest()

    def canonical_dict(self) -> Dict:
        """The fully resolved, order-independent form of this scenario
        (its cache identity — result-neutral fields such as the NoC
        kernel backend are stripped, see ``RunSpec.canonical_dict``)."""
        return self.to_runspec().canonical_dict()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, *, jobs: Optional[int] = None, cache_dir=None,
            use_cache: bool = True) -> SimulationResult:
        """Simulate this scenario (through the sweep engine and, when a
        cache directory is given, the persistent result cache)."""
        workload = self.resolve()[0]
        spec = self.to_runspec()
        cache = (ResultCache(cache_dir)
                 if (cache_dir is not None and use_cache) else None)
        engine = SweepEngine(jobs=jobs, cache=cache)
        # Hand the already-built workload to the serial path so one CLI
        # scenario run pays for a single trace build.
        return engine.run([spec], workload_lookup=lambda _: workload)[spec]


def load_scenario(path) -> ScenarioSpec:
    """Load and validate a scenario JSON file."""
    return ScenarioSpec.from_file(path)


__all__ = ["ScenarioError", "ScenarioSpec", "load_scenario"]
