"""Per-figure / per-table experiment definitions.

Every public function here regenerates one table or figure of the paper's
evaluation and returns plain dictionaries / lists that the benchmark harness
prints.  The functions only need an :class:`ExperimentRunner`; the runner
decides the workload sizes and platform scale.

Reproduced artefacts:

========  ==========================================================
Figure 1  L1 miss breakdown (indirect / stream / other)
Figure 2  Runtime normalised to Ideal + PerfPref bound
Figure 9  Throughput of Base / IMP / SW-pref normalised to PerfPref
Table 3   Prefetch coverage / accuracy / relative latency
Figure 10 Instruction overhead of software prefetching
Figure 11 Partial cacheline accessing (NoC, NoC+DRAM) vs Ideal
Figure 12 NoC and DRAM traffic with partial accessing
Figure 13 In-order vs out-of-order cores
Figure 14 PT size sensitivity
Figure 15 IPD size sensitivity
Figure 16 Max prefetch distance sensitivity
Sec. 6.4  Storage and energy cost
========  ==========================================================
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.config import IMPConfig
from repro.core.cost import energy_overhead, storage_cost_bits
from repro.experiments.configs import scaled_config
from repro.experiments.runner import ExperimentRunner, RunRequest
from repro.sim.trace import AccessKind


def _mean(values: Sequence[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


# ----------------------------------------------------------------------
# Per-figure run declarations
# ----------------------------------------------------------------------
# Every figure declares the simulations it needs up front as a list of
# RunRequests.  The figure functions prefetch that list before reading any
# result, so shared runs (e.g. the Base run at 64 cores used by Figures
# 2, 9b and 10) are requested once through the batched — and, with
# ``jobs > 1``, parallel — sweep path instead of implicitly via per-figure
# cache lookups.  ``repro sweep`` concatenates the declarations of every
# selected figure and prefetches the whole union in a single batch.

def _mode_requests(runner: ExperimentRunner, modes: Sequence[str],
                   core_counts: Iterable[int]) -> List[RunRequest]:
    return [RunRequest(workload, mode, n_cores)
            for n_cores in core_counts
            for workload in runner.workload_names()
            for mode in modes]


def fig01_requests(runner, n_cores: int = 64) -> List[RunRequest]:
    return _mode_requests(runner, ("base",), (n_cores,))


def fig02_requests(runner, n_cores: int = 64) -> List[RunRequest]:
    return _mode_requests(runner, ("ideal", "base", "perfpref"), (n_cores,))


def fig09_requests(runner, core_counts: Iterable[int] = (16, 64, 256),
                   modes: Sequence[str] = ("perfpref", "base", "imp",
                                           "swpref")) -> List[RunRequest]:
    return _mode_requests(runner, modes, core_counts)


def table3_requests(runner, n_cores: int = 64) -> List[RunRequest]:
    return _mode_requests(runner, ("perfpref", "base", "imp"), (n_cores,))


def fig10_requests(runner, n_cores: int = 64) -> List[RunRequest]:
    return _mode_requests(runner, ("base", "imp", "swpref"), (n_cores,))


def fig11_requests(runner, core_counts: Iterable[int] = (16, 64, 256),
                   ) -> List[RunRequest]:
    return _mode_requests(runner, ("perfpref", "imp", "imp_partial_noc",
                                   "imp_partial_noc_dram", "ideal"),
                          core_counts)


def fig12_requests(runner, n_cores: int = 64) -> List[RunRequest]:
    return _mode_requests(runner, ("imp", "imp_partial_noc_dram"), (n_cores,))


def _sensitivity_requests(runner, n_cores: int,
                          configs: Dict[str, IMPConfig]) -> List[RunRequest]:
    return [RunRequest(workload, "imp", n_cores, imp_config)
            for workload in runner.workload_names()
            for imp_config in configs.values()]


def fig14_requests(runner, n_cores: int = 64,
                   sizes: Sequence[int] = (8, 16, 32)) -> List[RunRequest]:
    return _sensitivity_requests(runner, n_cores, _pt_configs(sizes))


def fig15_requests(runner, n_cores: int = 64,
                   sizes: Sequence[int] = (2, 4, 8)) -> List[RunRequest]:
    return _sensitivity_requests(runner, n_cores, _ipd_configs(sizes))


def fig16_requests(runner, n_cores: int = 64,
                   distances: Sequence[int] = (4, 8, 16, 32),
                   ) -> List[RunRequest]:
    return _sensitivity_requests(runner, n_cores, _distance_configs(distances))


def prefetch_figures(runner: ExperimentRunner, names: Iterable[str],
                     core_counts: Sequence[int]) -> int:
    """Batch-prefetch every run the named figures will need.

    The single entry point behind ``repro sweep``, the sweep benchmark and
    ``reproduce_paper.py``: the union of all declarations executes as one
    deduplicated (and, with ``jobs > 1``, parallel) sweep before any
    figure is rendered.  Returns the number of requested runs.
    """
    requests: List[RunRequest] = []
    for name in names:
        requests.extend(FIGURE_REQUESTS[name](runner, list(core_counts)))
    runner.prefetch(requests)
    return len(requests)


#: Request builders per CLI figure name; each takes ``(runner, core_counts)``
#: where ``core_counts`` is the full list the sweep covers (figures that use
#: a single core count take the first entry).
FIGURE_REQUESTS = {
    "fig1": lambda runner, cores: fig01_requests(runner, cores[0]),
    "fig2": lambda runner, cores: fig02_requests(runner, cores[0]),
    "fig9": lambda runner, cores: fig09_requests(runner, cores),
    "table3": lambda runner, cores: table3_requests(runner, cores[0]),
    "fig10": lambda runner, cores: fig10_requests(runner, cores[0]),
    "fig11": lambda runner, cores: fig11_requests(runner, cores),
    "fig12": lambda runner, cores: fig12_requests(runner, cores[0]),
    "fig14": lambda runner, cores: fig14_requests(runner, cores[0]),
    "fig15": lambda runner, cores: fig15_requests(runner, cores[0]),
    "fig16": lambda runner, cores: fig16_requests(runner, cores[0]),
}


def format_table(rows: List[Dict], columns: Optional[List[str]] = None) -> str:
    """Format a list of row dictionaries as an aligned text table."""
    if not rows:
        return "(empty)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {col: max(len(str(col)),
                       max(len(_fmt(row.get(col))) for row in rows))
              for col in columns}
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(_fmt(row.get(col)).ljust(widths[col])
                               for col in columns))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


# ----------------------------------------------------------------------
# Figure 1: cache miss breakdown
# ----------------------------------------------------------------------
def fig01_miss_breakdown(runner: ExperimentRunner, n_cores: int = 64) -> List[Dict]:
    """Fraction of L1 misses from indirect / stream / other accesses."""
    runner.prefetch(fig01_requests(runner, n_cores))
    rows: List[Dict] = []
    for workload in runner.workload_names():
        record = runner.run(workload, "base", n_cores)
        fractions = record.result.stats.miss_fraction_by_kind()
        rows.append({
            "workload": workload,
            "indirect": fractions[AccessKind.INDIRECT],
            "stream": fractions[AccessKind.INDEX] + fractions[AccessKind.STREAM],
            "other": fractions[AccessKind.OTHER],
        })
    rows.append({
        "workload": "avg",
        "indirect": _mean([r["indirect"] for r in rows]),
        "stream": _mean([r["stream"] for r in rows]),
        "other": _mean([r["other"] for r in rows]),
    })
    return rows


# ----------------------------------------------------------------------
# Figure 2: motivation — runtime normalised to Ideal
# ----------------------------------------------------------------------
def fig02_motivation(runner: ExperimentRunner, n_cores: int = 64) -> List[Dict]:
    """Runtime of the realistic system and PerfPref, normalised to Ideal."""
    runner.prefetch(fig02_requests(runner, n_cores))
    rows: List[Dict] = []
    for workload in runner.workload_names():
        ideal = runner.run(workload, "ideal", n_cores)
        base = runner.run(workload, "base", n_cores)
        perf = runner.run(workload, "perfpref", n_cores)
        ideal_runtime = max(1, ideal.runtime)
        base_stats = base.result.stats
        indirect_stalls = sum(
            core.stall_cycles_by_kind[AccessKind.INDIRECT]
            for core in base_stats.cores)
        total_cycles = max(1, base.runtime * len(base_stats.cores))
        rows.append({
            "workload": workload,
            "norm_runtime": base.runtime / ideal_runtime,
            "indirect_fraction": indirect_stalls / total_cycles,
            "perfpref_norm_runtime": perf.runtime / ideal_runtime,
        })
    rows.append({
        "workload": "avg",
        "norm_runtime": _mean([r["norm_runtime"] for r in rows]),
        "indirect_fraction": _mean([r["indirect_fraction"] for r in rows]),
        "perfpref_norm_runtime": _mean([r["perfpref_norm_runtime"] for r in rows]),
    })
    return rows


# ----------------------------------------------------------------------
# Figure 9: performance of IMP (a/b/c = 16/64/256 cores)
# ----------------------------------------------------------------------
def fig09_performance(runner: ExperimentRunner,
                      core_counts: Iterable[int] = (16, 64, 256),
                      modes: Sequence[str] = ("perfpref", "base", "imp", "swpref"),
                      ) -> Dict[int, List[Dict]]:
    """Throughput normalised to Perfect Prefetching, per core count."""
    core_counts = list(core_counts)
    runner.prefetch(fig09_requests(runner, core_counts, modes))
    results: Dict[int, List[Dict]] = {}
    for n_cores in core_counts:
        rows: List[Dict] = []
        for workload in runner.workload_names():
            reference = runner.run(workload, "perfpref", n_cores)
            row: Dict = {"workload": workload}
            for mode in modes:
                record = runner.run(workload, mode, n_cores)
                row[mode] = record.result.normalized_throughput(reference.result)
            rows.append(row)
        avg_row: Dict = {"workload": "avg"}
        for mode in modes:
            avg_row[mode] = _mean([row[mode] for row in rows])
        rows.append(avg_row)
        results[n_cores] = rows
    return results


def imp_speedup_over_base(fig9_rows: List[Dict]) -> Dict[str, float]:
    """Headline metric: IMP speedup over Base per workload (from Fig. 9 rows)."""
    speedups: Dict[str, float] = {}
    for row in fig9_rows:
        if row["workload"] == "avg":
            continue
        if row.get("base"):
            speedups[row["workload"]] = row["imp"] / row["base"]
    return speedups


# ----------------------------------------------------------------------
# Table 3: prefetch effectiveness
# ----------------------------------------------------------------------
def table3_effectiveness(runner: ExperimentRunner, n_cores: int = 64) -> List[Dict]:
    """Coverage / accuracy / relative latency for stream-only and stream+IMP."""
    runner.prefetch(table3_requests(runner, n_cores))
    rows: List[Dict] = []
    for workload in runner.workload_names():
        perf = runner.run(workload, "perfpref", n_cores)
        base = runner.run(workload, "base", n_cores)
        imp = runner.run(workload, "imp", n_cores)
        perf_latency = max(1e-9, perf.result.stats.avg_mem_latency)
        rows.append({
            "workload": workload,
            "stream_cov": base.result.stats.coverage,
            "stream_acc": base.result.stats.accuracy,
            "stream_lat": base.result.stats.avg_mem_latency / perf_latency,
            "imp_cov": imp.result.stats.coverage,
            "imp_acc": imp.result.stats.accuracy,
            "imp_lat": imp.result.stats.avg_mem_latency / perf_latency,
        })
    rows.append({
        "workload": "avg",
        **{key: _mean([row[key] for row in rows])
           for key in ("stream_cov", "stream_acc", "stream_lat",
                       "imp_cov", "imp_acc", "imp_lat")},
    })
    return rows


# ----------------------------------------------------------------------
# Figure 10: instruction overhead of software prefetching
# ----------------------------------------------------------------------
def fig10_sw_overhead(runner: ExperimentRunner, n_cores: int = 64) -> List[Dict]:
    """Instruction count of IMP and SW-prefetching relative to Base."""
    runner.prefetch(fig10_requests(runner, n_cores))
    rows: List[Dict] = []
    for workload in runner.workload_names():
        base = runner.run(workload, "base", n_cores)
        imp = runner.run(workload, "imp", n_cores)
        sw = runner.run(workload, "swpref", n_cores)
        base_instr = max(1, base.result.stats.total_instructions)
        rows.append({
            "workload": workload,
            "base": 1.0,
            "imp": imp.result.stats.total_instructions / base_instr,
            "swpref": sw.result.stats.total_instructions / base_instr,
        })
    rows.append({
        "workload": "avg",
        "base": 1.0,
        "imp": _mean([r["imp"] for r in rows]),
        "swpref": _mean([r["swpref"] for r in rows]),
    })
    return rows


# ----------------------------------------------------------------------
# Figure 11: partial cacheline accessing
# ----------------------------------------------------------------------
def fig11_partial(runner: ExperimentRunner,
                  core_counts: Iterable[int] = (16, 64, 256)) -> Dict[int, List[Dict]]:
    """IMP with partial accessing (NoC, NoC+DRAM) and Ideal, vs PerfPref."""
    modes = ("imp", "imp_partial_noc", "imp_partial_noc_dram", "ideal")
    core_counts = list(core_counts)
    runner.prefetch(fig11_requests(runner, core_counts))
    results: Dict[int, List[Dict]] = {}
    for n_cores in core_counts:
        rows: List[Dict] = []
        for workload in runner.workload_names():
            reference = runner.run(workload, "perfpref", n_cores)
            row: Dict = {"workload": workload}
            for mode in modes:
                record = runner.run(workload, mode, n_cores)
                row[mode] = record.result.normalized_throughput(reference.result)
            rows.append(row)
        avg_row: Dict = {"workload": "avg"}
        for mode in modes:
            avg_row[mode] = _mean([row[mode] for row in rows])
        rows.append(avg_row)
        results[n_cores] = rows
    return results


# ----------------------------------------------------------------------
# Figure 12: NoC / DRAM traffic reduction
# ----------------------------------------------------------------------
def fig12_traffic(runner: ExperimentRunner, n_cores: int = 64) -> List[Dict]:
    """Traffic with partial accessing normalised to full-cacheline accessing."""
    runner.prefetch(fig12_requests(runner, n_cores))
    rows: List[Dict] = []
    for workload in runner.workload_names():
        full = runner.run(workload, "imp", n_cores)
        partial = runner.run(workload, "imp_partial_noc_dram", n_cores)
        full_noc = max(1, full.result.stats.traffic.noc_bytes)
        full_dram = max(1, full.result.stats.traffic.dram_bytes)
        rows.append({
            "workload": workload,
            "noc_traffic": partial.result.stats.traffic.noc_bytes / full_noc,
            "dram_traffic": partial.result.stats.traffic.dram_bytes / full_dram,
        })
    rows.append({
        "workload": "avg",
        "noc_traffic": _mean([r["noc_traffic"] for r in rows]),
        "dram_traffic": _mean([r["dram_traffic"] for r in rows]),
    })
    return rows


# ----------------------------------------------------------------------
# Figure 13: in-order vs out-of-order cores
# ----------------------------------------------------------------------
def fig13_ooo(workloads: Optional[Sequence] = None, n_cores: int = 64,
              scale: float = 1.0, seed: int = 1,
              jobs: Optional[int] = None, cache_dir=None,
              use_cache: bool = True) -> List[Dict]:
    """IMP and partial accessing on in-order and OoO cores (pagerank, SGD)."""
    from repro.workloads import PagerankWorkload, SGDWorkload

    if workloads is None:
        workloads = [PagerankWorkload(n_vertices=max(64, int(4096 * scale)),
                                      seed=seed),
                     SGDWorkload(n_users=max(64, int(4096 * scale)),
                                 n_items=max(64, int(4096 * scale)),
                                 n_ratings=max(64, int(24576 * scale)),
                                 seed=seed)]
    io_runner = ExperimentRunner(workloads=workloads,
                                 base_config=scaled_config(n_cores),
                                 jobs=jobs, cache_dir=cache_dir,
                                 use_cache=use_cache)
    ooo_runner = ExperimentRunner(workloads=workloads,
                                  base_config=scaled_config(n_cores).with_ooo(),
                                  jobs=jobs, cache_dir=cache_dir,
                                  use_cache=use_cache)
    modes = ("base", "imp", "imp_partial_noc_dram")
    for figure_runner in (io_runner, ooo_runner):
        figure_runner.prefetch(_mode_requests(figure_runner, modes,
                                              (n_cores,)))
    rows: List[Dict] = []
    for workload in io_runner.workload_names():
        base_ooo = ooo_runner.run(workload, "base", n_cores)
        reference = max(1, base_ooo.runtime)
        rows.append({
            "workload": workload,
            "base_io": reference / max(1, io_runner.run(workload, "base", n_cores).runtime),
            "base_ooo": 1.0,
            "imp_io": reference / max(1, io_runner.run(workload, "imp", n_cores).runtime),
            "imp_ooo": reference / max(1, ooo_runner.run(workload, "imp", n_cores).runtime),
            "partial_io": reference / max(1, io_runner.run(
                workload, "imp_partial_noc_dram", n_cores).runtime),
            "partial_ooo": reference / max(1, ooo_runner.run(
                workload, "imp_partial_noc_dram", n_cores).runtime),
        })
    return rows


# ----------------------------------------------------------------------
# Figures 14-16: sensitivity studies
# ----------------------------------------------------------------------
def _pt_configs(sizes: Sequence[int]) -> Dict[str, IMPConfig]:
    return {f"PT={size}": IMPConfig().with_pt_size(size) for size in sizes}


def _ipd_configs(sizes: Sequence[int]) -> Dict[str, IMPConfig]:
    return {f"IPD={size}": IMPConfig().with_ipd_size(size) for size in sizes}


def _distance_configs(distances: Sequence[int]) -> Dict[str, IMPConfig]:
    return {f"Dist={d}": IMPConfig().with_max_distance(d) for d in distances}


def _sensitivity(runner: ExperimentRunner, n_cores: int,
                 configs: Dict[str, IMPConfig], reference_key: str) -> List[Dict]:
    runner.prefetch(_sensitivity_requests(runner, n_cores, configs))
    rows: List[Dict] = []
    for workload in runner.workload_names():
        reference = runner.run(workload, "imp", n_cores,
                               imp_config=configs[reference_key])
        row: Dict = {"workload": workload}
        for label, imp_config in configs.items():
            record = runner.run(workload, "imp", n_cores, imp_config=imp_config)
            row[label] = record.result.normalized_throughput(reference.result)
        rows.append(row)
    avg_row: Dict = {"workload": "avg"}
    for label in configs:
        avg_row[label] = _mean([row[label] for row in rows])
    rows.append(avg_row)
    return rows


def fig14_pt_size(runner: ExperimentRunner, n_cores: int = 64,
                  sizes: Sequence[int] = (8, 16, 32)) -> List[Dict]:
    """Sensitivity to the Prefetch Table size, normalised to PT=16."""
    return _sensitivity(runner, n_cores, _pt_configs(sizes), "PT=16")


def fig15_ipd_size(runner: ExperimentRunner, n_cores: int = 64,
                   sizes: Sequence[int] = (2, 4, 8)) -> List[Dict]:
    """Sensitivity to the IPD size, normalised to IPD=4."""
    return _sensitivity(runner, n_cores, _ipd_configs(sizes), "IPD=4")


def fig16_prefetch_distance(runner: ExperimentRunner, n_cores: int = 64,
                            distances: Sequence[int] = (4, 8, 16, 32)) -> List[Dict]:
    """Sensitivity to the max indirect prefetch distance, normalised to 16."""
    return _sensitivity(runner, n_cores, _distance_configs(distances),
                        "Dist=16")


# ----------------------------------------------------------------------
# Section 6.4: hardware cost
# ----------------------------------------------------------------------
def sec64_hardware_cost(imp_config: Optional[IMPConfig] = None) -> Dict[str, float]:
    """Storage and energy cost of IMP and the Granularity Predictor."""
    config = imp_config or IMPConfig()
    report = storage_cost_bits(config)
    energy = energy_overhead(config)
    return {
        "pt_total_kbits": report.pt_total_bits / 1024,
        "ipd_total_kbits": report.ipd_total_bits / 1024,
        "imp_total_kbits": report.imp_total_bits / 1024,
        "imp_total_bytes": report.imp_total_bytes,
        "gp_total_kbits": report.gp_total_bits / 1024,
        "gp_total_bytes": report.gp_total_bytes,
        "l1_sector_overhead": report.l1_sector_overhead,
        "l2_sector_overhead": report.l2_sector_overhead,
        "pt_energy_vs_l1": energy["pt_vs_l1_access"],
        "gp_energy_vs_l1": energy["gp_vs_l1_access"],
    }
