"""Experiment configurations.

The paper simulates full-size inputs on a parallel C++ simulator; this
reproduction runs scaled-down inputs in pure Python.  To preserve the
working-set-to-cache ratios that drive all of the paper's results, the
*experiment* configuration scales the cache capacities down together with
the inputs (L1 = 16 KB instead of 32 KB, total L2 = 0.25/sqrt(N) MB per tile
instead of 2/sqrt(N) MB).  Everything else — core model, NoC, coherence,
DRAM latency/bandwidth, the sqrt(N) scalability assumptions, and all IMP
parameters (Table 2) — matches Table 1.

``SystemConfig()`` with no arguments remains the paper's exact Table 1
configuration; ``scaled_config()`` is what the figure runners use.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Tuple

from repro.core.config import IMPConfig
from repro.registry import MODES
from repro.sim.config import CacheConfig, DramConfig, SystemConfig


def scaled_config(n_cores: int = 64, *, dram_model: str = "simple",
                  **overrides) -> SystemConfig:
    """The scaled experiment platform (see module docstring)."""
    config = SystemConfig(
        n_cores=n_cores,
        l1d=CacheConfig(size_bytes=16 * 1024, associativity=4),
        l2_total_mb_at_1core=0.25,
        dram=DramConfig(model=dram_model),
    )
    if overrides:
        config = replace(config, **overrides)
    return config


def experiment_config(mode: str, n_cores: int = 64,
                      imp_config: Optional[IMPConfig] = None,
                      base_config: Optional[SystemConfig] = None,
                      ) -> Tuple[SystemConfig, str, Optional[IMPConfig], bool]:
    """Return ``(system_config, prefetcher, imp_config, software_prefetch)``
    for a named experiment mode.

    Modes are resolved through :data:`repro.registry.MODES`; the stock
    entries (defined in :mod:`repro.experiments.modes`) are the paper's
    Section 5.4 configurations: ``ideal``, ``perfpref``, ``base``,
    ``swpref``, ``ghb``, ``imp``, ``imp_partial_noc``,
    ``imp_partial_noc_dram``.  Unknown modes raise an error listing every
    registered name.
    """
    entry = MODES.get(mode)  # unknown modes raise, listing valid names
    config = base_config or scaled_config(n_cores)
    config = config.with_cores(n_cores) if config.n_cores != n_cores else config
    imp_cfg = imp_config or IMPConfig()
    return entry.factory(config, imp_cfg)


# The stock mode entries register on import.  Imported explicitly (rather
# than through the registry's lazy populate) so the CONFIG_MODES snapshot
# below is complete even when this module is the first one loaded.
import repro.experiments.modes  # noqa: E402,F401

#: All recognised configuration modes, in the order the figures report them.
#: Snapshotted from the registry at import time; consult ``MODES`` directly
#: to also see modes registered later.
CONFIG_MODES = tuple(MODES.names())
